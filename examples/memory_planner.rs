//! Memory planner: will your spatiotemporal dataset fit?
//!
//! ```text
//! cargo run --release --example memory_planner -- <entries> <nodes> <features> <horizon>
//! cargo run --release --example memory_planner          # all six benchmarks
//! ```
//!
//! For a dataset shape, prints the eq.-(1) standard-preprocessing footprint,
//! the eq.-(2) index-batching footprint, and fit verdicts against a 512 GB
//! host and a 40 GB GPU — the planning question the paper answers for PeMS.

use pgt_i::core::memory_model::{growth_stages, index_batching_bytes, standard_preprocess_bytes};
use pgt_i::data::datasets::DatasetSpec;
use pgt_i::report::table::{fmt_bytes, Table};

const HOST: u64 = 512 << 30;
const GPU: u64 = 40 << 30;

fn verdict(bytes: u64, capacity: u64) -> String {
    if bytes <= capacity {
        format!("fits ({:.1}%)", 100.0 * bytes as f64 / capacity as f64)
    } else {
        format!("OOM ({:.1}x over)", bytes as f64 / capacity as f64)
    }
}

fn plan(name: &str, entries: usize, nodes: usize, features: usize, horizon: usize) -> Vec<String> {
    let eq1 = standard_preprocess_bytes(entries, horizon, nodes, features, 8);
    let eq2 = index_batching_bytes(entries, horizon, nodes, features, 8);
    // Standard preprocessing peaks at ~1.5x the final arrays (stacking).
    let std_peak = eq1 + eq1 / 2;
    vec![
        name.to_string(),
        fmt_bytes(eq1),
        fmt_bytes(eq2),
        format!("{:.1}%", 100.0 * (1.0 - eq2 as f64 / eq1 as f64)),
        verdict(std_peak, HOST),
        verdict(eq2, HOST),
        verdict(eq2, GPU),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut table = Table::new(
        "Memory plan (float64; host 512 GB, GPU 40 GB)",
        &[
            "Dataset",
            "Standard (eq.1)",
            "Index (eq.2)",
            "Saved",
            "Standard fits host?",
            "Index fits host?",
            "GPU-index fits device?",
        ],
    );
    if args.len() == 4 {
        let p: Vec<usize> = args
            .iter()
            .map(|a| a.parse().expect("integer arg"))
            .collect();
        table.row(&plan("custom", p[0], p[1], p[2], p[3]));
    } else {
        for spec in DatasetSpec::all() {
            table.row(&plan(
                spec.name,
                spec.entries,
                spec.nodes,
                spec.aug_features,
                spec.horizon,
            ));
        }
    }
    println!("{}", table.to_text());

    // Detail the growth stages for the headline dataset.
    let pems = DatasetSpec::all().into_iter().last().expect("registry");
    let g = growth_stages(&pems, 8);
    println!(
        "PeMS growth stages: raw {} -> +time {} -> SWA x {} -> x+y {}",
        fmt_bytes(g.raw),
        fmt_bytes(g.stage1),
        fmt_bytes(g.stage2),
        fmt_bytes(g.stage3)
    );
}
