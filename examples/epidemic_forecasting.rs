//! Epidemic forecasting with A3T-GCN — the paper's intro use case of
//! infectious-disease prediction (§1), on a Chickenpox-Hungary-like
//! synthetic SIR workload.
//!
//! ```text
//! cargo run --release --example epidemic_forecasting
//! ```
//!
//! Shows the attention-based model (A3T-GCN, §5.5) working through the same
//! index-batching API as the DCRNN family — the "any sequence-to-sequence
//! model" claim.

use pgt_i::core::trainer::{Trainer, TrainerConfig};
use pgt_i::core::IndexDataset;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::splits::SplitRatios;
use pgt_i::data::synthetic;
use pgt_i::graph::sym_norm_adjacency;
use pgt_i::models::{A3tGcn, ModelConfig, Support};

fn main() {
    // A county network with weekly case counts from the SIR generator.
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.6);
    let sig = synthetic::generate(&spec, 7);
    println!(
        "epidemic network: {} counties, {} weeks of case counts, horizon {} weeks\n",
        spec.nodes, spec.entries, spec.horizon
    );

    let ds = IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None);
    let model = A3tGcn::new(
        ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 16,
            num_nodes: spec.nodes,
            horizon: spec.horizon,
            diffusion_steps: 1,
            layers: 1,
        },
        Support::new(sym_norm_adjacency(&sig.adjacency)),
        7,
    );

    let trainer = Trainer::new(TrainerConfig {
        epochs: 15,
        batch_size: spec.batch_size,
        lr: 0.01,
        seed: 7,
        validate: true,
        grad_clip: Some(5.0),
    });
    let history = trainer.train(&model, &ds);
    println!("epoch  train-loss  val-MAE (weekly cases)");
    for e in &history.epochs {
        println!("{:>5}  {:>10.4}  {:>8.3}", e.epoch, e.train_loss, e.val_mae);
    }
    let test = trainer.evaluate(&model, &ds, ds.splits().test.clone());
    println!(
        "\nbest val MAE {:.3} cases/week | held-out test MAE {:.3} cases/week",
        history.best_val_mae(),
        test
    );
}
