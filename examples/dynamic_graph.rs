//! Dynamic-graph training example (paper §7 future work).
//!
//! Trains a PGT-DCRNN on a corridor whose edge weights evolve over time
//! (lane-closing incidents that slowly recover), using index-batching on
//! both halves of every snapshot: features are zero-copy windows into one
//! standardized array, and each time entry's diffusion supports are
//! computed once and shared by every overlapping window.
//!
//! Run with: `cargo run --release --example dynamic_graph`

use pgt_index::dynamic_index::{train_dynamic, DynamicIndexDataset, DynamicTrainConfig};
use st_data::dynamic::synthetic_dynamic_traffic;
use st_data::splits::SplitRatios;

fn main() {
    let signal = synthetic_dynamic_traffic(10, 160, 42);
    println!(
        "dynamic corridor: {} sensors, {} entries, topology evolves per step",
        signal.num_nodes(),
        signal.entries()
    );

    let horizon = 4;
    let ds = DynamicIndexDataset::from_signal(&signal, horizon, SplitRatios::default(), 2);
    println!(
        "index layout: {} B resident vs {} B if windows were materialized ({:.1}x saving)\n",
        ds.resident_bytes(),
        ds.materialized_bytes(),
        ds.materialized_bytes() as f64 / ds.resident_bytes() as f64
    );

    let cfg = DynamicTrainConfig {
        epochs: 5,
        hidden: 12,
        ..Default::default()
    };
    let (_model, stats) = train_dynamic(&signal, horizon, &cfg);
    for s in &stats {
        println!(
            "epoch {:>2}: train loss {:.4} | val MAE {:.4}",
            s.epoch, s.train_loss, s.val_mae
        );
    }
    println!(
        "\nGate weights are shared across time; only the diffusion operators \
         change per step — the §7 'dynamic graphs with temporal signal' \
         extension running on index-batching."
    );
}
