//! Partitioned training example (paper §7 future work).
//!
//! Trains one PGT-DCRNN per spatial partition of a synthetic highway
//! corridor, each partition using index-batching on its node-subset
//! signal — the "index-batching × graph partitioning" integration the
//! paper's conclusion proposes. Partitions come from the multilevel
//! partitioner (`DESIGN.md` §6), and each split is priced by the halo
//! cost model before training. Prints the accuracy/memory/critical-path
//! trade-off against whole-graph training.
//!
//! Run with: `cargo run --release --example partitioned_training`
//! (`PGT_SMOKE=1` shrinks the workload for CI.)

use pgt_index::partitioned::{run_partitioned, PartitionStrategy, PartitionedConfig};
use st_data::synthetic;

fn main() {
    let smoke = std::env::var("PGT_SMOKE").is_ok();
    // A freeway corridor with five-minute readings.
    let (nodes, entries, epochs) = if smoke { (16, 160, 2) } else { (28, 300, 4) };
    let net = st_graph::generators::highway_corridor(nodes, 1, 7);
    let sig = synthetic::traffic::generate(&net, entries, 288, 7);
    let horizon = 4;
    println!(
        "corridor: {} sensors, {} entries, horizon {horizon}\n",
        sig.num_nodes(),
        sig.entries()
    );

    for parts in [1usize, 2, 4] {
        let mut cfg = PartitionedConfig::new(parts, horizon);
        cfg.strategy = PartitionStrategy::Multilevel;
        cfg.epochs = epochs;
        cfg.batch_size = 8;
        cfg.halo_depth = 2; // ≥ diffusion steps K = 2
        let r = run_partitioned(&sig, &cfg);
        println!(
            "k={parts}: val MAE {:.4} | edge cut {:.1}% | modeled halo {} B | \
             replication {:.2}x | critical path {:.0}% of whole-graph FLOPs | \
             max worker mem {} B",
            r.combined_val_mae,
            r.cut_fraction * 100.0,
            r.modeled_halo_bytes,
            r.replication_factor,
            r.parallel_flops_fraction * 100.0,
            r.max_resident_bytes,
        );
        for p in &r.parts {
            println!(
                "    part {}: {} owned + {} halo nodes, val MAE {:.4}",
                p.part, p.owned, p.halo, p.val_mae
            );
        }
    }
    println!(
        "\nPartitioning buys parallel speedup and smaller per-worker memory at a \
         measurable accuracy cost — exactly the trade-off PGT-I avoids by keeping \
         graphs whole (§4), and the reason §7 leaves the hybrid as future work. \
         The multilevel partitioner minimizes the modeled halo bytes every cut \
         neighbor costs (2·horizon − 1 reads per boundary row)."
    );
}
