//! Partitioned training example (paper §7 future work).
//!
//! Trains one PGT-DCRNN per spatial partition of a synthetic highway
//! corridor, each partition using index-batching on its node-subset
//! signal — the "index-batching × graph partitioning" integration the
//! paper's conclusion proposes. Prints the accuracy/memory/critical-path
//! trade-off against whole-graph training.
//!
//! Run with: `cargo run --release --example partitioned_training`

use pgt_index::partitioned::{run_partitioned, PartitionStrategy, PartitionedConfig};
use st_data::synthetic;

fn main() {
    // A 28-sensor freeway corridor with 300 five-minute readings.
    let net = st_graph::generators::highway_corridor(28, 1, 7);
    let sig = synthetic::traffic::generate(&net, 300, 288, 7);
    println!(
        "corridor: {} sensors, {} entries, horizon 4\n",
        sig.num_nodes(),
        sig.entries()
    );

    for parts in [1usize, 2, 4] {
        let mut cfg = PartitionedConfig::new(parts, 4);
        cfg.strategy = PartitionStrategy::CoordinateBisection(net.coords.clone());
        cfg.epochs = 4;
        cfg.batch_size = 8;
        cfg.halo_depth = 2; // ≥ diffusion steps K = 2
        let r = run_partitioned(&sig, &cfg);
        println!(
            "k={parts}: val MAE {:.4} | edge cut {:.1}% | replication {:.2}x | \
             critical path {:.0}% of whole-graph FLOPs | max worker mem {} B",
            r.combined_val_mae,
            r.cut_fraction * 100.0,
            r.replication_factor,
            r.parallel_flops_fraction * 100.0,
            r.max_resident_bytes,
        );
        for p in &r.parts {
            println!(
                "    part {}: {} owned + {} halo nodes, val MAE {:.4}",
                p.part, p.owned, p.halo, p.val_mae
            );
        }
    }
    println!(
        "\nPartitioning buys parallel speedup and smaller per-worker memory at a \
         measurable accuracy cost — exactly the trade-off PGT-I avoids by keeping \
         graphs whole (§4), and the reason §7 leaves the hybrid as future work."
    );
}
