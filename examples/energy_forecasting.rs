//! Wind-farm energy forecasting (Windmill-Large-like) with GPU-index-
//! batching — the paper's energy-modeling use case (§1) plus the §4.1
//! device-resident workflow: one consolidated transfer, zero per-batch
//! copies.
//!
//! ```text
//! cargo run --release --example energy_forecasting
//! ```

use pgt_i::core::gpu_index::{GpuIndexDataset, Residency};
use pgt_i::core::trainer::{Trainer, TrainerConfig};
use pgt_i::core::IndexDataset;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::splits::SplitRatios;
use pgt_i::data::synthetic;
use pgt_i::device::memory::{MemPool, PoolMode};
use pgt_i::device::{CostModel, SimClock};
use pgt_i::graph::diffusion_supports;
use pgt_i::models::{ModelConfig, PgtDcrnn, Support};

fn main() {
    let spec = DatasetSpec::get(DatasetKind::WindmillLarge).scaled(0.05);
    let sig = synthetic::generate(&spec, 11);
    println!(
        "wind farm: {} turbines, {} hourly readings, horizon {}h\n",
        spec.nodes, spec.entries, spec.horizon
    );

    let ds = IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None);

    // Place the whole standardized dataset on a simulated 40 GB device.
    let device = MemPool::new("gpu0", 40 << 30, PoolMode::Virtual);
    let placed = GpuIndexDataset::place(
        ds,
        Residency::Device,
        &device,
        CostModel::polaris(),
        SimClock::new(),
        4,
    )
    .expect("scaled windmill fits easily on-device");
    println!(
        "consolidated transfer: {} host->device copies, {:.2} MiB, device pool at {:.2} MiB",
        placed.ledger().h2d_count(),
        placed.ledger().h2d_bytes() as f64 / (1 << 20) as f64,
        device.in_use() as f64 / (1 << 20) as f64,
    );

    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    let model = PgtDcrnn::new(
        ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 16,
            num_nodes: spec.nodes,
            horizon: spec.horizon,
            diffusion_steps: 2,
            layers: 1,
        },
        &supports,
        11,
    );
    let trainer = Trainer::new(TrainerConfig {
        epochs: 8,
        batch_size: 16,
        lr: 0.01,
        seed: 11,
        validate: true,
        grad_clip: Some(5.0),
    });
    let history = trainer.train(&model, &placed);
    println!("\nepoch  train-loss  val-MAE (normalized power)");
    for e in &history.epochs {
        println!("{:>5}  {:>10.4}  {:>8.4}", e.epoch, e.train_loss, e.val_mae);
    }
    println!(
        "\nafter training: still {} host->device transfer(s) — batches were sliced on-device",
        placed.ledger().h2d_count()
    );
}
