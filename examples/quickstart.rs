//! Quickstart: train a PGT-DCRNN traffic forecaster with index-batching.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a scaled PeMS-BAY-like synthetic dataset, builds the
//! index-batching dataset (one standardized copy + window indices), trains
//! for a few epochs, and prints per-epoch validation MAE alongside the
//! memory the standard pipeline would have needed.

use pgt_i::core::workflow::{prepare_single_gpu, Batching};
use pgt_i::core::{index_batching_bytes, standard_preprocess_bytes};
use pgt_i::data::datasets::DatasetKind;

fn main() {
    println!("PGT-I quickstart — index-batching on a PeMS-BAY-like workload\n");

    // 1. Prepare: synthetic sensor network + signal, index-batching dataset,
    //    and a single-layer diffusion-convolution GRU (PGT-DCRNN).
    let run = prepare_single_gpu(DatasetKind::PemsBay, 0.02, Batching::Index, 16, 42);
    println!(
        "dataset: {} nodes x {} entries (scaled PeMS-BAY), horizon {}",
        run.spec.nodes, run.spec.entries, run.spec.horizon
    );

    // 2. The memory argument, at this run's scale (float32):
    let eq1 = standard_preprocess_bytes(run.spec.entries, run.spec.horizon, run.spec.nodes, 2, 4);
    let eq2 = index_batching_bytes(run.spec.entries, run.spec.horizon, run.spec.nodes, 2, 4);
    println!(
        "standard preprocessing would materialize {:.1} MiB; index-batching holds {:.1} MiB ({:.1}% less)\n",
        eq1 as f64 / (1 << 20) as f64,
        eq2 as f64 / (1 << 20) as f64,
        100.0 * (1.0 - eq2 as f64 / eq1 as f64)
    );

    // 3. Train.
    let history = run.train(8, 16, 0.01);
    println!("epoch  train-loss  val-MAE (mph)");
    for e in &history.epochs {
        println!("{:>5}  {:>10.4}  {:>8.3}", e.epoch, e.train_loss, e.val_mae);
    }
    println!(
        "\nbest val MAE: {:.3} mph | test MAE: {:.3} mph | total {:.1}s",
        history.best_val_mae(),
        run.test_mae(),
        history.wall_secs
    );

    // 4. Horizon-wise error breakdown on a test batch: forecasts degrade
    //    with lead time, and the per-step report makes that visible (the
    //    15/30/60-minute rows of DCRNN-style evaluations).
    use pgt_i::autograd::Tape;
    use pgt_i::models::metrics::{report, MetricConfig};
    use pgt_i::models::Seq2Seq;
    let ids: Vec<usize> = run.source.splits().test.clone().take(64).collect();
    let (x, y) = run.source.get_batch(&ids);
    let target = y.narrow(3, 0, 1).expect("speed feature").contiguous();
    let tape = Tape::new();
    let pred = run.model.forward(&tape, &x);
    let scaler = run.source.scaler();
    let r = report(
        pred.value(),
        &target,
        &MetricConfig::standardized(scaler.mean, scaler.std),
    );
    println!("\nhorizon-wise test metrics (original units):\n{r}");
}
