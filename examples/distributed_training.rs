//! Distributed-index-batching vs baseline DDP on a simulated cluster.
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```
//!
//! Spawns real worker threads with real collectives (gradients genuinely
//! all-reduce across replicas), trains the same model under both data
//! strategies, and prints the communication ledger that explains Fig. 7:
//! baseline DDP ships sample data every batch; distributed-index-batching
//! ships only gradients.

use pgt_i::core::baseline_ddp::run_baseline_ddp;
use pgt_i::core::dist_index::{run_distributed_index, DistConfig};
use pgt_i::core::workflow::pgt_dcrnn_factory;
use pgt_i::data::datasets::{DatasetKind, DatasetSpec};
use pgt_i::data::synthetic;
use pgt_i::graph::diffusion_supports;
use pgt_i::models::{ModelConfig, PgtDcrnn, Support};

fn main() {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.015);
    let sig = synthetic::generate(&spec, 42);
    println!(
        "simulated cluster: Polaris-style nodes (4 GPUs/node); dataset {}x{} entries\n",
        spec.nodes, spec.entries
    );

    for world in [1usize, 2, 4] {
        let mut cfg = DistConfig::new(world, 3, spec.horizon);
        cfg.batch_per_worker = 8;
        cfg.time_period = Some(spec.period);

        let factory = pgt_dcrnn_factory(&sig, spec.horizon, 12, 42);
        let index = run_distributed_index(&sig, &cfg, &factory);
        let ddp = run_baseline_ddp(&sig, &cfg, |_| {
            let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
            Box::new(PgtDcrnn::new(
                ModelConfig {
                    input_dim: 2,
                    output_dim: 1,
                    hidden: 12,
                    num_nodes: sig.num_nodes(),
                    horizon: spec.horizon,
                    diffusion_steps: 2,
                    layers: 1,
                },
                &supports,
                42,
            ))
        });

        println!(
            "=== {world} worker(s), global batch {} ===",
            cfg.global_batch()
        );
        println!(
            "  dist-index : val MAE {:.3} | sim compute {:>7.3}s | sim comm {:>7.3}s | {:>12} bytes moved",
            index.best_val_mae(),
            index.sim_compute_secs,
            index.sim_comm_secs,
            index.bytes_moved
        );
        println!(
            "  baseline DDP: val MAE {:.3} | sim compute {:>7.3}s | sim comm {:>7.3}s | {:>12} bytes moved",
            ddp.best_val_mae(),
            ddp.sim_compute_secs,
            ddp.sim_comm_secs,
            ddp.bytes_moved
        );
        if world > 1 {
            // Gradient traffic is identical on both sides; the *data plane*
            // is where they differ (the crux of Fig. 7).
            println!(
                "  -> data plane: dist-index {} bytes (none — full local copies) vs DDP {} bytes of on-demand sample fetches\n",
                index.data_plane_bytes, ddp.data_plane_bytes
            );
        } else {
            println!();
        }
    }
}
