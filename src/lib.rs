//! # pgt-i
//!
//! Umbrella crate for the PGT-I reproduction: re-exports the public API of
//! every workspace crate so examples and integration tests can use a single
//! dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the paper → crate mapping.

pub use pgt_index as core;
pub use st_autograd as autograd;
pub use st_data as data;
pub use st_device as device;
pub use st_dist as dist;
pub use st_graph as graph;
pub use st_models as models;
pub use st_report as report;
pub use st_serve as serve;
pub use st_tensor as tensor;
