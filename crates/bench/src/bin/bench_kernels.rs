//! Kernel-backend regression gate: tiled vs reference, pinned.
//!
//! Times the `st_tensor` compute backends against each other on the dense
//! kernels the DCRNN step is made of — square matmul, the seq2seq-unroll
//! shared-rhs bmm, and the fused `bias+σ/tanh` gate tail — then runs the
//! same PGT-DCRNN workload `ablation_overlap` drives (PemsBay scaled to
//! `DIST_SCALE`) end-to-end under each backend and compares wall time.
//!
//! Two claims are asserted in-binary so CI fails the build when a
//! regression lands:
//!
//! - the tiled backend is ≥ 1.5× the reference on 256×256×256 matmul;
//! - the tiled backend's end-to-end wall time beats the reference on the
//!   distributed training workload, with **bit-identical** losses.
//!
//! Results are emitted as `target/BENCH_kernels.json` next to the other
//! perf-trajectory artifacts. `--smoke` (or `PGT_SMOKE=1`) shrinks reps
//! for CI.

use pgt_index::dist_index::run_distributed_index;
use pgt_index::{DistConfig, DistRunResult};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};
use st_report::table::Table;
use st_tensor::backend::{kernels_for, Activation, BackendKind, Kernels};
use st_tensor::random::{rng_from_seed, uniform};
use std::time::Instant;

struct Row {
    kernel: &'static str,
    size: String,
    ref_ns: f64,
    tiled_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.ref_ns / self.tiled_ns
    }
}

/// Best-of-`reps` nanoseconds for one closure call.
fn best_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best
}

fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: backends disagree at element {i}: {x} vs {y}"
        );
    }
}

fn time_matmul(rows: &mut Vec<Row>, reps: usize, n: usize) {
    let mut rng = rng_from_seed(7);
    let a = uniform([n, n], -1.0, 1.0, &mut rng);
    let b = uniform([n, n], -1.0, 1.0, &mut rng);
    let (av, bv) = (a.to_vec(), b.to_vec());
    let reference: &dyn Kernels = kernels_for(BackendKind::Reference);
    let tiled: &dyn Kernels = kernels_for(BackendKind::Tiled);
    // Kernels are called on zeroed buffers (the public ops' contract), so
    // each rep re-zeros; the fill is symmetric noise on both sides.
    let mut cr = vec![0.0f32; n * n];
    let mut ct = vec![0.0f32; n * n];
    let ref_ns = best_ns(reps, || {
        cr.fill(0.0);
        reference.matmul(&av, &bv, &mut cr, n, n, n)
    });
    let tiled_ns = best_ns(reps, || {
        ct.fill(0.0);
        tiled.matmul(&av, &bv, &mut ct, n, n, n)
    });
    assert_bits_equal(&cr, &ct, "matmul");
    rows.push(Row {
        kernel: "matmul",
        size: format!("{n}x{n}x{n}"),
        ref_ns,
        tiled_ns,
    });
}

fn time_bmm(rows: &mut Vec<Row>, reps: usize, bs: usize, m: usize, k: usize, n: usize) {
    // The seq2seq-unroll shape: a per-step [B, N, K·io] activation against
    // one shared [K·io, H] weight — packing amortizes across the batch.
    let mut rng = rng_from_seed(8);
    let a = uniform([bs, m, k], -1.0, 1.0, &mut rng);
    let b = uniform([k, n], -1.0, 1.0, &mut rng);
    let (av, bv) = (a.to_vec(), b.to_vec());
    let reference: &dyn Kernels = kernels_for(BackendKind::Reference);
    let tiled: &dyn Kernels = kernels_for(BackendKind::Tiled);
    let mut cr = vec![0.0f32; bs * m * n];
    let mut ct = vec![0.0f32; bs * m * n];
    let ref_ns = best_ns(reps, || {
        cr.fill(0.0);
        reference.bmm(&av, &bv, &mut cr, bs, m, k, n, true)
    });
    let tiled_ns = best_ns(reps, || {
        ct.fill(0.0);
        tiled.bmm(&av, &bv, &mut ct, bs, m, k, n, true)
    });
    assert_bits_equal(&cr, &ct, "bmm");
    rows.push(Row {
        kernel: "bmm_shared_rhs",
        size: format!("{bs}x{m}x{k}x{n}"),
        ref_ns,
        tiled_ns,
    });
}

fn time_fused_gate(rows: &mut Vec<Row>, reps: usize, elems: usize, width: usize) {
    // The DCRNN gate tail: `z + bias` then σ, fused into one pass by the
    // tiled backend vs the reference's two materializing passes.
    let mut rng = rng_from_seed(9);
    let z = uniform([elems / width, width], -2.0, 2.0, &mut rng).to_vec();
    let bias = uniform([width], -0.5, 0.5, &mut rng).to_vec();
    let reference: &dyn Kernels = kernels_for(BackendKind::Reference);
    let tiled: &dyn Kernels = kernels_for(BackendKind::Tiled);
    let mut yr = vec![0.0f32; z.len()];
    let mut yt = vec![0.0f32; z.len()];
    let ref_ns = best_ns(reps, || {
        reference.bias_act(&z, &bias, &mut yr, Activation::Sigmoid)
    });
    let tiled_ns = best_ns(reps, || {
        tiled.bias_act(&z, &bias, &mut yt, Activation::Sigmoid)
    });
    assert_bits_equal(&yr, &yt, "bias_act");
    rows.push(Row {
        kernel: "fused_gate",
        size: format!("{}x{width}", elems / width),
        ref_ns,
        tiled_ns,
    });
}

/// One end-to-end distributed run of the `ablation_overlap` workload under
/// `backend`, returning (wall seconds, per-epoch loss bits).
fn e2e_run(backend: BackendKind, epochs: usize, hidden: usize) -> (DistRunResult, Vec<u32>) {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let mut cfg = DistConfig::new(2, epochs, spec.horizon);
    cfg.batch_per_worker = 8;
    cfg.backend = backend;
    let r = run_distributed_index(&sig, &cfg, |ds| {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let mc = ModelConfig {
            input_dim: ds.num_features(),
            output_dim: 1,
            hidden,
            num_nodes: ds.num_nodes(),
            horizon: ds.horizon(),
            diffusion_steps: 2,
            layers: 1,
        };
        Box::new(PgtDcrnn::new(mc, &supports, st_bench::SEED)) as Box<dyn Seq2Seq>
    });
    let bits = r.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
    (r, bits)
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 3 } else { 7 };
    // Wide enough that every gate GEMM clears the tiled backend's
    // small-product fallback; the shapes stay the ablation's otherwise.
    let hidden = 32;
    let e2e_epochs = 1;
    let e2e_tries = if smoke { 2 } else { 3 };

    let mut rows: Vec<Row> = Vec::new();
    for n in [64usize, 128, 256] {
        time_matmul(&mut rows, reps, n);
    }
    time_bmm(&mut rows, reps, 8, 325, 160, hidden);
    time_fused_gate(&mut rows, reps, 8 * 325 * hidden, hidden);

    // End-to-end: same workload, both backends, best-of-N wall time.
    // Losses must agree bit-for-bit — the backends differ only in speed.
    let mut ref_wall = f64::INFINITY;
    let mut tiled_wall = f64::INFINITY;
    let mut ref_bits: Option<Vec<u32>> = None;
    for _ in 0..e2e_tries {
        let (r, bits) = e2e_run(BackendKind::Reference, e2e_epochs, hidden);
        match &ref_bits {
            None => ref_bits = Some(bits),
            Some(prev) => assert_eq!(prev, &bits, "reference e2e must be deterministic"),
        }
        ref_wall = ref_wall.min(r.wall_secs);
        let (t, tbits) = e2e_run(BackendKind::Tiled, e2e_epochs, hidden);
        assert_eq!(
            ref_bits.as_ref().unwrap(),
            &tbits,
            "tiled e2e losses must be bit-identical to reference"
        );
        tiled_wall = tiled_wall.min(t.wall_secs);
    }
    let e2e_speedup = ref_wall / tiled_wall;

    let mut table = Table::new(
        "Kernel backends: tiled (default) vs reference, bitwise-identical outputs",
        &["kernel", "size", "ref µs", "tiled µs", "speedup"],
    );
    for r in &rows {
        table.row(&[
            r.kernel.to_string(),
            r.size.clone(),
            format!("{:.1}", r.ref_ns / 1e3),
            format!("{:.1}", r.tiled_ns / 1e3),
            format!("{:.2}×", r.speedup()),
        ]);
    }
    table.row(&[
        "e2e_dist_step".into(),
        format!("pems-bay@{}, h{hidden}, w2", st_bench::DIST_SCALE),
        format!("{:.1}", ref_wall * 1e9 / 1e3),
        format!("{:.1}", tiled_wall * 1e9 / 1e3),
        format!("{e2e_speedup:.2}×"),
    ]);
    println!("{}", table.to_text());

    // JSON artifact for the perf trajectory.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kernel\": \"{}\", \"size\": \"{}\", \"ref_ns\": {:.1}, \
                 \"tiled_ns\": {:.1}, \"speedup\": {:.4}}}",
                r.kernel,
                r.size,
                r.ref_ns,
                r.tiled_ns,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"bench_kernels\",\n  \"smoke\": {},\n  \"rows\": [\n{}\n  ],\n  \
         \"e2e\": {{\"workload\": \"dist_index pems-bay@{} h{hidden} w2\", \
         \"ref_wall_s\": {:.6}, \"tiled_wall_s\": {:.6}, \"speedup\": {:.4}}}\n}}\n",
        smoke,
        json_rows.join(",\n"),
        st_bench::DIST_SCALE,
        ref_wall,
        tiled_wall,
        e2e_speedup
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());

    // The pinned regression gates.
    let m256 = rows
        .iter()
        .find(|r| r.kernel == "matmul" && r.size == "256x256x256")
        .expect("256 matmul row");
    assert!(
        m256.speedup() >= 1.5,
        "tiled matmul@256 must be >= 1.5x reference, got {:.2}x",
        m256.speedup()
    );
    assert!(
        tiled_wall < ref_wall,
        "tiled backend must win end-to-end: tiled {tiled_wall:.3}s vs reference {ref_wall:.3}s"
    );
    println!(
        "Reading: the tiled backend packs B-panels once per (shared-rhs batched) \
         GEMM and walks 4x8 register tiles with the k-loop in reference order, so \
         every output bit matches the naive kernel while the cache behavior does \
         not. Fused gate tails collapse the reference's materializing passes into \
         one. Gates: matmul@256 >= 1.5x, e2e wall win with bit-identical losses."
    );
}
