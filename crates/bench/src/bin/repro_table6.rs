//! Reproduce **Table 6**: single-GPU A3T-GCN on METR-LA, base vs
//! index-batching — runtime, CPU memory, test MSE (§5.5 "broader
//! applicability"). Measured at scaled size; the memory column is the
//! paper-scale analytic footprint (the paper reports a 49.20% reduction).

use pgt_index::trainer::{BatchSource, MaterializedDataset, Trainer, TrainerConfig};
use pgt_index::IndexDataset;
use st_autograd::loss::mse_metric;
use st_autograd::Tape;
use st_bench::{emit_records, measure_epochs, measure_scale};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::preprocess::{materialized_bytes, materialized_xy};
use st_data::splits::SplitRatios;
use st_data::synthetic;
use st_graph::sym_norm_adjacency;
use st_models::{A3tGcn, ModelConfig, Seq2Seq, Support};
use st_report::record::RecordSet;
use st_report::table::{fmt_bytes, Table};

struct Outcome {
    runtime: f64,
    test_mse: f32,
}

fn run(source: &dyn BatchSource, model: &A3tGcn, epochs: usize, batch: usize) -> Outcome {
    let trainer = Trainer::new(TrainerConfig {
        epochs,
        batch_size: batch,
        lr: 0.01,
        seed: st_bench::SEED,
        validate: false,
        grad_clip: Some(5.0),
    });
    let h = trainer.train(model, source);
    // Test MSE in standardized units (as A3T-GCN's example reports).
    let ids: Vec<usize> = source.splits().test.clone().collect();
    let mut mse_sum = 0.0f64;
    let mut n = 0usize;
    for chunk in ids.chunks(batch) {
        let (x, y) = source.get_batch(chunk);
        let target = y.narrow(3, 0, 1).unwrap().contiguous();
        let tape = Tape::new();
        let pred = model.forward(&tape, &x);
        mse_sum += mse_metric(pred.value(), &target) as f64 * target.numel() as f64;
        n += target.numel();
    }
    Outcome {
        runtime: h.wall_secs,
        test_mse: (mse_sum / n.max(1) as f64) as f32,
    }
}

fn main() {
    let spec = DatasetSpec::get(DatasetKind::MetrLa).scaled(measure_scale());
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let a_hat = Support::new(sym_norm_adjacency(&sig.adjacency));
    let mk_model = || {
        A3tGcn::new(
            ModelConfig {
                input_dim: 2,
                output_dim: 1,
                hidden: 16,
                num_nodes: spec.nodes,
                horizon: spec.horizon,
                diffusion_steps: 1,
                layers: 1,
            },
            a_hat.clone(),
            st_bench::SEED,
        )
    };
    let epochs = measure_epochs().min(8);
    let batch = 16;

    let aug = sig.with_time_feature(spec.period);
    let base_src =
        MaterializedDataset::new(materialized_xy(&aug, spec.horizon, SplitRatios::default()));
    let base = run(&base_src, &mk_model(), epochs, batch);
    let index_src = IndexDataset::from_signal(
        &sig,
        spec.horizon,
        SplitRatios::default(),
        Some(spec.period),
    );
    let index = run(&index_src, &mk_model(), epochs, batch);

    // Paper-scale memory: full METR-LA footprints.
    let full = DatasetSpec::get(DatasetKind::MetrLa);
    let base_mem = full.raw_bytes(8)
        + materialized_bytes(full.entries, full.horizon, full.nodes, full.aug_features, 8);
    let index_mem = pgt_index::index_batching_bytes(
        full.entries,
        full.horizon,
        full.nodes,
        full.aug_features,
        8,
    );

    let mut table = Table::new(
        "Table 6 — A3T-GCN on METR-LA (measured at scale; memory at paper scale)",
        &["Implementation", "Runtime (s)", "CPU memory", "Test MSE"],
    );
    table.row(&[
        "Baseline".into(),
        format!("{:.2}", base.runtime),
        fmt_bytes(base_mem),
        format!("{:.4}", base.test_mse),
    ]);
    table.row(&[
        "Index-batching".into(),
        format!("{:.2}", index.runtime),
        fmt_bytes(index_mem),
        format!("{:.4}", index.test_mse),
    ]);
    println!("{}", table.to_text());

    let mut records = RecordSet::new();
    let dmse = (base.test_mse - index.test_mse).abs() / base.test_mse.max(1e-6);
    records.push(
        "Table 6",
        "A3T-GCN test MSE parity",
        "0.5436 vs 0.5427 (0.2% apart)",
        format!(
            "{:.4} vs {:.4} ({:.1}% apart)",
            base.test_mse,
            index.test_mse,
            dmse * 100.0
        ),
        dmse < 0.15,
        "measured at scaled size",
    );
    let dt = (index.runtime - base.runtime).abs() / base.runtime;
    records.push(
        "Table 6",
        "A3T-GCN runtime parity",
        "1041.95 vs 1050.80 s (0.8% apart)",
        format!("{:.1}% apart", dt * 100.0),
        dt < 0.2,
        "",
    );
    let red = 1.0 - index_mem as f64 / base_mem as f64;
    records.push(
        "Table 6",
        "A3T-GCN memory reduction",
        "49.20%",
        format!("{:.1}%", red * 100.0),
        red > 0.4,
        "analytic footprint at full METR-LA shape",
    );
    emit_records("Table 6 — A3T-GCN broader applicability", &records);
}
