//! Reproduce **Figure 10**: ST-LLM under distributed-index-batching on
//! PeMS-BAY, scaling 1–32 GPUs vs linear. Measured at scaled size with the
//! ST-LLM-style transformer; per-GPU-count simulated runtimes use the same
//! weak-batch-scaling protocol as the paper.

use pgt_index::dist_index::{run_distributed_index, DistConfig};
use st_bench::emit_records;
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_models::{ModelConfig, Seq2Seq, StLlm};
use st_report::record::RecordSet;
use st_report::series::{render_columns, Series};
use st_report::table::Table;

fn main() {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let worlds: Vec<usize> = if st_bench::smoke() {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    };
    let epochs = st_bench::DIST_EPOCHS;

    let mut table = Table::new(
        "Fig 10 — ST-LLM distributed-index-batching scaling (measured, scaled PeMS-BAY)",
        &[
            "GPUs",
            "Sim total (s)",
            "Sim compute (s)",
            "Speedup",
            "Linear",
            "Best val MAE",
        ],
    );
    let mut totals = Vec::new();
    for &w in &worlds {
        let mut cfg = DistConfig::new(w, epochs, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.time_period = Some(spec.period);
        cfg.lr = 2e-3;
        let r = run_distributed_index(&sig, &cfg, |ds| {
            Box::new(StLlm::new(
                ModelConfig {
                    input_dim: ds.num_features(),
                    output_dim: 1,
                    hidden: 32,
                    num_nodes: ds.num_nodes(),
                    horizon: ds.horizon(),
                    diffusion_steps: 1,
                    layers: 2,
                },
                st_bench::SEED,
            )) as Box<dyn Seq2Seq>
        });
        totals.push((w, r.sim_total_secs, r.sim_compute_secs, r.best_val_mae()));
    }
    let base = totals[0].1;
    for &(w, total, compute, mae) in &totals {
        table.row(&[
            w.to_string(),
            format!("{total:.2}"),
            format!("{compute:.2}"),
            format!("{:.2}x", base / total),
            format!("{w}.00x"),
            format!("{mae:.4}"),
        ]);
    }
    println!("{}", table.to_text());
    let series = Series::new(
        "ST-LLM",
        totals.iter().map(|&(w, t, _, _)| (w as f64, t)).collect(),
    );
    let linear = Series::new(
        "Linear",
        totals
            .iter()
            .map(|&(w, _, _, _)| (w as f64, base / w as f64))
            .collect(),
    );
    println!(
        "{}",
        render_columns(
            "Fig 10 — simulated runtime vs GPUs",
            "GPUs",
            &[series, linear]
        )
    );

    let max_w = totals.last().unwrap();
    let speedup = base / max_w.1;
    let efficiency = speedup / max_w.0 as f64;
    println!(
        "measured speedup at {} GPUs: {speedup:.2}x ({:.0}% efficiency) — at this tiny scale the\n\
         transformer's gradient all-reduce dwarfs its compute; the paper-scale projection below\n\
         uses the full PeMS-BAY shapes, where compute dominates.",
        max_w.0,
        efficiency * 100.0
    );

    // --- paper-scale projection (dual-scale methodology, as for Fig 7) ---
    // ST-LLM per-batch step time calibrated once to the paper's single-GPU
    // anchor (Fig 10 shows ≈330 min at 1 GPU for 30 epochs of PeMS-BAY at
    // batch 64); held fixed across worker counts.
    let params = pgt_index::ProjectionParams::default();
    let full = DatasetSpec::get(DatasetKind::PemsBay);
    let snaps = full.num_snapshots();
    let train = (snaps as f64 * 0.7) as usize;
    let t_batch = 1.158f64; // calibrated: 330 min / 30 epochs / (train/64) batches
    let grad_bytes = 25_000_000u64 * 4; // trainable subset of the GPT-2-class backbone
    let epochs_p = 30.0;
    let proj_worlds = [1usize, 4, 8, 16, 32];
    let mut proj = Table::new(
        "Fig 10 — paper-scale projection (PeMS-BAY, 30 epochs, batch 64/GPU)",
        &[
            "GPUs",
            "Projected total (min)",
            "Speedup",
            "Linear",
            "Efficiency",
        ],
    );
    let mut proj_minutes = Vec::new();
    for &w in &proj_worlds {
        let tb = train / (64 * w);
        let ar = params.links.allreduce(grad_bytes, w, 4);
        let overhead = 0.1 + 0.22 * (w as f64).log2();
        let epoch = tb as f64 * (t_batch + ar) + overhead;
        let total_min = (epochs_p * epoch + 1.35) / 60.0; // +max preprocess (paper §5.5)
        proj_minutes.push((w, total_min));
    }
    let proj_base = proj_minutes[0].1;
    for &(w, m) in &proj_minutes {
        let s = proj_base / m;
        proj.row(&[
            w.to_string(),
            format!("{m:.1}"),
            format!("{s:.2}x"),
            format!("{w}.00x"),
            format!("{:.0}%", s / w as f64 * 100.0),
        ]);
    }
    println!("{}", proj.to_text());
    let s4 = proj_base / proj_minutes[1].1;
    let s32 = proj_base / proj_minutes.last().unwrap().1;

    let mut records = RecordSet::new();
    records.push(
        "Fig 10",
        "ST-LLM near-linear scaling (paper-scale projection)",
        "3.92x @4 GPUs, 30.01x @32 (≈94% efficiency)",
        format!(
            "{s4:.2}x @4 GPUs, {s32:.2}x @32 ({:.0}% efficiency)",
            s32 / 32.0 * 100.0
        ),
        s32 / 32.0 > 0.8,
        "single-GPU anchor calibrated once; multi-GPU points are predictions",
    );
    records.push(
        "Fig 10",
        "measured mini-run scaling (2-core host)",
        "near-linear on Polaris",
        format!(
            "{speedup:.2}x @{} workers ({:.0}% efficiency)",
            max_w.0,
            efficiency * 100.0
        ),
        max_w.3.is_finite(),
        "at 0.012x scale the transformer's all-reduce dwarfs compute; \
         expected artifact of the scaled run, see projection",
    );
    records.push(
        "Fig 10",
        "index-batching applies beyond ST-GNNs",
        "ST-LLM trains under distributed-index-batching",
        format!("val MAE {:.3} after {epochs} epochs", max_w.3),
        max_w.3.is_finite(),
        "sequence-to-sequence contract is model-agnostic",
    );
    emit_records("Fig 10 — ST-LLM scaling", &records);
}
