//! Ablation: partition quality under the halo cost model (paper §7).
//!
//! The generalized and partitioned modes pay `2·horizon − 1` halo reads
//! per **cut neighbor** (a node some part must replicate), so partition
//! quality directly bounds distributed scaling. This sweep runs every
//! partitioner over the three structural archetypes the synthetic
//! generators cover — freeway corridors, urban grids, scale-free
//! hub-and-spoke — at k ∈ {2, 4, 8}, scoring each split by
//! [`st_graph::HaloCostModel`] (modeled halo bytes), edge-cut fraction,
//! and balance.
//!
//! Asserts the tentpole claim: the multilevel partitioner's modeled halo
//! bytes never lose to greedy BFS on any swept config, and win strictly at
//! k ≥ 4 on the corridor and grid topologies. Results land in
//! `target/BENCH_partition.json` so CI accumulates a quality trajectory
//! alongside `BENCH_overlap.json`.
//!
//! `--smoke` (or `PGT_SMOKE=1`) shrinks the graphs for CI.

use st_graph::generators::{city_grid, highway_corridor, scale_free, SensorNetwork};
use st_graph::{HaloCostModel, PartitionerKind, Partitioning};
use st_report::table::{fmt_bytes, Table};

/// One swept configuration's outcome.
struct Row {
    topology: &'static str,
    strategy: &'static str,
    k: usize,
    halo_bytes: u64,
    cut_fraction: f64,
    imbalance: f64,
    elapsed_us: u128,
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let horizon = 12;
    let features = 2; // speed + time-of-day, the standard training layout
    let cost = HaloCostModel::new(horizon, features);

    let nets: Vec<(&'static str, SensorNetwork)> = if smoke {
        vec![
            ("corridor", highway_corridor(48, 2, st_bench::SEED)),
            ("grid", city_grid(6, 8, st_bench::SEED)),
            ("scale-free", scale_free(48, 2, st_bench::SEED)),
        ]
    } else {
        vec![
            ("corridor", highway_corridor(96, 2, st_bench::SEED)),
            ("grid", city_grid(10, 10, st_bench::SEED)),
            ("scale-free", scale_free(96, 2, st_bench::SEED)),
        ]
    };
    let strategies: &[(&'static str, PartitionerKind)] = &[
        ("contiguous", PartitionerKind::Contiguous),
        ("coordinate-bisection", PartitionerKind::CoordinateBisection),
        ("greedy-bfs", PartitionerKind::GreedyBfs),
        ("multilevel", PartitionerKind::Multilevel),
    ];
    let ks: &[usize] = &[2, 4, 8];

    let mut rows: Vec<Row> = Vec::new();
    for (topology, net) in &nets {
        for &(strategy, kind) in strategies {
            for &k in ks {
                let start = std::time::Instant::now();
                let p: Partitioning = kind.partition(&net.adjacency, Some(&net.coords), k, horizon);
                let elapsed_us = start.elapsed().as_micros();
                rows.push(Row {
                    topology,
                    strategy,
                    k,
                    halo_bytes: cost.halo_bytes(&net.adjacency, &p),
                    cut_fraction: p.cut_fraction(&net.adjacency),
                    imbalance: p.imbalance(),
                    elapsed_us,
                });
            }
        }
    }

    let mut table = Table::new(
        "Ablation §7: partition quality by modeled halo bytes (h=12, f32×2 rows)",
        &[
            "topology",
            "strategy",
            "k",
            "halo bytes",
            "cut %",
            "imbalance",
            "partition µs",
        ],
    );
    for r in &rows {
        table.row(&[
            r.topology.to_string(),
            r.strategy.to_string(),
            r.k.to_string(),
            fmt_bytes(r.halo_bytes),
            format!("{:.1}", r.cut_fraction * 100.0),
            format!("{:.2}", r.imbalance),
            r.elapsed_us.to_string(),
        ]);
    }
    println!("{}", table.to_text());

    // JSON artifact for the quality trajectory.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"topology\": \"{}\", \"strategy\": \"{}\", \"k\": {}, \
                 \"halo_bytes\": {}, \"cut_fraction\": {:.6}, \
                 \"imbalance\": {:.4}, \"partition_us\": {}}}",
                r.topology,
                r.strategy,
                r.k,
                r.halo_bytes,
                r.cut_fraction,
                r.imbalance,
                r.elapsed_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_partition\",\n  \"smoke\": {},\n  \
         \"horizon\": {},\n  \"row_bytes\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        smoke,
        horizon,
        cost.row_bytes,
        json_rows.join(",\n")
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_partition.json");
    std::fs::write(&path, &json).expect("write BENCH_partition.json");
    println!("wrote {}", path.display());

    // The acceptance claims.
    let halo = |topology: &str, strategy: &str, k: usize| -> u64 {
        rows.iter()
            .find(|r| r.topology == topology && r.strategy == strategy && r.k == k)
            .unwrap()
            .halo_bytes
    };
    for (topology, _) in &nets {
        for &k in ks {
            let ml = halo(topology, "multilevel", k);
            let greedy = halo(topology, "greedy-bfs", k);
            assert!(
                ml <= greedy,
                "{topology} k={k}: multilevel ({ml} B) must never lose to greedy-bfs ({greedy} B)"
            );
            if k >= 4 && (*topology == "corridor" || *topology == "grid") {
                assert!(
                    ml < greedy,
                    "{topology} k={k}: multilevel ({ml} B) must strictly beat greedy-bfs ({greedy} B)"
                );
            }
        }
    }
    println!(
        "Reading: quality is judged in modeled halo bytes — cut neighbors × \
         (2·horizon − 1) reads × row bytes — because that is the traffic the \
         partitioned trainer and the batched server actually pay per boundary \
         node. Multilevel coarsens by heavy-edge matching and refines \
         boundaries by gain, so it hugs natural corridor/grid seams that \
         greedy region growing crosses."
    );
}
