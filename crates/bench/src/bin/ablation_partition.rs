//! Ablation: index-batching **with** graph partitioning (paper §7).
//!
//! The conclusion proposes integrating index-batching with graph
//! partitioning, "potentially yielding further speedups at a potential cost
//! to accuracy". This ablation quantifies that triangle on a corridor
//! traffic network: validation MAE (accuracy cost), parallel critical-path
//! FLOPs and per-worker memory (the speedup/memory gain), edge-cut and
//! replication (the structural price), for k = 1 (whole graph), 2, 4
//! partitions under each partitioning strategy.

use pgt_index::partitioned::{run_partitioned, PartitionStrategy, PartitionedConfig};
use st_data::synthetic;
use st_report::table::{fmt_bytes, Table};

fn main() {
    let nodes = if st_bench::smoke() { 16 } else { 32 };
    let entries = if st_bench::smoke() { 160 } else { 400 };
    let net = st_graph::generators::highway_corridor(nodes, 1, st_bench::SEED);
    let sig = synthetic::traffic::generate(&net, entries, 288, st_bench::SEED);
    let horizon = 4;

    let mut table = Table::new(
        "Ablation §7: index-batching × graph partitioning (corridor traffic)",
        &[
            "strategy",
            "k",
            "val MAE",
            "cut %",
            "replication",
            "critical-path FLOPs %",
            "max worker mem",
        ],
    );

    for (name, strategy) in [
        ("whole-graph", PartitionStrategy::Contiguous),
        ("contiguous", PartitionStrategy::Contiguous),
        (
            "coordinate-bisection",
            PartitionStrategy::CoordinateBisection(net.coords.clone()),
        ),
        ("greedy-bfs", PartitionStrategy::GreedyBfs),
    ] {
        let ks: &[usize] = if name == "whole-graph" { &[1] } else { &[2, 4] };
        for &k in ks {
            let mut cfg = PartitionedConfig::new(k, horizon);
            cfg.strategy = strategy.clone();
            cfg.epochs = if st_bench::smoke() { 2 } else { 6 };
            cfg.batch_size = 8;
            cfg.halo_depth = 2;
            let r = run_partitioned(&sig, &cfg);
            table.row(&[
                name.to_string(),
                k.to_string(),
                format!("{:.4}", r.combined_val_mae),
                format!("{:.1}", r.cut_fraction * 100.0),
                format!("{:.2}x", r.replication_factor),
                format!("{:.0}%", r.parallel_flops_fraction * 100.0),
                fmt_bytes(r.max_resident_bytes),
            ]);
        }
    }
    println!("{}", table.to_text());
    println!(
        "Reading: k>1 shrinks the parallel critical path and per-worker memory \
         (the speedup) while cutting spatial edges (the accuracy risk the paper \
         cites from Mallick et al. [37]); replication >1x is the halo cost."
    );
}
