//! Ablation: incremental dirty-boundary re-partitioning vs full re-solve
//! on streamed-mutation dynamic graphs (paper §7, ROADMAP open item 3).
//!
//! The dynamic-graph plane re-partitions at every topology mutation. At
//! city scale (10⁵–10⁶ nodes) a full multilevel-style solve per mutation
//! is the wall; DGC-style *repair* — restrict refinement to the mutated
//! endpoints plus their d-hop halo, fall back to a full rebuild only on
//! quality drift — keeps partition maintenance off the critical path.
//!
//! This bench streams seeded edge-churn + node-arrival workloads over the
//! sparse `city_grid` and `scale_free` generators and, per mutation, times
//! [`IncrementalPartitioner::apply_delta`] against a from-scratch
//! [`IncrementalPartitioner::partition_fresh`] of the same evolved graph,
//! comparing modeled halo bytes of both splits.
//!
//! Asserts the tentpole claims: mean repair time ≥5× faster than the full
//! re-solve, and repaired halo bytes within the drift bound (default ≤10%
//! above from-scratch) on every mutation. Results land in
//! `target/BENCH_dynamic.json`.
//!
//! `--smoke` (or `PGT_SMOKE=1`) shrinks the graphs for CI.

use st_graph::generators::{city_grid_sparse, mutation_stream, scale_free_sparse, MutationConfig};
use st_graph::partition::incremental::{IncrementalConfig, IncrementalPartitioner};
use st_report::table::{fmt_bytes, Table};

/// One mutation's repair-vs-resolve outcome.
struct Row {
    topology: &'static str,
    entry: usize,
    nodes: usize,
    dirty: usize,
    moves: usize,
    rebuilt: bool,
    inc_us: f64,
    full_us: f64,
    inc_halo: u64,
    full_halo: u64,
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let horizon = 12;
    let features = 2; // speed + time-of-day, the standard training layout
    let k = 8;
    let drift = 0.10;
    // Depth-1 dirty halo: around a scale-free hub a 2-hop halo reaches
    // most of the graph (repair degenerates to a full pass), while one hop
    // already covers every node whose contact set a mutation can change.
    let cfg = IncrementalConfig {
        drift,
        halo_depth: 1,
        ..IncrementalConfig::for_horizon(horizon, features)
    };

    // ≥10⁵ nodes in full mode; the smoke graphs keep CI under a second of
    // partitioning while still exercising both topologies end to end.
    let workloads: Vec<(&'static str, st_graph::generators::SparseNetwork, usize)> = if smoke {
        vec![
            ("city-grid", city_grid_sparse(48, 48, st_bench::SEED), 6),
            ("scale-free", scale_free_sparse(3_000, 2, st_bench::SEED), 6),
        ]
    } else {
        vec![
            ("city-grid", city_grid_sparse(320, 320, st_bench::SEED), 12),
            (
                "scale-free",
                scale_free_sparse(120_000, 2, st_bench::SEED),
                12,
            ),
        ]
    };
    // Churn scales with graph size so the smoke graphs see the same
    // mutation-to-size ratio as the 10⁵-node full run.
    let churn = MutationConfig {
        edge_churn: if smoke { 8 } else { 64 },
        node_arrivals: if smoke { 1 } else { 4 },
        attach_edges: 2,
    };

    let mut rows: Vec<Row> = Vec::new();
    for (topology, net, mutations) in &workloads {
        let deltas = mutation_stream(net, mutations + 1, churn, st_bench::SEED ^ 0xD9);
        let mut inc = IncrementalPartitioner::partition_fresh(net.graph.clone(), k, cfg);
        for (i, delta) in deltas.iter().enumerate() {
            let start = std::time::Instant::now();
            let stats = inc.apply_delta(delta);
            let inc_us = start.elapsed().as_nanos() as f64 / 1e3;

            // From-scratch baseline over the *same* evolved graph (the
            // clone stays outside the timer).
            let evolved = inc.graph().clone();
            let start = std::time::Instant::now();
            let fresh = IncrementalPartitioner::partition_fresh(evolved, k, cfg);
            let full_us = start.elapsed().as_nanos() as f64 / 1e3;

            rows.push(Row {
                topology,
                entry: i + 1,
                nodes: inc.graph().num_nodes(),
                dirty: stats.dirty_nodes,
                moves: stats.moves,
                rebuilt: stats.rebuilt,
                inc_us,
                full_us,
                inc_halo: stats.halo_bytes,
                full_halo: fresh.halo_bytes(),
            });
        }
    }

    let mut table = Table::new(
        "Ablation §7: incremental repair vs full re-partition per mutation (h=12, k=8)",
        &[
            "topology",
            "entry",
            "nodes",
            "dirty",
            "moves",
            "rebuilt",
            "repair µs",
            "full µs",
            "speedup",
            "halo (inc)",
            "halo (full)",
        ],
    );
    for r in &rows {
        table.row(&[
            r.topology.to_string(),
            r.entry.to_string(),
            r.nodes.to_string(),
            r.dirty.to_string(),
            r.moves.to_string(),
            r.rebuilt.to_string(),
            format!("{:.0}", r.inc_us),
            format!("{:.0}", r.full_us),
            format!("{:.1}", r.full_us / r.inc_us.max(0.001)),
            fmt_bytes(r.inc_halo),
            fmt_bytes(r.full_halo),
        ]);
    }
    println!("{}", table.to_text());

    // JSON artifact for the repair-quality trajectory.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"topology\": \"{}\", \"entry\": {}, \"nodes\": {}, \
                 \"dirty\": {}, \"moves\": {}, \"rebuilt\": {}, \
                 \"repair_us\": {:.1}, \"full_us\": {:.1}, \
                 \"halo_inc\": {}, \"halo_full\": {}}}",
                r.topology,
                r.entry,
                r.nodes,
                r.dirty,
                r.moves,
                r.rebuilt,
                r.inc_us,
                r.full_us,
                r.inc_halo,
                r.full_halo
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_dynamic\",\n  \"smoke\": {},\n  \
         \"horizon\": {},\n  \"parts\": {},\n  \"drift\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        smoke,
        horizon,
        k,
        drift,
        json_rows.join(",\n")
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_dynamic.json");
    std::fs::write(&path, &json).expect("write BENCH_dynamic.json");
    println!("wrote {}", path.display());

    // The acceptance claims.
    for (topology, _, _) in &workloads {
        let per: Vec<&Row> = rows.iter().filter(|r| r.topology == *topology).collect();
        let mean_inc = per.iter().map(|r| r.inc_us).sum::<f64>() / per.len() as f64;
        let mean_full = per.iter().map(|r| r.full_us).sum::<f64>() / per.len() as f64;
        let speedup = mean_full / mean_inc.max(0.001);
        assert!(
            speedup >= 5.0,
            "{topology}: incremental repair must be ≥5× faster than full \
             re-partition (repair {mean_inc:.0} µs vs full {mean_full:.0} µs, {speedup:.1}×)"
        );
        for r in &per {
            let bound = ((1.0 + drift) * r.full_halo as f64).ceil() as u64;
            assert!(
                r.inc_halo <= bound,
                "{topology} entry {}: repaired halo {} exceeds (1 + drift) × \
                 from-scratch halo {} (bound {})",
                r.entry,
                r.inc_halo,
                r.full_halo,
                bound
            );
        }
        println!(
            "{topology}: mean repair {:.0} µs vs full {:.0} µs ({speedup:.1}× faster), \
             worst halo ratio {:.3}",
            mean_inc,
            mean_full,
            per.iter()
                .map(|r| r.inc_halo as f64 / r.full_halo as f64)
                .fold(0.0f64, f64::max)
        );
    }
    println!(
        "Reading: each mutation dirties only its endpoints plus a {}-hop \
         halo, so repair cost tracks the mutation footprint while the full \
         solve rescans every node; quality is held by the same HaloCostModel \
         the refinement prices, with a drift-bounded fallback to a full \
         rebuild guarding against slow degradation.",
        cfg.halo_depth
    );
}
