//! Ablation: the pipelined step engine's overlap scheduler.
//!
//! Sweeps gradient-bucket size × world size on both **remote** data planes
//! (baseline DDP's per-batch data service, the generalized mode's
//! halo-partitioned entries) and compares the fully synchronous step path
//! (no prefetch, one flat charged all-reduce) against the pipelined one
//! (double-buffered fetches + backward-overlapped byte-capped gradient
//! buckets, all on the engine's `OverlapLedger`). Learning is bit-identical
//! across every row — the sweep moves modeled *time* only — so the table
//! isolates exactly the Figs. 8–9 lever: how much data-plane and collective
//! time hides behind compute.
//!
//! Asserts the headline claim: at world ≥ 4, the overlapped pipeline's
//! modeled epoch time is strictly below the synchronous baseline on every
//! remote plane. Results are also emitted as `target/BENCH_overlap.json`
//! so CI accumulates a perf trajectory.
//!
//! `--smoke` (or `PGT_SMOKE=1`) shrinks the workload for CI.

use pgt_index::baseline_ddp::run_baseline_ddp;
use pgt_index::gen_dist_index::run_generalized;
use pgt_index::{DistConfig, DistRunResult};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};
use st_report::table::Table;

struct Row {
    plane: &'static str,
    world: usize,
    mode: String,
    bucket_bytes: Option<usize>,
    comm_s: f64,
    hidden_s: f64,
    total_s: f64,
    speedup: f64,
}

fn hidden_secs(r: &DistRunResult) -> f64 {
    r.epochs.iter().map(|e| e.hidden_comm_secs).sum()
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let epochs = if smoke { 1 } else { 2 };
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let factory = |features: usize| {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let mc = ModelConfig {
            input_dim: features,
            output_dim: 1,
            hidden: 8,
            num_nodes: sig.num_nodes(),
            horizon: spec.horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        PgtDcrnn::new(mc, &supports, st_bench::SEED)
    };

    let caps: &[usize] = if smoke {
        &[4 << 10]
    } else {
        &[1 << 10, 4 << 10, 16 << 10]
    };
    let worlds: &[usize] = &[2, 4];

    let run = |plane: &'static str, cfg: &DistConfig| -> DistRunResult {
        match plane {
            "baseline_ddp" => {
                run_baseline_ddp(&sig, cfg, |_| Box::new(factory(1)) as Box<dyn Seq2Seq>)
            }
            "generalized" => run_generalized(&sig, cfg, |ds| {
                Box::new(factory(ds.num_features())) as Box<dyn Seq2Seq>
            }),
            _ => unreachable!(),
        }
    };

    let mut rows: Vec<Row> = Vec::new();
    for &plane in &["baseline_ddp", "generalized"] {
        for &world in worlds {
            let mut cfg = DistConfig::new(world, epochs, spec.horizon);
            cfg.batch_per_worker = 8;
            if plane == "generalized" {
                cfg.time_period = Some(spec.period);
            }

            // Fully synchronous baseline: no prefetch, flat charged reduce.
            cfg.prefetch = false;
            cfg.grad_bucket_bytes = None;
            let sync = run(plane, &cfg);
            rows.push(Row {
                plane,
                world,
                mode: "sync".into(),
                bucket_bytes: None,
                comm_s: sync.sim_comm_secs,
                hidden_s: hidden_secs(&sync),
                total_s: sync.sim_total_secs,
                speedup: 1.0,
            });

            // The pipelined step path across bucket caps.
            cfg.prefetch = true;
            for &cap in caps {
                cfg.grad_bucket_bytes = Some(cap);
                let r = run(plane, &cfg);
                for (a, b) in r.epochs.iter().zip(&sync.epochs) {
                    assert_eq!(
                        a.train_loss.to_bits(),
                        b.train_loss.to_bits(),
                        "{plane} w{world}: overlap must not change learning"
                    );
                }
                rows.push(Row {
                    plane,
                    world,
                    mode: format!("overlap/{}KiB", cap >> 10),
                    bucket_bytes: Some(cap),
                    comm_s: r.sim_comm_secs,
                    hidden_s: hidden_secs(&r),
                    total_s: r.sim_total_secs,
                    speedup: sync.sim_total_secs / r.sim_total_secs,
                });
            }
        }
    }

    let mut table = Table::new(
        "Ablation: pipelined step engine (bucketed grad overlap + prefetch) vs synchronous",
        &[
            "plane", "world", "mode", "comm s", "hidden s", "total s", "speedup",
        ],
    );
    for r in &rows {
        table.row(&[
            r.plane.to_string(),
            r.world.to_string(),
            r.mode.clone(),
            format!("{:.6}", r.comm_s),
            format!("{:.6}", r.hidden_s),
            format!("{:.6}", r.total_s),
            format!("{:.3}×", r.speedup),
        ]);
    }
    println!("{}", table.to_text());

    // JSON artifact for the perf trajectory.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"plane\": \"{}\", \"world\": {}, \"mode\": \"{}\", \
                 \"bucket_bytes\": {}, \"comm_s\": {:.9}, \"hidden_s\": {:.9}, \
                 \"total_s\": {:.9}, \"speedup_vs_sync\": {:.4}}}",
                r.plane,
                r.world,
                r.mode,
                r.bucket_bytes.map_or("null".to_string(), |b| b.to_string()),
                r.comm_s,
                r.hidden_s,
                r.total_s,
                r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_overlap\",\n  \"smoke\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        smoke,
        json_rows.join(",\n")
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_overlap.json");
    std::fs::write(&path, &json).expect("write BENCH_overlap.json");
    println!("wrote {}", path.display());

    // The acceptance claim: strict modeled win at world ≥ 4 on every
    // remote plane (and the overlap rows never lose anywhere).
    for &plane in &["baseline_ddp", "generalized"] {
        for &world in worlds {
            let sync_total = rows
                .iter()
                .find(|r| r.plane == plane && r.world == world && r.mode == "sync")
                .unwrap()
                .total_s;
            let best = rows
                .iter()
                .filter(|r| r.plane == plane && r.world == world && r.mode != "sync")
                .map(|r| r.total_s)
                .fold(f64::INFINITY, f64::min);
            assert!(
                best <= sync_total,
                "{plane} w{world}: overlap ({best}) must never lose to sync ({sync_total})"
            );
            if world >= 4 {
                assert!(
                    best < sync_total,
                    "{plane} w{world}: overlap ({best}) must strictly beat sync ({sync_total})"
                );
            }
        }
    }
    println!(
        "Reading: the overlap scheduler hides data-plane fetches AND per-bucket \
         gradient collectives behind modeled compute; smaller buckets fire \
         earlier in the backward pass and hide more, at the cost of extra \
         per-collective latency. Bytes and learning are identical in every row."
    );
}
