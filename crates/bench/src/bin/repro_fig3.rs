//! Reproduce **Figure 3**: the data-growth stages when preprocessing
//! PeMS-All-LA (raw → time-of-day augmentation → SWA snapshots → x/y sets),
//! plus the same breakdown for full PeMS and the index-batching footprint
//! that replaces stages 2–3.

use pgt_index::memory_model::{growth_stages, index_batching_bytes};
use st_bench::emit_records;
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_report::record::RecordSet;
use st_report::table::{fmt_bytes, Table};

fn main() {
    let mut records = RecordSet::new();
    for kind in [DatasetKind::PemsAllLa, DatasetKind::Pems] {
        let spec = DatasetSpec::get(kind);
        let g = growth_stages(&spec, 8);
        let mut table = Table::new(
            format!("Fig 3 — data growth for {} (float64)", spec.name),
            &["Stage", "Bytes", "Growth vs raw"],
        );
        let rows = [
            ("raw file", g.raw),
            ("stage 1: + time-of-day", g.stage1),
            ("stage 2: SWA snapshots (x)", g.stage2),
            ("stage 3: x + y train/val/test", g.stage3),
            (
                "index-batching instead (eq. 2)",
                index_batching_bytes(spec.entries, spec.horizon, spec.nodes, spec.aug_features, 8),
            ),
        ];
        for (name, bytes) in rows {
            table.row(&[
                name.to_string(),
                fmt_bytes(bytes),
                format!("{:.2}x", bytes as f64 / g.raw as f64),
            ]);
        }
        println!("{}", table.to_text());
        if kind == DatasetKind::PemsAllLa {
            let gib = g.stage3 as f64 / (1u64 << 30) as f64;
            records.push(
                "Fig 3",
                "PeMS-All-LA final size (stage 3)",
                "102.08 GB",
                format!("{gib:.2} GiB"),
                (gib - 102.08).abs() < 1.0,
                "stage-by-stage analytic byte counts",
            );
        }
    }
    emit_records("Fig 3 — data growth stages", &records);
}
