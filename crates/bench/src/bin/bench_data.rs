//! Out-of-core data-plane gate: chunked columnar storage + wire codecs.
//!
//! Exercises the PR's storage stack on the `ablation_overlap` workload
//! (PemsBay scaled to `DIST_SCALE`) and asserts the three claims that make
//! out-of-core streaming trustworthy, so CI fails when any regresses:
//!
//! - **Bounded residency** — streaming a full epoch of index-batched
//!   windows from a chunked store whose file is larger than its cache
//!   ceiling keeps peak decoded-chunk bytes ≤ the ceiling.
//! - **Bitwise losslessness** — a distributed run over chunked-lossless
//!   storage reproduces the in-memory run's per-epoch losses and val MAE
//!   bit for bit (the storage backend is a pure layout choice).
//! - **Wire compression** — baseline-DDP's data-plane ledger shrinks ≥2×
//!   under `WireCodec::F16` (exactly 2× by construction) and ≥2× under
//!   `WireCodec::DeltaI8`, with bounded val-MAE drift.
//!
//! Results land in `target/BENCH_data.json` next to the kernels / overlap /
//! partition / staleness artifacts. `--smoke` (or `PGT_SMOKE=1`) shrinks
//! epochs for CI.

use pgt_index::dist_index::run_distributed_index;
use pgt_index::{DistConfig, DistRunResult, IndexDataset};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::splits::SplitRatios;
use st_data::storage::{ChunkedSpec, StorageSpec};
use st_data::synthetic;
use st_dist::wire::WireCodec;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};
use st_report::table::Table;
use std::time::Instant;

fn make_model(
    sig: &st_data::signal::StaticGraphTemporalSignal,
    features: usize,
    horizon: usize,
) -> Box<dyn Seq2Seq> {
    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    let mc = ModelConfig {
        input_dim: features,
        output_dim: 1,
        hidden: 8,
        num_nodes: sig.num_nodes(),
        horizon,
        diffusion_steps: 2,
        layers: 1,
    };
    Box::new(PgtDcrnn::new(mc, &supports, st_bench::SEED))
}

fn run(
    sig: &st_data::signal::StaticGraphTemporalSignal,
    horizon: usize,
    epochs: usize,
    storage: StorageSpec,
) -> DistRunResult {
    let mut cfg = DistConfig::new(2, epochs, horizon);
    cfg.batch_per_worker = 8;
    cfg.storage = storage;
    run_distributed_index(sig, &cfg, |ds: &IndexDataset| {
        make_model(sig, ds.num_features(), horizon)
    })
}

fn run_ddp(
    sig: &st_data::signal::StaticGraphTemporalSignal,
    horizon: usize,
    epochs: usize,
    wire: WireCodec,
) -> DistRunResult {
    let mut cfg = DistConfig::new(2, epochs, horizon);
    cfg.batch_per_worker = 8;
    cfg.wire_codec = wire;
    pgt_index::baseline_ddp::run_baseline_ddp(sig, &cfg, |_| {
        make_model(sig, sig.num_features(), horizon)
    })
}

fn loss_bits(r: &DistRunResult) -> Vec<(u32, u32)> {
    r.epochs
        .iter()
        .map(|e| (e.train_loss.to_bits(), e.val_mae.to_bits()))
        .collect()
}

/// Stream one epoch of training batches straight off a dataset, returning
/// wall seconds (storage cost only — no model, so the IO delta is visible).
fn stream_epoch(ds: &IndexDataset, batch: usize) -> f64 {
    let ids: Vec<usize> = ds.splits().train.clone().collect();
    let t = Instant::now();
    let mut sink = 0.0f32;
    for chunk in ids.chunks(batch) {
        let (x, _, _) = ds.batch_quoted(chunk);
        sink += x.at(&[0, 0, 0, 0]);
    }
    std::hint::black_box(sink);
    t.elapsed().as_secs_f64()
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let epochs = if smoke { 1 } else { 2 };
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&spec, st_bench::SEED);

    // ── Claim 1: residency stays under the cache ceiling ───────────────
    // A ceiling of ~1/8 of the signal guarantees the dataset cannot fit:
    // the epoch must keep evicting, and peak resident must still respect
    // the bound.
    let signal_bytes = sig.size_bytes(4);
    let cache_bytes = (signal_bytes / 8).max(4096);
    let chunk_spec = ChunkedSpec::new(16).with_cache_bytes(cache_bytes);
    let in_mem_ds = IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None);
    let chunked_ds = in_mem_ds.rechunk(StorageSpec::Chunked(chunk_spec));
    let store = chunked_ds
        .storage()
        .chunked()
        .expect("rechunk produced a chunked store")
        .clone();
    assert!(
        store.file_bytes() > cache_bytes as u64,
        "dataset ({} B on disk) must exceed the cache ceiling ({cache_bytes} B) \
         for the residency claim to mean anything",
        store.file_bytes()
    );
    let mem_wall = stream_epoch(&in_mem_ds, 8);
    let chunked_wall = stream_epoch(&chunked_ds, 8);
    let peak = store.peak_resident_bytes();
    assert!(
        peak <= cache_bytes as u64,
        "peak resident {peak} B exceeded the configured cache ceiling {cache_bytes} B"
    );
    assert!(peak > 0, "the streamed epoch must have decoded something");

    // ── Claim 2: chunked-lossless is bit-identical on the engine ───────
    let r_mem = run(&sig, spec.horizon, epochs, StorageSpec::InMemory);
    let r_chunk = run(
        &sig,
        spec.horizon,
        epochs,
        StorageSpec::Chunked(ChunkedSpec::new(16).with_cache_bytes(cache_bytes)),
    );
    assert_eq!(
        loss_bits(&r_mem),
        loss_bits(&r_chunk),
        "chunked-lossless training must be bit-identical to in-memory"
    );

    // ── Claim 3: wire codecs shrink the data-plane ledger ≥2× ──────────
    let d_raw = run_ddp(&sig, spec.horizon, epochs, WireCodec::Lossless);
    let d_f16 = run_ddp(&sig, spec.horizon, epochs, WireCodec::F16);
    let d_i8 = run_ddp(&sig, spec.horizon, epochs, WireCodec::DeltaI8);
    let f16_ratio = d_raw.data_plane_bytes as f64 / d_f16.data_plane_bytes.max(1) as f64;
    let i8_ratio = d_raw.data_plane_bytes as f64 / d_i8.data_plane_bytes.max(1) as f64;
    assert!(
        f16_ratio >= 2.0,
        "F16 must at least halve data-plane bytes (got {f16_ratio:.2}×)"
    );
    assert!(
        i8_ratio >= 2.0,
        "DeltaI8 must at least halve data-plane bytes (got {i8_ratio:.2}×)"
    );
    let raw_mae = d_raw.best_val_mae();
    let f16_drift = (d_f16.best_val_mae() - raw_mae).abs() / raw_mae.abs().max(1e-6);
    let i8_drift = (d_i8.best_val_mae() - raw_mae).abs() / raw_mae.abs().max(1e-6);
    assert!(
        f16_drift < 0.05,
        "F16 val-MAE drift {f16_drift:.4} out of bounds"
    );
    assert!(
        i8_drift < 0.25,
        "DeltaI8 val-MAE drift {i8_drift:.4} out of bounds"
    );

    let mut table = Table::new(
        "Out-of-core storage & wire compression (pems-bay scaled)",
        &["metric", "value"],
    );
    table.row(&["signal bytes (f32)".into(), format!("{signal_bytes}")]);
    table.row(&["chunk file bytes".into(), format!("{}", store.file_bytes())]);
    table.row(&["cache ceiling B".into(), format!("{cache_bytes}")]);
    table.row(&["peak resident B".into(), format!("{peak}")]);
    table.row(&["stream epoch (mem)".into(), format!("{mem_wall:.4}s")]);
    table.row(&[
        "stream epoch (chunked)".into(),
        format!("{chunked_wall:.4}s"),
    ]);
    table.row(&["chunked == in-memory".into(), "bit-identical losses".into()]);
    table.row(&[
        "ddp bytes (lossless)".into(),
        format!("{}", d_raw.data_plane_bytes),
    ]);
    table.row(&[
        "ddp bytes (f16)".into(),
        format!("{} ({f16_ratio:.2}×)", d_f16.data_plane_bytes),
    ]);
    table.row(&[
        "ddp bytes (delta-i8)".into(),
        format!("{} ({i8_ratio:.2}×)", d_i8.data_plane_bytes),
    ]);
    table.row(&["val-MAE drift f16".into(), format!("{f16_drift:.4}")]);
    table.row(&["val-MAE drift delta-i8".into(), format!("{i8_drift:.4}")]);
    println!("{}", table.to_text());

    let json = format!(
        "{{\n  \"bench\": \"bench_data\",\n  \"smoke\": {smoke},\n  \
         \"residency\": {{\"signal_bytes\": {signal_bytes}, \"file_bytes\": {}, \
         \"cache_bytes\": {cache_bytes}, \"peak_resident_bytes\": {peak}, \
         \"stream_epoch_mem_s\": {mem_wall:.6}, \"stream_epoch_chunked_s\": {chunked_wall:.6}}},\n  \
         \"lossless\": {{\"bit_identical\": true, \"epochs\": {epochs}}},\n  \
         \"wire\": {{\"lossless_bytes\": {}, \"f16_bytes\": {}, \"f16_ratio\": {f16_ratio:.4}, \
         \"delta_i8_bytes\": {}, \"delta_i8_ratio\": {i8_ratio:.4}, \
         \"val_mae_lossless\": {raw_mae:.6}, \"f16_drift\": {f16_drift:.6}, \
         \"delta_i8_drift\": {i8_drift:.6}}}\n}}\n",
        store.file_bytes(),
        d_raw.data_plane_bytes,
        d_f16.data_plane_bytes,
        d_i8.data_plane_bytes,
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_data.json");
    std::fs::write(&path, &json).expect("write BENCH_data.json");
    println!("wrote {}", path.display());
}
