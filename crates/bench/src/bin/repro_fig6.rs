//! Reproduce **Figure 6**: single-GPU memory on full PeMS — standard PGT
//! (OOM), index-batching (~46 GB spike then eq.-2 steady state), and
//! GPU-index-batching (lower, flatter host curve). Virtual replays at the
//! paper's exact shapes against the 512 GB Polaris host.

use pgt_index::memory_model::{gpu_index_replay, index_replay};
use st_bench::{emit_records, gib};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::replay::{standard_replay, LoaderVariant};
use st_device::memory::{MemPool, PoolMode};
use st_device::profiler::MemTimeline;
use st_device::GIB;
use st_report::record::RecordSet;
use st_report::series::{render_columns, Series};

fn main() {
    let spec = DatasetSpec::get(DatasetKind::Pems);
    let mut records = RecordSet::new();
    let mut series = Vec::new();

    // --- Standard PGT pipeline: must OOM. ---
    let pool = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
    let mut tl = MemTimeline::new("PGT");
    let std_report = standard_replay(&spec, LoaderVariant::Pgt, &pool, &mut tl, 8);
    println!(
        "PGT (standard batching): {}",
        match &std_report.oom {
            Some(e) => format!("OOM — {e}"),
            None => "completed (unexpected!)".into(),
        }
    );
    series.push(Series::new("PGT", tl.rows_gib()));
    records.push(
        "Fig 6",
        "standard PGT on PeMS",
        "OOM before training",
        if std_report.oom.is_some() {
            "OOM during preprocessing"
        } else {
            "completed"
        },
        std_report.oom.is_some(),
        "",
    );

    // --- Index-batching. ---
    let pool = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
    let mut tl = MemTimeline::new("index");
    let idx = index_replay(&spec, &pool, &mut tl, 8);
    println!(
        "PGT-index-batching: peak {:.2} GiB, steady {:.2} GiB",
        gib(idx.peak_host),
        gib(idx.steady_host)
    );
    series.push(Series::new("PGT-index-batching", tl.rows_gib()));
    records.push(
        "Fig 6",
        "index-batching peak host memory",
        "≈46 GB spike during preprocessing",
        format!("{:.2} GiB", gib(idx.peak_host)),
        (gib(idx.peak_host) - 45.84).abs() < 3.0,
        "raw + augmented + standardize temporary",
    );

    // --- GPU-index-batching. ---
    let host = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
    let device = MemPool::new("gpu0", 40 * GIB, PoolMode::Virtual);
    let mut tl = MemTimeline::new("gpu-index");
    let gidx = gpu_index_replay(&spec, &host, &device, &mut tl, 8, GIB);
    println!(
        "PGT-GPU-index-batching: host peak {:.2} GiB, device peak {:.2} GiB",
        gib(gidx.peak_host),
        gib(gidx.peak_device)
    );
    series.push(Series::new("PGT-GPU-index-batching", tl.rows_gib()));
    records.push(
        "Fig 6",
        "GPU-index host memory reduction vs index",
        "60.30%",
        format!(
            "{:.1}%",
            100.0 * (1.0 - gidx.peak_host as f64 / idx.peak_host as f64)
        ),
        gidx.peak_host < idx.peak_host / 2,
        "chunked read never materializes the raw array on the host",
    );

    println!();
    println!(
        "{}",
        render_columns("Fig 6 — host GiB vs % progress", "progress%", &series)
    );
    emit_records("Fig 6 — PeMS single-GPU memory", &records);
}
