//! Ablation: bounded-staleness gradient sync under straggler skew.
//!
//! Sweeps the staleness bound `s` × world size × injected straggler skew on
//! the distributed-index plane. `s = 0` is the synchronous path — every
//! rank's clock rendezvouses at each collective, so a straggler ramp
//! stretches every step. `s ≥ 1` lets each rank apply a bucket's averaged
//! gradient up to `s` steps after it was issued: the collective is still
//! barrier-matched (contents identical across ranks), but fast ranks ride
//! ahead on the `OverlapLedger`'s deadline streams and only pay a hard
//! fence when a payload's age would exceed the bound.
//!
//! Asserts the headline claim: at world ≥ 4 under straggler skew, every
//! `s ≥ 1` row's modeled total time is strictly below the `s = 0` row, and
//! small-`s` convergence (best val MAE) stays within tolerance of the
//! synchronous run. Results are also emitted as
//! `target/BENCH_staleness.json` so CI accumulates a perf trajectory.
//!
//! `--smoke` (or `PGT_SMOKE=1`) shrinks the workload for CI.

use pgt_index::dist_index::run_distributed_index;
use pgt_index::workflow::pgt_dcrnn_factory;
use pgt_index::{DistConfig, DistRunResult};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_report::table::Table;

struct Row {
    world: usize,
    skew: f64,
    staleness: usize,
    total_s: f64,
    speedup: f64,
    best_val_mae: f32,
    stale_applied: u64,
    fence_stalls: u64,
}

fn counters(r: &DistRunResult) -> (u64, u64) {
    r.epochs.iter().fold((0, 0), |(sa, fs), e| {
        (sa + e.stale_steps_applied, fs + e.fence_stalls)
    })
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let epochs = if smoke { 2 } else { 3 };
    let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.3);
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, st_bench::SEED);

    let worlds: &[usize] = &[2, 4];
    let skews: &[f64] = if smoke { &[0.5] } else { &[0.3, 0.5] };
    let bounds: &[usize] = &[0, 1, 2];

    let mut rows: Vec<Row> = Vec::new();
    for &world in worlds {
        for &skew in skews {
            let mut sync_total = f64::NAN;
            for &s in bounds {
                let mut cfg = DistConfig::new(world, epochs, spec.horizon);
                cfg.batch_per_worker = 2;
                cfg.staleness = s;
                cfg.straggler_skew = skew;
                let r = run_distributed_index(&sig, &cfg, &factory);
                if s == 0 {
                    sync_total = r.sim_total_secs;
                }
                let (stale_applied, fence_stalls) = counters(&r);
                rows.push(Row {
                    world,
                    skew,
                    staleness: s,
                    total_s: r.sim_total_secs,
                    speedup: sync_total / r.sim_total_secs,
                    best_val_mae: r.best_val_mae(),
                    stale_applied,
                    fence_stalls,
                });
            }
        }
    }

    let mut table = Table::new(
        "Ablation: bounded-staleness gradient sync vs the synchronous rendezvous",
        &[
            "world",
            "skew",
            "s",
            "total s",
            "speedup",
            "best val MAE",
            "stale applied",
            "fence stalls",
        ],
    );
    for r in &rows {
        table.row(&[
            r.world.to_string(),
            format!("{:.1}", r.skew),
            r.staleness.to_string(),
            format!("{:.9}", r.total_s),
            format!("{:.3}×", r.speedup),
            format!("{:.4}", r.best_val_mae),
            r.stale_applied.to_string(),
            r.fence_stalls.to_string(),
        ]);
    }
    println!("{}", table.to_text());

    // JSON artifact for the perf trajectory.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"world\": {}, \"skew\": {:.2}, \"staleness\": {}, \
                 \"total_s\": {:.9}, \"speedup_vs_sync\": {:.4}, \
                 \"best_val_mae\": {:.6}, \"stale_steps_applied\": {}, \
                 \"fence_stalls\": {}}}",
                r.world,
                r.skew,
                r.staleness,
                r.total_s,
                r.speedup,
                r.best_val_mae,
                r.stale_applied,
                r.fence_stalls
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_staleness\",\n  \"smoke\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        smoke,
        json_rows.join(",\n")
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_staleness.json");
    std::fs::write(&path, &json).expect("write BENCH_staleness.json");
    println!("wrote {}", path.display());

    // The acceptance claims.
    for &world in worlds {
        for &skew in skews {
            let at = |s: usize| {
                rows.iter()
                    .find(|r| r.world == world && r.skew == skew && r.staleness == s)
                    .unwrap()
            };
            let sync = at(0);
            assert_eq!(
                (sync.stale_applied, sync.fence_stalls),
                (0, 0),
                "w{world} skew {skew}: s = 0 must never defer or fence"
            );
            for &s in &bounds[1..] {
                let stale = at(s);
                // Riding out skew inside the window never loses to the
                // per-step rendezvous...
                assert!(
                    stale.total_s <= sync.total_s,
                    "w{world} skew {skew} s{s}: staleness ({}) must never lose to sync ({})",
                    stale.total_s,
                    sync.total_s
                );
                // ...and strictly wins once there are enough ranks for the
                // straggler ramp to dominate the rendezvous.
                if world >= 4 {
                    assert!(
                        stale.total_s < sync.total_s,
                        "w{world} skew {skew} s{s}: staleness ({}) must strictly beat sync ({})",
                        stale.total_s,
                        sync.total_s
                    );
                }
                // Small-s convergence stays in the synchronous run's
                // neighborhood.
                assert!(
                    (stale.best_val_mae - sync.best_val_mae).abs() <= 0.5 * sync.best_val_mae,
                    "w{world} skew {skew} s{s}: val MAE drifted: {} vs {}",
                    stale.best_val_mae,
                    sync.best_val_mae
                );
            }
        }
    }
    println!(
        "Reading: s = 0 is the synchronous rendezvous — straggler skew \
         stretches every step and the counters stay at zero. With s ≥ 1 the \
         collectives stay barrier-matched (identical contents) but each rank \
         applies payloads up to s steps late, hiding wire time behind the \
         next steps' fetch + compute; fences fire only when a payload's age \
         would exceed the bound. At this miniature scale modeled compute is \
         tiny against Polaris flops, so the skew ramp moves totals in the \
         trailing digits while the bulk of the win comes from un-exposing \
         the per-step collective."
    );
}
