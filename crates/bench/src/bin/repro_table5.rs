//! Reproduce **Table 5**: optimal validation MAE with global shuffling vs
//! local batch shuffling on PeMS-BAY at 4/8/16 GPUs — the §5.4 ablation
//! showing batch-level shuffling costs no accuracy.

use pgt_index::dist_index::{run_distributed_index, DistConfig};
use pgt_index::workflow::pgt_dcrnn_factory;
use st_bench::emit_records;
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_dist::shuffle::ShuffleStrategy;
use st_report::record::RecordSet;
use st_report::table::Table;

fn main() {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let worlds: Vec<usize> = if st_bench::smoke() {
        vec![2]
    } else {
        vec![4, 8, 16]
    };
    let epochs = st_bench::DIST_EPOCHS + 2;

    let mut table = Table::new(
        "Table 5 — optimal val MAE: global vs local batch shuffling (PeMS-BAY, measured)",
        &["GPUs", "Global shuffling", "Local batch shuffling"],
    );
    let mut records = RecordSet::new();
    for &w in &worlds {
        let mut cfg = DistConfig::new(w, epochs, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.time_period = Some(spec.period);
        cfg.lr = 5e-3;
        let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, st_bench::SEED);
        cfg.shuffle = ShuffleStrategy::Global;
        let global = run_distributed_index(&sig, &cfg, &factory);
        cfg.shuffle = ShuffleStrategy::LocalBatch;
        let local = run_distributed_index(&sig, &cfg, &factory);
        let (g, l) = (global.best_val_mae(), local.best_val_mae());
        table.row(&[w.to_string(), format!("{g:.4}"), format!("{l:.4}")]);
        let rel = (g - l).abs() / g.max(1e-6);
        records.push(
            "Table 5",
            &format!("{w} GPUs: local batch ≈ global shuffle MAE"),
            "similar accuracy (e.g. 1.932 vs 1.913 @4 GPUs)",
            format!("{g:.3} vs {l:.3} ({:.1}% apart)", rel * 100.0),
            rel < 0.2,
            "measured at scaled size",
        );
    }
    println!("{}", table.to_text());
    emit_records("Table 5 — shuffle-strategy ablation", &records);
}
