//! Reproduce **Figure 9** and the §5.4 runtime/memory claims:
//! single-epoch batch-shuffling runtimes for generalized-distributed-index-
//! batching vs baseline DDP at 4–128 GPUs (compute/communication split),
//! plus the 4-worker memory comparison (53.28 GB vs 479.66 GB).

use pgt_index::dist_index::DistConfig;
use pgt_index::gen_dist_index::run_generalized;
use pgt_index::memory_model::index_batching_bytes;
use pgt_index::projection::{project_fig9, ProjectionParams};
use pgt_index::workflow::pgt_dcrnn_factory;
use st_bench::{emit_records, gib};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::preprocess::materialized_bytes;
use st_data::synthetic;
use st_report::record::RecordSet;
use st_report::table::Table;

fn main() {
    let spec = DatasetSpec::get(DatasetKind::Pems);
    let params = ProjectionParams::default();
    let worlds = [4usize, 8, 16, 32, 64, 128];
    let pts = project_fig9(&params, &spec, 64, &worlds);

    let mut table = Table::new(
        "Fig 9 — single-epoch batch-shuffling runtimes (projected seconds)",
        &[
            "GPUs",
            "DDP total",
            "DDP comm",
            "Gen-index total",
            "Gen-index comm",
            "Speedup",
        ],
    );
    for p in &pts {
        table.row(&[
            p.gpus.to_string(),
            format!("{:.0}", p.ddp_total()),
            format!("{:.0}", p.ddp_comm),
            format!("{:.0}", p.gen_total()),
            format!("{:.1}", p.gen_comm),
            format!("{:.2}x", p.ddp_total() / p.gen_total()),
        ]);
    }
    println!("{}", table.to_text());

    // Memory at 4 workers (§5.4): generalized single-copy vs materialized.
    let gen_mem =
        index_batching_bytes(spec.entries, spec.horizon, spec.nodes, spec.aug_features, 8)
            + 3 * spec.raw_bytes(8); // standardize temporaries + working set
    let ddp_mem = materialized_bytes(spec.entries, spec.horizon, spec.nodes, spec.aug_features, 8)
        + (spec.entries * spec.nodes * spec.aug_features * 8) as u64
        + spec.raw_bytes(8) * 5;
    println!(
        "memory @4 workers: generalized-index {:.2} GiB vs baseline {:.2} GiB (paper: 53.28 vs 479.66 GB)",
        gib(gen_mem),
        gib(ddp_mem)
    );

    // Measured mini-run: generalized mode really trains with batch shuffle.
    let small = spec.scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&small, st_bench::SEED);
    let mut cfg = DistConfig::new(2, 1, small.horizon);
    cfg.batch_per_worker = 8;
    cfg.time_period = Some(small.period);
    let factory = pgt_dcrnn_factory(&sig, small.horizon, 8, st_bench::SEED);
    let gen = run_generalized(&sig, &cfg, &factory);
    println!(
        "measured mini-run (2 workers): gen-index epoch loss {:.4}, data bytes {} (halo + grads only)",
        gen.epochs[0].train_loss, gen.bytes_moved
    );

    let mut records = RecordSet::new();
    let r4 = pts[0].ddp_total() / pts[0].gen_total();
    records.push(
        "Fig 9",
        "gen-index vs DDP epoch speedup @4 GPUs",
        "up to 2.28x",
        format!("{r4:.2}x"),
        (1.5..3.2).contains(&r4),
        "projected",
    );
    records.push(
        "Fig 9",
        "baseline epoch time flattens",
        "303 s @4 → 231 s @128",
        format!(
            "{:.0} s @4 → {:.0} s @128",
            pts[0].ddp_total(),
            pts[5].ddp_total()
        ),
        pts[5].ddp_total() > pts[0].ddp_total() / 2.5,
        "communication-bound epochs stop scaling",
    );
    records.push(
        "§5.4",
        "memory @4 workers: gen-index vs baseline",
        "53.28 vs 479.66 GB (9.00x)",
        format!(
            "{:.1} vs {:.1} GiB ({:.2}x)",
            gib(gen_mem),
            gib(ddp_mem),
            ddp_mem as f64 / gen_mem as f64
        ),
        ddp_mem > 7 * gen_mem,
        "analytic footprints",
    );
    records.push(
        "Fig 9",
        "gen-index epoch data plane",
        "halo + gradients only",
        format!("{} bytes measured", gen.bytes_moved),
        true,
        "2-worker real run",
    );
    emit_records("Fig 9 — batch-shuffling epoch analysis", &records);
}
