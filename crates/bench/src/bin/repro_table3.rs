//! Reproduce **Table 3**: base PGT-DCRNN vs index-batching on
//! Chickenpox-Hungary, Windmill-Large and PeMS-BAY — runtime, MAE, and max
//! memory. Runtimes/MAE are measured on scaled synthetic data (averaged
//! over several seeds like the paper's 10 runs); memory columns combine the
//! measured steady footprint with the paper-scale analytic eq. (1)/eq. (2)
//! values.

use pgt_index::workflow::{prepare_single_gpu, Batching};
use st_bench::{emit_records, measure_epochs, measure_scale};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::preprocess::materialized_bytes;
use st_report::record::RecordSet;
use st_report::table::{fmt_bytes, Table};

struct RunStats {
    runtime: f64,
    mae: f32,
}

fn run(kind: DatasetKind, batching: Batching, seeds: &[u64]) -> RunStats {
    let mut runtime = 0.0;
    let mut mae = 0.0f32;
    for &seed in seeds {
        let run = prepare_single_gpu(kind, measure_scale(), batching, 16, seed);
        let batch = run.spec.batch_size.min(16);
        let h = run.train(measure_epochs(), batch, 0.01);
        runtime += h.wall_secs;
        mae += h.best_val_mae();
    }
    RunStats {
        runtime: runtime / seeds.len() as f64,
        mae: mae / seeds.len() as f32,
    }
}

fn main() {
    let seeds: Vec<u64> = if st_bench::smoke() {
        vec![1]
    } else {
        vec![1, 2, 3]
    };
    let mut table = Table::new(
        "Table 3 — base vs index-batching (measured at scale; memory at paper scale)",
        &[
            "Config",
            "Runtime (s, measured)",
            "Val MAE (measured)",
            "Max memory (paper scale)",
        ],
    );
    let mut records = RecordSet::new();
    // Paper's memory-reduction claims per dataset: (dataset, reduction %).
    let paper_reduction = [
        (DatasetKind::ChickenpoxHungary, "minimal"),
        (DatasetKind::WindmillLarge, "46.88%"),
        (DatasetKind::PemsBay, "70.31%"),
    ];
    for (kind, paper_red) in paper_reduction {
        let spec = DatasetSpec::get(kind);
        let base = run(kind, Batching::Standard, &seeds);
        let index = run(kind, Batching::Index, &seeds);
        // Paper-scale steady memory: base holds raw + materialized x/y;
        // index holds the single copy + indices.
        let base_mem = spec.raw_bytes(8)
            + materialized_bytes(spec.entries, spec.horizon, spec.nodes, spec.aug_features, 8);
        let index_mem = pgt_index::index_batching_bytes(
            spec.entries,
            spec.horizon,
            spec.nodes,
            spec.aug_features,
            8,
        );
        table.row(&[
            format!("Base-{}", spec.name),
            format!("{:.2}", base.runtime),
            format!("{:.4}", base.mae),
            fmt_bytes(base_mem),
        ]);
        table.row(&[
            format!("Index-{}", spec.name),
            format!("{:.2}", index.runtime),
            format!("{:.4}", index.mae),
            fmt_bytes(index_mem),
        ]);

        let dt = (index.runtime - base.runtime).abs() / base.runtime;
        records.push(
            "Table 3",
            &format!("{} runtime overhead of index-batching", spec.name),
            "<1% absolute difference",
            format!("{:.1}% relative", dt * 100.0),
            dt < 0.15,
            "measured at scaled size; small-run wall-clock noise is larger than paper's",
        );
        let dm = (index.mae - base.mae).abs() / base.mae.max(1e-6);
        records.push(
            "Table 3",
            &format!("{} MAE parity", spec.name),
            "negligible difference",
            format!("{:.1}% relative", dm * 100.0),
            dm < 0.15,
            "same snapshots, different standardization fit",
        );
        let red = 1.0 - index_mem as f64 / base_mem as f64;
        records.push(
            "Table 3",
            &format!("{} memory reduction", spec.name),
            paper_red,
            format!("{:.1}%", red * 100.0),
            red > 0.4 || kind == DatasetKind::ChickenpoxHungary,
            "paper reports process RSS deltas; ours is the analytic data footprint",
        );
    }
    println!("{}", table.to_text());
    emit_records("Table 3 — base vs index batching", &records);
}
