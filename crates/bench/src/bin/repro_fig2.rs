//! Reproduce **Figure 2**: system-memory timelines for DCRNN and PGT-DCRNN
//! on PeMS-All-LA and PeMS against the 512 GB Polaris host limit — both
//! implementations must OOM on full PeMS before training starts. Uses the
//! virtual replay of the reference pipelines at the paper's exact shapes.

use st_bench::{emit_records, gib};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::replay::{standard_replay, LoaderVariant};
use st_device::memory::{MemPool, PoolMode};
use st_device::profiler::MemTimeline;
use st_device::GIB;
use st_report::record::RecordSet;
use st_report::series::{render_columns, Series};

fn run(kind: DatasetKind, variant: LoaderVariant) -> (Series, Option<f64>, f64) {
    let spec = DatasetSpec::get(kind);
    let pool = MemPool::new("polaris-host", 512 * GIB, PoolMode::Virtual);
    let mut tl = MemTimeline::new(format!("{:?}-{}", variant, spec.name));
    let report = standard_replay(&spec, variant, &pool, &mut tl, 8);
    let label = format!(
        "{}/{}",
        match variant {
            LoaderVariant::DcrnnPadded => "DCRNN",
            LoaderVariant::Pgt => "PGT-DCRNN",
        },
        spec.name
    );
    let pts = tl.rows_gib().into_iter().collect::<Vec<_>>();
    (Series::new(label, pts), tl.oom_at(), gib(report.peak_bytes))
}

fn main() {
    println!("Fig 2 — memory during training, 512 GB system limit\n");
    let mut records = RecordSet::new();
    let mut series = Vec::new();
    for (kind, paper_oom) in [(DatasetKind::PemsAllLa, false), (DatasetKind::Pems, true)] {
        for variant in [LoaderVariant::DcrnnPadded, LoaderVariant::Pgt] {
            let (s, oom, peak) = run(kind, variant);
            let verdict = match oom {
                Some(p) => format!("OOM at {:.0}% progress", p * 100.0),
                None => format!("completes, peak {peak:.2} GiB"),
            };
            println!("{:<24} {verdict}", s.label);
            records.push(
                "Fig 2",
                &format!("{} OOM verdict", s.label),
                if paper_oom {
                    "crash (OOM)"
                } else {
                    "completes"
                },
                if oom.is_some() {
                    "crash (OOM)"
                } else {
                    "completes"
                },
                oom.is_some() == paper_oom,
                "virtual replay at paper shapes, 512 GB limit",
            );
            series.push(s);
        }
    }
    println!();
    println!(
        "{}",
        render_columns("Fig 2 timelines (GiB vs % progress)", "progress%", &series)
    );
    emit_records("Fig 2 — memory timelines & OOM", &records);
}
