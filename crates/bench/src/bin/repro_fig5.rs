//! Reproduce **Figure 5**: per-epoch validation-MAE curves for baseline
//! batching vs index-batching on the three Table-3 datasets. The claim:
//! the two curves track each other (identical snapshots ⇒ equivalent
//! convergence).

use pgt_index::workflow::{prepare_single_gpu, Batching};
use st_bench::{emit_records, measure_epochs, measure_scale};
use st_data::datasets::DatasetKind;
use st_report::record::RecordSet;
use st_report::series::{ascii_plot, render_columns, Series};

fn curve(kind: DatasetKind, batching: Batching) -> Series {
    let run = prepare_single_gpu(kind, measure_scale(), batching, 16, st_bench::SEED);
    let batch = run.spec.batch_size.min(16);
    let h = run.train(measure_epochs(), batch, 0.01);
    let label = match batching {
        Batching::Standard => "Baseline",
        Batching::Index => "Index",
    };
    Series::new(
        label,
        h.epochs
            .iter()
            .map(|e| (e.epoch as f64, e.val_mae as f64))
            .collect(),
    )
}

fn main() {
    let mut records = RecordSet::new();
    for kind in [
        DatasetKind::ChickenpoxHungary,
        DatasetKind::WindmillLarge,
        DatasetKind::PemsBay,
    ] {
        let name = st_data::datasets::DatasetSpec::get(kind).name;
        let base = curve(kind, Batching::Standard);
        let index = curve(kind, Batching::Index);
        println!(
            "{}",
            render_columns(
                &format!("Fig 5 — {name} validation MAE"),
                "epoch",
                &[base.clone(), index.clone()]
            )
        );
        println!("{}", ascii_plot(&[base.clone(), index.clone()], 10));
        let (b, i) = (
            base.last_y().unwrap_or(f64::NAN),
            index.last_y().unwrap_or(f64::NAN),
        );
        let rel = (b - i).abs() / b.abs().max(1e-9);
        records.push(
            "Fig 5",
            &format!("{name} final val MAE: baseline vs index"),
            "curves coincide",
            format!("{b:.4} vs {i:.4} ({:.1}% apart)", rel * 100.0),
            rel < 0.15,
            "measured at scaled size, single seed like the paper's figure",
        );
    }
    emit_records("Fig 5 — convergence parity", &records);
}
