//! Reproduce **Figure 8**: training/validation MAE as GPU count grows.
//! The paper's effect — optimal MAE degrades as the global batch grows
//! (1.66 @1 GPU → 2.23 @128) — is a large-batch phenomenon, so it
//! reproduces at scaled size by sweeping worker counts with a fixed
//! per-worker batch. Also reruns the §5.3.3 follow-up: linear LR scaling
//! recovers most of the loss.

use pgt_index::dist_index::{run_distributed_index, DistConfig};
use pgt_index::workflow::pgt_dcrnn_factory;
use st_bench::emit_records;
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_report::record::RecordSet;
use st_report::series::{render_columns, Series};
use st_report::table::Table;

fn main() {
    let spec = DatasetSpec::get(DatasetKind::Pems).scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let worlds: Vec<usize> = if st_bench::smoke() {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let epochs = st_bench::DIST_EPOCHS + 2;

    let mut table = Table::new(
        "Fig 8 — best val MAE vs GPUs (measured, scaled PeMS; global batch grows with workers)",
        &[
            "GPUs",
            "Global batch",
            "Best val MAE",
            "Best val MAE + LR scaling",
        ],
    );
    let mut curves = Vec::new();
    let mut plain_maes = Vec::new();
    let mut scaled_maes = Vec::new();
    for &w in &worlds {
        let mut cfg = DistConfig::new(w, epochs, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.time_period = Some(spec.period);
        cfg.lr = 5e-3;
        let factory = pgt_dcrnn_factory(&sig, spec.horizon, 8, st_bench::SEED);
        let plain = run_distributed_index(&sig, &cfg, &factory);
        let mut cfg_lr = cfg.clone();
        cfg_lr.lr_base_batch = Some(4);
        let with_lr = run_distributed_index(&sig, &cfg_lr, &factory);
        table.row(&[
            w.to_string(),
            cfg.global_batch().to_string(),
            format!("{:.4}", plain.best_val_mae()),
            format!("{:.4}", with_lr.best_val_mae()),
        ]);
        curves.push(Series::new(
            format!("{w} GPUs"),
            plain
                .epochs
                .iter()
                .map(|e| (e.epoch as f64, e.val_mae as f64))
                .collect(),
        ));
        plain_maes.push(plain.best_val_mae());
        scaled_maes.push(with_lr.best_val_mae());
    }
    println!("{}", table.to_text());
    println!(
        "{}",
        render_columns("Fig 8 — validation MAE per epoch", "epoch", &curves)
    );

    let first = plain_maes[0];
    let last = *plain_maes.last().unwrap();
    let degradation = last / first;
    let last_scaled = *scaled_maes.last().unwrap();
    println!(
        "MAE degradation {first:.4} -> {last:.4} ({degradation:.2}x; paper: 1.66 -> 2.23 = 1.34x); \
         with LR scaling at max workers: {last_scaled:.4}"
    );

    let mut records = RecordSet::new();
    records.push(
        "Fig 8",
        "MAE grows with GPU count / global batch",
        "1.66 @1 GPU → 2.23 @128 GPUs",
        format!(
            "{first:.3} @1 → {last:.3} @{} (x{degradation:.2})",
            worlds.last().unwrap()
        ),
        last > first,
        "measured at scaled size; worker counts 1–16 (128 infeasible on 2 cores)",
    );
    records.push(
        "§5.3.3",
        "LR scaling reduces the large-batch MAE increase",
        "majority of increase recovered",
        format!("{last:.3} → {last_scaled:.3} at max workers"),
        last_scaled <= last * 1.02,
        "linear scaling rule (Goyal et al.)",
    );
    emit_records("Fig 8 — accuracy vs GPU count", &records);
}
