//! Serving throughput/latency bench: the `st_serve` subsystem under load.
//!
//! Trains a PGT-DCRNN briefly on the synthetic traffic graph, snapshots it
//! (the versioned `st_serve` format, written to disk and loaded back — the
//! real deployment path), then replays a deterministic burst of forecast
//! queries against [`BatchedServer`] deployments of 1, 2, and 4 shards.
//!
//! Reported per deployment: modeled p50/p99 latency, modeled requests/s,
//! micro-batch count, and halo-read bytes. The headline claim this bench
//! demonstrates — and asserts — is partition-parallel scaling: ≥ 2×
//! modeled throughput from 1 → 4 shards on a bursty workload, because each
//! shard statically owns its nodes' queries and the shards' batched
//! forwards run concurrently (halo reads are charged but stay far below
//! the compute they unlock).
//!
//! `--smoke` (or `PGT_SMOKE=1`) shrinks the workload for CI.

use pgt_index::index_batching::IndexDataset;
use pgt_index::trainer::{Trainer, TrainerConfig};
use st_data::splits::SplitRatios;
use st_data::synthetic;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Support};
use st_report::record::RecordSet;
use st_report::table::Table;
use st_serve::{BatchedServer, ModelSnapshot, Query, QueueConfig, ServeConfig, ServeReport};
use st_tensor::random::{rng_from_seed, uniform};

struct Load {
    nodes: usize,
    entries: usize,
    horizon: usize,
    epochs: usize,
    requests: usize,
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let load = if smoke {
        Load {
            nodes: 16,
            entries: 120,
            horizon: 3,
            epochs: 1,
            requests: 96,
        }
    } else {
        Load {
            nodes: 48,
            entries: 400,
            horizon: 6,
            epochs: 2,
            requests: 1024,
        }
    };

    // --- train on the synthetic traffic graph, snapshot, reload ---
    let net = st_graph::generators::highway_corridor(load.nodes, 2, st_bench::SEED);
    let sig = synthetic::traffic::generate(&net, load.entries, 288, st_bench::SEED);
    let ds = IndexDataset::from_signal(&sig, load.horizon, SplitRatios::default(), Some(288));
    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    let mc = ModelConfig {
        input_dim: ds.num_features(),
        output_dim: 1,
        hidden: 32,
        num_nodes: ds.num_nodes(),
        horizon: load.horizon,
        diffusion_steps: 2,
        layers: 1,
    };
    let model = PgtDcrnn::new(mc.clone(), &supports, st_bench::SEED);
    let trainer = Trainer::new(TrainerConfig {
        epochs: load.epochs,
        batch_size: 16,
        validate: false,
        ..Default::default()
    });
    trainer.train(&model, &ds);

    let snap_path = std::path::Path::new("target").join("serve_bench.snap");
    let _ = std::fs::create_dir_all("target");
    ModelSnapshot::capture(
        mc,
        ds.scaler().clone(),
        Some(288),
        &st_autograd::Module::params(&model),
        load.epochs as u64,
    )
    .save(&snap_path)
    .expect("write snapshot");
    let snapshot = ModelSnapshot::load(&snap_path).expect("reload snapshot");
    println!(
        "snapshot: {} params, {} bytes on disk, trained {} epochs",
        snapshot.params.len(),
        std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0),
        snapshot.trained_epochs
    );

    // --- deterministic bursty query stream over the buffered windows ---
    let windows = ds.num_snapshots();
    let jitter = uniform(
        [load.requests],
        0.0,
        5e-8,
        &mut rng_from_seed(st_bench::SEED),
    );
    let jitter = jitter.to_vec();
    let queries: Vec<Query> = (0..load.requests)
        .map(|i| Query {
            id: i,
            node: (i * 7) % load.nodes,
            window_end: load.horizon + ((i * 13) % windows.min(64)),
            // Monotone bursty arrivals: 0.1 µs spacing with sub-spacing
            // jitter so the stream stays sorted.
            arrival_secs: i as f64 * 1e-7 + jitter[i] as f64,
        })
        .collect();

    // --- serve under 1 / 2 / 4 shards ---
    let mut table = Table::new(
        "serve_bench: partition-parallel batched inference (modeled time)",
        &[
            "shards",
            "p50 ms",
            "p99 ms",
            "req/s",
            "batches",
            "halo bytes",
        ],
    );
    let mut throughput = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut cfg = ServeConfig::new(shards, load.entries);
        cfg.queue = QueueConfig {
            max_batch: 32,
            max_delay_secs: 2e-5,
        };
        let server =
            BatchedServer::with_history(snapshot.clone(), sig.adjacency.clone(), ds.data(), cfg);
        let report: ServeReport = server.serve(&queries);
        assert_eq!(report.results.len(), load.requests);
        let batches: usize = report.shards.iter().map(|s| s.batches).sum();
        table.row(&[
            shards.to_string(),
            format!("{:.4}", report.p50_latency_secs * 1e3),
            format!("{:.4}", report.p99_latency_secs * 1e3),
            format!("{:.1}", report.requests_per_sec),
            batches.to_string(),
            report.halo_bytes.to_string(),
        ]);
        throughput.push(report.requests_per_sec);
    }
    println!("{}", table.to_text());

    let speedup = throughput[2] / throughput[0];
    println!("1 → 4 shard modeled throughput: {speedup:.2}×");
    // The scaling claim needs a compute-bound workload; the smoke load is
    // deliberately tiny (latency-bound), so it only checks liveness.
    assert!(
        smoke || speedup >= 2.0,
        "partition-parallel serving must scale ≥ 2× from 1 to 4 shards, got {speedup:.2}×"
    );

    let mut records = RecordSet::new();
    records.push(
        "Serving",
        "modeled throughput speedup, 1 → 4 shards",
        "≥ 2× (DistTGL-style static partition parallelism)",
        format!("{speedup:.2}×"),
        speedup >= 2.0,
        "synthetic traffic graph; bursty queries; micro-batch 32 / 20 \u{b5}s delay",
    );
    records.push(
        "Serving",
        "snapshot round-trip",
        "bit-identical serve vs. trainer forward",
        "pinned by tests/serve_roundtrip.rs",
        true,
        "versioned PGTSNAP1 format, FNV-1a checksummed",
    );
    st_bench::emit_records("serve_bench", &records);
}
