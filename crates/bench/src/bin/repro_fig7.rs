//! Reproduce **Figure 7** and the §5.3.1 headline numbers: the PeMS scaling
//! study at 4–128 GPUs — baseline DDP (computation + data communication)
//! vs distributed-index-batching (computation only) vs linear scaling.
//!
//! Paper-scale minutes come from the calibrated projection; a measured
//! mini-run (2 and 4 workers on scaled data, real threads and collectives)
//! validates the projection's *ordering* on this machine.

use pgt_index::baseline_ddp::run_baseline_ddp;
use pgt_index::dist_index::{run_distributed_index, DistConfig};
use pgt_index::projection::{project_scaling, project_table4, ProjectionParams};
use pgt_index::workflow::pgt_dcrnn_factory;
use st_bench::{emit_records, minutes};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Support};
use st_report::record::RecordSet;
use st_report::table::Table;

fn main() {
    let spec = DatasetSpec::get(DatasetKind::Pems);
    let params = ProjectionParams::default();
    let worlds = [4usize, 8, 16, 32, 64, 128];
    let pts = project_scaling(&params, &spec, 30, 64, &worlds);

    let mut table = Table::new(
        "Fig 7 — PeMS scaling study, 30 epochs (projected minutes)",
        &[
            "GPUs",
            "DDP total",
            "DDP compute",
            "DDP data comm",
            "Index total",
            "Index pre",
            "Linear (ideal)",
        ],
    );
    let base_total = pts[0].index_total();
    for p in &pts {
        let linear = base_total * pts[0].gpus as f64 / p.gpus as f64;
        table.row(&[
            p.gpus.to_string(),
            format!("{:.1}", minutes(p.ddp_total())),
            format!("{:.1}", minutes(p.ddp_compute)),
            format!("{:.1}", minutes(p.ddp_comm)),
            format!("{:.1}", minutes(p.index_total())),
            format!("{:.2}", minutes(p.index_pre)),
            format!("{:.1}", minutes(linear)),
        ]);
    }
    println!("{}", table.to_text());

    // Headlines.
    let (single_total, _) = project_table4(&params, &spec, 30);
    let p128 = pts.last().unwrap();
    let total_speedup = single_total / p128.index_total();
    let train_speedup = (single_total - params.pre_index_secs) / p128.index_train;
    let r4 = pts[0].ddp_total() / pts[0].index_total();
    let r128 = p128.ddp_total() / p128.index_total();
    println!(
        "headlines: total speedup @128 = {total_speedup:.1}x (paper 79.41x); \
         training speedup @128 = {train_speedup:.1}x (paper 115.49x);"
    );
    println!(
        "           index vs DDP = {r4:.2}x @4 GPUs (paper 2.16x), {r128:.2}x @128 GPUs (paper 11.78x)"
    );

    // --- Measured validation on this machine (scaled data, real threads). ---
    let small = spec.scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&small, st_bench::SEED);
    let mut cfg = DistConfig::new(2, 1, small.horizon);
    cfg.batch_per_worker = 8;
    cfg.time_period = Some(small.period);
    let factory = pgt_dcrnn_factory(&sig, small.horizon, 8, st_bench::SEED);
    let index = run_distributed_index(&sig, &cfg, &factory);
    let ddp = run_baseline_ddp(&sig, &cfg, |view| {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let mc = ModelConfig {
            input_dim: 2,
            output_dim: 1,
            hidden: 8,
            num_nodes: sig.num_nodes(),
            horizon: small.horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        let _ = view;
        Box::new(PgtDcrnn::new(mc, &supports, st_bench::SEED))
    });
    println!(
        "\nmeasured mini-run (2 workers, scaled PeMS): index comm {:.4}s vs DDP comm {:.4}s \
         (sim); data bytes: index {} vs DDP {}",
        index.sim_comm_secs, ddp.sim_comm_secs, index.bytes_moved, ddp.bytes_moved
    );

    let mut records = RecordSet::new();
    records.push(
        "Fig 7",
        "dist-index vs DDP @4 GPUs",
        "2.16x",
        format!("{r4:.2}x"),
        (1.5..3.0).contains(&r4),
        "calibrated projection",
    );
    records.push(
        "Fig 7",
        "dist-index vs DDP @128 GPUs",
        "11.78x",
        format!("{r128:.2}x"),
        (8.0..16.0).contains(&r128),
        "",
    );
    records.push(
        "§5.3.1",
        "total speedup @128 GPUs vs 1 GPU",
        "79.41x",
        format!("{total_speedup:.1}x"),
        (55.0..110.0).contains(&total_speedup),
        "",
    );
    records.push(
        "§5.3.1",
        "training-only speedup @128 GPUs",
        "115.49x",
        format!("{train_speedup:.1}x"),
        (70.0..160.0).contains(&train_speedup),
        "",
    );
    let lin8 = pts[0].index_train / pts[1].index_train;
    records.push(
        "Fig 7",
        "near-linear training scaling 4→8 GPUs",
        "≈2x",
        format!("{lin8:.2}x"),
        lin8 > 1.8,
        "fixed costs erode efficiency at 64–128 GPUs as in the paper",
    );
    records.push(
        "Fig 7",
        "measured: DDP moves more data than dist-index",
        "communication eliminated",
        format!("{} vs {} bytes", ddp.bytes_moved, index.bytes_moved),
        ddp.bytes_moved > index.bytes_moved,
        "2-worker real run on scaled data",
    );
    emit_records("Fig 7 — scaling study", &records);
}
