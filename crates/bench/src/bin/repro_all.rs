//! Run the full reproduction suite: every `repro_*` binary in paper order,
//! assembling `target/experiment_records.md` along the way.
//!
//! ```text
//! cargo run --release -p st-bench --bin repro_all
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "repro_table1",
    "repro_fig1",
    "repro_table2",
    "repro_fig2",
    "repro_fig3",
    "repro_table3",
    "repro_fig5",
    "repro_fig6",
    "repro_table4",
    "repro_fig7",
    "repro_fig8",
    "repro_table5",
    "repro_fig9",
    "repro_table6",
    "repro_fig10",
    // §7 future-work ablations (no paper baseline; see EXPERIMENTS.md)
    "ablation_partition",
    "ablation_prefetch",
];

fn main() {
    // Start the record file fresh for this sweep.
    let _ = std::fs::remove_file("target/experiment_records.md");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n================= {bin} =================\n");
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!("\n================= summary =================");
    if failures.is_empty() {
        println!(
            "all {} experiments completed; records in target/experiment_records.md",
            BINARIES.len()
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
