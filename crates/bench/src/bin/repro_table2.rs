//! Reproduce **Table 2**: single-epoch DCRNN vs PGT-DCRNN on PeMS-All-LA —
//! runtime (minutes), peak system memory, peak GPU memory.
//!
//! Host memory comes from the virtual replay of each pipeline at the
//! paper's shapes; runtimes from the calibrated cost projection; GPU memory
//! from **measured** autograd-tape activation bytes at a scaled
//! configuration, scaled linearly by batch × nodes to paper shape (plus the
//! padded loader's device-side batch copies for DCRNN).

use pgt_index::projection::{project_table2, ProjectionParams};
use st_autograd::Tape;
use st_bench::{emit_records, gib, minutes};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::replay::{standard_replay, LoaderVariant};
use st_device::memory::{MemPool, PoolMode};
use st_device::profiler::MemTimeline;
use st_device::GIB;
use st_graph::diffusion_supports;
use st_models::{Dcrnn, ModelConfig, PgtDcrnn, Seq2Seq, Support};
use st_report::record::RecordSet;
use st_report::table::Table;

/// Measure tape activation bytes for one forward at a scaled config, then
/// scale to the paper's (batch=32, nodes=2716) shape.
fn projected_gpu_bytes(model: &dyn Seq2Seq, x: &st_tensor::Tensor, scale: f64) -> u64 {
    let tape = Tape::new();
    let _ = model.forward(&tape, x);
    (tape.activation_bytes(4) as f64 * scale) as u64
}

fn main() {
    let spec = DatasetSpec::get(DatasetKind::PemsAllLa);
    let params = ProjectionParams::default();

    // --- Host memory: virtual replays. ---
    let host_peak = |variant| {
        let pool = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
        let mut tl = MemTimeline::new("t2");
        let r = standard_replay(&spec, variant, &pool, &mut tl, 8);
        r.peak_bytes
    };
    let dcrnn_host = host_peak(LoaderVariant::DcrnnPadded);
    let pgt_host = host_peak(LoaderVariant::Pgt);

    // --- Runtime: calibrated projection. ---
    let (dcrnn_secs, pgt_secs) = project_table2(&params, &spec);

    // --- GPU memory: measured tape, scaled. ---
    let scaled_nodes = 64usize;
    let batch_small = 4usize;
    let net = st_graph::generators::highway_corridor(scaled_nodes, 2, st_bench::SEED);
    let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
    let mk_cfg = |layers: usize| ModelConfig {
        input_dim: 2,
        output_dim: 1,
        hidden: 64,
        num_nodes: scaled_nodes,
        horizon: 12,
        diffusion_steps: 2,
        layers,
    };
    let x = st_tensor::Tensor::ones([batch_small, 12, scaled_nodes, 2]);
    let scale = (32.0 / batch_small as f64) * (spec.nodes as f64 / scaled_nodes as f64);
    let dcrnn_model = Dcrnn::new(mk_cfg(2), &supports, st_bench::SEED);
    let pgt_model = PgtDcrnn::new(mk_cfg(1), &supports, st_bench::SEED);
    let mut dcrnn_gpu = projected_gpu_bytes(&dcrnn_model, &x, scale);
    let pgt_gpu = projected_gpu_bytes(&pgt_model, &x, scale);
    // The original DCRNN loader stages padded batch copies on-device too.
    dcrnn_gpu += (32 * 12 * spec.nodes * 2 * 8) as u64 * 4;

    let mut table = Table::new(
        "Table 2 — single-epoch comparison on PeMS-All-LA",
        &[
            "Model",
            "Runtime (min)",
            "Max system mem (GB)",
            "Max GPU mem (GB)",
        ],
    );
    table.row(&[
        "DCRNN".into(),
        format!("{:.2}", minutes(dcrnn_secs)),
        format!("{:.2}/512", gib(dcrnn_host)),
        format!("{:.2}/40", gib(dcrnn_gpu)),
    ]);
    table.row(&[
        "PGT-DCRNN".into(),
        format!("{:.2}", minutes(pgt_secs)),
        format!("{:.2}/512", gib(pgt_host)),
        format!("{:.2}/40", gib(pgt_gpu)),
    ]);
    println!("{}", table.to_text());

    let mut records = RecordSet::new();
    records.push(
        "Table 2",
        "DCRNN runtime (min)",
        "68.48",
        format!("{:.2}", minutes(dcrnn_secs)),
        (minutes(dcrnn_secs) - 68.48).abs() / 68.48 < 0.4,
        "calibrated projection; DCRNN reference impl modeled at lower effective FLOPs",
    );
    records.push(
        "Table 2",
        "PGT-DCRNN runtime (min)",
        "4.48",
        format!("{:.2}", minutes(pgt_secs)),
        (minutes(pgt_secs) - 4.48).abs() / 4.48 < 0.4,
        "speedup ratio is the claim: paper 15.3x",
    );
    records.push(
        "Table 2",
        "PGT/DCRNN runtime ratio",
        "15.3x",
        format!("{:.1}x", dcrnn_secs / pgt_secs),
        (8.0..25.0).contains(&(dcrnn_secs / pgt_secs)),
        "",
    );
    records.push(
        "Table 2",
        "DCRNN peak system memory (GB)",
        "371.25",
        format!("{:.2}", gib(dcrnn_host)),
        (gib(dcrnn_host) - 371.25).abs() / 371.25 < 0.05,
        "virtual replay with padded-loader duplication",
    );
    records.push(
        "Table 2",
        "PGT-DCRNN peak system memory (GB)",
        "259.84",
        format!("{:.2}", gib(pgt_host)),
        (gib(pgt_host) - 259.84).abs() / 259.84 < 0.05,
        "virtual replay of Algorithm-1 allocation order",
    );
    records.push(
        "Table 2",
        "GPU memory: DCRNN ≫ PGT-DCRNN",
        "24.84 vs 1.58 GB (15.7x)",
        format!(
            "{:.2} vs {:.2} GB ({:.1}x)",
            gib(dcrnn_gpu),
            gib(pgt_gpu),
            dcrnn_gpu as f64 / pgt_gpu as f64
        ),
        dcrnn_gpu > 5 * pgt_gpu,
        "tape activation bytes, measured at scaled config, linearly scaled",
    );
    emit_records("Table 2 — DCRNN vs PGT-DCRNN", &records);
}
