//! Ablation: prefetching + data-distribution policies (paper §7).
//!
//! Quantifies the §7 data-plane proposals on the engine's remote planes:
//! 1. **Prefetching (baseline DDP)** — double-buffered batch fetches
//!    overlap the data plane with compute; reported as exposed-
//!    communication seconds.
//! 2. **Prefetching (generalized mode)** — the setup halo read is issued
//!    asynchronously and hidden behind early compute.
//! 3. **Ownership policy** — contiguous vs strided row ownership changes
//!    how many owners a contiguous read touches (requests per fetch).

use pgt_index::baseline_ddp::run_baseline_ddp;
use pgt_index::gen_dist_index::run_generalized;
use pgt_index::DistConfig;
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::synthetic;
use st_dist::datasvc::{DistributedArray, PartitionPolicy};
use st_dist::topology::ClusterTopology;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};
use st_report::table::Table;

fn main() {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&spec, st_bench::SEED);
    let factory = |features: usize| {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let mc = ModelConfig {
            input_dim: features,
            output_dim: 1,
            hidden: 8,
            num_nodes: sig.num_nodes(),
            horizon: spec.horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        PgtDcrnn::new(mc, &supports, st_bench::SEED)
    };

    // --- prefetch on/off on the measured baseline-DDP runner ---
    let mut table = Table::new(
        "Ablation §7a: baseline DDP with and without prefetching (measured, simulated seconds)",
        &[
            "variant",
            "comm s",
            "compute s",
            "total s",
            "data-plane bytes",
        ],
    );
    let mut cfg = DistConfig::new(2, if st_bench::smoke() { 1 } else { 2 }, spec.horizon);
    cfg.batch_per_worker = 4;
    for prefetch in [false, true] {
        cfg.prefetch = prefetch;
        let r = run_baseline_ddp(&sig, &cfg, |_| Box::new(factory(1)) as Box<dyn Seq2Seq>);
        table.row(&[
            if prefetch {
                "prefetched"
            } else {
                "synchronous"
            }
            .to_string(),
            format!("{:.6}", r.sim_comm_secs),
            format!("{:.6}", r.sim_compute_secs),
            format!("{:.6}", r.sim_total_secs),
            r.data_plane_bytes.to_string(),
        ]);
    }
    println!("{}", table.to_text());

    // --- prefetch on/off on the generalized (halo-partition) runner ---
    let mut table = Table::new(
        "Ablation §7a': generalized mode with and without halo-read prefetching",
        &[
            "variant",
            "comm s",
            "compute s",
            "total s",
            "data-plane bytes",
        ],
    );
    let mut gcfg = DistConfig::new(2, if st_bench::smoke() { 1 } else { 2 }, spec.horizon);
    gcfg.batch_per_worker = 4;
    gcfg.time_period = Some(spec.period);
    for prefetch in [false, true] {
        gcfg.prefetch = prefetch;
        let r = run_generalized(&sig, &gcfg, |ds| {
            Box::new(factory(ds.num_features())) as Box<dyn Seq2Seq>
        });
        table.row(&[
            if prefetch {
                "prefetched"
            } else {
                "synchronous"
            }
            .to_string(),
            format!("{:.6}", r.sim_comm_secs),
            format!("{:.6}", r.sim_compute_secs),
            format!("{:.6}", r.sim_total_secs),
            r.data_plane_bytes.to_string(),
        ]);
    }
    println!("{}", table.to_text());

    // --- ownership policies: requests per contiguous window read ---
    let mut table = Table::new(
        "Ablation §7b: ownership policy vs requests for one contiguous 64-row read (4 workers)",
        &["policy", "remote requests", "remote bytes"],
    );
    let rows = 256;
    for (name, policy) in [
        ("contiguous", PartitionPolicy::Contiguous),
        ("strided", PartitionPolicy::Strided),
    ] {
        let t = st_tensor::Tensor::zeros([rows, 64]);
        let a = DistributedArray::with_policy(t, 4, ClusterTopology::polaris(), 4, policy);
        let cm = st_device::CostModel::polaris();
        let ids: Vec<usize> = (0..64).collect(); // rank 0's own block, contiguous
        a.fetch_rows_quoted(0, &ids, &cm);
        table.row(&[
            name.to_string(),
            a.remote_requests().to_string(),
            a.remote_bytes().to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Reading: prefetching hides fetch time behind compute without changing \
         bytes or learning; the contiguous policy makes halo-window reads \
         single-owner (0 extra requests) where striding touches every rank."
    );
}
