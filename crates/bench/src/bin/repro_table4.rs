//! Reproduce **Table 4**: single-GPU PeMS training (30 epochs) — index
//! batching vs GPU-index-batching: runtime, CPU memory, GPU memory.
//! Memory from the virtual replays; runtime from the calibrated projection;
//! plus a *measured* transfer-count comparison at scaled size showing the
//! consolidation effect the projection is built on.

use pgt_index::gpu_index::{GpuIndexDataset, Residency};
use pgt_index::memory_model::{gpu_index_replay, index_replay};
use pgt_index::projection::{project_table4, ProjectionParams};
use pgt_index::trainer::BatchSource;
use pgt_index::IndexDataset;
use st_bench::{emit_records, gib, minutes};
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::splits::SplitRatios;
use st_data::synthetic;
use st_device::memory::{MemPool, PoolMode};
use st_device::profiler::MemTimeline;
use st_device::{CostModel, SimClock, GIB};
use st_report::record::RecordSet;
use st_report::table::Table;

fn main() {
    let spec = DatasetSpec::get(DatasetKind::Pems);
    let params = ProjectionParams::default();
    let (index_secs, gpu_secs) = project_table4(&params, &spec, 30);

    let host = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
    let mut tl = MemTimeline::new("idx");
    let idx = index_replay(&spec, &host, &mut tl, 8);
    let host2 = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
    let dev = MemPool::new("gpu0", 40 * GIB, PoolMode::Virtual);
    let mut tl2 = MemTimeline::new("gidx");
    let gidx = gpu_index_replay(&spec, &host2, &dev, &mut tl2, 8, GIB);

    let mut table = Table::new(
        "Table 4 — single-GPU PeMS training (30 epochs)",
        &[
            "Implementation",
            "Runtime (min)",
            "CPU memory (GB)",
            "GPU memory (GB)",
        ],
    );
    table.row(&[
        "Index-batching".into(),
        format!("{:.2}", minutes(index_secs)),
        format!("{:.2}", gib(idx.peak_host)),
        "5.50 (model+batches)".into(),
    ]);
    table.row(&[
        "GPU-index-batching".into(),
        format!("{:.2}", minutes(gpu_secs)),
        format!("{:.2}", gib(gidx.peak_host)),
        format!("{:.2}", gib(gidx.peak_device)),
    ]);
    println!("{}", table.to_text());

    // --- Measured consolidation at scaled size. ---
    let small = spec.scaled(st_bench::DIST_SCALE);
    let sig = synthetic::generate(&small, st_bench::SEED);
    let ds = IndexDataset::from_signal(
        &sig,
        small.horizon,
        SplitRatios::default(),
        Some(small.period),
    );
    let count_for = |residency| {
        let pool = MemPool::new("gpu0", 40 * GIB, PoolMode::Virtual);
        let placed = GpuIndexDataset::place(
            ds.clone(),
            residency,
            &pool,
            CostModel::polaris(),
            SimClock::new(),
            4,
        )
        .expect("fits");
        for i in 0..50 {
            let _ = placed.get_batch(&[i, i + 1]);
        }
        (placed.ledger().h2d_count(), placed.clock().comm_secs())
    };
    let (host_count, host_time) = count_for(Residency::Host);
    let (dev_count, dev_time) = count_for(Residency::Device);
    println!(
        "measured (scaled, 50 batches): host-resident {host_count} transfers ({host_time:.4}s sim) \
         vs device-resident {dev_count} transfer ({dev_time:.4}s sim)"
    );

    let mut records = RecordSet::new();
    records.push(
        "Table 4",
        "index-batching runtime (min)",
        "333.58",
        format!("{:.2}", minutes(index_secs)),
        (minutes(index_secs) - 333.58).abs() / 333.58 < 0.1,
        "calibrated projection",
    );
    records.push(
        "Table 4",
        "GPU-index runtime (min)",
        "290.65",
        format!("{:.2}", minutes(gpu_secs)),
        (minutes(gpu_secs) - 290.65).abs() / 290.65 < 0.1,
        "",
    );
    records.push(
        "Table 4",
        "GPU-index runtime reduction",
        "12.87%",
        format!("{:.2}%", 100.0 * (index_secs - gpu_secs) / index_secs),
        ((index_secs - gpu_secs) / index_secs - 0.1287).abs() < 0.05,
        "eliminated per-batch CPU→GPU transfers",
    );
    records.push(
        "Table 4",
        "index CPU memory (GB)",
        "45.84",
        format!("{:.2}", gib(idx.peak_host)),
        (gib(idx.peak_host) - 45.84).abs() / 45.84 < 0.06,
        "",
    );
    records.push(
        "Table 4",
        "GPU-index CPU / GPU memory (GB)",
        "18.20 / 18.60",
        format!("{:.2} / {:.2}", gib(gidx.peak_host), gib(gidx.peak_device)),
        (gib(gidx.peak_host) - 18.20).abs() < 1.5 && (gib(gidx.peak_device) - 18.60).abs() < 1.5,
        "",
    );
    records.push(
        "Table 4",
        "transfer consolidation",
        "single transfer at start",
        format!("{dev_count} vs {host_count} transfers for 50 batches"),
        dev_count == 1 && host_count == 50,
        "measured on the scaled dataset",
    );
    emit_records("Table 4 — index vs GPU-index", &records);
}
