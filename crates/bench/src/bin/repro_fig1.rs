//! Reproduce **Figures 1 & 4**: sliding-window snapshot semantics and
//! runtime reconstruction from indices. Uses the figures' own example
//! (horizon 3 over graph states G0..G5) and then verifies, on a scaled
//! dataset, that every index-batching snapshot equals its Algorithm-1
//! materialized counterpart — the zero-copy property included.

use pgt_index::IndexDataset;
use st_bench::emit_records;
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::preprocess::materialized_xy;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::SplitRatios;
use st_data::synthetic;
use st_graph::Adjacency;
use st_report::record::RecordSet;
use st_tensor::Tensor;

fn main() {
    // --- The figures' toy example: 6 entries, 1 node, horizon 3. ---
    let adj = Adjacency::from_dense(1, vec![1.0]);
    let data = Tensor::arange(6).reshape([6, 1, 1]).unwrap(); // G0..G5
    let sig = StaticGraphTemporalSignal::new(data, adj);
    let ds = IndexDataset::from_signal(&sig, 3, SplitRatios::default(), None);

    println!("Fig 1/4 — runtime snapshot reconstruction (horizon = 3)");
    println!("data: G0 G1 G2 G3 G4 G5\n");
    for i in 0..ds.num_snapshots() {
        let (x, y) = ds.snapshot(i);
        let show = |t: &Tensor| -> String {
            ds.scaler()
                .inverse(t)
                .to_vec()
                .iter()
                .map(|v| format!("G{}", v.round() as i64))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "snapshot {i}: feature = [{}]  label = [{}]  (views of one copy: {})",
            show(&x),
            show(&y),
            x.shares_storage(ds.data()) && y.shares_storage(ds.data()),
        );
    }

    // --- Full equivalence check on a scaled traffic dataset. ---
    let spec = DatasetSpec::get(DatasetKind::MetrLa).scaled(st_bench::measure_scale());
    let gen = synthetic::generate(&spec, st_bench::SEED);
    let aug = gen.with_time_feature(spec.period);
    let std_out = materialized_xy(&aug, spec.horizon, SplitRatios::default());
    let index = IndexDataset::from_signal(
        &gen,
        spec.horizon,
        SplitRatios::default(),
        Some(spec.period),
    );
    let mut max_err = 0.0f32;
    for i in 0..index.num_snapshots() {
        let (x, y) = index.snapshot(i);
        let xs = std_out.scaler.inverse(&std_out.x.select(0, i).unwrap());
        let ys = std_out.scaler.inverse(&std_out.y.select(0, i).unwrap());
        let xi = index.scaler().inverse(&x);
        let yi = index.scaler().inverse(&y);
        for (a, b) in xi
            .to_vec()
            .iter()
            .chain(yi.to_vec().iter())
            .zip(xs.to_vec().iter().chain(ys.to_vec().iter()))
        {
            max_err = max_err.max((a - b).abs());
        }
    }
    println!(
        "\nEquivalence over {} snapshots of scaled METR-LA: max |Δ| = {max_err:.2e}",
        index.num_snapshots()
    );

    let mut records = RecordSet::new();
    records.push(
        "Fig 1/4",
        "index snapshots ≡ materialized snapshots",
        "identical by construction",
        format!("max |Δ| = {max_err:.2e}"),
        max_err < 1e-3,
        "zero-copy views verified via storage aliasing",
    );
    emit_records("Fig 1 & 4 — snapshot semantics", &records);
}
