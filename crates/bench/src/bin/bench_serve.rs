//! Million-user load harness for the production serving plane.
//!
//! Where `serve_bench` pins the partition-parallel *scaling* claim on a
//! small bursty burst, this harness drives the full serving plane the way
//! a deployment would see it:
//!
//! - **Open-loop arrivals**: a Poisson process (inverse-CDF exponential
//!   interarrivals) whose rate follows a **diurnal** sinusoid, so the
//!   stream has a genuine rush hour that overruns capacity and a trough
//!   that idles it. Arrivals never react to completions — the generator
//!   does not slow down when the server queues, which is exactly what
//!   makes tail latency honest.
//! - **A synthetic user population**: each request is issued by one of
//!   `population` users (10⁶ in full mode); the harness tracks distinct
//!   active users in a bitset and asserts ≥ 10⁵ of them showed up.
//! - **A shard sweep** (1/2/4/8) at fixed arrival rate, reporting modeled
//!   p50/p99/p999 latency, shed rate, and per-shard utilization.
//! - **An overload A/B** at equal shard count: shed-nothing (unbounded
//!   SLO) versus deadline + depth admission control, asserting the
//!   admission-controlled plane's modeled p99 is **strictly** better.
//! - **A forecast-cache observation** at equal shard count, showing the
//!   per-serve-call window cache absorbing repeat queries (its bitwise
//!   transparency is pinned by the `st_serve` unit tests).
//!
//! The arrival rate is self-calibrating: a bursty pilot run measures the
//! modeled steady-state service time per request (micro-batching included),
//! and the diurnal peak is then set above per-deployment capacity so
//! overload is guaranteed by construction, not by magic constants. The SLO
//! deadline is likewise searched to a non-degenerate operating point
//! (some shedding, not total shedding) before the A/B is scored.
//!
//! Serving goes through [`SnapshotRegistry`] — the production lookup path.
//! Results land in `target/BENCH_serve.json`. `--smoke` (or `PGT_SMOKE=1`)
//! shrinks everything for CI; the p99-win assertion holds in both modes.

use pgt_index::index_batching::IndexDataset;
use st_data::splits::SplitRatios;
use st_data::synthetic;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Support};
use st_report::record::RecordSet;
use st_report::table::Table;
use st_serve::{
    BatchedServer, ModelSnapshot, Query, QueueConfig, ServeConfig, ServeReport, SloConfig,
    SnapshotRegistry,
};

struct Load {
    nodes: usize,
    entries: usize,
    horizon: usize,
    hidden: usize,
    /// Synthetic user population (user ids are drawn from `0..population`).
    population: usize,
    requests: usize,
    /// Distinct recent windows the stream queries (the "hot set").
    window_universe: usize,
    sweep: &'static [usize],
    /// Shard count for the overload A/B and the cache observation.
    ab_shards: usize,
}

/// xorshift64* — deterministic, dependency-free uniform source.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in (0, 1) — never exactly 0, so `-ln(1-u)` is finite.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// One synthetic request: who asked, where, and when.
struct Arrival {
    user: usize,
    node: usize,
    window_end: usize,
    arrival_secs: f64,
}

/// Open-loop Poisson stream with diurnal rate modulation.
///
/// `rate(t) = base_hz * (1 + amplitude * sin(2π t / period))`, sampled by
/// inverse-CDF exponential interarrivals against the instantaneous rate.
/// One `period` spans the whole stream, so the bench sees a full
/// trough → rush hour → trough day.
fn diurnal_poisson_stream(load: &Load, base_hz: f64, amplitude: f64, period: f64) -> Vec<Arrival> {
    let mut rng = XorShift(st_bench::SEED | 1);
    let mut t = 0.0f64;
    (0..load.requests)
        .map(|_| {
            let rate = base_hz * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin());
            t += -(1.0 - rng.next_unit()).ln() / rate;
            let user = (rng.next_u64() % load.population as u64) as usize;
            Arrival {
                user,
                node: user % load.nodes,
                window_end: load.entries - (rng.next_u64() as usize % load.window_universe),
                arrival_secs: t,
            }
        })
        .collect()
}

fn queries_of(stream: &[Arrival]) -> Vec<Query> {
    stream
        .iter()
        .enumerate()
        .map(|(id, a)| Query {
            id,
            node: a.node,
            window_end: a.window_end,
            arrival_secs: a.arrival_secs,
        })
        .collect()
}

/// Count distinct users in the stream via a population-sized bitset.
fn distinct_users(stream: &[Arrival], population: usize) -> usize {
    let mut bits = vec![0u64; population.div_ceil(64)];
    let mut distinct = 0usize;
    for a in stream {
        let (word, bit) = (a.user / 64, 1u64 << (a.user % 64));
        if bits[word] & bit == 0 {
            bits[word] |= bit;
            distinct += 1;
        }
    }
    distinct
}

struct RunSummary {
    shards: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    shed_rate: f64,
    util_mean: f64,
    util_max: f64,
    batches: usize,
    cache_hits: usize,
    halo_bytes: u64,
}

fn summarize(shards: usize, report: &ServeReport) -> RunSummary {
    let utils: Vec<f64> = report
        .shards
        .iter()
        .map(|s| s.utilization(report.makespan_secs))
        .collect();
    RunSummary {
        shards,
        p50_us: report.p50_latency_secs * 1e6,
        p99_us: report.p99_latency_secs * 1e6,
        p999_us: report.p999_latency_secs * 1e6,
        shed_rate: report.shed_rate,
        util_mean: utils.iter().sum::<f64>() / utils.len() as f64,
        util_max: utils.iter().cloned().fold(0.0f64, f64::max),
        batches: report.shards.iter().map(|s| s.batches).sum(),
        cache_hits: report.shards.iter().map(|s| s.cache_hits).sum(),
        halo_bytes: report.halo_bytes,
    }
}

impl RunSummary {
    fn json(&self, tag: &str) -> String {
        format!(
            "    {{\"run\": \"{}\", \"shards\": {}, \"p50_us\": {:.4}, \
             \"p99_us\": {:.4}, \"p999_us\": {:.4}, \"shed_rate\": {:.6}, \
             \"util_mean\": {:.4}, \"util_max\": {:.4}, \"batches\": {}, \
             \"cache_hits\": {}, \"halo_bytes\": {}}}",
            tag,
            self.shards,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.shed_rate,
            self.util_mean,
            self.util_max,
            self.batches,
            self.cache_hits,
            self.halo_bytes
        )
    }

    fn table_row(&self, table: &mut Table, tag: &str) {
        table.row(&[
            tag.to_string(),
            self.shards.to_string(),
            format!("{:.3}", self.p50_us),
            format!("{:.3}", self.p99_us),
            format!("{:.3}", self.p999_us),
            format!("{:.2}", self.shed_rate * 1e2),
            format!("{:.2}", self.util_mean),
            format!("{:.2}", self.util_max),
            self.batches.to_string(),
            self.cache_hits.to_string(),
        ]);
    }
}

fn main() {
    let smoke = st_bench::smoke() || std::env::args().any(|a| a == "--smoke");
    let load = if smoke {
        Load {
            nodes: 12,
            entries: 120,
            horizon: 3,
            hidden: 8,
            population: 20_000,
            requests: 4_000,
            // Must comfortably exceed max_batch: batch slots are
            // *distinct* windows, and a hot set smaller than a batch
            // would mean batches only ever dispatch by timer.
            window_universe: 96,
            sweep: &[1, 2, 4],
            ab_shards: 2,
        }
    } else {
        Load {
            nodes: 48,
            entries: 400,
            horizon: 6,
            hidden: 16,
            population: 1_000_000,
            requests: 150_000,
            window_universe: 256,
            sweep: &[1, 2, 4, 8],
            ab_shards: 4,
        }
    };

    // --- snapshot a seeded model over the synthetic traffic corridor ---
    // (Training is serve_bench's concern; modeled load is weight-blind.)
    let net = st_graph::generators::highway_corridor(load.nodes, 2, st_bench::SEED);
    let sig = synthetic::traffic::generate(&net, load.entries, 288, st_bench::SEED);
    let ds = IndexDataset::from_signal(&sig, load.horizon, SplitRatios::default(), Some(288));
    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    let mc = ModelConfig {
        input_dim: ds.num_features(),
        output_dim: 1,
        hidden: load.hidden,
        num_nodes: ds.num_nodes(),
        horizon: load.horizon,
        diffusion_steps: 2,
        layers: 1,
    };
    let model = PgtDcrnn::new(mc.clone(), &supports, st_bench::SEED);
    let snapshot = ModelSnapshot::capture(
        mc,
        ds.scaler().clone(),
        Some(288),
        &st_autograd::Module::params(&model),
        0,
    );

    // Sustained-load runs keep the forecast cache OFF: with it on, each
    // distinct window is computed once per serve call and the modeled
    // queue drains for free, which would fake away the overload this
    // harness exists to measure. A dedicated cache run shows the on-mode.
    // `max_delay` must live on the modeled timescale of the calibrated
    // stream (it is passed in after the pilot): modeled compute for a
    // small model is nanoseconds, so a wall-clock-flavored constant like
    // 20 µs would let the coalesce timer dominate every percentile.
    let deploy = |shards: usize, slo: SloConfig, cache: bool, max_delay: f64| -> BatchedServer {
        let mut cfg = ServeConfig::new(shards, load.entries);
        cfg.queue = QueueConfig {
            max_batch: 32,
            max_delay_secs: max_delay,
        };
        cfg.forecast_cache = cache;
        cfg.slo = slo;
        BatchedServer::with_history(snapshot.clone(), sig.adjacency.clone(), ds.data(), cfg)
    };

    // --- pilot: measure modeled per-shard service capacity ---
    // Every request arrives (effectively) at once; the charged busy time
    // of that saturated shard is the pure service content, so
    // requests / busy is the sustainable per-shard throughput with
    // micro-batching amortized in (timer effects excluded by design).
    let pilot_n = load.requests.min(10_000);
    let mut rng = XorShift(st_bench::SEED | 9);
    let pilot: Vec<Query> = (0..pilot_n)
        .map(|id| Query {
            id,
            node: (rng.next_u64() as usize) % load.nodes,
            window_end: load.entries - (rng.next_u64() as usize % load.window_universe),
            arrival_secs: id as f64 * 1e-12,
        })
        .collect();
    let pilot_report = deploy(1, SloConfig::unbounded(), false, 1e-3).serve(&pilot);
    let pilot_busy = pilot_report.shards[0].busy_secs;
    assert!(pilot_busy > 0.0, "pilot must charge modeled busy time");
    let capacity_hz = pilot_n as f64 / pilot_busy;
    println!(
        "pilot: {} requests, {:.4} modeled µs busy → 1-shard capacity {:.3} Mreq/s",
        pilot_n,
        pilot_busy * 1e6,
        capacity_hz * 1e-6
    );

    // --- the open-loop day: base rate targets ρ≈0.6 at `ab_shards`,
    // diurnal amplitude 0.8 pushes the rush hour to ρ≈1.08 (overload)
    // and the trough to ρ≈0.12. The coalesce timer is 1.5× a batch's
    // fill time at the base rate: batches dispatch by fullness in the
    // rush hour and by timer in the trough.
    let base_hz = 0.6 * load.ab_shards as f64 * capacity_hz;
    let max_delay = 1.5 * 32.0 / base_hz;
    let period = load.requests as f64 / base_hz;
    let stream = diurnal_poisson_stream(&load, base_hz, 0.8, period);
    let queries = queries_of(&stream);
    let distinct = distinct_users(&stream, load.population);
    println!(
        "stream: {} requests from {} distinct users (population {}), {:.1} modeled ms of day",
        load.requests,
        distinct,
        load.population,
        stream.last().map_or(0.0, |a| a.arrival_secs) * 1e3
    );
    if !smoke {
        assert!(
            distinct >= 100_000,
            "full mode must exercise ≥ 1e5 distinct users, got {distinct}"
        );
    }

    // --- shard sweep: one tenant per deployment in a shared registry ---
    let registry = SnapshotRegistry::new();
    let mut table = Table::new(
        "bench_serve: open-loop diurnal load (modeled time)",
        &[
            "run",
            "shards",
            "p50 µs",
            "p99 µs",
            "p999 µs",
            "shed %",
            "util mean",
            "util max",
            "batches",
            "cache hits",
        ],
    );
    let mut runs_json = Vec::new();
    let mut sweep = Vec::new();
    for &shards in load.sweep {
        let tenant = format!("sweep-{shards}");
        registry
            .register(
                &tenant,
                deploy(shards, SloConfig::unbounded(), false, max_delay),
            )
            .expect("fresh tenant");
        let report = registry.serve(&tenant, &queries).expect("registered");
        assert_eq!(
            report.results.len() + report.rejections.len(),
            load.requests,
            "no request may vanish"
        );
        let summary = summarize(shards, &report);
        summary.table_row(&mut table, "sweep");
        runs_json.push(summary.json("sweep"));
        sweep.push((summary, report));
    }
    let (first, last) = (&sweep[0].0, &sweep[sweep.len() - 1].0);
    assert!(
        last.p99_us < first.p99_us,
        "adding shards must cut modeled p99 under the same stream: \
         {} shards {:.3} µs !< {} shards {:.3} µs",
        last.shards,
        last.p99_us,
        first.shards,
        first.p99_us
    );

    // --- overload A/B at equal shard count: shed-nothing vs SLO ---
    // The deadline is searched upward from one batch's worth of modeled
    // work until the operating point is non-degenerate (sheds something,
    // keeps something); the depth bound backstops the queue.
    let unbounded = &sweep
        .iter()
        .find(|(s, _)| s.shards == load.ab_shards)
        .expect("ab_shards is in the sweep")
        .1;
    let mut slo = SloConfig {
        // The shed-nothing run's median latency: above the per-batch
        // remote-fetch floor (every realized latency includes it), below
        // the rush-hour tail — so the deadline bites exactly where the
        // day overloads.
        deadline_secs: unbounded.p50_latency_secs,
        max_queue_depth: 4_096,
    };
    let mut governed = None;
    for _ in 0..6 {
        let tenant = deploy(load.ab_shards, slo, false, max_delay);
        if registry.swap("slo", tenant).is_err() {
            registry
                .register("slo", deploy(load.ab_shards, slo, false, max_delay))
                .expect("first SLO deployment");
        }
        let report = registry.serve("slo", &queries).expect("registered");
        println!(
            "slo search: deadline {:.4} µs → shed {:.2}%",
            slo.deadline_secs * 1e6,
            report.shed_rate * 1e2
        );
        if report.shed_rate > 0.0 && report.shed_rate < 0.9 {
            governed = Some(report);
            break;
        }
        let widen = report.shed_rate >= 0.9;
        governed = Some(report);
        // The viable band sits between the per-batch fetch floor and the
        // rush-hour tail — step gently or the search jumps across it.
        if widen {
            slo.deadline_secs *= 1.2;
        } else {
            slo.deadline_secs /= 1.2;
        }
    }
    let governed = governed.expect("at least one SLO run");
    assert_eq!(
        governed.results.len() + governed.rejections.len(),
        load.requests,
        "every request is answered or shed with a typed reason"
    );
    let governed_summary = summarize(load.ab_shards, &governed);
    governed_summary.table_row(&mut table, "slo");
    runs_json.push(governed_summary.json("slo"));

    // --- forecast-cache observation at the same shard count ---
    registry
        .register(
            "cache",
            deploy(load.ab_shards, SloConfig::unbounded(), true, max_delay),
        )
        .expect("fresh tenant");
    let cached = registry.serve("cache", &queries).expect("registered");
    let cached_summary = summarize(load.ab_shards, &cached);
    cached_summary.table_row(&mut table, "cache");
    runs_json.push(cached_summary.json("cache"));
    assert!(
        cached_summary.cache_hits > 0,
        "a {}-window hot set under {} requests must hit the window cache",
        load.window_universe,
        load.requests
    );
    println!("{}", table.to_text());

    println!(
        "overload A/B @ {} shards: unbounded p99 {:.3} µs | SLO p99 {:.3} µs \
         (deadline {:.3} µs, depth {}), shed {:.2}%",
        load.ab_shards,
        unbounded.p99_latency_secs * 1e6,
        governed.p99_latency_secs * 1e6,
        slo.deadline_secs * 1e6,
        slo.max_queue_depth,
        governed.shed_rate * 1e2
    );
    assert!(
        governed.shed_rate > 0.0,
        "the diurnal rush hour is provisioned above capacity; admission control must shed"
    );
    assert!(
        governed.p99_latency_secs < unbounded.p99_latency_secs,
        "admission control must strictly improve modeled p99 under overload: \
         {} !< {}",
        governed.p99_latency_secs,
        unbounded.p99_latency_secs
    );

    // --- artifacts ---
    let json = format!(
        "{{\n  \"bench\": \"bench_serve\",\n  \"smoke\": {},\n  \
         \"population\": {},\n  \"distinct_users\": {},\n  \"requests\": {},\n  \
         \"service_ns\": {:.3},\n  \"base_hz\": {:.1},\n  \
         \"deadline_secs\": {:e},\n  \"max_queue_depth\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        smoke,
        load.population,
        distinct,
        load.requests,
        1e9 / capacity_hz,
        base_hz,
        slo.deadline_secs,
        slo.max_queue_depth,
        runs_json.join(",\n")
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    let p99_win = unbounded.p99_latency_secs / governed.p99_latency_secs;
    let mut records = RecordSet::new();
    records.push(
        "Serving plane",
        "overload p99: SLO admission vs shed-nothing, equal shards",
        "strictly better under a diurnal rush hour",
        format!(
            "{p99_win:.2}× better, shed {:.2}%",
            governed.shed_rate * 1e2
        ),
        p99_win > 1.0,
        "open-loop Poisson + diurnal arrivals; deadline + depth admission",
    );
    records.push(
        "Serving plane",
        "load scale",
        "≥ 1e5 distinct users against a 1e6-user population (full mode)",
        format!(
            "{distinct} distinct over {} requests{}",
            load.requests,
            if smoke { " (smoke)" } else { "" }
        ),
        smoke || distinct >= 100_000,
        "bitset-tracked user ids, xorshift64* stream",
    );
    st_bench::emit_records("bench_serve", &records);
}
