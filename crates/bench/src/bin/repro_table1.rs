//! Reproduce **Table 1**: dataset sizes before and after preprocessing
//! (float64), computed analytically from the registered Table-1 shapes via
//! the paper's eq. (1). Also prints the eq.-(2) index-batching footprint as
//! the extra column this library adds.

use st_bench::{emit_records, gib};
use st_data::datasets::DatasetSpec;
use st_data::preprocess::materialized_bytes;
use st_report::record::RecordSet;
use st_report::table::{fmt_bytes, Table};

fn main() {
    let mut table = Table::new(
        "Table 1 — dataset sizes (float64)",
        &[
            "Dataset",
            "Type",
            "Nodes",
            "Entries",
            "Before",
            "After (eq. 1)",
            "Index-batching (eq. 2)",
        ],
    );
    let mut records = RecordSet::new();
    // Paper's printed "after" sizes for the shape check.
    let paper_after = [
        ("Chickenpox-Hungary", 657.92e3),
        ("Windmill-Large", 712.80e6),
        ("METR-LA", 2.54 * (1u64 << 30) as f64),
        ("PeMS-BAY", 6.05 * (1u64 << 30) as f64),
        ("PeMS-All-LA", 102.08 * (1u64 << 30) as f64),
        ("PeMS", 419.46 * (1u64 << 30) as f64),
    ];
    for (spec, (name, paper)) in DatasetSpec::all().iter().zip(paper_after) {
        let before = spec.raw_bytes(8);
        let after =
            materialized_bytes(spec.entries, spec.horizon, spec.nodes, spec.aug_features, 8);
        let index = pgt_index::index_batching_bytes(
            spec.entries,
            spec.horizon,
            spec.nodes,
            spec.aug_features,
            8,
        );
        table.row(&[
            spec.name.to_string(),
            format!("{:?}", spec.domain),
            spec.nodes.to_string(),
            spec.entries.to_string(),
            fmt_bytes(before),
            fmt_bytes(after),
            fmt_bytes(index),
        ]);
        let rel = (after as f64 - paper).abs() / paper;
        records.push(
            "Table 1",
            &format!("{name} size after preprocessing"),
            fmt_bytes(paper as u64),
            fmt_bytes(after),
            rel < 0.02,
            "eq. (1) from registered shapes; paper mixes KB/MB/GB unit bases",
        );
    }
    println!("{}", table.to_text());
    println!(
        "PeMS reduction from index-batching: {:.1}% ({} -> {})",
        100.0
            * (1.0
                - pgt_index::index_batching_bytes(105_120, 12, 11_160, 2, 8) as f64
                    / materialized_bytes(105_120, 12, 11_160, 2, 8) as f64),
        fmt_bytes(materialized_bytes(105_120, 12, 11_160, 2, 8)),
        fmt_bytes(pgt_index::index_batching_bytes(105_120, 12, 11_160, 2, 8)),
    );
    let _ = gib(0);
    emit_records("Table 1 — dataset sizes", &records);
}
