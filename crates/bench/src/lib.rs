//! Shared configuration and helpers for the reproduction harness.
//!
//! Each `repro_*` binary regenerates one table or figure from the paper.
//! Experiments run in two coupled modes (see `DESIGN.md` §2):
//!
//! - **measured** — real training on `MEASURE_SCALE`-reduced synthetic
//!   datasets (fits the test machine), producing real losses and real
//!   relative runtimes;
//! - **paper-scale projection** — virtual memory replays and the analytic
//!   cost model driven by the full Table-1 shapes, producing the GB / minute
//!   numbers the paper reports.

use st_report::record::RecordSet;

/// Default scale factor for measured runs (fraction of full dataset size).
pub const MEASURE_SCALE: f64 = 0.02;

/// Smaller scale for the heavyweight multi-worker experiments.
pub const DIST_SCALE: f64 = 0.012;

/// Shared RNG seed across the harness.
pub const SEED: u64 = 2025;

/// Epochs for measured single-GPU learning runs (the paper uses 100 for
/// Table 3 and 30 for PeMS-scale runs; measured runs shrink this with the
/// data so convergence behavior is still visible).
pub const MEASURE_EPOCHS: usize = 12;

/// Quick-mode epochs for the distributed measured runs.
pub const DIST_EPOCHS: usize = 4;

/// True when the harness should run extra-small (CI smoke mode).
/// Controlled by the `PGT_SMOKE` environment variable.
pub fn smoke() -> bool {
    std::env::var("PGT_SMOKE").is_ok()
}

/// Scale factor honoring smoke mode.
pub fn measure_scale() -> f64 {
    if smoke() {
        0.008
    } else {
        MEASURE_SCALE
    }
}

/// Measured epochs honoring smoke mode.
pub fn measure_epochs() -> usize {
    if smoke() {
        3
    } else {
        MEASURE_EPOCHS
    }
}

/// Print a record set as the standard harness footer and append it to
/// `target/experiment_records.md` so `EXPERIMENTS.md` can be assembled.
pub fn emit_records(experiment: &str, records: &RecordSet) {
    println!("\n--- paper vs ours ({experiment}) ---");
    print!("{}", records.to_markdown());
    let dir = std::path::Path::new("target");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("experiment_records.md");
    let mut body = std::fs::read_to_string(&path).unwrap_or_default();
    body.push_str(&format!("\n## {experiment}\n\n"));
    body.push_str(&records.to_markdown());
    let _ = std::fs::write(&path, body);
}

/// Bytes → GiB.
pub fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Seconds → minutes.
pub fn minutes(secs: f64) -> f64 {
    secs / 60.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert_eq!(gib(1 << 30), 1.0);
        assert_eq!(minutes(120.0), 2.0);
    }

    #[test]
    fn scales_are_sane() {
        const { assert!(MEASURE_SCALE > 0.0 && MEASURE_SCALE < 0.2) };
        const { assert!(DIST_SCALE <= MEASURE_SCALE) };
    }
}
