//! Criterion bench: collective primitives of the simulated DDP runtime —
//! all-reduce latency vs world size and payload, and the shared-seed global
//! shuffle (which must be cheap enough to run every epoch on every worker).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_dist::launch::run_workers;
use st_dist::shuffle::global_stripe;
use st_dist::topology::ClusterTopology;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for world in [2usize, 4] {
        for len in [1usize << 10, 1 << 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("w{world}"), len),
                &(world, len),
                |b, &(world, len)| {
                    b.iter(|| {
                        run_workers(world, ClusterTopology::polaris(), |mut ctx| {
                            let mut buf = vec![ctx.comm.rank() as f32; len];
                            ctx.comm.all_reduce_sum(&mut buf);
                            buf[0]
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_global_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_shuffle");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| global_stripe(n, 16, 3, 42, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_global_shuffle);
criterion_main!(benches);
