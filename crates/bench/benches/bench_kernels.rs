//! Criterion bench: numerical kernels under the model zoo — dense matmul,
//! CSR spmm, and a full diffusion-convolution forward — the per-batch costs
//! the paper-scale runtime projection is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_autograd::Tape;
use st_graph::{diffusion_supports, generators::highway_corridor, Csr};
use st_models::dcrnn::DiffusionConv;
use st_models::Support;
use st_tensor::ops::matmul;
use st_tensor::random::{rng_from_seed, uniform};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let mut rng = rng_from_seed(1);
        let a = uniform([n, n], -1.0, 1.0, &mut rng);
        let b = uniform([n, n], -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bch, (a, b)| {
            bch.iter(|| matmul(a, b).unwrap());
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for nodes in [100usize, 400] {
        let net = highway_corridor(nodes, 2, 3);
        let p = st_graph::transition::random_walk(&net.adjacency);
        let mut rng = rng_from_seed(2);
        let x = uniform([nodes, 64], -1.0, 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(p, x),
            |b, (p, x): &(Csr, st_tensor::Tensor)| {
                b.iter(|| p.spmm(x).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_dconv_forward(c: &mut Criterion) {
    let nodes = 100;
    let net = highway_corridor(nodes, 2, 3);
    let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
    let mut rng = rng_from_seed(4);
    let layer = DiffusionConv::new("bench", supports, 66, 64, &mut rng);
    let x = uniform([8, nodes, 66], -1.0, 1.0, &mut rng);
    c.bench_function("dconv_forward_b8_n100", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let v = tape.leaf(x.clone());
            layer.forward(&tape, &v)
        });
    });
}

criterion_group!(benches, bench_matmul, bench_spmm, bench_dconv_forward);
criterion_main!(benches);
