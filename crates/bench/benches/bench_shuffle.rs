//! Criterion bench: shuffling strategies (§4.2, §5.4) and prefetch overlap.
//!
//! Two costs matter at runtime:
//! 1. deriving an epoch's visit order (global shared-seed permutation vs
//!    local permutation vs batch-order shuffle) — the communication-free
//!    global shuffle must not cost more CPU than the local variants;
//! 2. assembling batches through the data plane with and without
//!    prefetching (the §7 ablation's hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_dist::datasvc::DistributedArray;
use st_dist::prefetch::Prefetcher;
use st_dist::shuffle::{batch_order_shuffle, contiguous_partition, global_stripe, local_shuffle};
use st_dist::topology::ClusterTopology;
use st_tensor::Tensor;

fn bench_shuffle_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle_derivation");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("global_stripe", n), &n, |b, &n| {
            b.iter(|| global_stripe(n, 8, 3, 42, 7));
        });
        let part: Vec<usize> = contiguous_partition(n, 8, 3).collect();
        group.bench_with_input(BenchmarkId::new("local_shuffle", n), &n, |b, _| {
            b.iter(|| local_shuffle(&part, 42, 3, 7));
        });
        group.bench_with_input(BenchmarkId::new("batch_order", n), &n, |b, &n| {
            b.iter(|| batch_order_shuffle(n / 64, 42, 3, 7));
        });
    }
    group.finish();
}

fn bench_data_plane(c: &mut Criterion) {
    let rows = 4096usize;
    let array =
        || DistributedArray::new(Tensor::zeros([rows, 256]), 4, ClusterTopology::polaris(), 4);
    let cm = st_device::CostModel::polaris();
    let batches: Vec<Vec<usize>> = (0..32)
        .map(|b| (0..16).map(|i| (b * 97 + i * 13) % rows).collect())
        .collect();

    let mut group = c.benchmark_group("data_plane");
    group.bench_function("synchronous_fetch", |b| {
        let a = array();
        let clock = st_device::SimClock::new();
        b.iter(|| {
            for ids in &batches {
                criterion::black_box(a.fetch_rows(0, ids, &cm, &clock));
            }
        });
    });
    group.bench_function("prefetched_fetch", |b| {
        let a = array();
        let clock = st_device::SimClock::new();
        b.iter(|| {
            let mut pf = Prefetcher::new();
            let (t, secs) = a.fetch_rows_quoted(0, &batches[0], &cm);
            pf.issue(t, secs);
            for (i, _) in batches.iter().enumerate() {
                let data = pf.wait(&clock);
                if let Some(next) = batches.get(i + 1) {
                    let (t, secs) = a.fetch_rows_quoted(0, next, &cm);
                    pf.issue(t, secs);
                }
                pf.overlap(1e-4);
                criterion::black_box(data);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_shuffle_derivation, bench_data_plane);
criterion_main!(benches);
