//! Criterion bench: index-batching vs Algorithm-1 materialization.
//!
//! Two hot paths from the paper's design argument:
//! 1. preprocessing — building the dataset (index construction should be
//!    ~O(1) vs the materializer's O(S·h·N·F) copy);
//! 2. batch assembly — gathering a minibatch at runtime (index-batching
//!    must not be slower, backing the "<1% runtime difference" claim of
//!    Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgt_index::IndexDataset;
use st_data::datasets::{DatasetKind, DatasetSpec};
use st_data::preprocess::materialized_xy;
use st_data::splits::SplitRatios;
use st_data::synthetic;

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    for scale in [0.005f64, 0.01] {
        let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(scale);
        let sig = synthetic::generate(&spec, 7);
        group.bench_with_input(
            BenchmarkId::new("algorithm1_materialize", spec.entries),
            &sig,
            |b, sig| {
                b.iter(|| materialized_xy(sig, spec.horizon, SplitRatios::default()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("index_batching_build", spec.entries),
            &sig,
            |b, sig| {
                b.iter(|| {
                    IndexDataset::from_signal(sig, spec.horizon, SplitRatios::default(), None)
                });
            },
        );
    }
    group.finish();
}

fn bench_batch_assembly(c: &mut Criterion) {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.01);
    let sig = synthetic::generate(&spec, 7);
    let index = IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None);
    let std_out = materialized_xy(&sig, spec.horizon, SplitRatios::default());
    let ids: Vec<usize> = (0..32).map(|i| i * 3 % index.num_snapshots()).collect();

    let mut group = c.benchmark_group("batch_assembly");
    group.bench_function("index_batching", |b| {
        b.iter(|| index.batch(&ids));
    });
    group.bench_function("materialized_gather", |b| {
        b.iter(|| {
            (
                std_out.x.index_select0(&ids).unwrap(),
                std_out.y.index_select0(&ids).unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_snapshot_view(c: &mut Criterion) {
    let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.01);
    let sig = synthetic::generate(&spec, 7);
    let index = IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None);
    c.bench_function("zero_copy_snapshot", |b| {
        b.iter(|| index.snapshot(100));
    });
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_batch_assembly,
    bench_snapshot_view
);
criterion_main!(benches);
