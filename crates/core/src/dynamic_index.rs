//! Index-batching over **dynamic graphs with temporal signal** (§7).
//!
//! The paper's conclusion names this the first planned extension: PGT's
//! `DynamicGraphTemporalSignal`, where edge weights evolve alongside node
//! features. Index-batching generalizes cleanly because *both* halves of a
//! snapshot are index-addressed:
//!
//! - features: zero-copy views `data[s .. s+h]` / `data[s+h .. s+2h]`,
//!   exactly as in the static [`IndexDataset`](crate::IndexDataset);
//! - topology: the per-entry diffusion supports are computed **once per
//!   time entry** and shared by every overlapping window — a materializing
//!   pipeline would replicate each entry's supports into `horizon`
//!   windows, the same eq.-(1) blow-up the paper eliminates for features.
//!
//! Training uses [`PgtDcrnn::forward_dynamic`], which swaps the diffusion
//! operators per step while sharing gate weights across time.

use std::sync::Arc;

use st_data::dynamic::DynamicGraphTemporalSignal;
use st_data::preprocess::num_snapshots;
use st_data::scaler::StandardScaler;
use st_data::splits::{SplitIndices, SplitRatios};
use st_data::storage::{RowStore, SignalStorage, StorageSpec};
use st_graph::partition::incremental::{
    GraphDelta, IncrementalConfig, IncrementalPartitioner, RepartitionPolicy, SparseGraph,
};
use st_graph::{diffusion_supports, HaloCostModel, PartitionerKind, Partitioning};
use st_models::{ModelConfig, PgtDcrnn, Support};
use st_tensor::Tensor;

/// Index-batched dataset over a dynamic-topology signal.
pub struct DynamicIndexDataset {
    /// Single standardized feature copy `[E, N, F]` — dense in RAM or
    /// out-of-core chunks, per the construction-time [`StorageSpec`].
    store: SignalStorage,
    /// Diffusion supports per time entry (one set per entry, shared by all
    /// windows that touch the entry).
    supports: Vec<Vec<Support>>,
    horizon: usize,
    scaler: StandardScaler,
    splits: SplitIndices,
}

impl DynamicIndexDataset {
    /// Build from a dynamic signal: fit the scaler on the training prefix,
    /// standardize the single feature copy, and compute per-entry supports.
    pub fn from_signal(
        signal: &DynamicGraphTemporalSignal,
        horizon: usize,
        ratios: SplitRatios,
        diffusion_steps: usize,
    ) -> Self {
        Self::from_signal_spec(
            signal,
            horizon,
            ratios,
            diffusion_steps,
            StorageSpec::InMemory,
        )
    }

    /// [`DynamicIndexDataset::from_signal`] with an explicit storage
    /// backend for the standardized feature copy. The dynamic signal's
    /// source tensor stays dense (its per-entry adjacencies dominate it
    /// anyway); `spec` bounds what the *dataset* keeps resident.
    pub fn from_signal_spec(
        signal: &DynamicGraphTemporalSignal,
        horizon: usize,
        ratios: SplitRatios,
        diffusion_steps: usize,
        spec: StorageSpec,
    ) -> Self {
        let s = num_snapshots(signal.entries(), horizon);
        assert!(s > 0, "signal too short for horizon {horizon}");
        let splits = ratios.split(s);
        let train_entries = (splits.train.end + 2 * horizon - 1).min(signal.entries());
        let train_view = signal
            .data
            .narrow(0, 0, train_entries)
            .expect("prefix in range");
        let scaler = StandardScaler::fit(&train_view);
        let data = scaler.transform(&signal.data);
        let supports = signal
            .adjacencies
            .iter()
            .map(|adj| Support::wrap_all(diffusion_supports(adj, diffusion_steps)))
            .collect();
        DynamicIndexDataset {
            store: SignalStorage::from_tensor_spec(data, spec),
            supports,
            horizon,
            scaler,
            splits,
        }
    }

    /// The dense standardized tensor (in-memory storage only; panics for
    /// chunked datasets — use [`DynamicIndexDataset::snapshot`]).
    pub fn data(&self) -> &Tensor {
        self.store.dense()
    }

    /// True when the feature copy streams from out-of-core chunks.
    pub fn is_chunked(&self) -> bool {
        self.store.is_chunked()
    }

    /// Number of `(x, y)` snapshot pairs.
    pub fn num_snapshots(&self) -> usize {
        num_snapshots(self.store.rows(), self.horizon)
    }

    /// Split ranges.
    pub fn splits(&self) -> &SplitIndices {
        &self.splits
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// Window length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.store.dims()[1]
    }

    /// Node features.
    pub fn num_features(&self) -> usize {
        self.store.dims()[2]
    }

    /// Snapshot `i`: `(x, y)` feature windows (zero-copy views in memory,
    /// streamed reads out-of-core) plus the borrowed per-step support sets
    /// for the x window.
    pub fn snapshot(&self, i: usize) -> (Tensor, Tensor, Vec<&[Support]>) {
        let (x, y, _) = self.snapshot_quoted(i);
        (x, y, self.supports_for(i))
    }

    /// [`DynamicIndexDataset::snapshot`] minus the supports, plus the chunk
    /// IO bytes this window's reads actually touched (0 in memory or on a
    /// warm cache).
    pub fn snapshot_quoted(&self, i: usize) -> (Tensor, Tensor, u64) {
        let h = self.horizon;
        match &self.store {
            SignalStorage::InMemory(data) => {
                let x = data
                    .narrow(0, i, h)
                    .expect("window in range")
                    .unsqueeze(0)
                    .expect("add batch dim");
                let y = data
                    .narrow(0, i + h, h)
                    .expect("label window in range")
                    .unsqueeze(0)
                    .expect("add batch dim");
                (x, y, 0)
            }
            store => {
                // One contiguous read covers both windows (they abut).
                let (rows, io) = store.read_rows_quoted(i..i + 2 * h);
                let x = rows
                    .narrow(0, 0, h)
                    .expect("x window")
                    .unsqueeze(0)
                    .expect("add batch dim")
                    .contiguous();
                let y = rows
                    .narrow(0, h, h)
                    .expect("y window")
                    .unsqueeze(0)
                    .expect("add batch dim")
                    .contiguous();
                (x, y, io)
            }
        }
    }

    /// The borrowed per-step support sets of window `i` alone (no feature
    /// views) — one slice per step, each shared by every window touching
    /// the entry.
    pub fn supports_for(&self, i: usize) -> Vec<&[Support]> {
        self.supports[i..i + self.horizon]
            .iter()
            .map(|s| s.as_slice())
            .collect()
    }

    /// Resident bytes of the index layout (features f32 + support CSRs +
    /// window bookkeeping) — the dynamic analogue of eq. (2).
    pub fn resident_bytes(&self) -> u64 {
        let features = self.store.resident_bytes();
        let supports: u64 = self
            .supports
            .iter()
            .flat_map(|per_entry| per_entry.iter())
            .map(|s| s.mat.approx_bytes() as u64)
            .sum();
        features + supports + self.num_snapshots() as u64 * 8
    }

    /// What a materializing pipeline would hold instead: every window's
    /// features duplicated twice (eq. 1) *and* every window's per-step
    /// support list replicated.
    pub fn materialized_bytes(&self) -> u64 {
        let s = self.num_snapshots() as u64;
        let h = self.horizon as u64;
        let row = (self.store.row_width() * 4) as u64;
        let features = 2 * s * h * row;
        let per_entry_supports: u64 = self
            .supports
            .iter()
            .flat_map(|p| p.iter())
            .map(|sp| sp.mat.approx_bytes() as u64)
            .sum::<u64>()
            / self.supports.len().max(1) as u64;
        let supports = s * h * per_entry_supports;
        features + supports
    }
}

/// One segment of a dynamic graph's partition timeline: the partitioning
/// in force from [`TimelinePartition::start_entry`] until the next graph
/// mutation re-partitions.
#[derive(Debug, Clone)]
pub struct TimelinePartition {
    /// First time entry this partitioning covers.
    pub start_entry: usize,
    /// The partitioning of the graph as of `start_entry`. `Arc`'d so
    /// segments whose repair moved nothing *share* one allocation instead
    /// of cloning a full assignment per mutation.
    pub partitioning: Arc<Partitioning>,
    /// Modeled halo bytes of this segment's split under the run's
    /// [`HaloCostModel`] — what a partition-parallel consumer would pay
    /// per boundary while this topology holds.
    pub halo_bytes: u64,
}

/// Partition a dynamic signal's timeline with the configured partitioner:
/// entry 0's graph is partitioned up front, and every entry whose
/// adjacency differs from its predecessor's (a **graph mutation**)
/// triggers a re-partition — static stretches reuse the segment's split,
/// exactly as the per-entry diffusion supports are shared by every window
/// touching an entry.
///
/// This is the legacy [`RepartitionPolicy::Full`] path of
/// [`partition_timeline_with`]: every mutation runs the partitioner from
/// scratch.
pub fn partition_timeline(
    signal: &DynamicGraphTemporalSignal,
    k: usize,
    kind: PartitionerKind,
    horizon: usize,
) -> Vec<TimelinePartition> {
    partition_timeline_with(signal, k, kind, horizon, RepartitionPolicy::Full)
}

/// [`partition_timeline`] with an explicit [`RepartitionPolicy`].
///
/// Mutation detection is O(1) per entry for frozen stretches: consecutive
/// adjacencies are compared via [`st_graph::Adjacency::same_topology`]
/// (shared-buffer pointer equality, then a cached fingerprint) instead of
/// the historical full weight-array scan.
///
/// Under [`RepartitionPolicy::Incremental`], entry 0 still runs the
/// configured partitioner from scratch; every later mutation is turned
/// into a [`GraphDelta`] and *repaired* by an [`IncrementalPartitioner`]
/// (dirty-boundary refinement, drift-bounded fallback) instead of
/// re-running the full solve. Segments whose repair changed no assignment
/// share the previous segment's `Arc<Partitioning>`.
pub fn partition_timeline_with(
    signal: &DynamicGraphTemporalSignal,
    k: usize,
    kind: PartitionerKind,
    horizon: usize,
    policy: RepartitionPolicy,
) -> Vec<TimelinePartition> {
    assert!(k > 0, "need at least one part");
    let cost = HaloCostModel::new(horizon.max(1), signal.data.dim(2));
    let mut segments: Vec<TimelinePartition> = Vec::new();
    let mut inc: Option<IncrementalPartitioner> = None;
    for (t, adj) in signal.adjacencies.iter().enumerate() {
        let mutated = t == 0 || !adj.same_topology(&signal.adjacencies[t - 1]);
        if !mutated {
            continue;
        }
        match (policy, inc.as_mut()) {
            (RepartitionPolicy::Full, _) => {
                let partitioning = kind.partition(adj, None, k, horizon);
                let halo_bytes = cost.halo_bytes(adj, &partitioning);
                segments.push(TimelinePartition {
                    start_entry: t,
                    partitioning: Arc::new(partitioning),
                    halo_bytes,
                });
            }
            (RepartitionPolicy::Incremental { .. }, None) => {
                let partitioning = kind.partition(adj, None, k, horizon);
                let ip = IncrementalPartitioner::seed(
                    SparseGraph::from_adjacency(adj),
                    &partitioning,
                    IncrementalConfig::from_policy(policy, cost),
                );
                segments.push(TimelinePartition {
                    start_entry: t,
                    halo_bytes: ip.halo_bytes(),
                    partitioning: Arc::new(partitioning),
                });
                inc = Some(ip);
            }
            (RepartitionPolicy::Incremental { .. }, Some(ip)) => {
                let delta = GraphDelta::between(&signal.adjacencies[t - 1], adj);
                let stats = ip.apply_delta(&delta);
                let prev = segments.last().expect("seeded at the first mutation");
                let partitioning = if stats.moves == 0 && !stats.rebuilt {
                    Arc::clone(&prev.partitioning)
                } else {
                    Arc::new(ip.partitioning())
                };
                segments.push(TimelinePartition {
                    start_entry: t,
                    partitioning,
                    halo_bytes: stats.halo_bytes,
                });
            }
        }
    }
    segments
}

/// Configuration for dynamic-graph training.
#[derive(Debug, Clone)]
pub struct DynamicTrainConfig {
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Hidden width.
    pub hidden: usize,
    /// Diffusion steps K.
    pub diffusion_steps: usize,
    /// Seed for model init + shuffling.
    pub seed: u64,
    /// Gradient clip.
    pub grad_clip: Option<f32>,
    /// Spatial parts the partition timeline tracks (1 = unpartitioned; the
    /// single-worker trainer itself is unchanged — the timeline prices
    /// what a `parts`-way partition-parallel deployment would pay as the
    /// topology mutates).
    pub parts: usize,
    /// Storage backend for the standardized feature copy
    /// ([`StorageSpec::Chunked`] streams windows from disk through a
    /// bounded cache).
    pub storage: StorageSpec,
    /// The partitioner the timeline runs at entry 0 and (under
    /// [`RepartitionPolicy::Full`]) at every mutation.
    pub partitioner: PartitionerKind,
    /// How the timeline reacts to graph mutations: re-solve from scratch
    /// ([`RepartitionPolicy::Full`], the bit-identical legacy path) or
    /// repair the previous split around the dirty boundary
    /// ([`RepartitionPolicy::Incremental`]).
    pub repartition: RepartitionPolicy,
}

impl Default for DynamicTrainConfig {
    fn default() -> Self {
        DynamicTrainConfig {
            epochs: 3,
            lr: 1e-2,
            hidden: 8,
            diffusion_steps: 2,
            seed: 42,
            grad_clip: Some(5.0),
            parts: 1,
            storage: StorageSpec::InMemory,
            partitioner: PartitionerKind::Multilevel,
            repartition: RepartitionPolicy::Full,
        }
    }
}

/// Per-epoch record of a dynamic-graph run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicEpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training MAE (standardized).
    pub train_loss: f32,
    /// Validation MAE (original units).
    pub val_mae: f32,
}

/// The §7 dynamic-graph data plane: zero-copy feature windows plus
/// per-entry diffusion supports, visited one window at a time (each window
/// carries its own support sequence, so samples with different topology
/// cannot share a fused batch — the same constraint PGT's dynamic-signal
/// iterators have). Single-worker and model-independent
/// (`sync_gradients = false`), with the forward routed through
/// [`st_models::Seq2Seq::forward_dynamic`] so per-step operators come from
/// the dataset at runtime.
pub struct DynamicPlane {
    ds: DynamicIndexDataset,
    seed: u64,
    timeline: Vec<TimelinePartition>,
    cost: st_device::CostModel,
}

impl DynamicPlane {
    /// Wrap a dynamic dataset with an empty partition timeline.
    pub fn new(ds: DynamicIndexDataset, seed: u64) -> Self {
        DynamicPlane {
            ds,
            seed,
            timeline: Vec::new(),
            cost: st_device::CostModel::polaris(),
        }
    }

    /// Wrap a dynamic dataset plus the [`partition_timeline`] the
    /// configured partitioner produced: the plane re-partitions (segment
    /// boundaries) exactly where the graph mutates. `cm` prices chunk IO
    /// when the dataset streams from out-of-core storage.
    pub fn with_partition_timeline(
        ds: DynamicIndexDataset,
        seed: u64,
        timeline: Vec<TimelinePartition>,
        cm: &st_device::CostModel,
    ) -> Self {
        DynamicPlane {
            ds,
            seed,
            timeline,
            cost: cm.clone(),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &DynamicIndexDataset {
        &self.ds
    }

    /// The partition timeline (empty when the plane was built without a
    /// partitioner).
    pub fn partition_timeline(&self) -> &[TimelinePartition] {
        &self.timeline
    }

    /// Graph mutations that forced a re-partition.
    pub fn repartitions(&self) -> usize {
        self.timeline.len().saturating_sub(1)
    }

    /// The partitioning in force at time `entry`, if a timeline exists.
    pub fn partitioning_at(&self, entry: usize) -> Option<&Partitioning> {
        self.timeline
            .iter()
            .rev()
            .find(|s| s.start_entry <= entry)
            .map(|s| s.partitioning.as_ref())
    }
}

impl crate::engine::DistDataPlane for DynamicPlane {
    fn rounds_per_epoch(&self) -> usize {
        self.ds.splits().train.len()
    }

    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        let train = self.ds.splits().train.clone();
        st_tensor::random::permutation(train.len(), self.seed, epoch)
            .into_iter()
            .map(|idx| vec![train.start + idx])
            .collect()
    }

    fn plan_val(&self) -> Vec<Vec<usize>> {
        self.ds.splits().val.clone().map(|i| vec![i]).collect()
    }

    fn fetch_batch(&self, ids: &[usize]) -> crate::engine::Fetch {
        assert_eq!(ids.len(), 1, "dynamic windows cannot share a fused batch");
        let (x, y, io_bytes) = self.ds.snapshot_quoted(ids[0]);
        let secs = if io_bytes > 0 {
            self.cost.pfs_read(io_bytes, 1.0)
        } else {
            0.0
        };
        crate::engine::Fetch { x, y, secs }
    }

    fn remote(&self) -> bool {
        // Out-of-core windows carry modeled disk time; let the engine's
        // prefetcher hide it behind compute.
        self.ds.is_chunked()
    }

    fn sync_gradients(&self) -> bool {
        false
    }

    fn scaler_std(&self) -> f32 {
        self.ds.scaler().std
    }

    fn forward(
        &self,
        model: &dyn st_models::Seq2Seq,
        tape: &st_autograd::Tape,
        ids: &[usize],
        x: &st_tensor::Tensor,
    ) -> st_autograd::Var {
        model.forward_dynamic(tape, x, &self.ds.supports_for(ids[0]))
    }
}

/// Train a PGT-DCRNN over a dynamic signal with index-batching, via the
/// unified engine as a one-rank world.
pub fn train_dynamic(
    signal: &DynamicGraphTemporalSignal,
    horizon: usize,
    cfg: &DynamicTrainConfig,
) -> (PgtDcrnn, Vec<DynamicEpochStats>) {
    let ds = DynamicIndexDataset::from_signal_spec(
        signal,
        horizon,
        SplitRatios::default(),
        cfg.diffusion_steps,
        cfg.storage,
    );
    let std = ds.scaler().std;
    let mut dist_cfg = crate::dist_index::DistConfig::new(1, cfg.epochs, horizon);
    dist_cfg.batch_per_worker = 1;
    dist_cfg.lr = cfg.lr;
    dist_cfg.seed = cfg.seed;
    dist_cfg.grad_clip = cfg.grad_clip;
    // Re-partition with the configured partitioner at every graph
    // mutation: the plane carries the timeline so partition-parallel
    // consumers can price each topology segment's halo. With the default
    // `parts = 1` there is nothing to split and nothing to price — skip
    // the per-entry adjacency scans entirely.
    let timeline = if cfg.parts > 1 {
        partition_timeline_with(signal, cfg.parts, cfg.partitioner, horizon, cfg.repartition)
    } else {
        Vec::new()
    };

    let (report, model) = crate::engine::run_single(
        &dist_cfg,
        &crate::engine::EngineOptions::default(),
        move |cm| {
            let model = PgtDcrnn::new(
                ModelConfig {
                    input_dim: ds.num_features(),
                    output_dim: 1,
                    hidden: cfg.hidden,
                    num_nodes: ds.num_nodes(),
                    horizon,
                    diffusion_steps: cfg.diffusion_steps,
                    layers: 1,
                },
                // Initial supports only fix the weight layout (support
                // count); the per-step operators come from the dataset at
                // runtime through the plane's forward hook.
                &ds.supports[0],
                cfg.seed,
            );
            (
                DynamicPlane::with_partition_timeline(ds, cfg.seed, timeline, cm),
                model,
            )
        },
    )
    .expect("engine run without resume cannot fail");
    // Rebuild original-unit validation MAE from the engine's raw f64 sums
    // (the rank-uniform f32 gather path rounds differently than the
    // historical single-worker formula).
    let stats = report
        .epochs
        .iter()
        .zip(report.rank_val[0].iter())
        .map(|(e, &(abs_sum, n))| DynamicEpochStats {
            epoch: e.epoch,
            train_loss: e.train_loss,
            val_mae: (abs_sum / n.max(1) as f64) as f32 * std,
        })
        .collect();
    (model, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::dynamic::synthetic_dynamic_traffic;

    fn ds() -> DynamicIndexDataset {
        let sig = synthetic_dynamic_traffic(6, 60, 5);
        DynamicIndexDataset::from_signal(&sig, 4, SplitRatios::default(), 2)
    }

    #[test]
    fn snapshot_shapes_and_support_borrowing() {
        let d = ds();
        let (x, y, sup) = d.snapshot(3);
        assert_eq!(x.dims(), &[1, 4, 6, 1]);
        assert_eq!(y.dims(), &[1, 4, 6, 1]);
        assert_eq!(sup.len(), 4);
        // Supports are borrowed from the per-entry store, not cloned:
        // entry 4 appears in windows 1..=4 and is the same allocation.
        let (_, _, sup_b) = d.snapshot(4);
        assert!(
            std::ptr::eq(sup[1], sup_b[0]),
            "entry 4 shared by windows 3 and 4"
        );
    }

    #[test]
    fn feature_views_are_zero_copy() {
        let d = ds();
        let (x, _, _) = d.snapshot(0);
        assert!(x.shares_storage(d.data()), "x must be a view");
    }

    #[test]
    fn standardization_uses_train_prefix() {
        let d = ds();
        // Standardized training data has ≈0 mean.
        let train_view = d.data().narrow(0, 0, d.splits().train.end).unwrap();
        let vals = train_view.to_vec();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!(mean.abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn index_layout_beats_materialization() {
        let d = ds();
        assert!(
            d.resident_bytes() * 2 < d.materialized_bytes(),
            "index {} vs materialized {}",
            d.resident_bytes(),
            d.materialized_bytes()
        );
    }

    #[test]
    fn mutations_trigger_repartitioning_and_static_graphs_do_not() {
        // synthetic_dynamic_traffic modulates edge weights every entry, so
        // every entry is a mutation: one segment per entry.
        let sig = synthetic_dynamic_traffic(6, 20, 5);
        let segments = partition_timeline(&sig, 2, PartitionerKind::Multilevel, 4);
        assert_eq!(segments.len(), 20, "every mutation re-partitions");
        for s in &segments {
            assert_eq!(s.partitioning.num_parts(), 2);
            assert_eq!(s.partitioning.part_sizes().iter().sum::<usize>(), 6);
        }

        // A frozen topology never re-partitions.
        let frozen =
            DynamicGraphTemporalSignal::new(sig.data.clone(), vec![sig.adjacencies[0].clone(); 20]);
        let segments = partition_timeline(&frozen, 2, PartitionerKind::Multilevel, 4);
        assert_eq!(segments.len(), 1, "static topology keeps one partition");
        assert_eq!(segments[0].start_entry, 0);
        assert!(segments[0].halo_bytes > 0, "a 2-way split cuts something");
    }

    #[test]
    fn incremental_timeline_matches_segment_structure_and_shares_arcs() {
        let sig = synthetic_dynamic_traffic(6, 20, 5);
        let full = partition_timeline(&sig, 2, PartitionerKind::Multilevel, 4);
        let inc = partition_timeline_with(
            &sig,
            2,
            PartitionerKind::Multilevel,
            4,
            RepartitionPolicy::incremental(),
        );
        // Same mutation boundaries; entry 0 is the same dense solve.
        assert_eq!(inc.len(), full.len());
        assert_eq!(
            inc[0].partitioning.assignment(),
            full[0].partitioning.assignment(),
            "entry 0 seeds from the configured partitioner"
        );
        for (a, b) in inc.iter().zip(&full) {
            assert_eq!(a.start_entry, b.start_entry);
            assert_eq!(a.partitioning.num_parts(), 2);
            assert_eq!(a.partitioning.part_sizes().iter().sum::<usize>(), 6);
        }
        // Weight-only churn moves nothing on this tiny corridor, so the
        // repaired segments share the seed's allocation.
        assert!(
            inc.windows(2)
                .any(|w| Arc::ptr_eq(&w[0].partitioning, &w[1].partitioning)),
            "no-move repairs must share Arc'd partitionings"
        );
    }

    #[test]
    fn incremental_policy_trains_like_full() {
        let sig = synthetic_dynamic_traffic(6, 80, 7);
        let full_cfg = DynamicTrainConfig {
            epochs: 2,
            parts: 2,
            ..Default::default()
        };
        let inc_cfg = DynamicTrainConfig {
            repartition: RepartitionPolicy::incremental(),
            ..full_cfg.clone()
        };
        let (_, full_stats) = train_dynamic(&sig, 4, &full_cfg);
        let (_, inc_stats) = train_dynamic(&sig, 4, &inc_cfg);
        // The timeline prices partition-parallel halo; the single-worker
        // trajectory itself is identical under either policy.
        for (f, i) in full_stats.iter().zip(&inc_stats) {
            assert_eq!(f.train_loss, i.train_loss);
            assert_eq!(f.val_mae, i.val_mae);
        }
    }

    #[test]
    fn plane_carries_the_timeline_through_training() {
        let sig = synthetic_dynamic_traffic(6, 60, 5);
        let ds = DynamicIndexDataset::from_signal(&sig, 4, SplitRatios::default(), 2);
        let timeline = partition_timeline(&sig, 2, PartitionerKind::Multilevel, 4);
        let plane = DynamicPlane::with_partition_timeline(
            ds,
            1,
            timeline,
            &st_device::CostModel::polaris(),
        );
        assert_eq!(plane.repartitions(), 59);
        let p = plane.partitioning_at(7).expect("timeline covers entry 7");
        assert_eq!(p.num_parts(), 2);
        // Plain construction carries no timeline.
        let plane = DynamicPlane::new(
            DynamicIndexDataset::from_signal(&sig, 4, SplitRatios::default(), 2),
            1,
        );
        assert!(plane.partition_timeline().is_empty());
        assert_eq!(plane.repartitions(), 0);
        assert!(plane.partitioning_at(0).is_none());
    }

    #[test]
    fn dynamic_training_learns() {
        let sig = synthetic_dynamic_traffic(6, 80, 7);
        let cfg = DynamicTrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let (_, stats) = train_dynamic(&sig, 4, &cfg);
        assert_eq!(stats.len(), 3);
        let first = stats.first().unwrap().train_loss;
        let last = stats.last().unwrap().train_loss;
        assert!(
            last < first,
            "dynamic-graph loss must fall: {first} -> {last}"
        );
        assert!(stats.last().unwrap().val_mae.is_finite());
    }
}
