//! Generalized-distributed-index-batching (§5.4): larger-than-memory mode.
//!
//! When no worker can hold the full dataset, the single standardized copy is
//! partitioned by **entries** across workers. Worker `r` owns a contiguous
//! entry range and additionally reads a *halo* of `2·horizon − 1` entries
//! past its right edge (one contiguous remote read at setup), after which it
//! can reconstruct every snapshot whose window starts in its range without
//! further communication. Shuffling is **batch-level within the partition**
//! (Table 5 shows this costs no accuracy versus global shuffling), so epochs
//! stay communication-free on the data plane — versus baseline DDP whose
//! globally-shuffled fetches touch remote partitions every batch (Fig. 9).

use crate::dist_index::{DistConfig, DistEpochStats, DistRunResult};
use crate::index_batching::IndexDataset;
use st_autograd::loss;
use st_autograd::optim::{clip_grad_norm, Adam, Optimizer};
use st_autograd::Tape;
use st_data::scaler::StandardScaler;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::SplitRatios;
use st_dist::datasvc::DistributedArray;
use st_dist::ddp::DdpContext;
use st_dist::launch::run_workers;
use st_dist::shuffle;
use st_models::Seq2Seq;

/// A worker's slice of the generalized dataset: its entry partition plus
/// halo, re-wrapped as a local [`IndexDataset`] over *local* snapshot ids.
pub struct GenPartition {
    /// Local dataset over the partition + halo entries.
    pub local: IndexDataset,
    /// Global snapshot ids covered by this partition (train split only).
    pub global_train_ids: std::ops::Range<usize>,
    /// Global snapshot ids covered by this partition (validation split).
    pub global_val_ids: std::ops::Range<usize>,
    /// First global entry owned by this worker.
    pub entry_offset: usize,
}

/// Build worker `rank`'s partition from the shared entry array.
///
/// `entries_array` is the standardized `[E, N·F]`-flattened signal wrapped
/// in a [`DistributedArray`]; the halo read past the partition boundary is
/// the only remote traffic.
pub fn build_partition(
    entries_array: &DistributedArray,
    scaler: StandardScaler,
    nodes: usize,
    features: usize,
    horizon: usize,
    world: usize,
    rank: usize,
    snapshot_split: &st_data::splits::SplitIndices,
    cost: &st_device::CostModel,
    clock: &st_device::SimClock,
) -> GenPartition {
    let num_entries = entries_array.rows();
    let total_snaps = st_data::preprocess::num_snapshots(num_entries, horizon);

    // Partition *snapshots* contiguously; derive the entry range + halo.
    let snap_range = shuffle::contiguous_partition(total_snaps, world, rank);
    let entry_start = snap_range.start;
    let entry_end = (snap_range.end + 2 * horizon - 1).min(num_entries);

    // One contiguous (mostly-local + halo) read.
    let rows = entries_array.fetch_range(rank, entry_start..entry_end, cost, clock);
    let local_entries = entry_end - entry_start;
    let data = rows
        .reshape([local_entries, nodes, features])
        .expect("row size is nodes*features");

    // Local split bookkeeping: which of my snapshots are train/val.
    let inter = |a: &std::ops::Range<usize>, b: &std::ops::Range<usize>| {
        a.start.max(b.start)..a.end.min(b.end).max(a.start.max(b.start))
    };
    let train = inter(&snap_range, &snapshot_split.train);
    let val = inter(&snap_range, &snapshot_split.val);

    // Local ids are global ids minus the entry offset; the local dataset's
    // own split ranges are unused (we drive ids explicitly).
    let local = IndexDataset::from_standardized(
        data,
        horizon,
        scaler,
        SplitRatios::default().split(st_data::preprocess::num_snapshots(local_entries, horizon)),
    );
    GenPartition {
        local,
        global_train_ids: train,
        global_val_ids: val,
        entry_offset: entry_start,
    }
}

impl GenPartition {
    /// Fetch a batch by **global** snapshot ids (must lie in this partition).
    pub fn batch_global(&self, global_ids: &[usize]) -> (st_tensor::Tensor, st_tensor::Tensor) {
        let local: Vec<usize> = global_ids
            .iter()
            .map(|&g| {
                assert!(
                    g >= self.entry_offset,
                    "snapshot {g} not in partition starting at {}",
                    self.entry_offset
                );
                g - self.entry_offset
            })
            .collect();
        self.local.batch(&local)
    }
}

/// Run generalized-distributed-index-batching.
pub fn run_generalized<F>(
    signal: &StaticGraphTemporalSignal,
    cfg: &DistConfig,
    model_factory: F,
) -> DistRunResult
where
    F: Fn(&IndexDataset) -> Box<dyn Seq2Seq> + Sync,
{
    let start = std::time::Instant::now();
    // Standardize once (the paper's generalized mode preprocesses
    // distributedly; the single-copy standardization is the index-batching
    // part, and the DistributedArray below is the partitioning part).
    let augmented;
    let sig = match cfg.time_period {
        Some(p) => {
            augmented = signal.with_time_feature(p);
            &augmented
        }
        None => signal,
    };
    let full = IndexDataset::from_signal(sig, cfg.horizon, SplitRatios::default(), None);
    let (nodes, features) = (full.num_nodes(), full.num_features());
    let scaler = *full.scaler();
    let split = full.splits().clone();
    let entries = full
        .data()
        .reshape([sig.entries(), nodes * features])
        .expect("flatten");
    let shared = DistributedArray::new(entries, cfg.world, cfg.topology, 4);

    // Partitions intersected with the train split are ragged (a rank owning
    // only validation-era snapshots may have *zero* train batches); all
    // ranks agree on the max batch count so per-step all-reduces line up.
    let total_snaps = st_data::preprocess::num_snapshots(sig.entries(), cfg.horizon);
    let rounds = shuffle::common_rounds(
        (0..cfg.world).map(|r| {
            let snaps = shuffle::contiguous_partition(total_snaps, cfg.world, r);
            shuffle::range_overlap(&snaps, &split.train)
        }),
        cfg.batch_per_worker,
    );

    let results = run_workers(cfg.world, cfg.topology, |mut ctx| {
        let cm = ctx.comm.hub().cost_model().clone();
        let part = build_partition(
            &shared,
            scaler,
            nodes,
            features,
            cfg.horizon,
            cfg.world,
            ctx.rank(),
            &split,
            &cm,
            &ctx.clock,
        );
        let model = model_factory(&part.local);
        let mut ddp = DdpContext::new(model.params());
        ddp.broadcast_parameters(&mut ctx.comm);
        let mut opt = Adam::new(model.params(), cfg.effective_lr());
        let gpu_flops = cm.gpu_flops;

        let train_ids: Vec<usize> = part.global_train_ids.clone().collect();
        let num_batches = train_ids.len().div_ceil(cfg.batch_per_worker.max(1));
        let mut epoch_stats = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            // Batch-level shuffling: fixed batch contents, shuffled order.
            let order =
                shuffle::batch_order_shuffle(num_batches, cfg.seed, ctx.rank(), epoch as u64);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for round in 0..rounds {
                opt.zero_grad();
                if let Some(&b) = order.get(round) {
                    let lo = b * cfg.batch_per_worker;
                    let hi = ((b + 1) * cfg.batch_per_worker).min(train_ids.len());
                    if lo < hi {
                        let (x, y) = part.batch_global(&train_ids[lo..hi]);
                        let target = y.narrow(3, 0, 1).expect("feature 0").contiguous();
                        let tape = Tape::new();
                        let pred = model.forward(&tape, &x);
                        let tgt = tape.constant(target);
                        let l = loss::mae(&pred, &tgt);
                        loss_sum += l.value().item() as f64;
                        batches += 1;
                        let grads = tape.backward(&l);
                        tape.accumulate_param_grads(&grads);
                        ctx.clock
                            .advance_compute(3.0 * model.flops_per_forward(hi - lo) / gpu_flops);
                    }
                }
                // Ranks whose partition holds fewer (or zero) train batches
                // contribute zero gradients but still meet every collective.
                ddp.average_gradients(&mut ctx.comm);
                if let Some(clip) = cfg.grad_clip {
                    clip_grad_norm(&model.params(), clip);
                }
                opt.step();
            }
            let sums = ctx
                .comm
                .all_gather_scalar((loss_sum / batches.max(1) as f64) as f32);
            let train_loss = sums.iter().sum::<f32>() / sums.len() as f32;

            // Validation over this partition's val snapshots.
            let val_ids: Vec<usize> = part.global_val_ids.clone().collect();
            let mut abs_sum = 0.0f64;
            let mut count = 0usize;
            for chunk in val_ids.chunks(cfg.batch_per_worker.max(1)) {
                if chunk.is_empty() {
                    continue;
                }
                let (x, y) = part.batch_global(chunk);
                let target = y.narrow(3, 0, 1).expect("feature 0").contiguous();
                let tape = Tape::new();
                let pred = model.forward(&tape, &x);
                ctx.clock
                    .advance_compute(model.flops_per_forward(chunk.len()) / gpu_flops);
                let diff = st_tensor::ops::sub(pred.value(), &target).expect("same shape");
                abs_sum += st_tensor::ops::abs(&diff)
                    .to_vec()
                    .iter()
                    .map(|&v| v as f64)
                    .sum::<f64>();
                count += target.numel();
            }
            let totals = ctx.comm.all_gather_scalar(abs_sum as f32);
            let counts = ctx.comm.all_gather_scalar(count as f32);
            let val_mae =
                totals.iter().sum::<f32>() / counts.iter().sum::<f32>().max(1.0) * scaler.std;
            epoch_stats.push(DistEpochStats {
                epoch,
                train_loss,
                val_mae,
            });
        }
        (
            epoch_stats,
            ctx.clock.compute_secs(),
            ctx.clock.comm_secs(),
            ctx.clock.now(),
            ctx.comm.hub().bytes_moved(),
        )
    });

    let data_bytes = shared.remote_bytes();
    let (epochs, compute, comm, total, grad_bytes) = results.into_iter().next().expect("rank 0");
    DistRunResult {
        epochs,
        sim_compute_secs: compute,
        sim_comm_secs: comm,
        sim_total_secs: total,
        bytes_moved: grad_bytes + data_bytes,
        data_plane_bytes: data_bytes, // setup halo reads only
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::synthetic;
    use st_dist::topology::ClusterTopology;
    use st_graph::diffusion_supports;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn setup() -> (DatasetSpec, StaticGraphTemporalSignal) {
        let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.012);
        let sig = synthetic::generate(&spec, 31);
        (spec, sig)
    }

    fn factory(
        sig: &StaticGraphTemporalSignal,
        horizon: usize,
    ) -> impl Fn(&IndexDataset) -> Box<dyn Seq2Seq> + Sync + '_ {
        move |ds: &IndexDataset| {
            let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
            let mc = ModelConfig {
                input_dim: ds.num_features(),
                output_dim: 1,
                hidden: 8,
                num_nodes: ds.num_nodes(),
                horizon,
                diffusion_steps: 2,
                layers: 1,
            };
            Box::new(PgtDcrnn::new(mc, &supports, 42))
        }
    }

    #[test]
    fn partition_reconstruction_matches_single_copy() {
        // The halo-window property test from DESIGN.md: snapshots built
        // from partition+halo equal snapshots from the full single copy.
        let (spec, sig) = setup();
        let sig_aug = sig.with_time_feature(spec.period);
        let full = IndexDataset::from_signal(&sig_aug, spec.horizon, SplitRatios::default(), None);
        let entries = full
            .data()
            .reshape([sig.entries(), full.num_nodes() * full.num_features()])
            .unwrap();
        let shared = DistributedArray::new(entries, 3, ClusterTopology::polaris(), 4);
        let cm = st_device::CostModel::polaris();
        let clock = st_device::SimClock::new();
        for rank in 0..3 {
            let part = build_partition(
                &shared,
                *full.scaler(),
                full.num_nodes(),
                full.num_features(),
                spec.horizon,
                3,
                rank,
                full.splits(),
                &cm,
                &clock,
            );
            // Every boundary-adjacent snapshot must match the full copy.
            for g in [
                part.global_train_ids.start,
                part.global_train_ids.end.saturating_sub(1),
            ] {
                if !part.global_train_ids.contains(&g) {
                    continue;
                }
                let (bx, by) = part.batch_global(&[g]);
                let (fx, fy) = full.snapshot(g);
                assert_eq!(
                    bx.select(0, 0).unwrap().to_vec(),
                    fx.to_vec(),
                    "rank {rank} snapshot {g} x mismatch"
                );
                assert_eq!(
                    by.select(0, 0).unwrap().to_vec(),
                    fy.to_vec(),
                    "rank {rank} snapshot {g} y mismatch"
                );
            }
        }
    }

    #[test]
    fn generalized_run_trains() {
        let (spec, sig) = setup();
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.time_period = Some(spec.period);
        let r = run_generalized(&sig, &cfg, factory(&sig, spec.horizon));
        assert_eq!(r.epochs.len(), 2);
        let first = r.epochs.first().unwrap().train_loss;
        let last = r.epochs.last().unwrap().train_loss;
        assert!(
            last <= first * 1.1,
            "loss roughly non-increasing: {first} -> {last}"
        );
    }

    #[test]
    fn data_plane_is_halo_only() {
        // Unlike baseline DDP, per-epoch traffic must not grow with epochs:
        // the only data-plane bytes are the setup halo reads.
        let (spec, sig) = setup();
        let mut cfg1 = DistConfig::new(2, 1, spec.horizon);
        cfg1.batch_per_worker = 4;
        cfg1.time_period = Some(spec.period);
        let mut cfg3 = cfg1.clone();
        cfg3.epochs = 3;
        let one = run_generalized(&sig, &cfg1, factory(&sig, spec.horizon));
        let three = run_generalized(&sig, &cfg3, factory(&sig, spec.horizon));
        // Gradient traffic triples, but data-plane (halo) bytes are fixed;
        // total for 3 epochs must be far below 3× the 1-epoch total would
        // be if data were refetched every epoch like baseline DDP.
        assert!(three.bytes_moved < 4 * one.bytes_moved);
    }
}
