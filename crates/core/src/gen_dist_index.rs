//! Generalized-distributed-index-batching (§5.4): larger-than-memory mode.
//!
//! When no worker can hold the full dataset, the single standardized copy is
//! partitioned by **entries** across workers. Worker `r` owns a contiguous
//! entry range and additionally reads a *halo* of `2·horizon − 1` entries
//! past its right edge (one contiguous remote read at setup), after which it
//! can reconstruct every snapshot whose window starts in its range without
//! further communication. Shuffling is **batch-level within the partition**
//! (Table 5 shows this costs no accuracy versus global shuffling), so epochs
//! stay communication-free on the data plane — versus baseline DDP whose
//! globally-shuffled fetches touch remote partitions every batch (Fig. 9).
//!
//! The epoch loop lives in [`crate::engine`]; this module contributes
//! [`HaloEntryPlane`], whose only quoted transfer is the setup halo read —
//! under [`DistConfig::prefetch`] the engine overlaps that read with early
//! compute instead of paying it up front.

use crate::dist_index::{DistConfig, DistRunResult};
use crate::engine::{self, DistDataPlane, EngineOptions, Fetch};
use crate::index_batching::IndexDataset;
use st_data::scaler::StandardScaler;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::SplitRatios;
use st_dist::datasvc::DistributedArray;
use st_dist::shuffle;
use st_models::Seq2Seq;
use std::sync::Arc;

/// A worker's slice of the generalized dataset: its entry partition plus
/// halo, re-wrapped as a local [`IndexDataset`] over *local* snapshot ids.
pub struct GenPartition {
    /// Local dataset over the partition + halo entries.
    pub local: IndexDataset,
    /// Global snapshot ids covered by this partition (train split only).
    pub global_train_ids: std::ops::Range<usize>,
    /// Global snapshot ids covered by this partition (validation split).
    pub global_val_ids: std::ops::Range<usize>,
    /// First global entry owned by this worker.
    pub entry_offset: usize,
}

/// Build worker `rank`'s partition from the shared entry array.
///
/// `entries_array` is the standardized `[E, N·F]`-flattened signal wrapped
/// in a [`DistributedArray`]; the halo read past the partition boundary is
/// the only remote traffic. Its bytes are ledgered immediately, but its
/// modeled seconds come back **quoted** so the caller (the engine) decides
/// whether to pay them up front or hide them behind compute.
///
/// The snapshot split comes from `partitioner`'s
/// [`st_graph::PartitionerKind::entry_ranges`] — the entry timeline is a
/// uniform path graph, for which every partitioner canonicalizes to the
/// same contiguous ranges, so the config knob flows through without
/// perturbing the bit-pinned numerics.
#[allow(clippy::too_many_arguments)]
pub fn build_partition(
    entries_array: &DistributedArray,
    scaler: StandardScaler,
    nodes: usize,
    features: usize,
    horizon: usize,
    partitioner: st_graph::PartitionerKind,
    world: usize,
    rank: usize,
    snapshot_split: &st_data::splits::SplitIndices,
    cost: &st_device::CostModel,
) -> (GenPartition, f64) {
    let num_entries = entries_array.rows();
    let total_snaps = st_data::preprocess::num_snapshots(num_entries, horizon);

    // Partition *snapshots* along the timeline; derive the entry range +
    // halo.
    let snap_range = partitioner.entry_ranges(total_snaps, world)[rank].clone();
    let entry_start = snap_range.start;
    let entry_end = (snap_range.end + 2 * horizon - 1).min(num_entries);

    // One contiguous (mostly-local + halo) read, quoted.
    let (rows, setup_secs) = entries_array.fetch_range_quoted(rank, entry_start..entry_end, cost);
    let local_entries = entry_end - entry_start;
    let data = rows
        .reshape([local_entries, nodes, features])
        .expect("row size is nodes*features");

    // Local split bookkeeping: which of my snapshots are train/val.
    let inter = |a: &std::ops::Range<usize>, b: &std::ops::Range<usize>| {
        a.start.max(b.start)..a.end.min(b.end).max(a.start.max(b.start))
    };
    let train = inter(&snap_range, &snapshot_split.train);
    let val = inter(&snap_range, &snapshot_split.val);

    // Local ids are global ids minus the entry offset; the local dataset's
    // own split ranges are unused (we drive ids explicitly).
    let local = IndexDataset::from_standardized(
        data,
        horizon,
        scaler,
        SplitRatios::default().split(st_data::preprocess::num_snapshots(local_entries, horizon)),
    );
    (
        GenPartition {
            local,
            global_train_ids: train,
            global_val_ids: val,
            entry_offset: entry_start,
        },
        setup_secs,
    )
}

impl GenPartition {
    /// Fetch a batch by **global** snapshot ids (must lie in this partition).
    pub fn batch_global(&self, global_ids: &[usize]) -> (st_tensor::Tensor, st_tensor::Tensor) {
        let local: Vec<usize> = global_ids
            .iter()
            .map(|&g| {
                assert!(
                    g >= self.entry_offset,
                    "snapshot {g} not in partition starting at {}",
                    self.entry_offset
                );
                g - self.entry_offset
            })
            .collect();
        self.local.batch(&local)
    }
}

/// The §5.4 data plane: a fixed entry partition plus halo, with batch-level
/// shuffling inside the partition and a data-plane ledger that only ever
/// records the setup halo reads.
pub struct HaloEntryPlane {
    part: GenPartition,
    shared: Arc<DistributedArray>,
    scaler_std: f32,
    rounds: usize,
    batch: usize,
    seed: u64,
    rank: usize,
    setup_secs: f64,
}

impl HaloEntryPlane {
    /// Build rank `rank`'s plane over the shared entry array.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shared: Arc<DistributedArray>,
        scaler: StandardScaler,
        nodes: usize,
        features: usize,
        split: &st_data::splits::SplitIndices,
        cfg: &DistConfig,
        rank: usize,
        cost: &st_device::CostModel,
    ) -> Self {
        let scaler_std = scaler.std;
        let (part, setup_secs) = build_partition(
            &shared,
            scaler,
            nodes,
            features,
            cfg.horizon,
            cfg.partitioner,
            cfg.world,
            rank,
            split,
            cost,
        );
        // Partitions intersected with the train split are ragged (a rank
        // owning only validation-era snapshots may have *zero* train
        // batches); all ranks agree on the max batch count analytically,
        // derived from the same partitioner choice as the data split.
        let total_snaps = st_data::preprocess::num_snapshots(shared.rows(), cfg.horizon);
        let ranges = cfg.partitioner.entry_ranges(total_snaps, cfg.world);
        let rounds = shuffle::common_rounds(
            ranges
                .iter()
                .map(|snaps| shuffle::range_overlap(snaps, &split.train)),
            cfg.batch_per_worker,
        );
        HaloEntryPlane {
            part,
            shared,
            scaler_std,
            rounds,
            batch: cfg.batch_per_worker,
            seed: cfg.seed,
            rank,
            setup_secs,
        }
    }

    /// The worker's local dataset (model factories derive dims from it).
    pub fn dataset(&self) -> &IndexDataset {
        &self.part.local
    }

    /// The underlying partition.
    pub fn partition(&self) -> &GenPartition {
        &self.part
    }
}

impl DistDataPlane for HaloEntryPlane {
    fn rounds_per_epoch(&self) -> usize {
        self.rounds
    }

    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        // Batch-level shuffling: fixed batch contents, shuffled order.
        let train_ids: Vec<usize> = self.part.global_train_ids.clone().collect();
        let num_batches = train_ids.len().div_ceil(self.batch.max(1));
        shuffle::batch_order_shuffle(num_batches, self.seed, self.rank, epoch)
            .into_iter()
            .filter_map(|b| {
                let lo = b * self.batch;
                let hi = ((b + 1) * self.batch).min(train_ids.len());
                (lo < hi).then(|| train_ids[lo..hi].to_vec())
            })
            .collect()
    }

    fn plan_val(&self) -> Vec<Vec<usize>> {
        engine::chunk_ids(self.part.global_val_ids.clone().collect(), self.batch)
    }

    fn fetch_batch(&self, ids: &[usize]) -> Fetch {
        let (x, y) = self.part.batch_global(ids);
        Fetch { x, y, secs: 0.0 }
    }

    fn setup_secs(&self) -> f64 {
        self.setup_secs
    }

    fn remote(&self) -> bool {
        true
    }

    fn scaler_std(&self) -> f32 {
        self.scaler_std
    }

    fn ledger_bytes(&self) -> u64 {
        self.shared.remote_bytes()
    }
}

/// Run generalized-distributed-index-batching.
pub fn run_generalized<F>(
    signal: &StaticGraphTemporalSignal,
    cfg: &DistConfig,
    model_factory: F,
) -> DistRunResult
where
    F: Fn(&IndexDataset) -> Box<dyn Seq2Seq> + Sync,
{
    // Standardize once (the paper's generalized mode preprocesses
    // distributedly; the single-copy standardization is the index-batching
    // part, and the DistributedArray below is the partitioning part).
    let augmented;
    let sig = match cfg.time_period {
        Some(p) => {
            augmented = signal.with_time_feature(p);
            &augmented
        }
        None => signal,
    };
    let rechunked;
    let sig = if cfg.storage.is_chunked() && !sig.is_chunked() {
        rechunked = sig.rechunk(cfg.storage);
        &rechunked
    } else {
        sig
    };
    let full = IndexDataset::from_signal(sig, cfg.horizon, SplitRatios::default(), None);
    let (nodes, features) = (full.num_nodes(), full.num_features());
    let scaler = full.scaler().clone();
    let split = full.splits().clone();
    // The shared entry array reuses the dataset's standardized storage
    // directly ([E, N, F] rows are already `nodes * features` scalars wide);
    // under [`st_data::StorageSpec::Chunked`] this is the out-of-core store
    // itself, so no rank ever holds the dense entry matrix.
    let shared = DistributedArray::with_storage(
        full.storage().clone(),
        cfg.world,
        cfg.topology,
        4,
        st_dist::datasvc::PartitionPolicy::Contiguous,
        cfg.wire_codec,
    );

    engine::run(
        cfg,
        &EngineOptions::default(),
        |rank, cm| {
            HaloEntryPlane::new(
                shared.clone(),
                scaler.clone(),
                nodes,
                features,
                &split,
                cfg,
                rank,
                cm,
            )
        },
        |plane: &HaloEntryPlane| model_factory(plane.dataset()),
    )
    .expect("engine run without resume cannot fail")
    .into_dist_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::synthetic;
    use st_dist::topology::ClusterTopology;
    use st_graph::diffusion_supports;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn setup() -> (DatasetSpec, StaticGraphTemporalSignal) {
        let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.012);
        let sig = synthetic::generate(&spec, 31);
        (spec, sig)
    }

    fn factory(
        sig: &StaticGraphTemporalSignal,
        horizon: usize,
    ) -> impl Fn(&IndexDataset) -> Box<dyn Seq2Seq> + Sync + '_ {
        move |ds: &IndexDataset| {
            let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
            let mc = ModelConfig {
                input_dim: ds.num_features(),
                output_dim: 1,
                hidden: 8,
                num_nodes: ds.num_nodes(),
                horizon,
                diffusion_steps: 2,
                layers: 1,
            };
            Box::new(PgtDcrnn::new(mc, &supports, 42))
        }
    }

    #[test]
    fn partition_reconstruction_matches_single_copy() {
        // The halo-window property test from DESIGN.md: snapshots built
        // from partition+halo equal snapshots from the full single copy.
        let (spec, sig) = setup();
        let sig_aug = sig.with_time_feature(spec.period);
        let full = IndexDataset::from_signal(&sig_aug, spec.horizon, SplitRatios::default(), None);
        let entries = full
            .data()
            .reshape([sig.entries(), full.num_nodes() * full.num_features()])
            .unwrap();
        let shared = DistributedArray::new(entries, 3, ClusterTopology::polaris(), 4);
        let cm = st_device::CostModel::polaris();
        for rank in 0..3 {
            let (part, _) = build_partition(
                &shared,
                full.scaler().clone(),
                full.num_nodes(),
                full.num_features(),
                spec.horizon,
                st_graph::PartitionerKind::Multilevel,
                3,
                rank,
                full.splits(),
                &cm,
            );
            // Every boundary-adjacent snapshot must match the full copy.
            for g in [
                part.global_train_ids.start,
                part.global_train_ids.end.saturating_sub(1),
            ] {
                if !part.global_train_ids.contains(&g) {
                    continue;
                }
                let (bx, by) = part.batch_global(&[g]);
                let (fx, fy) = full.snapshot(g);
                assert_eq!(
                    bx.select(0, 0).unwrap().to_vec(),
                    fx.to_vec(),
                    "rank {rank} snapshot {g} x mismatch"
                );
                assert_eq!(
                    by.select(0, 0).unwrap().to_vec(),
                    fy.to_vec(),
                    "rank {rank} snapshot {g} y mismatch"
                );
            }
        }
    }

    #[test]
    fn entry_ranges_canonicalize_to_contiguous_partition() {
        // Every partitioner choice must yield the bit-identical timeline
        // split (the goldens depend on it): on a uniform path graph the
        // contiguous split is the balanced optimum for all of them.
        for kind in [
            st_graph::PartitionerKind::Contiguous,
            st_graph::PartitionerKind::CoordinateBisection,
            st_graph::PartitionerKind::GreedyBfs,
            st_graph::PartitionerKind::Multilevel,
        ] {
            for (total, world) in [(10usize, 3usize), (7, 4), (100, 8), (5, 5)] {
                let ranges = kind.entry_ranges(total, world);
                assert_eq!(ranges.len(), world);
                for (rank, r) in ranges.iter().enumerate() {
                    assert_eq!(
                        *r,
                        shuffle::contiguous_partition(total, world, rank),
                        "{kind:?} total={total} world={world} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn generalized_run_trains() {
        let (spec, sig) = setup();
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.time_period = Some(spec.period);
        let r = run_generalized(&sig, &cfg, factory(&sig, spec.horizon));
        assert_eq!(r.epochs.len(), 2);
        let first = r.epochs.first().unwrap().train_loss;
        let last = r.epochs.last().unwrap().train_loss;
        assert!(
            last <= first * 1.1,
            "loss roughly non-increasing: {first} -> {last}"
        );
    }

    #[test]
    fn data_plane_is_halo_only() {
        // Unlike baseline DDP, per-epoch traffic must not grow with epochs:
        // the only data-plane bytes are the setup halo reads.
        let (spec, sig) = setup();
        let mut cfg1 = DistConfig::new(2, 1, spec.horizon);
        cfg1.batch_per_worker = 4;
        cfg1.time_period = Some(spec.period);
        let mut cfg3 = cfg1.clone();
        cfg3.epochs = 3;
        let one = run_generalized(&sig, &cfg1, factory(&sig, spec.horizon));
        let three = run_generalized(&sig, &cfg3, factory(&sig, spec.horizon));
        // Gradient traffic triples, but data-plane (halo) bytes are fixed;
        // total for 3 epochs must be far below 3× the 1-epoch total would
        // be if data were refetched every epoch like baseline DDP.
        assert!(three.bytes_moved < 4 * one.bytes_moved);
        assert_eq!(
            one.data_plane_bytes, three.data_plane_bytes,
            "halo reads are setup-only"
        );
    }

    #[test]
    fn prefetch_overlaps_the_halo_read() {
        // §7 prefetching on the generalized plane: the setup halo read is
        // issued asynchronously and hidden behind early compute, so total
        // simulated time drops while ledger bytes stay identical.
        let (spec, sig) = setup();
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.time_period = Some(spec.period);
        let sync = run_generalized(&sig, &cfg, factory(&sig, spec.horizon));
        cfg.prefetch = true;
        let pf = run_generalized(&sig, &cfg, factory(&sig, spec.horizon));
        assert!(
            pf.sim_total_secs < sync.sim_total_secs,
            "prefetch total {} s must beat sync {} s",
            pf.sim_total_secs,
            sync.sim_total_secs
        );
        assert_eq!(pf.data_plane_bytes, sync.data_plane_bytes);
        for (a, b) in pf.epochs.iter().zip(sync.epochs.iter()) {
            assert_eq!(
                a.train_loss, b.train_loss,
                "prefetching must not change learning"
            );
        }
    }
}
