//! # pgt-index — the PGT-I core library
//!
//! This crate implements the paper's contribution:
//!
//! - [`memory_model`] — the analytic size formulas: eq. (1) for standard
//!   sliding-window preprocessing and eq. (2) for index-batching, plus the
//!   stage-by-stage data-growth breakdown of Fig. 3.
//! - [`index_batching`] — [`index_batching::IndexDataset`]: one copy of the
//!   standardized data + an array of window-start indices; snapshots are
//!   reconstructed at runtime as zero-copy views (Fig. 4).
//! - [`gpu_index`] — GPU-index-batching: a single consolidated host→device
//!   transfer up front, then a fully device-resident workflow (§4.1).
//! - [`engine`] — the **single** distributed epoch loop behind every
//!   training mode: a [`engine::DistDataPlane`] supplies the epoch plan,
//!   quoted batch fetches, and traffic ledger, while the engine owns
//!   forward/backward, DDP averaging, prefetch overlap, rank-order metric
//!   reductions, and checkpoint capture/resume.
//! - [`trainer`] — the single-worker training loop with epoch metrics,
//!   wall/simulated timing and memory-timeline capture; its steps are the
//!   same [`engine::StepLoop`] primitives the engine uses.
//! - [`dist_index`] — distributed-index-batching: full per-worker copies,
//!   communication-free global shuffling, DDP gradient averaging (§4.2)
//!   — the engine's [`dist_index::LocalCopyPlane`].
//! - [`baseline_ddp`] — the Dask-style baseline DDP the paper compares
//!   against: partitioned data with on-demand batch communication (§5)
//!   — [`baseline_ddp::DataSvcPlane`].
//! - [`gen_dist_index`] — generalized-distributed-index-batching for
//!   larger-than-memory datasets: fixed partitions + halo windows +
//!   batch-level shuffling (§5.4) — [`gen_dist_index::HaloEntryPlane`].
//! - [`dynamic_index`] — §7 future work: index-batching over dynamic
//!   graphs with temporal signal (per-entry diffusion supports shared
//!   across overlapping windows) — [`dynamic_index::DynamicPlane`].
//! - [`partitioned`] — the §7 future-work integration of index-batching
//!   with graph partitioning (per-partition models + halos) —
//!   [`partitioned::PartitionedPlane`].
//! - [`workflow`] — end-to-end convenience entry points used by the
//!   examples and the reproduction harness.

pub mod baseline_ddp;
pub mod dist_index;
pub mod dynamic_index;
pub mod engine;
pub mod gen_dist_index;
pub mod gpu_index;
pub mod index_batching;
pub mod memory_model;
pub mod partitioned;
pub mod projection;
pub mod trainer;
pub mod workflow;

pub use dist_index::{DistConfig, DistRunResult};
pub use engine::{DistDataPlane, EngineError, EngineOptions, EngineReport, StepLoop};
pub use index_batching::IndexDataset;
pub use memory_model::{index_batching_bytes, standard_preprocess_bytes};
pub use projection::{ProjectionParams, ScalingPoint};
pub use trainer::{EpochStats, Trainer, TrainerConfig, TrainingHistory};
