//! Paper-scale runtime projection (Figs 7 & 9, Tables 2 & 4, §5.3 headlines).
//!
//! Measured runs in this repo use scaled-down data; the Polaris-scale
//! minutes the paper reports are **projected** from analytic per-component
//! costs. Constants marked *calibrated* were fit once against four paper
//! anchors — Table 4's 333.58 / 290.65 min, Table 2's 68.48 / 4.48 min —
//! and then *held fixed* for every other point, so the multi-GPU scaling
//! curves, crossovers and speedup ratios of Figs 7/9 are genuine
//! predictions of the model, not per-point fits.
//!
//! What each term models:
//! - **compute**: PGT-DCRNN step FLOPs (dual-random-walk DCGRU, hidden 64,
//!   K = 2) at an effective GPU rate well below A100 peak (sparse recurrent
//!   workloads reach ~25 % of FP32 peak).
//! - **launch overhead**: recurrent models run a Python-level loop over
//!   `horizon × layer_passes` time steps, each dispatching dozens of small
//!   kernels; the per-step eager-mode overhead is roughly constant and is
//!   what separates small-graph batches (PeMS-All-LA, Table 2) from
//!   large-graph batches (PeMS, Table 4) at the same FLOP rate.
//! - **PCIe**: per-batch pageable-memory transfers for host-resident
//!   index-batching; one consolidated transfer for GPU-index-batching.
//! - **Dask data plane** (Fig 7): per-batch on-demand fetches whose
//!   effective bandwidth degrades as `W^-exp` (scheduler + incast
//!   contention) — the behavior behind "communication overhead limits
//!   DDP's scaling".
//! - **Dask data plane, partitioned mode** (Fig 9): batch-level fetches
//!   from a worker's own partition are scheduler/serialization-bound, so
//!   the *aggregate* throughput is nearly flat in W — which is why the
//!   paper's baseline epoch only improves from 303 s to 231 s over 4→128
//!   GPUs.
//! - **all-reduce**: ring formula over NVLink/Slingshot-class links.
//! - **per-epoch DDP overhead**: epoch-boundary synchronization, metric
//!   all-reduces and (at the worker count grows) collective latency — the
//!   fixed costs §5.3.1 blames for sublinear scaling at 64/128 GPUs.

use serde::{Deserialize, Serialize};
use st_data::datasets::DatasetSpec;
use st_device::CostModel;

/// Calibrated projection constants (see module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectionParams {
    /// Effective GPU FLOP/s for the PGT-DCRNN workload (*calibrated* to
    /// Table 4's GPU-index anchor jointly with `step_launch_secs`).
    pub eff_gpu_flops: f64,
    /// Effective FLOP/s of the original (unoptimized) DCRNN reference
    /// implementation (*calibrated* to Table 2's 68.48 min anchor).
    pub eff_dcrnn_flops: f64,
    /// Per-recurrent-step forward launch/dispatch overhead, seconds per
    /// (time step × layer pass); a training step pays 3× (fwd + bwd).
    /// (*calibrated* jointly with `eff_gpu_flops` so that both the PeMS
    /// and PeMS-All-LA anchors hold with one constant pair.)
    pub step_launch_secs: f64,
    /// Pageable host→device bandwidth for per-batch copies (*calibrated*
    /// to the Table 4 index-batching anchor).
    pub pcie_pageable_bw: f64,
    /// Base effective bandwidth of the Dask on-demand data plane at one
    /// worker (*calibrated* to the 4-GPU DDP gap of Fig 7).
    pub dask_base_bw: f64,
    /// Contention exponent: per-fetch effective bandwidth ∝ W^-exp.
    pub dask_contention_exp: f64,
    /// Aggregate throughput of the partitioned (batch-shuffled, Fig 9)
    /// data plane at one worker (*calibrated* to Fig 9's 303 s anchor).
    pub dask_agg_bw: f64,
    /// Mild aggregate-throughput decay with worker count in partitioned
    /// mode: aggregate ∝ W^-exp (fit to the 303 → 231 s flattening).
    pub dask_agg_exp: f64,
    /// Per-epoch fixed distributed overhead, base seconds.
    pub epoch_overhead_base: f64,
    /// Per-epoch fixed distributed overhead, seconds per log2(W).
    pub epoch_overhead_per_log2w: f64,
    /// Index-batching preprocessing seconds (read + augment + standardize;
    /// Table 4 anchor: 26.05 s).
    pub pre_index_secs: f64,
    /// GPU-index-batching preprocessing seconds (chunked read + transfer;
    /// Table 4 anchor: 19.05 s).
    pub pre_gpu_index_secs: f64,
    /// Per-worker shared-filesystem contention added to preprocessing,
    /// seconds per log2(W) (the paper's observed 10–40 s I/O wobble).
    pub pfs_contention_per_log2w: f64,
    /// Fixed Dask setup + distribution seconds for baseline DDP preprocessing.
    pub ddp_pre_fixed_secs: f64,
    /// Per-worker distribution overhead of baseline DDP preprocessing.
    pub ddp_pre_per_worker_secs: f64,
    /// Host-side SWA materialization bandwidth (bytes/s) for baseline DDP.
    pub swa_bw: f64,
    /// Link model for all-reduce terms.
    pub links: CostModel,
}

impl Default for ProjectionParams {
    fn default() -> Self {
        ProjectionParams {
            eff_gpu_flops: 5.184e12,
            eff_dcrnn_flops: 6.906e11,
            step_launch_secs: 1.5924e-3,
            pcie_pageable_bw: 4.208e9,
            dask_base_bw: 5.58e8,
            dask_contention_exp: 0.72,
            dask_agg_bw: 1.140e9,
            dask_agg_exp: 0.126,
            epoch_overhead_base: 0.10,
            epoch_overhead_per_log2w: 0.22,
            pre_index_secs: 26.05,
            pre_gpu_index_secs: 19.05,
            pfs_contention_per_log2w: 2.0,
            ddp_pre_fixed_secs: 140.0,
            ddp_pre_per_worker_secs: 1.3,
            swa_bw: 2.0e9,
            links: CostModel::polaris(),
        }
    }
}

impl ProjectionParams {
    /// Per-epoch fixed distributed overhead at `w` workers.
    fn epoch_overhead(&self, w: usize) -> f64 {
        self.epoch_overhead_base + self.epoch_overhead_per_log2w * (w as f64).log2()
    }

    /// Aggregate partitioned-data-plane throughput at `w` workers (Fig 9).
    fn agg_bw(&self, w: usize) -> f64 {
        self.dask_agg_bw * (w as f64).powf(-self.dask_agg_exp)
    }
}

/// Analytic cost description of a PGT-DCRNN-style model at paper scale.
#[derive(Debug, Clone, Copy)]
pub struct ModelCostSpec {
    /// Graph nodes.
    pub nodes: usize,
    /// Input features (after augmentation).
    pub features: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Window length.
    pub horizon: usize,
    /// Number of diffusion supports (I + forward + reverse for K = 2).
    pub supports: usize,
    /// Average out-degree (drives spmm nnz).
    pub avg_degree: usize,
    /// Recurrent "layer passes" per step (1 for PGT-DCRNN; the DCRNN
    /// encoder–decoder does 2 layers × enc+dec = 4).
    pub layer_passes: usize,
}

impl ModelCostSpec {
    /// PGT-DCRNN at the paper's hyperparameters over `spec`.
    pub fn pgt_dcrnn(spec: &DatasetSpec) -> Self {
        ModelCostSpec {
            nodes: spec.nodes,
            features: spec.aug_features,
            hidden: 64,
            horizon: spec.horizon,
            supports: 3,
            avg_degree: 8,
            layer_passes: 1,
        }
    }

    /// The original DCRNN encoder–decoder over `spec`.
    pub fn dcrnn(spec: &DatasetSpec) -> Self {
        ModelCostSpec {
            layer_passes: 4,
            ..Self::pgt_dcrnn(spec)
        }
    }

    /// Forward FLOPs for one batch.
    pub fn forward_flops(&self, batch: usize) -> f64 {
        let io = (self.features + self.hidden) as f64;
        let gemm = 2.0
            * batch as f64
            * self.nodes as f64
            * (self.supports as f64 * io)
            * self.hidden as f64;
        let spmm =
            2.0 * (self.nodes * self.avg_degree) as f64 * io * batch as f64 * self.supports as f64;
        let per_step = 3.0 * (gemm + spmm); // three gates
        let head = 2.0 * (batch * self.nodes * self.hidden) as f64;
        self.horizon as f64 * (self.layer_passes as f64 * per_step + head)
    }

    /// Training-step FLOPs (forward + backward ≈ 3× forward).
    pub fn step_flops(&self, batch: usize) -> f64 {
        3.0 * self.forward_flops(batch)
    }

    /// Recurrent step launches per forward pass (horizon × layer passes).
    pub fn launch_steps(&self) -> f64 {
        (self.horizon * self.layer_passes) as f64
    }

    /// Seconds for one forward pass of one batch under `params`.
    pub fn forward_secs(&self, params: &ProjectionParams, batch: usize) -> f64 {
        self.forward_flops(batch) / params.eff_gpu_flops
            + self.launch_steps() * params.step_launch_secs
    }

    /// Seconds for one training step (fwd + bwd) of one batch under `params`.
    pub fn train_step_secs(&self, params: &ProjectionParams, batch: usize) -> f64 {
        3.0 * self.forward_secs(params, batch)
    }

    /// Trainable scalars (for gradient all-reduce sizing).
    pub fn param_count(&self) -> usize {
        let io = self.features + self.hidden;
        let per_cell = 3 * (self.supports * io * self.hidden + self.hidden);
        self.layer_passes * per_cell + self.hidden + 1
    }

    /// Per-sample batch bytes for x+y at `elem` bytes/scalar.
    pub fn sample_bytes(&self, elem: usize) -> u64 {
        2 * (self.horizon * self.nodes * self.features * elem) as u64
    }
}

/// One point of the Fig.-7 scaling study.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker (GPU) count.
    pub gpus: usize,
    /// Distributed-index-batching: preprocessing seconds.
    pub index_pre: f64,
    /// Distributed-index-batching: training seconds (all epochs).
    pub index_train: f64,
    /// Baseline DDP: preprocessing seconds.
    pub ddp_pre: f64,
    /// Baseline DDP: compute seconds within training.
    pub ddp_compute: f64,
    /// Baseline DDP: data-communication seconds within training.
    pub ddp_comm: f64,
}

impl ScalingPoint {
    /// Total dist-index seconds.
    pub fn index_total(&self) -> f64 {
        self.index_pre + self.index_train
    }

    /// Total DDP seconds.
    pub fn ddp_total(&self) -> f64 {
        self.ddp_pre + self.ddp_compute + self.ddp_comm
    }
}

/// Project the Fig.-7 scaling study for `spec` (PeMS in the paper):
/// `epochs` epochs, per-worker batch `batch`, over the given GPU counts.
pub fn project_scaling(
    params: &ProjectionParams,
    spec: &DatasetSpec,
    epochs: usize,
    batch: usize,
    worlds: &[usize],
) -> Vec<ScalingPoint> {
    let cost = ModelCostSpec::pgt_dcrnn(spec);
    let snaps = spec.num_snapshots();
    let train = (snaps as f64 * 0.7) as usize;
    let val = (snaps as f64 * 0.1) as usize;
    let t_batch = cost.train_step_secs(params, batch);
    let t_val_batch = cost.forward_secs(params, batch);
    let grad_bytes = (cost.param_count() * 4) as u64;
    let sample_f32 = cost.sample_bytes(4);

    worlds
        .iter()
        .map(|&w| {
            let train_batches = train / (batch * w);
            let val_batches = val.div_ceil(batch * w);
            let allreduce = params.links.allreduce(grad_bytes, w, 4);
            let overhead = params.epoch_overhead(w);

            // --- distributed-index-batching ---
            let index_pre =
                params.pre_index_secs + params.pfs_contention_per_log2w * (w as f64).log2();
            let index_epoch = train_batches as f64 * (t_batch + allreduce)
                + val_batches as f64 * t_val_batch
                + overhead;
            let index_train = epochs as f64 * index_epoch;

            // --- baseline DDP ---
            let eq1 = crate::memory_model::standard_preprocess_bytes(
                spec.entries,
                spec.horizon,
                spec.nodes,
                spec.aug_features,
                8,
            );
            let ddp_pre = eq1 as f64 / (w as f64 * params.swa_bw)
                + params.ddp_pre_fixed_secs
                + params.ddp_pre_per_worker_secs * w as f64;
            // Per-batch on-demand fetch: remote fraction (1 - 1/w) of the
            // batch, at contention-degraded effective bandwidth.
            let remote_frac = 1.0 - 1.0 / w as f64;
            let eff_bw = params.dask_base_bw / (w as f64).powf(params.dask_contention_exp);
            let fetch = (batch as u64 * sample_f32) as f64 * remote_frac / eff_bw;
            let ddp_compute = epochs as f64
                * (train_batches as f64 * t_batch + val_batches as f64 * t_val_batch + overhead);
            let ddp_comm = epochs as f64
                * ((train_batches + val_batches) as f64 * fetch + train_batches as f64 * allreduce);

            ScalingPoint {
                gpus: w,
                index_pre,
                index_train,
                ddp_pre,
                ddp_compute,
                ddp_comm,
            }
        })
        .collect()
}

/// Project the single-GPU runtimes of Table 4 (index vs GPU-index, PeMS,
/// 30 epochs): returns `(index_secs, gpu_index_secs)`.
pub fn project_table4(params: &ProjectionParams, spec: &DatasetSpec, epochs: usize) -> (f64, f64) {
    let cost = ModelCostSpec::pgt_dcrnn(spec);
    let batch = spec.batch_size;
    let snaps = spec.num_snapshots();
    let train_batches = (snaps as f64 * 0.7) as usize / batch;
    let val_batches = ((snaps as f64 * 0.1) as usize).div_ceil(batch);
    let t_batch = cost.train_step_secs(params, batch);
    let t_val = cost.forward_secs(params, batch);
    // Host-resident: every train/val batch crosses PCIe (pageable, f64).
    let batch_xfer = (batch as u64 * cost.sample_bytes(8)) as f64 / params.pcie_pageable_bw;
    let index_epoch =
        train_batches as f64 * (t_batch + batch_xfer) + val_batches as f64 * (t_val + batch_xfer);
    let index_total = params.pre_index_secs + epochs as f64 * index_epoch;
    // Device-resident: one consolidated transfer, no per-batch copies.
    let dataset_bytes = (spec.entries * spec.nodes * spec.aug_features * 8) as u64;
    let consolidated = dataset_bytes as f64 / params.links.pcie_bw;
    let gpu_epoch = train_batches as f64 * t_batch + val_batches as f64 * t_val;
    let gpu_total = params.pre_gpu_index_secs + consolidated + epochs as f64 * gpu_epoch;
    (index_total, gpu_total)
}

/// Project Table 2's single-epoch runtimes on PeMS-All-LA:
/// `(dcrnn_secs, pgt_dcrnn_secs)`.
pub fn project_table2(params: &ProjectionParams, spec: &DatasetSpec) -> (f64, f64) {
    let batch = 32; // the paper's DCRNN GPU-memory-limited batch size
    let snaps = spec.num_snapshots();
    let train_batches = (snaps as f64 * 0.7) as usize / batch;
    let pgt = ModelCostSpec::pgt_dcrnn(spec);
    let dcrnn = ModelCostSpec::dcrnn(spec);
    let t_pgt = pgt.train_step_secs(params, batch);
    // The reference DCRNN runs at its own (lower) effective FLOP rate but
    // pays the same per-step dispatch overhead per layer pass.
    let t_dcrnn = dcrnn.step_flops(batch) / params.eff_dcrnn_flops
        + 3.0 * dcrnn.launch_steps() * params.step_launch_secs;
    let xfer = (batch as u64 * pgt.sample_bytes(8)) as f64 / params.pcie_pageable_bw;
    (
        train_batches as f64 * (t_dcrnn + xfer),
        train_batches as f64 * (t_pgt + xfer),
    )
}

/// One point of the Fig.-9 single-epoch batch-shuffling comparison.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Point {
    /// Worker count.
    pub gpus: usize,
    /// Baseline DDP epoch: compute seconds.
    pub ddp_compute: f64,
    /// Baseline DDP epoch: data-communication seconds.
    pub ddp_comm: f64,
    /// Generalized-index epoch: compute seconds.
    pub gen_compute: f64,
    /// Generalized-index epoch: data-communication seconds.
    pub gen_comm: f64,
}

impl Fig9Point {
    /// Baseline epoch total.
    pub fn ddp_total(&self) -> f64 {
        self.ddp_compute + self.ddp_comm
    }

    /// Generalized-index epoch total.
    pub fn gen_total(&self) -> f64 {
        self.gen_compute + self.gen_comm
    }
}

/// Project Fig. 9: one training epoch with batch-level shuffling, baseline
/// DDP vs generalized-distributed-index-batching (larger-than-memory mode:
/// both sides stream their partition every epoch; the index side moves the
/// single-copy volume plus halos, the baseline moves materialized x+y).
///
/// Both data planes go through the same scheduler-bound aggregate
/// throughput (`dask_agg_bw · W^-exp`): per-batch fetches are
/// serialization-bound, so adding workers barely increases the aggregate —
/// which is exactly why the paper's baseline only improves from 303 s
/// (4 GPUs) to 231 s (128 GPUs) despite 32× more workers. The index side
/// wins on *volume*: one copy of the raw entries versus every window
/// materialized twice (eq. 1 vs eq. 2).
pub fn project_fig9(
    params: &ProjectionParams,
    spec: &DatasetSpec,
    batch: usize,
    worlds: &[usize],
) -> Vec<Fig9Point> {
    let cost = ModelCostSpec::pgt_dcrnn(spec);
    let snaps = spec.num_snapshots();
    let train = (snaps as f64 * 0.7) as usize;
    let t_batch = cost.train_step_secs(params, batch);
    let row_f32 = (spec.nodes * spec.aug_features * 4) as u64;
    worlds
        .iter()
        .map(|&w| {
            let train_batches = train / (batch * w);
            let compute = train_batches as f64 * t_batch + params.epoch_overhead(w);
            let agg = params.agg_bw(w);
            // Baseline: every batch of the materialized (x, y) arrays is
            // fetched from the worker's partition each epoch.
            let ddp_volume = (train_batches * batch * w) as u64 * cost.sample_bytes(4);
            let ddp_comm = ddp_volume as f64 / agg;
            // Generalized index: stream the single-copy partition + halo
            // (contiguous reads; halo of 2·horizon − 1 entries per worker).
            let gen_volume = (train as u64 + (w * (2 * spec.horizon - 1)) as u64) * row_f32;
            let gen_comm = gen_volume as f64 / agg;
            Fig9Point {
                gpus: w,
                ddp_compute: compute,
                ddp_comm,
                gen_compute: compute,
                gen_comm,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::DatasetKind;

    fn pems() -> DatasetSpec {
        DatasetSpec::get(DatasetKind::Pems)
    }

    #[test]
    fn table4_anchor_runtimes() {
        // Paper Table 4: index 333.58 min, GPU-index 290.65 min (30 epochs).
        let (index, gpu) = project_table4(&ProjectionParams::default(), &pems(), 30);
        let (index_min, gpu_min) = (index / 60.0, gpu / 60.0);
        assert!(
            (index_min - 333.58).abs() / 333.58 < 0.10,
            "index {index_min:.1} min vs 333.58"
        );
        assert!(
            (gpu_min - 290.65).abs() / 290.65 < 0.10,
            "gpu-index {gpu_min:.1} min vs 290.65"
        );
        // The 12.87% improvement claim.
        let gain = (index - gpu) / index;
        assert!(
            (gain - 0.1287).abs() < 0.04,
            "GPU-index gain {gain:.4} vs paper 0.1287"
        );
    }

    #[test]
    fn fig7_ddp_gap_matches_at_4_and_128() {
        // Paper §5.3.2: dist-index beats DDP by 2.16× at 4 GPUs and
        // 11.78× at 128 GPUs.
        let pts = project_scaling(&ProjectionParams::default(), &pems(), 30, 64, &[4, 128]);
        let r4 = pts[0].ddp_total() / pts[0].index_total();
        let r128 = pts[1].ddp_total() / pts[1].index_total();
        assert!(
            (1.5..=2.9).contains(&r4),
            "4-GPU ratio {r4:.2} vs paper 2.16"
        );
        assert!(
            (8.0..=16.0).contains(&r128),
            "128-GPU ratio {r128:.2} vs paper 11.78"
        );
    }

    #[test]
    fn fig7_headline_speedups() {
        // §5.3.1: 79.41× total / 115.49× training-only at 128 GPUs vs 1 GPU.
        let params = ProjectionParams::default();
        let many = project_scaling(&params, &pems(), 30, 64, &[128]);
        // Single-GPU baseline is the (host-resident) index-batching run.
        let (single_total, _) = project_table4(&params, &pems(), 30);
        let train_speedup = (single_total - params.pre_index_secs) / many[0].index_train;
        let total_speedup = single_total / many[0].index_total();
        assert!(
            (70.0..=160.0).contains(&train_speedup),
            "training speedup {train_speedup:.1} vs paper 115.49"
        );
        assert!(
            (55.0..=110.0).contains(&total_speedup),
            "total speedup {total_speedup:.1} vs paper 79.41"
        );
    }

    #[test]
    fn near_linear_training_scaling_through_32() {
        // §5.3.1: near-linear at 4/8/16/32, sublinear at 64/128.
        let pts = project_scaling(
            &ProjectionParams::default(),
            &pems(),
            30,
            64,
            &[4, 8, 16, 32, 64, 128],
        );
        for pair in pts.windows(2) {
            let speedup = pair[0].index_train / pair[1].index_train;
            if pair[1].gpus <= 32 {
                assert!(
                    speedup > 1.8,
                    "{}→{} GPUs speedup {speedup:.2} not near-linear",
                    pair[0].gpus,
                    pair[1].gpus
                );
            }
        }
        // Efficiency must degrade once fixed costs dominate (total time).
        let eff = |p: &ScalingPoint, base: &ScalingPoint| {
            (base.index_total() / p.index_total()) / (p.gpus as f64 / base.gpus as f64)
        };
        let e32 = eff(&pts[3], &pts[0]);
        let e128 = eff(&pts[5], &pts[0]);
        assert!(
            e128 < e32,
            "efficiency must fall at 128 GPUs: {e128} vs {e32}"
        );
    }

    #[test]
    fn ddp_preprocessing_roughly_stable() {
        // §5.3.2: DDP preprocessing stays flat-ish, max ≈ 305 s at 128.
        let pts = project_scaling(&ProjectionParams::default(), &pems(), 30, 64, &[4, 32, 128]);
        for p in &pts {
            assert!(
                (140.0..=330.0).contains(&p.ddp_pre),
                "{} GPUs: pre {}",
                p.gpus,
                p.ddp_pre
            );
        }
        assert!(pts[2].ddp_pre > pts[1].ddp_pre, "max at 128 workers");
    }

    #[test]
    fn fig9_gen_beats_ddp_and_baseline_flattens() {
        // Paper: up to 2.28× epoch-time win; baseline improves only from
        // 303 s (4 GPUs) to 231 s (128 GPUs).
        let pts = project_fig9(&ProjectionParams::default(), &pems(), 64, &[4, 128]);
        let r4 = pts[0].ddp_total() / pts[0].gen_total();
        assert!(
            (1.5..=3.2).contains(&r4),
            "4-GPU fig9 ratio {r4:.2} vs 2.28"
        );
        // Baseline epoch barely improves 4 → 128.
        let improvement = pts[0].ddp_total() / pts[1].ddp_total();
        assert!(
            (1.0..=2.5).contains(&improvement),
            "baseline epoch should flatten: {improvement:.2}× (paper: 303→231 s)"
        );
        // Generalized index keeps scaling.
        let gen_scale = pts[0].gen_total() / pts[1].gen_total();
        assert!(
            gen_scale > 4.0,
            "gen-index must keep scaling: {gen_scale:.2}×"
        );
    }

    #[test]
    fn fig9_absolute_anchor_seconds() {
        // The baseline's absolute epoch seconds are part of what Fig 9
        // reports: 303 s at 4 GPUs, 231 s at 128.
        let pts = project_fig9(&ProjectionParams::default(), &pems(), 64, &[4, 128]);
        assert!(
            (pts[0].ddp_total() - 303.0).abs() / 303.0 < 0.10,
            "4-GPU baseline epoch {:.0} s vs 303",
            pts[0].ddp_total()
        );
        assert!(
            (pts[1].ddp_total() - 231.0).abs() / 231.0 < 0.10,
            "128-GPU baseline epoch {:.0} s vs 231",
            pts[1].ddp_total()
        );
    }

    #[test]
    fn table2_runtime_ratio() {
        // Table 2: DCRNN 68.48 min vs PGT-DCRNN 4.48 min (15.3×).
        let spec = DatasetSpec::get(DatasetKind::PemsAllLa);
        let (dcrnn, pgt) = project_table2(&ProjectionParams::default(), &spec);
        let ratio = dcrnn / pgt;
        assert!(
            (10.0..=21.0).contains(&ratio),
            "DCRNN/PGT ratio {ratio:.1} vs paper 15.3"
        );
        assert!(
            (dcrnn / 60.0 - 68.48).abs() / 68.48 < 0.35,
            "DCRNN epoch {:.1} min vs 68.48",
            dcrnn / 60.0
        );
        assert!(
            (pgt / 60.0 - 4.48).abs() / 4.48 < 0.35,
            "PGT epoch {:.1} min vs 4.48",
            pgt / 60.0
        );
    }

    #[test]
    fn gpu_index_gain_is_all_pcie() {
        // GPU-index-batching's entire advantage is eliminating per-batch
        // PCIe copies (§5.2): with infinite pageable bandwidth the two
        // single-GPU variants converge (up to the preprocessing delta and
        // the one consolidated transfer).
        let p = ProjectionParams {
            pcie_pageable_bw: f64::INFINITY,
            ..Default::default()
        };
        let (index, gpu) = project_table4(&p, &pems(), 30);
        let pre_delta = p.pre_index_secs - p.pre_gpu_index_secs;
        assert!(
            (index - gpu - pre_delta).abs() < 2.0,
            "index {index:.1} vs gpu {gpu:.1} with free PCIe"
        );
    }

    #[test]
    fn model_cost_spec_params() {
        let c = ModelCostSpec::pgt_dcrnn(&pems());
        // 3 gates × (3 supports × 66 × 64 + 64) + head.
        assert_eq!(c.param_count(), 3 * (3 * 66 * 64 + 64) + 65);
        assert!(c.forward_flops(64) > 1e11);
        let d = ModelCostSpec::dcrnn(&pems());
        assert!(d.forward_flops(64) > 3.5 * c.forward_flops(64));
    }
}
