//! GPU-index-batching (§4.1): the device-resident variant.
//!
//! After one consolidated host→device transfer, preprocessing and training
//! proceed entirely on the device: batches are sliced from device memory,
//! so the per-batch host→device copies of the standard workflow disappear.
//! On this simulated substrate the "device" is a [`MemPool`] plus a
//! [`TransferLedger`]; what the experiments measure — transfer counts,
//! bytes, modeled time, device-pool peaks — is exactly what changes
//! between the CPU and GPU variants on real hardware.

use crate::index_batching::IndexDataset;
use crate::trainer::BatchSource;
use st_data::scaler::StandardScaler;
use st_data::splits::SplitIndices;
use st_device::memory::{AllocError, MemPool};
use st_device::{CostModel, SimClock, TransferLedger};
use st_tensor::Tensor;

/// Where the dataset lives during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Index-batching: data on the host, every batch crosses PCIe.
    Host,
    /// GPU-index-batching: one consolidated transfer, batches stay on device.
    Device,
}

/// An [`IndexDataset`] bound to a device with transfer accounting.
pub struct GpuIndexDataset {
    inner: IndexDataset,
    residency: Residency,
    ledger: TransferLedger,
    cost: CostModel,
    clock: SimClock,
    elem_bytes: usize,
}

impl GpuIndexDataset {
    /// Place `dataset` with the chosen residency. For
    /// [`Residency::Device`], charges the single consolidated transfer now
    /// and reserves device-pool bytes (OOM if the dataset exceeds device
    /// capacity, as §4.1 warns).
    pub fn place(
        dataset: IndexDataset,
        residency: Residency,
        device_pool: &MemPool,
        cost: CostModel,
        clock: SimClock,
        elem_bytes: usize,
    ) -> Result<Self, AllocError> {
        let ledger = TransferLedger::new();
        if residency == Residency::Device {
            let bytes = dataset.resident_bytes(elem_bytes);
            device_pool.alloc_untracked(bytes)?;
            ledger.h2d(bytes, &cost, &clock);
        }
        Ok(GpuIndexDataset {
            inner: dataset,
            residency,
            ledger,
            cost,
            clock,
            elem_bytes,
        })
    }

    /// The transfer ledger (counts + bytes).
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// The simulated clock charged by transfers.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The wrapped dataset.
    pub fn inner(&self) -> &IndexDataset {
        &self.inner
    }

    /// Residency mode.
    pub fn residency(&self) -> Residency {
        self.residency
    }

    fn batch_bytes(&self, batch: usize) -> u64 {
        // x and y batches both move for host-resident data.
        2 * (batch
            * self.inner.horizon()
            * self.inner.num_nodes()
            * self.inner.num_features()
            * self.elem_bytes) as u64
    }
}

impl BatchSource for GpuIndexDataset {
    fn num_snapshots(&self) -> usize {
        self.inner.num_snapshots()
    }

    fn splits(&self) -> &SplitIndices {
        self.inner.splits()
    }

    fn get_batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        if self.residency == Residency::Host {
            // The standard workflow ships each batch over PCIe.
            self.ledger
                .h2d(self.batch_bytes(indices.len()), &self.cost, &self.clock);
        }
        // Device-resident batches are on-device slices: no transfer.
        self.inner.batch(indices)
    }

    fn scaler(&self) -> &StandardScaler {
        self.inner.scaler()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::splits::SplitRatios;
    use st_data::synthetic;
    use st_device::memory::PoolMode;
    use st_device::GIB;

    fn dataset() -> IndexDataset {
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.3);
        let sig = synthetic::generate(&spec, 5);
        IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None)
    }

    fn place(residency: Residency) -> GpuIndexDataset {
        let pool = MemPool::new("gpu0", 40 * GIB, PoolMode::Virtual);
        GpuIndexDataset::place(
            dataset(),
            residency,
            &pool,
            CostModel::polaris(),
            SimClock::new(),
            4,
        )
        .unwrap()
    }

    #[test]
    fn device_residency_is_one_consolidated_transfer() {
        let ds = place(Residency::Device);
        assert_eq!(ds.ledger().h2d_count(), 1);
        for _ in 0..10 {
            let _ = ds.get_batch(&[0, 1]);
        }
        assert_eq!(
            ds.ledger().h2d_count(),
            1,
            "batches must not cross PCIe when device-resident"
        );
    }

    #[test]
    fn host_residency_transfers_every_batch() {
        let ds = place(Residency::Host);
        assert_eq!(ds.ledger().h2d_count(), 0);
        for _ in 0..10 {
            let _ = ds.get_batch(&[0, 1]);
        }
        assert_eq!(ds.ledger().h2d_count(), 10);
        assert!(ds.clock().comm_secs() > 0.0);
    }

    #[test]
    fn device_oom_when_dataset_exceeds_capacity() {
        let tiny = MemPool::new("gpu0", 64, PoolMode::Virtual);
        let r = GpuIndexDataset::place(
            dataset(),
            Residency::Device,
            &tiny,
            CostModel::polaris(),
            SimClock::new(),
            4,
        );
        assert!(r.is_err(), "must OOM on a 64-byte device");
    }

    #[test]
    fn batches_identical_between_residencies() {
        let host = place(Residency::Host);
        let dev = place(Residency::Device);
        let (hx, hy) = host.get_batch(&[1, 3]);
        let (dx, dy) = dev.get_batch(&[1, 3]);
        assert_eq!(hx.to_vec(), dx.to_vec());
        assert_eq!(hy.to_vec(), dy.to_vec());
    }
}
