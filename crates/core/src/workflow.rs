//! End-to-end convenience entry points used by the examples and harness.

use crate::index_batching::IndexDataset;
use crate::trainer::{BatchSource, MaterializedDataset, Trainer, TrainerConfig, TrainingHistory};
use st_data::datasets::{DatasetKind, DatasetSpec, Domain};
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::SplitRatios;
use st_data::synthetic;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};

/// Which batching pipeline to use for a single-GPU run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Batching {
    /// Algorithm-1 materialized arrays (the PGT baseline).
    Standard,
    /// Index-batching (this paper).
    Index,
}

/// A fully-prepared single-GPU experiment: model + data + trainer.
pub struct SingleGpuRun {
    /// The generated signal.
    pub signal: StaticGraphTemporalSignal,
    /// The dataset spec the signal was generated from.
    pub spec: DatasetSpec,
    /// The model under training.
    pub model: PgtDcrnn,
    /// The batch source (standard or index).
    pub source: Box<dyn BatchSource>,
    /// Which batching was selected.
    pub batching: Batching,
}

/// Time-of-day period for datasets that get the augmentation.
pub fn time_period(spec: &DatasetSpec) -> Option<usize> {
    match spec.domain {
        Domain::Traffic => Some(spec.period),
        _ => None,
    }
}

/// Prepare a single-GPU experiment on a scaled benchmark dataset.
pub fn prepare_single_gpu(
    kind: DatasetKind,
    scale: f64,
    batching: Batching,
    hidden: usize,
    seed: u64,
) -> SingleGpuRun {
    let spec = DatasetSpec::get(kind).scaled(scale);
    let signal = synthetic::generate(&spec, seed);
    let period = time_period(&spec);
    let supports = Support::wrap_all(diffusion_supports(&signal.adjacency, 2));
    let features = spec.raw_features + usize::from(period.is_some());
    let cfg = ModelConfig {
        input_dim: features,
        output_dim: 1,
        hidden,
        num_nodes: spec.nodes,
        horizon: spec.horizon,
        diffusion_steps: 2,
        layers: 1,
    };
    let model = PgtDcrnn::new(cfg, &supports, seed);
    let source: Box<dyn BatchSource> = match batching {
        Batching::Index => Box::new(IndexDataset::from_signal(
            &signal,
            spec.horizon,
            SplitRatios::default(),
            period,
        )),
        Batching::Standard => {
            let augmented = match period {
                Some(p) => signal.with_time_feature(p),
                None => signal.clone(),
            };
            Box::new(MaterializedDataset::new(
                st_data::preprocess::materialized_xy(
                    &augmented,
                    spec.horizon,
                    SplitRatios::default(),
                ),
            ))
        }
    };
    SingleGpuRun {
        signal,
        spec,
        model,
        source,
        batching,
    }
}

impl SingleGpuRun {
    /// Train with the given epoch/batch settings; returns the history.
    pub fn train(&self, epochs: usize, batch_size: usize, lr: f32) -> TrainingHistory {
        let trainer = Trainer::new(TrainerConfig {
            epochs,
            batch_size,
            lr,
            seed: 42,
            validate: true,
            grad_clip: Some(5.0),
        });
        trainer.train(&self.model, self.source.as_ref())
    }

    /// Evaluate test-set MAE (original units).
    pub fn test_mae(&self) -> f32 {
        let trainer = Trainer::new(TrainerConfig::default());
        trainer.evaluate(
            &self.model,
            self.source.as_ref(),
            self.source.splits().test.clone(),
        )
    }
}

/// Build a PGT-DCRNN factory closure for the distributed runners, deriving
/// the model from the per-worker dataset view.
pub fn pgt_dcrnn_factory(
    signal: &StaticGraphTemporalSignal,
    horizon: usize,
    hidden: usize,
    seed: u64,
) -> impl Fn(&IndexDataset) -> Box<dyn Seq2Seq> + Sync + '_ {
    move |ds: &IndexDataset| {
        let supports = Support::wrap_all(diffusion_supports(&signal.adjacency, 2));
        let cfg = ModelConfig {
            input_dim: ds.num_features(),
            output_dim: 1,
            hidden,
            num_nodes: ds.num_nodes(),
            horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        Box::new(PgtDcrnn::new(cfg, &supports, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_train_both_batchings() {
        for batching in [Batching::Index, Batching::Standard] {
            let run = prepare_single_gpu(DatasetKind::ChickenpoxHungary, 0.3, batching, 8, 7);
            let h = run.train(2, 8, 0.01);
            assert_eq!(h.epochs.len(), 2, "{batching:?}");
            assert!(h.final_train_loss().is_finite());
            assert!(run.test_mae().is_finite());
        }
    }

    #[test]
    fn both_batchings_learn_equally_well() {
        // Fig 5's claim at miniature scale: equivalent convergence.
        let index = prepare_single_gpu(DatasetKind::ChickenpoxHungary, 0.3, Batching::Index, 8, 7)
            .train(5, 8, 0.01);
        let std = prepare_single_gpu(
            DatasetKind::ChickenpoxHungary,
            0.3,
            Batching::Standard,
            8,
            7,
        )
        .train(5, 8, 0.01);
        let (i, s) = (index.best_val_mae(), std.best_val_mae());
        assert!(
            (i - s).abs() < 0.25 * i.max(s),
            "index {i} vs standard {s} val MAE"
        );
    }

    #[test]
    fn traffic_datasets_get_time_feature() {
        let run = prepare_single_gpu(DatasetKind::PemsBay, 0.01, Batching::Index, 8, 3);
        // Input dim 2 = speed + time-of-day.
        let (x, _) = run.source.get_batch(&[0]);
        assert_eq!(x.dims()[3], 2);
    }
}
