//! Index-batching × graph partitioning (paper §7 future work).
//!
//! The conclusion proposes "the integration of index-batching with graph
//! partitioning, potentially yielding further speedups at a potential cost
//! to accuracy" — the Mallick et al. \[37\] regime, where each spatial
//! partition trains its own DCRNN on its subgraph (plus a halo of neighbor
//! nodes so boundary diffusion convolutions see real context).
//!
//! Combining the two is natural: each partition worker applies
//! index-batching to its **node-subset** signal, so the per-worker memory
//! is `(entries × local_nodes × features)` with no window duplication —
//! both savings compose multiplicatively. The trade-offs the paper warns
//! about surface explicitly here:
//!
//! - **accuracy**: edges cut by the partitioning ([`PartitionedResult::
//!   cut_fraction`]) remove spatial context the whole-graph model had;
//! - **replication**: halo nodes are duplicated across partitions
//!   ([`PartitionedResult::replication_factor`]);
//! - **speedup**: partitions train in parallel, so the critical path is
//!   the *largest* partition's per-epoch compute
//!   ([`PartitionedResult::parallel_flops_fraction`]).
//!
//! Training runs on [`crate::engine`] with one rank per partition and
//! **independent** models (`sync_gradients = false`): the engine's epoch
//! loop drives every partition concurrently, and validation is restricted
//! to owned nodes through [`crate::engine::DistDataPlane::val_views`].

use crate::engine::{self, DistDataPlane, EngineOptions, Fetch};
use crate::index_batching::IndexDataset;
use st_data::loader::Batcher;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::SplitRatios;
use st_data::storage::SignalStorage;
use st_dist::topology::ClusterTopology;
use st_graph::diffusion_supports;
use st_models::{ModelConfig, PgtDcrnn, Seq2Seq, Support};
use st_tensor::Tensor;

/// How to split the graph across partition workers. Each variant maps to
/// an [`st_graph::PartitionerKind`] threaded through
/// [`crate::dist_index::DistConfig::partitioner`] — the single knob every
/// partition-consuming plane reads.
#[derive(Debug, Clone)]
pub enum PartitionStrategy {
    /// Contiguous node-index blocks (the naive baseline).
    Contiguous,
    /// Recursive coordinate bisection over sensor coordinates.
    CoordinateBisection(Vec<(f32, f32)>),
    /// Seeded BFS region growing over the weighted edges.
    GreedyBfs,
    /// Multilevel heavy-edge-matching partitioning with halo-cost-scored
    /// boundary refinement ([`st_graph::Partitioning::multilevel`]) — the
    /// default, and the quality choice under the
    /// [`st_graph::HaloCostModel`].
    Multilevel,
}

impl PartitionStrategy {
    /// The [`st_graph::PartitionerKind`] this strategy routes through,
    /// plus the coordinates the geometric variant carries.
    pub fn kind(&self) -> (st_graph::PartitionerKind, Option<&[(f32, f32)]>) {
        match self {
            PartitionStrategy::Contiguous => (st_graph::PartitionerKind::Contiguous, None),
            PartitionStrategy::CoordinateBisection(coords) => {
                (st_graph::PartitionerKind::CoordinateBisection, Some(coords))
            }
            PartitionStrategy::GreedyBfs => (st_graph::PartitionerKind::GreedyBfs, None),
            PartitionStrategy::Multilevel => (st_graph::PartitionerKind::Multilevel, None),
        }
    }
}

/// Configuration of a partitioned training run.
#[derive(Debug, Clone)]
pub struct PartitionedConfig {
    /// Number of partitions (one model per partition).
    pub parts: usize,
    /// Halo depth in hops; should be ≥ the model's diffusion steps K so
    /// boundary convolutions see their full receptive field.
    pub halo_depth: usize,
    /// Partitioner.
    pub strategy: PartitionStrategy,
    /// Training epochs per partition model.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Hidden width of each partition model.
    pub hidden: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Optional time-of-day augmentation period.
    pub time_period: Option<usize>,
    /// Shared seed.
    pub seed: u64,
    /// Signal storage backend. Under [`st_data::StorageSpec::Chunked`] every
    /// per-partition node-subset copy streams from its own on-disk columnar
    /// file through a bounded chunk cache instead of living in RAM.
    pub storage: st_data::StorageSpec,
}

impl PartitionedConfig {
    /// Reasonable defaults for a measured run.
    pub fn new(parts: usize, horizon: usize) -> Self {
        PartitionedConfig {
            parts,
            halo_depth: 2,
            strategy: PartitionStrategy::Multilevel,
            epochs: 3,
            batch_size: 8,
            lr: 1e-2,
            hidden: 8,
            horizon,
            time_period: None,
            seed: 42,
            storage: st_data::StorageSpec::InMemory,
        }
    }
}

/// Per-partition outcome.
#[derive(Debug)]
pub struct PartResult {
    /// Partition id.
    pub part: usize,
    /// Owned nodes.
    pub owned: usize,
    /// Halo nodes replicated into this partition.
    pub halo: usize,
    /// Validation MAE over **owned** nodes only, original units.
    pub val_mae: f32,
    /// Resident dataset bytes under index-batching (f32).
    pub resident_bytes: u64,
    /// Model forward FLOPs for one sample (drives the critical path).
    pub flops_per_sample: f64,
}

/// Outcome of a partitioned run plus the whole-graph quantities needed for
/// the ablation comparison.
#[derive(Debug)]
pub struct PartitionedResult {
    /// Per-partition results.
    pub parts: Vec<PartResult>,
    /// Validation MAE over all owned nodes (error-weighted combination).
    pub combined_val_mae: f32,
    /// Fraction of weighted edges cut by the partitioning.
    pub cut_fraction: f64,
    /// Modeled halo bytes of the split actually trained, under the run's
    /// [`st_graph::HaloCostModel`] (`cut_neighbors × (2·horizon − 1) ×
    /// row_bytes` over the training feature layout).
    pub modeled_halo_bytes: u64,
    /// Σ local nodes / N (feature duplication from halos).
    pub replication_factor: f64,
    /// `max_p flops_p / flops_whole`: the parallel critical path per epoch
    /// relative to whole-graph training (< 1 ⇒ speedup).
    pub parallel_flops_fraction: f64,
    /// Largest per-partition resident bytes (per-worker memory).
    pub max_resident_bytes: u64,
    /// Whole-graph resident bytes for the same signal (comparison point).
    pub whole_resident_bytes: u64,
}

/// Restrict a signal to a node subset (the per-partition feature copy).
///
/// This *is* a copy — exactly the replication cost partitioned training
/// pays for halo nodes, which [`PartitionedResult::replication_factor`]
/// quantifies.
pub fn node_subset_signal(
    signal: &StaticGraphTemporalSignal,
    nodes: &[usize],
    adjacency: st_graph::Adjacency,
) -> StaticGraphTemporalSignal {
    let select = |block: &st_tensor::Tensor| {
        block
            .permute(&[1, 0, 2])
            .expect("signal is [E, N, F]")
            .index_select0(nodes)
            .expect("node ids in range")
            .permute(&[1, 0, 2])
            .expect("back to [E, n, F]")
            .contiguous()
    };
    match &signal.storage {
        SignalStorage::InMemory(data) => StaticGraphTemporalSignal::new(select(data), adjacency),
        SignalStorage::Chunked(store) => {
            // Stream the subset chunk-by-chunk so the per-partition copy
            // never materializes the full signal.
            let dims = [signal.entries(), nodes.len(), signal.num_features()];
            let mut w = st_data::storage::ChunkedWriter::create(&dims, store.spec());
            store.for_each_chunk(|_, rows| {
                let sub = select(rows);
                w.push_rows(sub.as_slice().expect("contiguous"));
            });
            let storage = SignalStorage::Chunked(std::sync::Arc::new(w.finish()));
            StaticGraphTemporalSignal::with_storage(storage, adjacency)
        }
    }
}

/// The §7 partitioned data plane: one rank per graph partition, each with
/// an index-batched dataset over its halo-augmented node subset and an
/// **independent** model (no gradient synchronization). Validation is
/// narrowed to owned nodes so halo duplicates are never double-counted.
pub struct PartitionedPlane {
    ds: IndexDataset,
    owned: usize,
    batch: usize,
    seed: u64,
    rank: usize,
    cost: st_device::CostModel,
}

impl PartitionedPlane {
    /// Wrap a partition's dataset; `owned` is the count of nodes this
    /// partition owns (its nodes are ordered owned-first), `rank` the
    /// partition/worker index. `cm` prices chunk IO when the dataset is
    /// backed by out-of-core storage.
    pub fn new(
        ds: IndexDataset,
        owned: usize,
        batch: usize,
        seed: u64,
        rank: usize,
        cm: &st_device::CostModel,
    ) -> Self {
        PartitionedPlane {
            ds,
            owned,
            batch,
            seed,
            rank,
            cost: cm.clone(),
        }
    }

    /// The partition's dataset.
    pub fn dataset(&self) -> &IndexDataset {
        &self.ds
    }

    /// The partition (= engine rank) this plane belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl DistDataPlane for PartitionedPlane {
    fn rounds_per_epoch(&self) -> usize {
        self.ds.splits().train.len().div_ceil(self.batch.max(1))
    }

    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        let ids: Vec<usize> = self.ds.splits().train.clone().collect();
        let batcher = Batcher::shuffled(ids, self.batch, self.seed, epoch);
        batcher.batches().map(|b| b.to_vec()).collect()
    }

    fn plan_val(&self) -> Vec<Vec<usize>> {
        engine::chunk_ids(self.ds.splits().val.clone().collect(), self.batch)
    }

    fn fetch_batch(&self, ids: &[usize]) -> Fetch {
        let (x, y, io_bytes) = self.ds.batch_quoted(ids);
        let secs = if io_bytes > 0 {
            self.cost.pfs_read(io_bytes, 1.0)
        } else {
            0.0
        };
        Fetch { x, y, secs }
    }

    fn remote(&self) -> bool {
        // Chunked partitions pay modeled disk time per batch; report remote
        // so the engine's prefetcher overlaps it with compute.
        self.ds.is_chunked()
    }

    fn sync_gradients(&self) -> bool {
        false
    }

    fn validate_epoch(&self, epoch: u64, epochs: u64) -> bool {
        // Only the final numbers are consumed (per-partition MAE from the
        // last rank-val entry), matching the pre-engine runner's single
        // post-training validation — intermediate epochs skip it.
        epoch + 1 == epochs
    }

    fn scaler_std(&self) -> f32 {
        self.ds.scaler().std
    }

    fn val_views(&self, pred: Tensor, target: Tensor) -> (Tensor, Tensor) {
        let p = pred
            .narrow(2, 0, self.owned)
            .expect("owned prefix")
            .contiguous();
        let t = target
            .narrow(2, 0, self.owned)
            .expect("owned prefix")
            .contiguous();
        (p, t)
    }
}

/// Run partitioned index-batching training: one PGT-DCRNN per partition,
/// all partitions trained **concurrently** as engine ranks, each on its
/// halo-augmented node-subset signal, validated on its owned nodes only.
pub fn run_partitioned(
    signal: &StaticGraphTemporalSignal,
    cfg: &PartitionedConfig,
) -> PartitionedResult {
    let rechunked;
    let signal = if cfg.storage.is_chunked() && !signal.is_chunked() {
        rechunked = signal.rechunk(cfg.storage);
        &rechunked
    } else {
        signal
    };
    // The partitioner flows through DistConfig — the knob every
    // partition-consuming plane shares — rather than being hard-wired
    // per runner.
    let mut dist_cfg = crate::dist_index::DistConfig::new(cfg.parts, cfg.epochs, cfg.horizon);
    dist_cfg.batch_per_worker = cfg.batch_size;
    dist_cfg.lr = cfg.lr;
    dist_cfg.seed = cfg.seed;
    dist_cfg.grad_clip = Some(5.0);
    dist_cfg.time_period = cfg.time_period;
    dist_cfg.topology = ClusterTopology::polaris();
    let (kind, coords) = cfg.strategy.kind();
    dist_cfg.partitioner = kind;
    if let Some(c) = coords {
        assert_eq!(c.len(), signal.num_nodes(), "one coordinate per node");
    }
    let partitioning =
        dist_cfg
            .partitioner
            .partition(&signal.adjacency, coords, cfg.parts, cfg.horizon);
    let subgraphs = partitioning.subgraphs(&signal.adjacency, cfg.halo_depth);

    // Whole-graph comparison quantities.
    let whole_ds =
        IndexDataset::from_signal(signal, cfg.horizon, SplitRatios::default(), cfg.time_period);
    let whole_model = build_model(&whole_ds, signal, cfg);
    let whole_flops = whole_model.flops_per_forward(1);
    let whole_resident_bytes = whole_ds.resident_bytes(4);

    // Empty parts (possible when `parts > n` — the partitioners document
    // it) own nothing, train nothing, and must not panic downstream: only
    // the non-empty parts become engine ranks.
    let active: Vec<usize> = (0..cfg.parts)
        .filter(|&p| subgraphs[p].owned_count > 0)
        .collect();

    // Per-partition signals and datasets, built once up front (tensor
    // storage is shared, so the engine's per-rank planes clone in O(1)).
    let locals: Vec<(StaticGraphTemporalSignal, IndexDataset)> = active
        .iter()
        .map(|&p| {
            let sub = &subgraphs[p];
            let local_sig = node_subset_signal(signal, &sub.global_ids, sub.adjacency.clone());
            let ds = IndexDataset::from_signal(
                &local_sig,
                cfg.horizon,
                SplitRatios::default(),
                cfg.time_period,
            );
            (local_sig, ds)
        })
        .collect();
    dist_cfg.world = active.len();

    // Per-partition forward FLOPs, captured from the models the engine
    // builds (so nothing is constructed twice just to size it).
    let part_flops = std::sync::Mutex::new(vec![0.0f64; active.len()]);
    let report = engine::run(
        &dist_cfg,
        &EngineOptions::default(),
        |rank, cm| {
            PartitionedPlane::new(
                locals[rank].1.clone(),
                subgraphs[active[rank]].owned_count,
                cfg.batch_size,
                cfg.seed,
                rank,
                cm,
            )
        },
        |plane: &PartitionedPlane| {
            let model = build_model(plane.dataset(), &locals[plane.rank()].0, cfg);
            part_flops.lock().unwrap()[plane.rank()] = model.flops_per_forward(1);
            Box::new(model) as Box<dyn Seq2Seq>
        },
    )
    .expect("engine run without resume cannot fail");
    let part_flops = part_flops.into_inner().unwrap();

    let mut parts = Vec::with_capacity(cfg.parts);
    let mut abs_weighted = 0.0f64;
    let mut weight = 0.0f64;
    let mut max_flops = 0.0f64;
    let mut max_resident = 0u64;
    for (p, sub) in subgraphs.iter().enumerate() {
        let Some(rank) = active.iter().position(|&a| a == p) else {
            // An empty part trains no model and owns no validation nodes.
            parts.push(PartResult {
                part: p,
                owned: 0,
                halo: 0,
                val_mae: f32::NAN,
                resident_bytes: 0,
                flops_per_sample: 0.0,
            });
            continue;
        };
        let ds = &locals[rank].1;
        // Final-epoch local validation sums, in this partition's scaler
        // units (each partition fits its own scaler). An empty val split
        // — or a zero-epoch run, which never validates — is NaN, never a
        // perfect 0.0.
        let (abs_sum, count) = report.rank_val[rank].last().copied().unwrap_or((0.0, 0));
        let val_mae = if count == 0 {
            f32::NAN
        } else {
            (abs_sum / count as f64) as f32 * ds.scaler().std
        };
        let flops = part_flops[rank];
        let resident = ds.resident_bytes(4);
        max_flops = max_flops.max(flops);
        max_resident = max_resident.max(resident);
        let n_owned = sub.owned_count as f64;
        abs_weighted += val_mae as f64 * n_owned;
        weight += n_owned;
        parts.push(PartResult {
            part: sub.part,
            owned: sub.owned_count,
            halo: sub.halo_count(),
            val_mae,
            resident_bytes: resident,
            flops_per_sample: flops,
        });
    }

    let cost = st_graph::HaloCostModel::new(cfg.horizon, whole_ds.num_features());
    PartitionedResult {
        combined_val_mae: (abs_weighted / weight.max(1.0)) as f32,
        cut_fraction: partitioning.cut_fraction(&signal.adjacency),
        modeled_halo_bytes: cost.halo_bytes(&signal.adjacency, &partitioning),
        replication_factor: partitioning.replication_factor(&signal.adjacency, cfg.halo_depth),
        parallel_flops_fraction: max_flops / whole_flops,
        max_resident_bytes: max_resident,
        whole_resident_bytes,
        parts,
    }
}

fn build_model(
    ds: &IndexDataset,
    sig: &StaticGraphTemporalSignal,
    cfg: &PartitionedConfig,
) -> PgtDcrnn {
    let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
    PgtDcrnn::new(
        ModelConfig {
            input_dim: ds.num_features(),
            output_dim: 1,
            hidden: cfg.hidden,
            num_nodes: ds.num_nodes(),
            horizon: cfg.horizon,
            diffusion_steps: 2,
            layers: 1,
        },
        &supports,
        cfg.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{Trainer, TrainerConfig};
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::synthetic;

    fn signal() -> (DatasetSpec, StaticGraphTemporalSignal) {
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.4);
        let sig = synthetic::generate(&spec, 11);
        (spec, sig)
    }

    /// A corridor network, where halos stay local (dense random-geometric
    /// toys make every 2-hop halo swallow the whole graph).
    fn corridor_signal() -> StaticGraphTemporalSignal {
        let net = st_graph::generators::highway_corridor(24, 1, 11);
        synthetic::traffic::generate(&net, 220, 288, 11)
    }

    /// The pre-engine reference: validation MAE restricted to the first
    /// `owned` nodes, original units, computed directly with a Trainer-
    /// trained model.
    fn owned_val_mae(model: &PgtDcrnn, ds: &IndexDataset, owned: usize, batch: usize) -> f32 {
        let ids: Vec<usize> = ds.splits().val.clone().collect();
        if ids.is_empty() {
            return f32::NAN;
        }
        let mut abs_sum = 0.0f64;
        let mut count = 0usize;
        for chunk in ids.chunks(batch.max(1)) {
            let (x, y) = ds.batch(chunk);
            let target: Tensor = y
                .narrow(3, 0, 1)
                .expect("output feature")
                .narrow(2, 0, owned)
                .expect("owned prefix")
                .contiguous();
            let tape = st_autograd::Tape::new();
            let pred = model.forward(&tape, &x);
            let pred_owned = pred
                .value()
                .narrow(2, 0, owned)
                .expect("owned prefix")
                .contiguous();
            let diff = st_tensor::ops::sub(&pred_owned, &target).expect("same shape");
            abs_sum += st_tensor::ops::sum_abs(&diff);
            count += target.numel();
        }
        (abs_sum / count.max(1) as f64) as f32 * ds.scaler().std
    }

    #[test]
    fn node_subset_preserves_values() {
        let (_, sig) = signal();
        let nodes = vec![3usize, 0, 5];
        let adj = st_graph::partition::induced_subgraph(&sig.adjacency, &nodes);
        let sub = node_subset_signal(&sig, &nodes, adj);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.entries(), sig.entries());
        for (local, &global) in nodes.iter().enumerate() {
            for t in [0usize, 7, sig.entries() - 1] {
                assert_eq!(
                    sub.data().at(&[t, local, 0]),
                    sig.data().at(&[t, global, 0]),
                    "t={t} local={local} global={global}"
                );
            }
        }
    }

    #[test]
    fn partitioned_run_trains_and_reports_tradeoffs() {
        let sig = corridor_signal();
        let mut cfg = PartitionedConfig::new(2, 4);
        cfg.epochs = 2;
        cfg.batch_size = 4;
        let r = run_partitioned(&sig, &cfg);
        assert_eq!(r.parts.len(), 2);
        assert!(r.combined_val_mae.is_finite());
        // The documented trade-off triangle:
        assert!(r.cut_fraction > 0.0, "a 2-way split must cut something");
        assert!(r.modeled_halo_bytes > 0, "cut neighbors must be priced");
        assert!(r.replication_factor >= 1.0);
        assert!(
            r.parallel_flops_fraction < 1.0,
            "parallel critical path must beat whole-graph: {}",
            r.parallel_flops_fraction
        );
        assert!(r.max_resident_bytes < r.whole_resident_bytes);
    }

    #[test]
    fn single_part_matches_whole_graph_training() {
        // k = 1 with no halo is exactly the unpartitioned pipeline.
        let (spec, sig) = signal();
        let mut cfg = PartitionedConfig::new(1, spec.horizon);
        cfg.epochs = 2;
        cfg.batch_size = 4;
        let part = run_partitioned(&sig, &cfg);
        assert_eq!(part.parts[0].halo, 0);
        assert!((part.replication_factor - 1.0).abs() < 1e-9);
        assert!((part.parallel_flops_fraction - 1.0).abs() < 1e-9);

        // Whole-graph reference with identical settings and seed.
        let ds = IndexDataset::from_signal(&sig, cfg.horizon, SplitRatios::default(), None);
        let model = build_model(&ds, &sig, &cfg);
        let trainer = Trainer::new(TrainerConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            seed: cfg.seed,
            validate: false,
            grad_clip: Some(5.0),
        });
        trainer.train(&model, &ds);
        let whole = owned_val_mae(&model, &ds, sig.num_nodes(), cfg.batch_size);
        let diff = (part.combined_val_mae - whole).abs();
        assert!(
            diff < 1e-5 * whole.abs().max(1.0),
            "k=1 partitioned {} vs whole {}",
            part.combined_val_mae,
            whole
        );
    }

    #[test]
    fn more_parts_than_nodes_leaves_empty_parts_without_panicking() {
        // Regression: `k > n` yields empty parts (the partitioners
        // document it) — the runner must skip them, not panic in
        // node_subset_signal / IndexDataset / the engine.
        let net = st_graph::generators::highway_corridor(5, 1, 11);
        let sig = synthetic::traffic::generate(&net, 160, 288, 11);
        let mut cfg = PartitionedConfig::new(7, 4);
        cfg.epochs = 1;
        cfg.batch_size = 4;
        cfg.halo_depth = 1;
        let r = run_partitioned(&sig, &cfg);
        assert_eq!(r.parts.len(), 7);
        let empty: Vec<&PartResult> = r.parts.iter().filter(|p| p.owned == 0).collect();
        assert_eq!(empty.len(), 2, "7 parts over 5 nodes leaves 2 empty");
        for p in &empty {
            assert!(p.val_mae.is_nan(), "an empty part has no validation");
            assert_eq!(p.resident_bytes, 0);
            assert_eq!(p.halo, 0);
        }
        // Non-empty parts still train and combine.
        assert!(r.combined_val_mae.is_finite());
        assert!(r.parts.iter().filter(|p| p.owned > 0).count() == 5);
    }

    #[test]
    fn strategies_all_run() {
        let (spec, sig) = signal();
        let coords = st_graph::generators::random_geometric(sig.num_nodes(), 10.0, 5).coords;
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::CoordinateBisection(coords),
            PartitionStrategy::GreedyBfs,
            PartitionStrategy::Multilevel,
        ] {
            let mut cfg = PartitionedConfig::new(2, spec.horizon);
            cfg.epochs = 1;
            cfg.batch_size = 4;
            cfg.strategy = strategy;
            let r = run_partitioned(&sig, &cfg);
            assert!(r.combined_val_mae.is_finite());
        }
    }

    #[test]
    fn memory_composes_with_index_batching() {
        // Partitioning divides the *entries × nodes* product; index-batching
        // removes the horizon blow-up. Per-worker bytes must be close to
        // (local_nodes / N) × whole-graph index bytes.
        let sig = corridor_signal();
        let mut cfg = PartitionedConfig::new(2, 4);
        cfg.epochs = 1;
        cfg.halo_depth = 1;
        let r = run_partitioned(&sig, &cfg);
        for p in &r.parts {
            let local = p.owned + p.halo;
            let expected = r.whole_resident_bytes as f64 * local as f64 / sig.num_nodes() as f64;
            let ratio = p.resident_bytes as f64 / expected;
            assert!(
                (0.8..=1.3).contains(&ratio),
                "part {} resident {} vs expected {expected:.0}",
                p.part,
                p.resident_bytes
            );
        }
    }
}
