//! Analytic memory models: eq. (1), eq. (2), the Fig.-3 growth stages, and
//! paper-scale virtual replays for index-batching and GPU-index-batching
//! (the standard-pipeline replay lives in `st_data::replay`).

use st_data::datasets::DatasetSpec;
use st_data::preprocess::num_snapshots;
use st_device::memory::{AllocError, MemPool};
use st_device::profiler::MemTimeline;

/// Paper eq. (1): bytes of the standard pipeline's materialized x+y arrays.
pub fn standard_preprocess_bytes(
    entries: usize,
    horizon: usize,
    nodes: usize,
    features: usize,
    elem_bytes: usize,
) -> u64 {
    st_data::preprocess::materialized_bytes(entries, horizon, nodes, features, elem_bytes)
}

/// Paper eq. (2): bytes resident under index-batching — one data copy plus
/// one (8-byte) index per snapshot.
pub fn index_batching_bytes(
    entries: usize,
    horizon: usize,
    nodes: usize,
    features: usize,
    elem_bytes: usize,
) -> u64 {
    (entries * nodes * features * elem_bytes) as u64 + (num_snapshots(entries, horizon) as u64) * 8
}

/// The Fig.-3 data-growth stages for a dataset (float64 byte counts):
/// raw file → stage 1 (time-of-day augmentation) → stage 2 (SWA snapshots,
/// x only) → stage 3 (x and y train/val/test sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthStages {
    /// Raw file bytes.
    pub raw: u64,
    /// After stage 1: the augmented array.
    pub stage1: u64,
    /// After stage 2: all x snapshots materialized.
    pub stage2: u64,
    /// After stage 3: x and y (the eq.-1 total).
    pub stage3: u64,
}

/// Compute the growth stages for `spec` at `elem_bytes` per element.
pub fn growth_stages(spec: &DatasetSpec, elem_bytes: usize) -> GrowthStages {
    let s = num_snapshots(spec.entries, spec.horizon) as u64;
    let raw = spec.raw_bytes(elem_bytes);
    let stage1 = (spec.entries * spec.nodes * spec.aug_features * elem_bytes) as u64;
    let stage2 = s * (spec.horizon * spec.nodes * spec.aug_features * elem_bytes) as u64;
    let stage3 = 2 * stage2;
    GrowthStages {
        raw,
        stage1,
        stage2,
        stage3,
    }
}

/// Outcome of an index-batching virtual replay.
#[derive(Debug, Clone)]
pub struct IndexReplayReport {
    /// Peak host bytes.
    pub peak_host: u64,
    /// Steady host bytes during training.
    pub steady_host: u64,
    /// Peak device bytes (0 for the CPU variant).
    pub peak_device: u64,
    /// OOM, if any pool was exceeded.
    pub oom: Option<AllocError>,
}

/// Virtual replay of **CPU index-batching** preprocessing at full scale
/// (Fig. 6's `PGT-index-batching` curve, Table 4's CPU column):
/// load raw → build augmented array → standardize (temporary) while the
/// raw array is still referenced → steady state = augmented copy + indices.
pub fn index_replay(
    spec: &DatasetSpec,
    host: &MemPool,
    timeline: &mut MemTimeline,
    elem_bytes: usize,
) -> IndexReplayReport {
    let eb = elem_bytes as u64;
    let raw = spec.raw_bytes(elem_bytes);
    let aug = (spec.entries * spec.nodes * spec.aug_features) as u64 * eb;
    let idx = num_snapshots(spec.entries, spec.horizon) as u64 * 8;

    macro_rules! try_alloc {
        ($pool:expr, $bytes:expr, $p:expr) => {
            if let Err(e) = $pool.alloc_untracked($bytes) {
                timeline.mark_oom($p);
                return IndexReplayReport {
                    peak_host: host.peak(),
                    steady_host: 0,
                    peak_device: 0,
                    oom: Some(e),
                };
            }
            timeline.sample($p, host);
        };
    }

    try_alloc!(host, raw, 0.02); // load raw file
    try_alloc!(host, aug, 0.04); // stage 1: augmented array
    try_alloc!(host, aug, 0.06); // standardize: (x-µ)/σ temporary
    host.free(raw + aug); // raw + temp die together at scope end
    try_alloc!(host, idx, 0.08); // the index array (eq. 2's second term)
    timeline.sample(0.10, host);
    let steady = host.in_use();
    for i in 1..=5 {
        timeline.sample(0.1 + 0.18 * i as f64, host);
    }
    IndexReplayReport {
        peak_host: host.peak(),
        steady_host: steady,
        peak_device: 0,
        oom: None,
    }
}

/// Virtual replay of **GPU-index-batching** (§4.1, Table 4's GPU column):
/// the raw file is streamed in chunks into the augmented host array (the
/// raw array is never fully resident), one consolidated transfer moves it
/// to the device, and standardization happens in place on the GPU.
/// `model_overhead` adds the model + batch working set to the device pool.
pub fn gpu_index_replay(
    spec: &DatasetSpec,
    host: &MemPool,
    device: &MemPool,
    timeline: &mut MemTimeline,
    elem_bytes: usize,
    model_overhead: u64,
) -> IndexReplayReport {
    let eb = elem_bytes as u64;
    let aug = (spec.entries * spec.nodes * spec.aug_features) as u64 * eb;
    let idx = num_snapshots(spec.entries, spec.horizon) as u64 * 8;
    let chunk = (spec.raw_bytes(elem_bytes) / 16).max(1); // streamed read buffer

    macro_rules! try_alloc {
        ($pool:expr, $bytes:expr, $p:expr) => {
            if let Err(e) = $pool.alloc_untracked($bytes) {
                timeline.mark_oom($p);
                return IndexReplayReport {
                    peak_host: host.peak(),
                    steady_host: host.in_use(),
                    peak_device: device.peak(),
                    oom: Some(e),
                };
            }
            timeline.sample($p, host);
        };
    }

    try_alloc!(host, chunk, 0.01); // streaming read buffer
    try_alloc!(host, aug, 0.03); // augmented array assembled chunk by chunk
    host.free(chunk);
    // One consolidated host→device transfer.
    try_alloc!(device, aug, 0.05);
    host.free(aug); // host copy dropped after the transfer
    timeline.sample(0.06, host);
    try_alloc!(device, idx, 0.07);
    try_alloc!(device, model_overhead, 0.09); // model, optimizer, batch slabs
    let steady = host.in_use();
    for i in 1..=5 {
        timeline.sample(0.1 + 0.18 * i as f64, host);
    }
    IndexReplayReport {
        peak_host: host.peak(),
        steady_host: steady,
        peak_device: device.peak(),
        oom: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::DatasetKind;
    use st_device::memory::PoolMode;
    use st_device::GIB;

    #[test]
    fn eq2_is_tiny_next_to_eq1() {
        let spec = DatasetSpec::get(DatasetKind::Pems);
        let eq1 = standard_preprocess_bytes(spec.entries, spec.horizon, spec.nodes, 2, 8);
        let eq2 = index_batching_bytes(spec.entries, spec.horizon, spec.nodes, 2, 8);
        assert!(eq1 as f64 / eq2 as f64 > 20.0, "eq1/eq2 = {}", eq1 / eq2);
    }

    #[test]
    fn growth_stages_for_pems_all_la_match_fig3() {
        let spec = DatasetSpec::get(DatasetKind::PemsAllLa);
        let g = growth_stages(&spec, 8);
        let gib = |b: u64| b as f64 / GIB as f64;
        assert!((gib(g.raw) - 2.12).abs() < 0.02, "raw {}", gib(g.raw));
        assert!(
            (gib(g.stage1) - 4.25).abs() < 0.05,
            "stage1 {}",
            gib(g.stage1)
        );
        assert!(
            (gib(g.stage2) - 51.04).abs() < 0.2,
            "stage2 {}",
            gib(g.stage2)
        );
        assert!(
            (gib(g.stage3) - 102.08).abs() < 0.4,
            "stage3 {}",
            gib(g.stage3)
        );
    }

    #[test]
    fn index_replay_pems_peak_matches_fig6() {
        // Fig 6 / §5.1: index-batching peaks at ~46 GB on PeMS and never
        // approaches the 512 GB limit. Table 3's "45.75 GB" and Table 4's
        // 45.84 GB are the same quantity.
        let spec = DatasetSpec::get(DatasetKind::Pems);
        let host = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
        let mut tl = MemTimeline::new("index");
        let r = index_replay(&spec, &host, &mut tl, 8);
        assert!(r.oom.is_none());
        let peak = r.peak_host as f64 / GIB as f64;
        assert!(
            (peak - 45.84).abs() / 45.84 < 0.05,
            "peak {peak} GiB vs paper ≈45.8 GB"
        );
        // Steady state: one augmented copy + indices (eq. 2).
        let eq2 = index_batching_bytes(spec.entries, spec.horizon, spec.nodes, 2, 8);
        assert_eq!(r.steady_host, eq2);
    }

    #[test]
    fn gpu_index_replay_matches_table4() {
        // Table 4: GPU-index-batching: CPU 18.20 GB, GPU 18.60 GB.
        let spec = DatasetSpec::get(DatasetKind::Pems);
        let host = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
        let device = MemPool::new("gpu0", 40 * GIB, PoolMode::Virtual);
        let mut tl = MemTimeline::new("gpu-index");
        let r = gpu_index_replay(&spec, &host, &device, &mut tl, 8, GIB);
        assert!(r.oom.is_none());
        let host_peak = r.peak_host as f64 / GIB as f64;
        let dev_peak = r.peak_device as f64 / GIB as f64;
        assert!(
            (host_peak - 18.20).abs() / 18.20 < 0.05,
            "host peak {host_peak} vs paper 18.20"
        );
        assert!(
            (dev_peak - 18.60).abs() / 18.60 < 0.05,
            "device peak {dev_peak} vs paper 18.60"
        );
    }

    #[test]
    fn gpu_index_ooms_on_dataset_bigger_than_device() {
        // §4.1: "not suitable for datasets that exceed GPU memory capacity".
        // A hypothetical 4× PeMS would blow the 40 GB A100.
        let mut spec = DatasetSpec::get(DatasetKind::Pems);
        spec.nodes *= 4;
        let host = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
        let device = MemPool::new("gpu0", 40 * GIB, PoolMode::Virtual);
        let mut tl = MemTimeline::new("gpu-index-4x");
        let r = gpu_index_replay(&spec, &host, &device, &mut tl, 8, GIB);
        assert!(r.oom.is_some(), "4x PeMS must not fit on a 40 GB device");
    }

    #[test]
    fn cpu_index_fits_on_commodity_hardware() {
        // §5.1: index-batching "enables training on large datasets even on
        // commodity devices" — PeMS under a 64 GB workstation budget.
        let spec = DatasetSpec::get(DatasetKind::Pems);
        let host = MemPool::new("workstation", 64 * GIB, PoolMode::Virtual);
        let mut tl = MemTimeline::new("commodity");
        let r = index_replay(&spec, &host, &mut tl, 8);
        assert!(r.oom.is_none(), "PeMS + index-batching must fit in 64 GB");
    }
}
