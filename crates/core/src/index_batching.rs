//! Index-batching (§4.1): the paper's core memory optimization.
//!
//! Instead of materializing every sliding-window snapshot (Algorithm 1),
//! an [`IndexDataset`] stores **one** standardized copy of the signal plus
//! the window-start indices, and reconstructs any snapshot at runtime as a
//! pair of zero-copy views:
//!
//! ```text
//! x_i = data[start_i .. start_i + horizon]
//! y_i = data[start_i + horizon .. start_i + 2*horizon]      (Fig. 4)
//! ```
//!
//! Space drops from eq. (1) (`2·S·h·N·F`) to eq. (2) (`E·N·F + S`), and the
//! samples fed to the model are **identical** to standard batching — which
//! is why accuracy is unchanged (Fig. 5); a test below asserts exactly that.
//!
//! Since PR 8 the single copy itself sits behind [`SignalStorage`]: the
//! in-memory backend is the historical dense tensor (snapshots stay
//! zero-copy views, batches stay straight memcpys — bit-identical), while
//! the chunked backend streams windows from an on-disk columnar file
//! through a bounded LRU cache, dropping resident bytes from `E·N·F` to
//! `O(chunks_cached)` — the axis eq. (2) cannot shrink.

use st_data::preprocess::num_snapshots;
use st_data::scaler::StandardScaler;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::{SplitIndices, SplitRatios};
use st_data::storage::{RowStore, SignalStorage, StorageSpec};
use st_tensor::Tensor;

/// The index-batching dataset: one data copy + window indices.
#[derive(Debug, Clone)]
pub struct IndexDataset {
    /// The single standardized copy of the signal, `[E, N, F]`, behind a
    /// storage backend.
    store: SignalStorage,
    horizon: usize,
    scaler: StandardScaler,
    splits: SplitIndices,
}

impl IndexDataset {
    /// Build from a signal: optionally append the time-of-day feature
    /// (traffic datasets), fit the scaler on the training prefix, and
    /// standardize the single copy in place of the materializing pipeline.
    ///
    /// The dataset inherits the signal's storage backend: a chunked signal
    /// is standardized chunk-by-chunk (the scaler is elementwise, so the
    /// result is bit-identical to the dense path) and stays chunked. Only
    /// the scaler *fit* materializes the training prefix, transiently.
    pub fn from_signal(
        signal: &StaticGraphTemporalSignal,
        horizon: usize,
        ratios: SplitRatios,
        time_feature_period: Option<usize>,
    ) -> Self {
        let augmented;
        let sig = match time_feature_period {
            Some(p) => {
                augmented = signal.with_time_feature(p);
                &augmented
            }
            None => signal,
        };
        let s = num_snapshots(sig.entries(), horizon);
        assert!(s > 0, "signal too short for horizon {horizon}");
        let splits = ratios.split(s);
        // Fit on the entries the training snapshots can touch:
        // windows [0, train_end) cover entries [0, train_end + 2h - 1).
        let train_entries = (splits.train.end + 2 * horizon - 1).min(sig.entries());
        let (train_view, _) = sig.storage.read_rows_quoted(0..train_entries);
        let scaler = StandardScaler::fit(&train_view);
        drop(train_view);
        let store = sig.storage.map_rows(|rows| scaler.transform(rows));
        IndexDataset {
            store,
            horizon,
            scaler,
            splits,
        }
    }

    /// Wrap already-standardized data directly (used by the distributed
    /// runtimes, where each worker holds its own full copy).
    pub fn from_standardized(
        data: Tensor,
        horizon: usize,
        scaler: StandardScaler,
        splits: SplitIndices,
    ) -> Self {
        Self::from_standardized_storage(SignalStorage::InMemory(data), horizon, scaler, splits)
    }

    /// Wrap an already-standardized storage backend directly.
    pub fn from_standardized_storage(
        store: SignalStorage,
        horizon: usize,
        scaler: StandardScaler,
        splits: SplitIndices,
    ) -> Self {
        IndexDataset {
            store,
            horizon,
            scaler,
            splits,
        }
    }

    /// Re-house the standardized copy under another storage backend.
    pub fn rechunk(&self, spec: StorageSpec) -> IndexDataset {
        IndexDataset {
            store: self.store.rechunk(spec),
            horizon: self.horizon,
            scaler: self.scaler.clone(),
            splits: self.splits.clone(),
        }
    }

    /// Number of `(x, y)` snapshot pairs.
    pub fn num_snapshots(&self) -> usize {
        num_snapshots(self.store.rows(), self.horizon)
    }

    /// The split ranges over snapshot ids.
    pub fn splits(&self) -> &SplitIndices {
        &self.splits
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// Forecast horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.store.dims()[1]
    }

    /// Feature count (after any augmentation).
    pub fn num_features(&self) -> usize {
        self.store.dims()[2]
    }

    /// The single standardized data copy (share-aliased, never cloned).
    /// Panics for a chunked dataset — streaming consumers use
    /// [`IndexDataset::storage`].
    pub fn data(&self) -> &Tensor {
        self.store.dense()
    }

    /// The storage backend behind the single copy.
    pub fn storage(&self) -> &SignalStorage {
        &self.store
    }

    /// True when windows stream from on-disk chunks.
    pub fn is_chunked(&self) -> bool {
        self.store.is_chunked()
    }

    /// Reconstruct snapshot `i` as `(x, y)` of shape `[horizon, N, F]` each
    /// — the runtime request of Fig. 4. **Zero-copy views** on the
    /// in-memory backend; cached chunk reads on the chunked one.
    pub fn snapshot(&self, i: usize) -> (Tensor, Tensor) {
        let h = self.horizon;
        match &self.store {
            SignalStorage::InMemory(data) => {
                let x = data.narrow(0, i, h).expect("snapshot start in range");
                let y = data.narrow(0, i + h, h).expect("label window in range");
                (x, y)
            }
            SignalStorage::Chunked(_) => {
                assert!(
                    i + 2 * h <= self.store.rows(),
                    "snapshot start in range: {i}"
                );
                let (x, _) = self.store.read_rows_quoted(i..i + h);
                let (y, _) = self.store.read_rows_quoted(i + h..i + 2 * h);
                (x, y)
            }
        }
    }

    /// Assemble a minibatch `[B, h, N, F]` for x and y from snapshot ids.
    /// Windows are contiguous row-ranges of the single copy, so assembly is
    /// a straight memcpy per sample — no per-window preprocessing.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        let (x, y, _) = self.batch_quoted(indices);
        (x, y)
    }

    /// Like [`IndexDataset::batch`], additionally quoting the **stored
    /// bytes read from disk** to assemble the batch (0 on the in-memory
    /// backend and on chunk-cache hits) so callers can price the IO and
    /// overlap it with compute.
    pub fn batch_quoted(&self, indices: &[usize]) -> (Tensor, Tensor, u64) {
        let h = self.horizon;
        let n = self.num_nodes();
        let f = self.num_features();
        let row = n * f;
        let dims = [indices.len(), h, n, f];
        for &i in indices {
            assert!(
                i < self.num_snapshots(),
                "snapshot id {i} out of range ({} snapshots)",
                self.num_snapshots()
            );
        }
        match &self.store {
            SignalStorage::InMemory(data) => {
                let src = data.as_slice().expect("standardized copy is contiguous");
                let mut x = Vec::with_capacity(indices.len() * h * row);
                let mut y = Vec::with_capacity(indices.len() * h * row);
                for &i in indices {
                    x.extend_from_slice(&src[i * row..(i + h) * row]);
                    y.extend_from_slice(&src[(i + h) * row..(i + 2 * h) * row]);
                }
                (
                    Tensor::from_vec(x, dims).expect("batch numel"),
                    Tensor::from_vec(y, dims).expect("batch numel"),
                    0,
                )
            }
            SignalStorage::Chunked(_) => {
                let mut x = Vec::with_capacity(indices.len() * h * row);
                let mut y = Vec::with_capacity(indices.len() * h * row);
                let mut io = 0u64;
                for &i in indices {
                    // One contiguous read covers x_i and y_i (they abut).
                    let (win, bytes) = self.store.read_rows_quoted(i..i + 2 * h);
                    io += bytes;
                    let src = win.as_slice().expect("assembled window is contiguous");
                    x.extend_from_slice(&src[..h * row]);
                    y.extend_from_slice(&src[h * row..]);
                }
                (
                    Tensor::from_vec(x, dims).expect("batch numel"),
                    Tensor::from_vec(y, dims).expect("batch numel"),
                    io,
                )
            }
        }
    }

    /// Resident bytes of this dataset per the paper's eq. (2):
    /// one data copy plus one index per snapshot.
    pub fn resident_bytes(&self, elem_bytes: usize) -> u64 {
        crate::memory_model::index_batching_bytes(
            self.store.rows(),
            self.horizon,
            self.num_nodes(),
            self.num_features(),
            elem_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::preprocess::materialized_xy;
    use st_data::storage::ChunkedSpec;
    use st_data::synthetic;
    use st_graph::Adjacency;

    fn toy_signal(entries: usize, nodes: usize) -> StaticGraphTemporalSignal {
        let adj = Adjacency::from_dense(nodes, vec![1.0; nodes * nodes]);
        let data = Tensor::arange(entries * nodes)
            .reshape([entries, nodes, 1])
            .unwrap();
        StaticGraphTemporalSignal::new(data, adj)
    }

    #[test]
    fn snapshots_are_zero_copy_views() {
        let sig = toy_signal(20, 3);
        let ds = IndexDataset::from_signal(&sig, 4, SplitRatios::default(), None);
        let (x, y) = ds.snapshot(2);
        assert_eq!(x.dims(), &[4, 3, 1]);
        assert!(x.shares_storage(ds.data()), "x must alias the single copy");
        assert!(y.shares_storage(ds.data()), "y must alias the single copy");
        // And all snapshots share ONE storage (ref-count grows, bytes don't).
        let (x2, _) = ds.snapshot(7);
        assert!(x2.shares_storage(&x));
    }

    #[test]
    fn index_batching_equals_standard_batching_exactly() {
        // The paper's central correctness claim (§5.1): "index-batching
        // feeds the same spatiotemporal snapshots to the model as standard
        // ST-GNN batching". Compare every sample against Algorithm 1.
        let spec = DatasetSpec::get(DatasetKind::MetrLa).scaled(0.01);
        let sig = synthetic::generate(&spec, 33);
        let sig_aug = sig.with_time_feature(spec.period);
        let std_out = materialized_xy(&sig_aug, spec.horizon, SplitRatios::default());
        let ds = IndexDataset::from_signal(
            &sig,
            spec.horizon,
            SplitRatios::default(),
            Some(spec.period),
        );
        assert_eq!(ds.num_snapshots(), std_out.x.dim(0));
        // Standardization differs slightly (Algorithm 1 fits on x_train
        // windows; index-batching on the entry prefix), so compare in
        // un-standardized units.
        for i in [0usize, 1, ds.num_snapshots() / 2, ds.num_snapshots() - 1] {
            let (x, y) = ds.snapshot(i);
            let x_std = std_out.scaler.inverse(&std_out.x.select(0, i).unwrap());
            let y_std = std_out.scaler.inverse(&std_out.y.select(0, i).unwrap());
            assert!(
                ds.scaler().inverse(&x).allclose(&x_std, 1e-4),
                "x snapshot {i} differs"
            );
            assert!(
                ds.scaler().inverse(&y).allclose(&y_std, 1e-4),
                "y snapshot {i} differs"
            );
        }
    }

    #[test]
    fn batch_matches_individual_snapshots() {
        let sig = toy_signal(30, 2);
        let ds = IndexDataset::from_signal(&sig, 3, SplitRatios::default(), None);
        let (bx, by) = ds.batch(&[5, 0, 9]);
        assert_eq!(bx.dims(), &[3, 3, 2, 1]);
        for (row, &i) in [5usize, 0, 9].iter().enumerate() {
            let (x, y) = ds.snapshot(i);
            assert_eq!(bx.select(0, row).unwrap().to_vec(), x.to_vec());
            assert_eq!(by.select(0, row).unwrap().to_vec(), y.to_vec());
        }
    }

    #[test]
    fn chunked_dataset_is_bit_identical_to_in_memory() {
        // The tentpole invariant at the dataset layer: same signal, chunked
        // backend, arbitrary chunk size ⇒ identical bits out of `batch`.
        let sig = toy_signal(40, 3);
        let dense = IndexDataset::from_signal(&sig, 4, SplitRatios::default(), None);
        for chunk in [1usize, 3, 7, 16, 64] {
            let csig = sig.rechunk(StorageSpec::Chunked(ChunkedSpec::new(chunk)));
            let cds = IndexDataset::from_signal(&csig, 4, SplitRatios::default(), None);
            assert!(cds.is_chunked());
            let ids = [0usize, 5, 17, cds.num_snapshots() - 1];
            let (dx, dy) = dense.batch(&ids);
            let (cx, cy, _) = cds.batch_quoted(&ids);
            for (a, b) in [(dx, cx), (dy, cy)] {
                let (av, bv) = (a.to_vec(), b.to_vec());
                assert_eq!(av.len(), bv.len());
                for (x, y) in av.iter().zip(&bv) {
                    assert_eq!(x.to_bits(), y.to_bits(), "chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn chunked_batches_quote_io_then_hit_cache() {
        let sig = toy_signal(64, 2);
        let csig = sig.rechunk(StorageSpec::Chunked(ChunkedSpec::new(8)));
        let ds = IndexDataset::from_signal(&csig, 2, SplitRatios::default(), None);
        let (_, _, io_cold) = ds.batch_quoted(&[0, 1, 2]);
        assert!(io_cold > 0, "cold batch reads chunks from disk");
        let (_, _, io_warm) = ds.batch_quoted(&[0, 1, 2]);
        assert_eq!(io_warm, 0, "warm batch is served by the cache");
    }

    #[test]
    fn eq2_resident_bytes() {
        let sig = toy_signal(100, 4);
        let ds = IndexDataset::from_signal(&sig, 5, SplitRatios::default(), None);
        // 100*4*1 data elements ×8 + (100-9) indices ×8.
        assert_eq!(ds.resident_bytes(8), 100 * 4 * 8 + 91 * 8);
    }

    #[test]
    fn memory_ratio_matches_paper_for_pems() {
        // eq1 / eq2 at PeMS scale ⇒ the ~89% reduction headline.
        let spec = DatasetSpec::get(DatasetKind::Pems);
        let eq1 = st_data::preprocess::materialized_bytes(
            spec.entries,
            spec.horizon,
            spec.nodes,
            spec.aug_features,
            8,
        );
        let eq2 = crate::memory_model::index_batching_bytes(
            spec.entries,
            spec.horizon,
            spec.nodes,
            spec.aug_features,
            8,
        );
        let reduction = 1.0 - eq2 as f64 / eq1 as f64;
        assert!(
            reduction > 0.89,
            "index-batching must remove ≥89% of bytes, got {reduction:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_bounds_checked() {
        let sig = toy_signal(12, 2);
        let ds = IndexDataset::from_signal(&sig, 3, SplitRatios::default(), None);
        let _ = ds.batch(&[ds.num_snapshots()]);
    }

    #[test]
    fn time_feature_augmentation_applies() {
        let sig = toy_signal(20, 2);
        let ds = IndexDataset::from_signal(&sig, 3, SplitRatios::default(), Some(4));
        assert_eq!(ds.num_features(), 2);
    }
}
