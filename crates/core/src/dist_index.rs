//! Distributed-index-batching (§4.2).
//!
//! Every worker holds a **full local copy** of the (index-batched) dataset —
//! affordable only because of eq. (2) — so global shuffling needs no
//! communication: each epoch, all workers derive the same shared-seed
//! permutation and take their stripe. The only inter-worker traffic is the
//! DDP gradient all-reduce (plus tiny metric reductions), which is exactly
//! the property that separates the right panel of Fig. 7 from the left.

use crate::index_batching::IndexDataset;
use crate::trainer::BatchSource;
use st_autograd::loss;
use st_autograd::optim::{clip_grad_norm, Adam, Optimizer};
use st_autograd::Tape;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::SplitRatios;
use st_dist::ddp::DdpContext;
use st_dist::launch::run_workers;
use st_dist::shuffle::{self, ShuffleStrategy};
use st_dist::topology::ClusterTopology;
use st_models::Seq2Seq;

/// Configuration of a distributed training run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of workers (simulated GPUs).
    pub world: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size **per worker** (global batch = world × this), following
    /// the paper's weak-batch-scaling protocol (§5).
    pub batch_per_worker: usize,
    /// Base learning rate (at `lr_base_batch` global batch).
    pub lr: f32,
    /// Shared seed (shuffling + model init).
    pub seed: u64,
    /// Shuffling strategy (the paper's default is global).
    pub shuffle: ShuffleStrategy,
    /// Cluster shape.
    pub topology: ClusterTopology,
    /// When set, apply the linear LR-scaling rule relative to this base
    /// global batch (§5.3.3 follow-up).
    pub lr_base_batch: Option<usize>,
    /// Optional gradient clipping.
    pub grad_clip: Option<f32>,
    /// Forecast horizon.
    pub horizon: usize,
    /// Optional time-of-day feature period.
    pub time_period: Option<usize>,
    /// Double-buffer data-plane fetches so they overlap with compute
    /// (§7 future work; only affects runners with a remote data plane,
    /// i.e. baseline DDP — dist-index has no data plane to hide).
    pub prefetch: bool,
}

impl DistConfig {
    /// A reasonable default for measured runs.
    pub fn new(world: usize, epochs: usize, horizon: usize) -> Self {
        DistConfig {
            world,
            epochs,
            batch_per_worker: 8,
            lr: 1e-2,
            seed: 42,
            shuffle: ShuffleStrategy::Global,
            topology: ClusterTopology::polaris(),
            lr_base_batch: None,
            grad_clip: Some(5.0),
            horizon,
            time_period: None,
            prefetch: false,
        }
    }

    /// The global batch size.
    pub fn global_batch(&self) -> usize {
        self.world * self.batch_per_worker
    }

    /// The learning rate after optional large-batch scaling.
    pub fn effective_lr(&self) -> f32 {
        match self.lr_base_batch {
            Some(base) => {
                st_autograd::optim::lr_for_global_batch(self.lr, base, self.global_batch())
            }
            None => self.lr,
        }
    }
}

/// Per-epoch statistics of a distributed run (rank-0 view; all ranks agree).
#[derive(Debug, Clone, Copy)]
pub struct DistEpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training MAE (standardized) across all workers.
    pub train_loss: f32,
    /// Validation MAE in original units, computed over all workers.
    pub val_mae: f32,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// Per-epoch stats.
    pub epochs: Vec<DistEpochStats>,
    /// Simulated compute seconds (rank 0).
    pub sim_compute_secs: f64,
    /// Simulated communication seconds (rank 0).
    pub sim_comm_secs: f64,
    /// Total simulated seconds (rank 0).
    pub sim_total_secs: f64,
    /// Total collective payload bytes moved.
    pub bytes_moved: u64,
    /// Sample-data bytes moved between workers (the data plane). Zero for
    /// distributed-index-batching (every worker holds a full local copy);
    /// the dominant term for baseline DDP — the crux of Fig. 7.
    pub data_plane_bytes: u64,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
}

impl DistRunResult {
    /// Best validation MAE over epochs.
    pub fn best_val_mae(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.val_mae)
            .fold(f32::INFINITY, f32::min)
    }
}

/// Run distributed-index-batching training.
///
/// `model_factory` builds one replica per worker; replicas start identical
/// because the factory must derive all randomness from `cfg.seed` (a
/// parameter broadcast enforces it regardless).
pub fn run_distributed_index<F>(
    signal: &StaticGraphTemporalSignal,
    cfg: &DistConfig,
    model_factory: F,
) -> DistRunResult
where
    F: Fn(&IndexDataset) -> Box<dyn Seq2Seq> + Sync,
{
    let start = std::time::Instant::now();
    let results = run_workers(cfg.world, cfg.topology, |mut ctx| {
        // §4.2: every worker builds its own full local copy.
        let ds =
            IndexDataset::from_signal(signal, cfg.horizon, SplitRatios::default(), cfg.time_period);
        let model = model_factory(&ds);
        let mut ddp = DdpContext::new(model.params());
        ddp.broadcast_parameters(&mut ctx.comm);
        let mut opt = Adam::new(model.params(), cfg.effective_lr());

        let train = ds.splits().train.clone();
        let val = ds.splits().val.clone();
        let mut epoch_stats = Vec::with_capacity(cfg.epochs);
        let cm = ctx.comm.hub().cost_model().clone();
        let gpu_flops = cm.gpu_flops;
        // Ragged partitions (Local/LocalBatch) give ranks unequal batch
        // counts; all ranks agree on a common round count analytically so
        // per-step all-reduces never mismatch (see `shuffle::common_rounds`).
        let rounds = shuffle::common_rounds(
            (0..cfg.world).map(|r| match cfg.shuffle {
                ShuffleStrategy::Global => train.len() / cfg.world,
                _ => shuffle::contiguous_partition(train.len(), cfg.world, r).len(),
            }),
            cfg.batch_per_worker,
        );
        for epoch in 0..cfg.epochs {
            // Communication-free shuffling: shared-seed stripe.
            let my_ids: Vec<usize> = match cfg.shuffle {
                ShuffleStrategy::Global => shuffle::global_stripe(
                    train.len(),
                    cfg.world,
                    ctx.rank(),
                    cfg.seed,
                    epoch as u64,
                )
                .into_iter()
                .map(|i| train.start + i)
                .collect(),
                ShuffleStrategy::Local => {
                    let part = shuffle::contiguous_partition(train.len(), cfg.world, ctx.rank());
                    let ids: Vec<usize> = part.map(|i| train.start + i).collect();
                    shuffle::local_shuffle(&ids, cfg.seed, ctx.rank(), epoch as u64)
                }
                ShuffleStrategy::LocalBatch => {
                    let part = shuffle::contiguous_partition(train.len(), cfg.world, ctx.rank());
                    let ids: Vec<usize> = part.map(|i| train.start + i).collect();
                    let nb = ids.len().div_ceil(cfg.batch_per_worker);
                    let order =
                        shuffle::batch_order_shuffle(nb, cfg.seed, ctx.rank(), epoch as u64);
                    order
                        .into_iter()
                        .flat_map(|b| {
                            ids[b * cfg.batch_per_worker
                                ..((b + 1) * cfg.batch_per_worker).min(ids.len())]
                                .to_vec()
                        })
                        .collect()
                }
            };

            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            let chunks: Vec<&[usize]> = my_ids.chunks(cfg.batch_per_worker).collect();
            for round in 0..rounds {
                opt.zero_grad();
                if let Some(chunk) = chunks.get(round) {
                    let (x, y) = ds.get_batch(chunk);
                    let target = y.narrow(3, 0, 1).expect("feature 0").contiguous();
                    let tape = Tape::new();
                    let pred = model.forward(&tape, &x);
                    let tgt = tape.constant(target);
                    let l = loss::mae(&pred, &tgt);
                    loss_sum += l.value().item() as f64;
                    batches += 1;
                    let grads = tape.backward(&l);
                    tape.accumulate_param_grads(&grads);
                    // Charge modeled step compute (fwd + bwd ≈ 3× fwd).
                    ctx.clock
                        .advance_compute(3.0 * model.flops_per_forward(chunk.len()) / gpu_flops);
                }
                // Exhausted ranks contribute zeros but still meet the
                // collective and apply the identical averaged step.
                ddp.average_gradients(&mut ctx.comm);
                if let Some(clip) = cfg.grad_clip {
                    clip_grad_norm(&model.params(), clip);
                }
                opt.step();
            }

            // Mean training loss across ranks.
            let sums = ctx
                .comm
                .all_gather_scalar((loss_sum / batches.max(1) as f64) as f32);
            let train_loss = sums.iter().sum::<f32>() / sums.len() as f32;

            // Validation: each rank evaluates its contiguous slice.
            let my_val = shuffle::contiguous_partition(val.len(), cfg.world, ctx.rank());
            let mut abs_sum = 0.0f64;
            let mut count = 0usize;
            for chunk in my_val
                .map(|i| val.start + i)
                .collect::<Vec<_>>()
                .chunks(cfg.batch_per_worker.max(1))
            {
                if chunk.is_empty() {
                    continue;
                }
                let (x, y) = ds.get_batch(chunk);
                let target = y.narrow(3, 0, 1).expect("feature 0").contiguous();
                let tape = Tape::new();
                let pred = model.forward(&tape, &x);
                ctx.clock
                    .advance_compute(model.flops_per_forward(chunk.len()) / gpu_flops);
                let diff = st_tensor::ops::sub(pred.value(), &target).expect("same shape");
                abs_sum += st_tensor::ops::abs(&diff)
                    .to_vec()
                    .iter()
                    .map(|&v| v as f64)
                    .sum::<f64>();
                count += target.numel();
            }
            let totals = ctx.comm.all_gather_scalar(abs_sum as f32);
            let counts = ctx.comm.all_gather_scalar(count as f32);
            let val_mae =
                totals.iter().sum::<f32>() / counts.iter().sum::<f32>().max(1.0) * ds.scaler().std;

            epoch_stats.push(DistEpochStats {
                epoch,
                train_loss,
                val_mae,
            });
        }
        (
            epoch_stats,
            ctx.clock.compute_secs(),
            ctx.clock.comm_secs(),
            ctx.clock.now(),
            ctx.comm.hub().bytes_moved(),
        )
    });

    let (epochs, compute, comm, total, bytes) = results.into_iter().next().expect("rank 0");
    DistRunResult {
        epochs,
        sim_compute_secs: compute,
        sim_comm_secs: comm,
        sim_total_secs: total,
        bytes_moved: bytes,
        data_plane_bytes: 0, // full local copies: gradient traffic only
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::synthetic;
    use st_graph::diffusion_supports;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn run(world: usize, shuffle: ShuffleStrategy, epochs: usize) -> DistRunResult {
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
        let sig = synthetic::generate(&spec, 21);
        let mut cfg = DistConfig::new(world, epochs, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.shuffle = shuffle;
        run_distributed_index(&sig, &cfg, |ds| {
            let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
            let mc = ModelConfig {
                input_dim: ds.num_features(),
                output_dim: 1,
                hidden: 8,
                num_nodes: ds.num_nodes(),
                horizon: ds.horizon(),
                diffusion_steps: 2,
                layers: 1,
            };
            Box::new(PgtDcrnn::new(mc, &supports, 42))
        })
    }

    #[test]
    fn distributed_training_learns() {
        let r = run(2, ShuffleStrategy::Global, 4);
        assert_eq!(r.epochs.len(), 4);
        let first = r.epochs.first().unwrap().train_loss;
        let last = r.epochs.last().unwrap().train_loss;
        assert!(
            last < first,
            "distributed loss must fall: {first} -> {last}"
        );
        assert!(r.best_val_mae().is_finite());
    }

    #[test]
    fn only_gradient_traffic_under_global_shuffle() {
        // Dist-index moves gradients and tiny metric scalars — no sample
        // data. Bytes per epoch ≈ batches × grad_bytes × 2(world-1)(+ε).
        let r = run(2, ShuffleStrategy::Global, 1);
        assert!(r.bytes_moved > 0);
        // Generous upper bound: far less than one dataset copy (≈ 0.35MB
        // of samples would be ~350KB; gradients here are ~5KB total).
        assert!(
            r.bytes_moved < 2_000_000,
            "unexpected data-plane traffic: {} bytes",
            r.bytes_moved
        );
        assert!(r.sim_comm_secs > 0.0);
        assert!(r.sim_compute_secs > 0.0);
    }

    #[test]
    fn replicas_agree_on_metrics_regardless_of_world_size() {
        // Same seed, same data: 1-worker and 2-worker runs should start
        // from similar losses (not identical — global batch differs).
        let r1 = run(1, ShuffleStrategy::Global, 1);
        let r2 = run(2, ShuffleStrategy::Global, 1);
        let a = r1.epochs[0].train_loss;
        let b = r2.epochs[0].train_loss;
        assert!(
            (a - b).abs() < 0.5 * a.max(b),
            "first-epoch losses far apart: {a} vs {b}"
        );
    }

    #[test]
    fn shuffle_strategies_all_run() {
        for s in [
            ShuffleStrategy::Global,
            ShuffleStrategy::Local,
            ShuffleStrategy::LocalBatch,
        ] {
            let r = run(2, s, 1);
            assert!(r.epochs[0].train_loss.is_finite(), "{s:?}");
        }
    }

    #[test]
    fn effective_lr_scales_with_global_batch() {
        let mut cfg = DistConfig::new(8, 1, 12);
        cfg.batch_per_worker = 64;
        cfg.lr = 0.01;
        cfg.lr_base_batch = Some(64);
        assert!((cfg.effective_lr() - 0.08).abs() < 1e-6);
        cfg.lr_base_batch = None;
        assert_eq!(cfg.effective_lr(), 0.01);
    }
}
