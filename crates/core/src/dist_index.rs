//! Distributed-index-batching (§4.2).
//!
//! Every worker holds a **full local copy** of the (index-batched) dataset —
//! affordable only because of eq. (2) — so global shuffling needs no
//! communication: each epoch, all workers derive the same shared-seed
//! permutation and take their stripe. The only inter-worker traffic is the
//! DDP gradient all-reduce (plus tiny metric reductions), which is exactly
//! the property that separates the right panel of Fig. 7 from the left.

use crate::engine::{self, DistDataPlane, EngineOptions, Fetch};
use crate::index_batching::IndexDataset;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::SplitRatios;
use st_data::storage::StorageSpec;
use st_device::CostModel;
use st_dist::shuffle::{self, ShuffleStrategy};
use st_dist::topology::ClusterTopology;
use st_dist::wire::WireCodec;
use st_models::Seq2Seq;

/// Configuration of a distributed training run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of workers (simulated GPUs).
    pub world: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size **per worker** (global batch = world × this), following
    /// the paper's weak-batch-scaling protocol (§5).
    pub batch_per_worker: usize,
    /// Base learning rate (at `lr_base_batch` global batch).
    pub lr: f32,
    /// Shared seed (shuffling + model init).
    pub seed: u64,
    /// Shuffling strategy (the paper's default is global).
    pub shuffle: ShuffleStrategy,
    /// Cluster shape.
    pub topology: ClusterTopology,
    /// When set, apply the linear LR-scaling rule relative to this base
    /// global batch (§5.3.3 follow-up).
    pub lr_base_batch: Option<usize>,
    /// Optional gradient clipping.
    pub grad_clip: Option<f32>,
    /// Forecast horizon.
    pub horizon: usize,
    /// Optional time-of-day feature period.
    pub time_period: Option<usize>,
    /// Double-buffer data-plane fetches so they overlap with compute
    /// (§7 future work). Applies to **every** remote data plane the
    /// engine drives: the baseline's per-batch data-service fetches and
    /// the generalized mode's one-time halo read alike. A no-op for
    /// local planes (dist-index has no data plane to hide).
    pub prefetch: bool,
    /// Byte cap for the pipelined step engine's gradient buckets.
    /// `Some(cap)`: gradients all-reduce in deterministic byte-capped
    /// buckets ordered by gradient completion, each a quoted async
    /// collective hidden behind the remaining backward compute.
    /// `None`: the legacy single flat synchronous all-reduce. Numerics
    /// are **bit-identical** either way (an element-wise rank-order mean
    /// does not care how the buffer is split); only modeled time moves.
    pub grad_bucket_bytes: Option<usize>,
    /// The graph partitioner every partition-consuming plane routes
    /// through: the §7 partitioned trainer splits the sensor graph with
    /// it, the generalized mode derives its entry-timeline ranges from it
    /// ([`st_graph::PartitionerKind::entry_ranges`]), and the dynamic
    /// plane re-partitions with it on every graph mutation. Defaults to
    /// the multilevel partitioner — the quality choice under the
    /// [`st_graph::HaloCostModel`].
    pub partitioner: st_graph::PartitionerKind,
    /// Staleness bound `s` for gradient application (MSPipe direction).
    /// `0` (the default) is today's synchronous path — every collective
    /// settles in the step that issued it, **bit-identical** to the flat
    /// reduce. `s ≥ 1` lets a rank apply an averaged gradient up to `s`
    /// steps after it was issued: bucket collectives become deadline
    /// streams on the overlap ledger, applied when their modeled arrival
    /// instant passes the rank's clock, with a hard sync fence the moment
    /// the bound would be exceeded. Requires the bucketed path (a flat
    /// `grad_bucket_bytes: None` config with `s ≥ 1` gets one whole-model
    /// bucket). See DESIGN.md §4.
    pub staleness: usize,
    /// Deterministic straggler-injection knob: scales each rank's modeled
    /// compute seconds by [`st_device::CostModel::straggler_scale`] (rank 0
    /// stays at 1.0, the last rank runs `1 + skew` slower, linear ramp
    /// between). Numerics never see it — only modeled time moves. `0.0`
    /// (the default) models a uniform healthy allocation.
    pub straggler_skew: f64,
    /// Compute backend every rank selects before its first step
    /// ([`st_tensor::backend::set_backend`]). Both backends are bitwise
    /// identical, so switching never moves the numerics — only wall time.
    /// Defaults to [`st_tensor::backend::BackendKind::Tiled`].
    pub backend: st_tensor::backend::BackendKind,
    /// Storage backend for every plane's standardized signal copy.
    /// `InMemory` (the default) is the historical dense tensor. `Chunked`
    /// streams windows from an on-disk columnar file through a bounded LRU
    /// chunk cache — resident bytes drop to `O(chunks_cached)` and the
    /// modeled chunk-IO seconds ride the same prefetch/overlap machinery
    /// as network time. The lossless chunk codec (the default inside
    /// [`st_data::storage::ChunkedSpec`]) keeps every loss curve
    /// **bit-identical** to the in-memory run.
    pub storage: StorageSpec,
    /// Wire codec for remote data-plane payloads (baseline DDP row fetches
    /// and the generalized mode's halo/entry reads). `Lossless` (the
    /// default) is bit-exact; `F16`/`DeltaI8` shrink ledger bytes 2×/≈4×
    /// and honestly transcode delivered rows. Local-copy planes move no
    /// sample data, so the codec is a no-op there.
    pub wire_codec: WireCodec,
}

impl DistConfig {
    /// A reasonable default for measured runs.
    pub fn new(world: usize, epochs: usize, horizon: usize) -> Self {
        DistConfig {
            world,
            epochs,
            batch_per_worker: 8,
            lr: 1e-2,
            seed: 42,
            shuffle: ShuffleStrategy::Global,
            topology: ClusterTopology::polaris(),
            lr_base_batch: None,
            grad_clip: Some(5.0),
            horizon,
            time_period: None,
            prefetch: false,
            grad_bucket_bytes: Some(st_dist::ddp::DEFAULT_GRAD_BUCKET_BYTES),
            partitioner: st_graph::PartitionerKind::Multilevel,
            staleness: 0,
            straggler_skew: 0.0,
            backend: st_tensor::backend::BackendKind::Tiled,
            storage: StorageSpec::InMemory,
            wire_codec: WireCodec::Lossless,
        }
    }

    /// The global batch size.
    pub fn global_batch(&self) -> usize {
        self.world * self.batch_per_worker
    }

    /// The learning rate after optional large-batch scaling.
    pub fn effective_lr(&self) -> f32 {
        match self.lr_base_batch {
            Some(base) => {
                st_autograd::optim::lr_for_global_batch(self.lr, base, self.global_batch())
            }
            None => self.lr,
        }
    }
}

/// Per-epoch statistics of a distributed run (rank-0 view; all ranks agree
/// on the metrics, while the comm split below is rank 0's own accounting).
#[derive(Debug, Clone, Copy)]
pub struct DistEpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training MAE (standardized) across all contributing workers.
    pub train_loss: f32,
    /// Validation MAE in original units, computed over all workers.
    pub val_mae: f32,
    /// Modeled communication seconds this epoch that the overlap
    /// scheduler hid behind compute (rank 0's ledger: setup reads,
    /// prefetched fetches, in-flight gradient buckets).
    pub hidden_comm_secs: f64,
    /// Modeled communication seconds this epoch actually charged to the
    /// clock (exposed: collective rendezvous, unhidden remainders, metric
    /// reductions).
    pub exposed_comm_secs: f64,
    /// Gradients rank 0 applied at age ≥ 1 step this epoch (always zero on
    /// the synchronous `staleness = 0` path).
    pub stale_steps_applied: u64,
    /// Hard sync fences rank 0 took this epoch because a not-yet-arrived
    /// collective hit the staleness bound.
    pub fence_stalls: u64,
    /// Rank 0's wall seconds inside compute kernels this epoch, split by
    /// class ([`st_device::KernelSplit`]: gemm / spmm / elementwise). Real
    /// measured time on the host, not modeled seconds — the knob for
    /// judging where the tiled backend's wins land.
    pub kernel_split: st_device::KernelSplit,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// Per-epoch stats.
    pub epochs: Vec<DistEpochStats>,
    /// Simulated compute seconds (rank 0).
    pub sim_compute_secs: f64,
    /// Simulated communication seconds (rank 0).
    pub sim_comm_secs: f64,
    /// Total simulated seconds (rank 0).
    pub sim_total_secs: f64,
    /// Total collective payload bytes moved.
    pub bytes_moved: u64,
    /// Sample-data bytes moved between workers (the data plane). Zero for
    /// distributed-index-batching (every worker holds a full local copy);
    /// the dominant term for baseline DDP — the crux of Fig. 7.
    pub data_plane_bytes: u64,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
}

impl DistRunResult {
    /// Best validation MAE over epochs.
    pub fn best_val_mae(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.val_mae)
            .fold(f32::INFINITY, f32::min)
    }
}

/// The §4.2 data plane: every worker holds a **full local copy** of the
/// index-batched dataset, so epoch plans come from communication-free
/// shared-seed shuffles and fetches are free local views.
pub struct LocalCopyPlane {
    ds: IndexDataset,
    world: usize,
    rank: usize,
    batch: usize,
    seed: u64,
    shuffle: ShuffleStrategy,
    cost: CostModel,
}

impl LocalCopyPlane {
    /// Build rank `rank`'s plane: its own full local copy (§4.2 — cheap
    /// only because of eq. (2)). Under [`StorageSpec::Chunked`] the "local
    /// copy" lives in an on-disk columnar file instead of RAM: batches
    /// stream through the bounded chunk cache and `cm` prices the chunk IO
    /// ([`CostModel::pfs_read`]) so the engine can prefetch it away.
    pub fn new(
        signal: &StaticGraphTemporalSignal,
        cfg: &DistConfig,
        rank: usize,
        cm: &CostModel,
    ) -> Self {
        let sig;
        let signal = if cfg.storage.is_chunked() && !signal.is_chunked() {
            sig = signal.rechunk(cfg.storage);
            &sig
        } else {
            signal
        };
        let ds =
            IndexDataset::from_signal(signal, cfg.horizon, SplitRatios::default(), cfg.time_period);
        LocalCopyPlane {
            ds,
            world: cfg.world,
            rank,
            batch: cfg.batch_per_worker,
            seed: cfg.seed,
            shuffle: cfg.shuffle,
            cost: cm.clone(),
        }
    }

    /// The worker's local dataset copy (model factories derive dims from
    /// it).
    pub fn dataset(&self) -> &IndexDataset {
        &self.ds
    }
}

impl DistDataPlane for LocalCopyPlane {
    fn rounds_per_epoch(&self) -> usize {
        // Ragged stripes/partitions give ranks batch counts that differ
        // by one; every strategy stripes `contiguous_partition` lengths
        // over the (possibly permuted) train split.
        engine::striped_rounds(self.ds.splits().train.len(), self.world, self.batch)
    }

    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        let train = self.ds.splits().train.clone();
        // Communication-free shuffling: shared-seed stripe or local
        // permutations, identical on every rank's derivation.
        let my_ids: Vec<usize> = match self.shuffle {
            ShuffleStrategy::Global => {
                return engine::striped_plan(
                    train, self.world, self.rank, self.seed, epoch, self.batch,
                );
            }
            ShuffleStrategy::Local => {
                let part = shuffle::contiguous_partition(train.len(), self.world, self.rank);
                let ids: Vec<usize> = part.map(|i| train.start + i).collect();
                shuffle::local_shuffle(&ids, self.seed, self.rank, epoch)
            }
            ShuffleStrategy::LocalBatch => {
                let part = shuffle::contiguous_partition(train.len(), self.world, self.rank);
                let ids: Vec<usize> = part.map(|i| train.start + i).collect();
                let nb = ids.len().div_ceil(self.batch);
                let order = shuffle::batch_order_shuffle(nb, self.seed, self.rank, epoch);
                order
                    .into_iter()
                    .flat_map(|b| {
                        ids[b * self.batch..((b + 1) * self.batch).min(ids.len())].to_vec()
                    })
                    .collect()
            }
        };
        engine::chunk_ids(my_ids, self.batch)
    }

    fn plan_val(&self) -> Vec<Vec<usize>> {
        engine::striped_val_plan(
            self.ds.splits().val.clone(),
            self.world,
            self.rank,
            self.batch,
        )
    }

    fn fetch_batch(&self, ids: &[usize]) -> Fetch {
        let (x, y, io_bytes) = self.ds.batch_quoted(ids);
        let secs = if io_bytes > 0 {
            self.cost.pfs_read(io_bytes, 1.0)
        } else {
            0.0
        };
        Fetch { x, y, secs }
    }

    fn remote(&self) -> bool {
        // A chunked local copy pays modeled disk time per batch; reporting
        // it as remote turns on the engine's double-buffered prefetcher so
        // chunk IO hides behind compute exactly like network fetches.
        self.ds.is_chunked()
    }

    fn scaler_std(&self) -> f32 {
        self.ds.scaler().std
    }
}

/// Run distributed-index-batching training.
///
/// `model_factory` builds one replica per worker; replicas start identical
/// because the factory must derive all randomness from `cfg.seed` (a
/// parameter broadcast enforces it regardless).
pub fn run_distributed_index<F>(
    signal: &StaticGraphTemporalSignal,
    cfg: &DistConfig,
    model_factory: F,
) -> DistRunResult
where
    F: Fn(&IndexDataset) -> Box<dyn Seq2Seq> + Sync,
{
    engine::run(
        cfg,
        &EngineOptions::default(),
        |rank, cm| LocalCopyPlane::new(signal, cfg, rank, cm),
        |plane: &LocalCopyPlane| model_factory(plane.dataset()),
    )
    .expect("engine run without resume cannot fail")
    .into_dist_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::synthetic;
    use st_graph::diffusion_supports;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn run(world: usize, shuffle: ShuffleStrategy, epochs: usize) -> DistRunResult {
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
        let sig = synthetic::generate(&spec, 21);
        let mut cfg = DistConfig::new(world, epochs, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.shuffle = shuffle;
        run_distributed_index(&sig, &cfg, |ds| {
            let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
            let mc = ModelConfig {
                input_dim: ds.num_features(),
                output_dim: 1,
                hidden: 8,
                num_nodes: ds.num_nodes(),
                horizon: ds.horizon(),
                diffusion_steps: 2,
                layers: 1,
            };
            Box::new(PgtDcrnn::new(mc, &supports, 42))
        })
    }

    #[test]
    fn distributed_training_learns() {
        let r = run(2, ShuffleStrategy::Global, 4);
        assert_eq!(r.epochs.len(), 4);
        let first = r.epochs.first().unwrap().train_loss;
        let last = r.epochs.last().unwrap().train_loss;
        assert!(
            last < first,
            "distributed loss must fall: {first} -> {last}"
        );
        assert!(r.best_val_mae().is_finite());
        // Rank 0 did real kernel work every epoch, and the profiler's
        // per-class split captured it (gemm dominates a DCRNN step).
        for e in &r.epochs {
            let ks = e.kernel_split;
            assert!(ks.gemm_secs > 0.0, "epoch {} saw no gemm time", e.epoch);
            assert!(ks.total_secs() >= ks.gemm_secs);
            assert!(ks.spmm_secs >= 0.0 && ks.elementwise_secs >= 0.0);
        }
    }

    #[test]
    fn only_gradient_traffic_under_global_shuffle() {
        // Dist-index moves gradients and tiny metric scalars — no sample
        // data. Bytes per epoch ≈ batches × grad_bytes × 2(world-1)(+ε).
        let r = run(2, ShuffleStrategy::Global, 1);
        assert!(r.bytes_moved > 0);
        // Generous upper bound: far less than one dataset copy (≈ 0.35MB
        // of samples would be ~350KB; gradients here are ~5KB total).
        assert!(
            r.bytes_moved < 2_000_000,
            "unexpected data-plane traffic: {} bytes",
            r.bytes_moved
        );
        assert!(r.sim_comm_secs > 0.0);
        assert!(r.sim_compute_secs > 0.0);
    }

    #[test]
    fn replicas_agree_on_metrics_regardless_of_world_size() {
        // Same seed, same data: 1-worker and 2-worker runs should start
        // from similar losses (not identical — global batch differs).
        let r1 = run(1, ShuffleStrategy::Global, 1);
        let r2 = run(2, ShuffleStrategy::Global, 1);
        let a = r1.epochs[0].train_loss;
        let b = r2.epochs[0].train_loss;
        assert!(
            (a - b).abs() < 0.5 * a.max(b),
            "first-epoch losses far apart: {a} vs {b}"
        );
    }

    #[test]
    fn shuffle_strategies_all_run() {
        for s in [
            ShuffleStrategy::Global,
            ShuffleStrategy::Local,
            ShuffleStrategy::LocalBatch,
        ] {
            let r = run(2, s, 1);
            assert!(r.epochs[0].train_loss.is_finite(), "{s:?}");
        }
    }

    #[test]
    fn effective_lr_scales_with_global_batch() {
        let mut cfg = DistConfig::new(8, 1, 12);
        cfg.batch_per_worker = 64;
        cfg.lr = 0.01;
        cfg.lr_base_batch = Some(64);
        assert!((cfg.effective_lr() - 0.08).abs() < 1e-6);
        cfg.lr_base_batch = None;
        assert_eq!(cfg.effective_lr(), 0.01);
    }
}
