//! The unified distributed training engine.
//!
//! The paper's central observation is architectural: index-batching
//! variants differ only in their **data plane** — full local copies
//! (§4.2), Dask-style on-demand fetches (§5), halo'd entry partitions
//! (§5.4), per-partition node subsets and dynamic-graph windows (§7) —
//! while the training loop itself (forward/backward, DDP averaging,
//! epoch shuffling, metric reductions) stays fixed. This module is that
//! fixed loop, factored once:
//!
//! - [`DistDataPlane`] — what a variant must provide: an epoch *plan*
//!   (per-rank batch rounds derived from the shared-seed shuffles),
//!   quoted batch *fetches* (tensors plus modeled data-plane seconds,
//!   with bytes on the plane's ledger), and a traffic ledger.
//! - [`StepLoop`] — the shared step and validation primitives
//!   (forward/backward/clip/step, original-unit MAE sums via the fused
//!   [`st_tensor::ops::sum_abs`]), used by the single-worker
//!   [`Trainer`](crate::trainer::Trainer) and by [`run`] alike.
//! - [`run`] / [`run_single`] — the epoch loop: one rank per worker,
//!   bit-deterministic rank-order metric reductions, simulated-clock
//!   charging, optional checkpoint capture/resume, and a **pipelined step
//!   path**: every concurrent comm stream — the one-time setup read, the
//!   double-buffered next-batch fetch ([`DistConfig::prefetch`]), and the
//!   backward-overlapped gradient buckets
//!   ([`DistConfig::grad_bucket_bytes`]) — is quoted onto one
//!   [`st_device::OverlapLedger`] and hidden behind modeled compute
//!   uniformly, with the per-epoch hidden/exposed split reported in
//!   [`DistEpochStats`].
//!
//! Determinism invariant (DESIGN.md §2): the engine charges *time* for
//! fetches and collectives but never lets it influence numerics — plans
//! are derived from `(seed, epoch[, rank])` alone, all cross-rank
//! combination happens in rank order, and the bucketed gradient mean is
//! bit-identical to the flat one (pinned by `tests/engine_goldens.rs`).
//! The one documented relaxation is [`DistConfig::staleness`] `≥ 1`
//! (DESIGN.md §4): gradient application then consults *modeled* arrival
//! instants — themselves pure functions of the run configuration — so
//! runs stay reproducible bit-for-bit while replicas may deliberately
//! diverge from the synchronous trajectory.

use crate::dist_index::{DistConfig, DistEpochStats, DistRunResult};
use st_autograd::checkpoint::CheckpointError;
use st_autograd::loss;
use st_autograd::module::Param;
use st_autograd::optim::{clip_grad_norm, Adam, Optimizer};
use st_autograd::schedule::{ConstantLr, LrSchedule};
use st_autograd::{Checkpoint, Tape, Var};
use st_device::{CostModel, OverlapLedger, StreamId};
use st_dist::ddp::{self, DdpContext, GradBuckets};
use st_dist::launch::{self, run_workers, WorkerCtx};
use st_dist::shuffle;
use st_dist::staleness::StalenessWindow;
use st_models::Seq2Seq;
use st_tensor::Tensor;

/// One quoted data-plane fetch: the batch tensors plus the modeled seconds
/// of transfer time **not yet charged** to any clock. The plane records
/// ledger bytes at quote time (traffic is real whether or not its time is
/// hidden); the engine decides whether the seconds are paid synchronously
/// or overlapped with compute.
pub struct Fetch {
    /// Input window batch `[B, h, N, F]`.
    pub x: Tensor,
    /// Label window batch `[B, h, N, F]`.
    pub y: Tensor,
    /// Modeled data-plane seconds for this fetch (0 for local planes).
    pub secs: f64,
}

/// A data plane: everything that distinguishes one distributed
/// index-batching variant from another.
///
/// Implementations are built **per rank** (each holds its rank's view of
/// the data) but must agree across ranks on anything that drives
/// collectives — [`DistDataPlane::rounds_per_epoch`] in particular, which
/// every rank derives analytically via
/// [`st_dist::shuffle::common_rounds`] so ragged partitions never leave a
/// rank blocked on a missing peer.
pub trait DistDataPlane {
    /// The per-step collective count all ranks agree on for one epoch
    /// (≥ the length of any rank's plan). Only consulted when
    /// [`DistDataPlane::sync_gradients`] is true.
    fn rounds_per_epoch(&self) -> usize;

    /// This rank's training batches for `epoch`, in visit order: the
    /// variant's shuffle (global stripe, local permutation, batch-order)
    /// applied to its portion of the train split.
    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>>;

    /// This rank's validation batches.
    fn plan_val(&self) -> Vec<Vec<usize>>;

    /// Assemble a batch by snapshot id, quoting (not charging) its
    /// data-plane time and recording its bytes on the ledger.
    fn fetch_batch(&self, ids: &[usize]) -> Fetch;

    /// Quoted one-time setup transfer (the generalized mode's halo read).
    /// Charged up front when prefetching is off; overlapped with the first
    /// epochs' compute when it is on.
    fn setup_secs(&self) -> f64 {
        0.0
    }

    /// Whether fetches cross ranks — enables the prefetcher under
    /// [`DistConfig::prefetch`]. Local planes return false so the knob is
    /// a no-op for them.
    fn remote(&self) -> bool {
        false
    }

    /// Whether replicas train one shared model (DDP broadcast + per-step
    /// gradient averaging). Per-partition and single-worker planes return
    /// false: each rank trains its own independent model.
    fn sync_gradients(&self) -> bool {
        true
    }

    /// Whether to validate after `epoch` (0-based, of `epochs` total).
    /// Must be a pure function of the arguments so every rank skips the
    /// same epochs' metric collectives. Planes whose consumers only read
    /// the final numbers (partitioned training) validate the last epoch
    /// only; skipped epochs report `NaN` and a `(0.0, 0)` rank-val entry.
    fn validate_epoch(&self, epoch: u64, epochs: u64) -> bool {
        let _ = (epoch, epochs);
        true
    }

    /// σ of the fitted scaler — converts standardized MAE sums to
    /// original units.
    fn scaler_std(&self) -> f32;

    /// Total sample-data bytes moved between ranks so far (the shared
    /// data-plane ledger; zero for local-copy planes).
    fn ledger_bytes(&self) -> u64 {
        0
    }

    /// Run the model forward for a batch. The default is the static
    /// [`Seq2Seq::forward`]; planes whose samples carry extra context
    /// (per-step diffusion supports on dynamic graphs) override this.
    fn forward(&self, model: &dyn Seq2Seq, tape: &Tape, ids: &[usize], x: &Tensor) -> Var {
        let _ = ids;
        model.forward(tape, x)
    }

    /// Restrict `(pred, target)` before the validation reduction (the
    /// partitioned plane narrows to owned nodes so halo duplicates are
    /// not double-counted). Default: identity.
    fn val_views(&self, pred: Tensor, target: Tensor) -> (Tensor, Tensor) {
        (pred, target)
    }
}

/// Chunk explicit snapshot ids into batch-sized lists — the standard
/// validation plan for planes that own an id list outright.
pub fn chunk_ids(ids: Vec<usize>, batch: usize) -> Vec<Vec<usize>> {
    ids.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
}

/// Rank `rank`'s contiguous slice of a split `range`, chunked into
/// batches — the standard validation plan for replica planes that split
/// the val set evenly.
pub fn striped_val_plan(
    range: std::ops::Range<usize>,
    world: usize,
    rank: usize,
    batch: usize,
) -> Vec<Vec<usize>> {
    chunk_ids(
        shuffle::contiguous_partition(range.len(), world, rank)
            .map(|i| range.start + i)
            .collect(),
        batch,
    )
}

/// Rank `rank`'s globally-striped train plan for `epoch`: the shared-seed
/// permutation's ragged stripe over the split `range`, chunked into
/// batches. The plan both the local-copy (§4.2) and data-service (§5)
/// planes derive — only the fetch cost differs.
pub fn striped_plan(
    range: std::ops::Range<usize>,
    world: usize,
    rank: usize,
    seed: u64,
    epoch: u64,
    batch: usize,
) -> Vec<Vec<usize>> {
    chunk_ids(
        shuffle::global_stripe(range.len(), world, rank, seed, epoch)
            .into_iter()
            .map(|i| range.start + i)
            .collect(),
        batch,
    )
}

/// The collective round count for planes whose train split stripes into
/// (possibly ragged) contiguous partitions: every rank derives the same
/// maximum analytically, so per-step all-reduces never mismatch.
pub fn striped_rounds(train_len: usize, world: usize, batch: usize) -> usize {
    shuffle::common_rounds(
        (0..world).map(|r| shuffle::contiguous_partition(train_len, world, r).len()),
        batch,
    )
}

/// The shared training-step primitives: target extraction, one
/// forward/backward, clip + optimizer step, and the validation reduction.
/// Both the single-worker [`Trainer`](crate::trainer::Trainer) and the
/// distributed [`run`] are thin drivers around these.
pub struct StepLoop {
    /// Optional global-norm gradient clip applied before each step.
    pub grad_clip: Option<f32>,
}

impl StepLoop {
    /// The forecast target: feature 0 of the label window, contiguous.
    pub fn target_of(y: &Tensor) -> Tensor {
        y.narrow(3, 0, 1).expect("output feature").contiguous()
    }

    /// One forward/backward: run `fwd` on a fresh tape, take the MAE
    /// against `y`'s target, backprop, and accumulate parameter
    /// gradients. Returns the (standardized) loss value.
    pub fn forward_backward(&self, fwd: impl FnOnce(&Tape) -> Var, y: &Tensor) -> f32 {
        self.forward_backward_traced(fwd, y, false).0
    }

    /// [`StepLoop::forward_backward`] plus, when `trace` is set, the
    /// tape's gradient-completion sequence
    /// ([`Tape::param_completion_order`]) — the timing trace the pipelined
    /// engine samples once per rank to model when each gradient bucket
    /// may fire (the sequence is a pure function of the model structure,
    /// so re-collecting it every step would be waste).
    pub fn forward_backward_traced(
        &self,
        fwd: impl FnOnce(&Tape) -> Var,
        y: &Tensor,
        trace: bool,
    ) -> (f32, Vec<Param>) {
        let target = Self::target_of(y);
        let tape = Tape::new();
        let pred = fwd(&tape);
        let tgt = tape.constant(target);
        let l = loss::mae(&pred, &tgt);
        let value = l.value().item();
        let grads = tape.backward(&l);
        tape.accumulate_param_grads(&grads);
        let completion = if trace {
            tape.param_completion_order()
        } else {
            Vec::new()
        };
        (value, completion)
    }

    /// Clip (when configured) and apply one optimizer step.
    pub fn clip_and_step(&self, params: &[Param], opt: &mut dyn Optimizer) {
        if let Some(clip) = self.grad_clip {
            clip_grad_norm(params, clip);
        }
        opt.step();
    }

    /// One validation batch: forward, restrict views, and return the
    /// `(Σ|pred − target|, element count)` pair in standardized units.
    pub fn val_batch(
        &self,
        fwd: impl FnOnce(&Tape) -> Var,
        y: &Tensor,
        restrict: impl FnOnce(Tensor, Tensor) -> (Tensor, Tensor),
    ) -> (f64, usize) {
        let target = Self::target_of(y);
        let tape = Tape::new();
        let pred = fwd(&tape);
        let (pred, target) = restrict(pred.value().clone(), target);
        let diff = st_tensor::ops::sub(&pred, &target).expect("same shape");
        (st_tensor::ops::sum_abs(&diff), target.numel())
    }
}

/// Engine knobs beyond [`DistConfig`]: checkpoint capture/resume and the
/// learning-rate schedule.
#[derive(Clone, Default)]
pub struct EngineOptions {
    /// Serialized [`Checkpoint`] to restore before training. Every rank
    /// restores the same bytes (preserving replica equality) and the run
    /// continues from the checkpoint's epoch, replaying the exact
    /// epoch-keyed shuffle sequence an uninterrupted run would have used.
    pub resume: Option<Vec<u8>>,
    /// Capture a rank-0 checkpoint (model + Adam + next epoch) at the end
    /// of the run, returned in [`EngineReport::checkpoint`].
    pub capture_checkpoint: bool,
    /// Epoch-indexed learning-rate schedule, applied at the top of every
    /// epoch (`schedule.apply(&mut opt, epoch)`), so a resumed run
    /// re-applies `lr_at(start_epoch)` instead of restarting at the base
    /// rate. `None` means a constant [`DistConfig::effective_lr`] — the
    /// schedule-free behavior, bit-identical to setting
    /// `ConstantLr(cfg.effective_lr())` explicitly.
    pub schedule: Option<std::sync::Arc<dyn LrSchedule + Send + Sync>>,
}

impl std::fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineOptions")
            .field("resume", &self.resume.as_ref().map(|b| b.len()))
            .field("capture_checkpoint", &self.capture_checkpoint)
            .field("schedule", &self.schedule.is_some())
            .finish()
    }
}

/// Errors an engine run can surface instead of panicking mid-rank.
#[derive(Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The [`EngineOptions::resume`] bytes failed to decode or did not
    /// match the model being restored into.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Checkpoint(e) => write!(f, "resume checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

/// What one engine run reports.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-epoch stats (rank-0 view; all ranks agree).
    pub epochs: Vec<DistEpochStats>,
    /// Simulated compute seconds (rank 0).
    pub sim_compute_secs: f64,
    /// Simulated communication seconds (rank 0).
    pub sim_comm_secs: f64,
    /// Total simulated seconds (rank 0).
    pub sim_total_secs: f64,
    /// Collective payload bytes plus data-plane bytes.
    pub bytes_moved: u64,
    /// Sample-data bytes moved between ranks (the plane's ledger).
    pub data_plane_bytes: u64,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
    /// Per-rank, per-epoch local validation `(Σ|err|, count)` sums in
    /// standardized units — the raw material for combinations the
    /// rank-uniform `epochs` view cannot express (per-partition MAE
    /// under per-partition scalers).
    pub rank_val: Vec<Vec<(f64, usize)>>,
    /// Final checkpoint bytes when requested via
    /// [`EngineOptions::capture_checkpoint`].
    pub checkpoint: Option<Vec<u8>>,
}

impl EngineReport {
    /// Collapse into the public per-runner result type.
    pub fn into_dist_result(self) -> DistRunResult {
        DistRunResult {
            epochs: self.epochs,
            sim_compute_secs: self.sim_compute_secs,
            sim_comm_secs: self.sim_comm_secs,
            sim_total_secs: self.sim_total_secs,
            bytes_moved: self.bytes_moved,
            data_plane_bytes: self.data_plane_bytes,
            wall_secs: self.wall_secs,
        }
    }
}

/// One rank's outcome, combined by [`run`] into an [`EngineReport`].
struct RankOutcome {
    epochs: Vec<DistEpochStats>,
    val_series: Vec<(f64, usize)>,
    compute_secs: f64,
    comm_secs: f64,
    total_secs: f64,
    hub_bytes: u64,
    ledger_bytes: u64,
    checkpoint: Option<Vec<u8>>,
}

/// Run the unified distributed epoch loop: one worker per rank, each with
/// its own plane (from `plane_factory`) and model replica (from
/// `model_factory`). Fails only when [`EngineOptions::resume`] bytes are
/// rejected — a run without resume cannot error.
pub fn run<P, PF, MF>(
    cfg: &DistConfig,
    opts: &EngineOptions,
    plane_factory: PF,
    model_factory: MF,
) -> Result<EngineReport, EngineError>
where
    P: DistDataPlane,
    PF: Fn(usize, &CostModel) -> P + Sync,
    MF: Fn(&P) -> Box<dyn Seq2Seq> + Sync,
{
    let start = std::time::Instant::now();
    let outcomes = run_workers(cfg.world, cfg.topology, |mut ctx| {
        let cm = ctx.comm.hub().cost_model().clone();
        let plane = plane_factory(ctx.rank(), &cm);
        let model = model_factory(&plane);
        run_rank(cfg, opts, &plane, model.as_ref(), &mut ctx, &cm)
    });
    let outcomes = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(assemble(outcomes, start))
}

/// Run the engine inline as a one-rank world, returning the trained model
/// alongside the report (models are not `Send`, so the threaded [`run`]
/// cannot hand them back). Used by the dynamic-graph runner, which
/// returns its model to the caller.
///
/// ```
/// use pgt_index::dist_index::DistConfig;
/// use pgt_index::dynamic_index::{DynamicIndexDataset, DynamicPlane};
/// use pgt_index::engine::{run_single, EngineOptions};
/// use st_data::dynamic::synthetic_dynamic_traffic;
/// use st_data::splits::SplitRatios;
/// use st_models::{ModelConfig, PgtDcrnn};
///
/// // A 6-sensor dynamic-topology signal, index-batched, trained for two
/// // epochs as a world of one.
/// let sig = synthetic_dynamic_traffic(6, 60, 5);
/// let ds = DynamicIndexDataset::from_signal(&sig, 4, SplitRatios::default(), 2);
/// let cfg = DistConfig::new(1, 2, 4);
/// let (report, _model) = run_single(&cfg, &EngineOptions::default(), move |_cm| {
///     let mc = ModelConfig {
///         input_dim: ds.num_features(), output_dim: 1, hidden: 4,
///         num_nodes: ds.num_nodes(), horizon: 4, diffusion_steps: 2, layers: 1,
///     };
///     // Initial supports fix the weight layout; per-step operators come
///     // from the dataset at runtime through the plane's forward hook.
///     let model = PgtDcrnn::new(mc, ds.supports_for(0)[0], 42);
///     (DynamicPlane::new(ds, 42), model)
/// })
/// .expect("no resume bytes to reject");
/// assert_eq!(report.epochs.len(), 2);
/// assert!(report.epochs[1].train_loss.is_finite());
/// ```
pub fn run_single<P, M, B>(
    cfg: &DistConfig,
    opts: &EngineOptions,
    build: B,
) -> Result<(EngineReport, M), EngineError>
where
    P: DistDataPlane,
    M: Seq2Seq,
    B: FnOnce(&CostModel) -> (P, M),
{
    assert_eq!(cfg.world, 1, "run_single is the world-of-one entry point");
    let start = std::time::Instant::now();
    let (outcome, model) = launch::run_single(cfg.topology, |mut ctx| {
        let cm = ctx.comm.hub().cost_model().clone();
        let (plane, model) = build(&cm);
        let outcome = run_rank(cfg, opts, &plane, &model, &mut ctx, &cm);
        (outcome, model)
    });
    Ok((assemble(vec![outcome?], start), model))
}

/// The per-rank epoch loop — the six former hand-copied loops, once.
fn run_rank<P: DistDataPlane>(
    cfg: &DistConfig,
    opts: &EngineOptions,
    plane: &P,
    model: &dyn Seq2Seq,
    ctx: &mut WorkerCtx,
    cm: &CostModel,
) -> Result<RankOutcome, EngineError> {
    let step = StepLoop {
        grad_clip: cfg.grad_clip,
    };
    // Select the configured compute backend on this rank's thread before
    // any kernel runs. Both backends are bitwise identical, so this knob
    // only moves wall time, never the training numerics.
    st_tensor::backend::set_backend(cfg.backend);
    // Deterministic straggler injection: scale this rank's modeled compute
    // by the cost model's linear skew ramp. Pure time — numerics never see
    // it (pinned by `straggler_noise_never_leaks_into_numerics`).
    ctx.clock
        .set_compute_scale(cm.straggler_scale(ctx.rank(), ctx.world(), cfg.straggler_skew));
    let sync = plane.sync_gradients();
    if sync {
        ddp::broadcast_parameters(&model.params(), &mut ctx.comm);
    }
    // The pipelined sync path: deterministic byte-capped buckets in
    // reversed module order (every rank derives the identical partition
    // before any backward has run — PyTorch DDP's approximation of
    // completion order), refined per step by the tape's actual
    // completion sequence for the fire points. The legacy flat
    // `DdpContext` is built only when bucketing is off, so each rank
    // holds one set of persistent sync buffers, not two. Bounded
    // staleness rides the bucketed machinery, so a flat config with
    // `staleness ≥ 1` gets one whole-model bucket.
    let mut buckets = match (cfg.grad_bucket_bytes, cfg.staleness) {
        (Some(cap), _) if sync => {
            let mut params = model.params();
            params.reverse();
            Some(GradBuckets::new(params, cap))
        }
        (None, s) if sync && s > 0 => {
            let mut params = model.params();
            params.reverse();
            Some(GradBuckets::new(params, usize::MAX))
        }
        _ => None,
    };
    let mut ddp = (sync && buckets.is_none()).then(|| DdpContext::new(model.params()));
    let mut window = (sync && cfg.staleness > 0).then(|| StalenessWindow::new(cfg.staleness));
    let mut fire: Option<Vec<f64>> = None;
    let mut opt = Adam::new(model.params(), cfg.effective_lr());
    let mut start_epoch = 0u64;
    if let Some(bytes) = &opts.resume {
        let ck = Checkpoint::from_bytes(bytes)?;
        start_epoch = ck.restore(&model.params(), &mut opt)?;
    }
    // The schedule is applied at the top of *every* epoch — including the
    // first after a resume, which therefore re-enters at `lr_at(start)`
    // instead of silently restarting from the base rate.
    let constant = ConstantLr(cfg.effective_lr());
    let schedule: &dyn LrSchedule = match &opts.schedule {
        Some(s) => s.as_ref(),
        None => &constant,
    };
    let gpu_flops = cm.gpu_flops;

    // The overlap scheduler: one FIFO ledger for every concurrent comm
    // stream — the one-time setup transfer (halo reads), the §7
    // double-buffered next-batch fetch, and the in-flight gradient
    // buckets. Bytes land on their ledgers at quote time regardless;
    // only the modeled seconds move between hidden and exposed.
    let mut overlap = OverlapLedger::new();
    let prefetch_on = cfg.prefetch && plane.remote();
    let setup_secs = plane.setup_secs();
    if setup_secs > 0.0 {
        if prefetch_on {
            let _ = overlap.begin(setup_secs);
        } else {
            ctx.clock.advance_comm(setup_secs);
        }
    }

    let mut epoch_stats = Vec::with_capacity(cfg.epochs);
    let mut val_series = Vec::with_capacity(cfg.epochs);
    for epoch in start_epoch..cfg.epochs as u64 {
        schedule.apply(&mut opt, epoch as usize);
        let comm_mark = ctx.clock.comm_secs();
        let hidden_mark = overlap.hidden_secs();
        let kernel_mark = st_device::KernelSplit::snapshot();
        let stale_mark = window.as_ref().map_or(0, |w| w.stale_applied());
        let fence_mark = window.as_ref().map_or(0, |w| w.fence_stalls());
        let plan = plane.plan_epoch(epoch);
        // With synchronized gradients every rank must enter the same
        // number of per-step collectives; exhausted ranks contribute
        // zeros. Independent models just walk their own plan.
        let rounds = if sync {
            plane.rounds_per_epoch()
        } else {
            plan.len()
        };
        debug_assert!(rounds >= plan.len(), "plan exceeds agreed rounds");
        let mut pending: Option<((Tensor, Tensor), StreamId)> = None;
        if prefetch_on {
            if let Some(first) = plan.first() {
                let f = plane.fetch_batch(first);
                pending = Some(((f.x, f.y), overlap.begin(f.secs)));
            }
        }
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for round in 0..rounds {
            opt.zero_grad();
            // Modeled step compute, split at the fwd/bwd boundary so
            // gradient buckets only overlap the backward tail that runs
            // after they fire. Zero on rounds where this rank's plan is
            // exhausted: it still meets every collective, fully exposed.
            let mut fwd_secs = 0.0;
            let mut bwd_secs = 0.0;
            if let Some(ids) = plan.get(round) {
                let (x, y) = match pending.take() {
                    Some((pair, stream)) => {
                        overlap.wait(stream, &ctx.clock);
                        if let Some(next) = plan.get(round + 1) {
                            let f = plane.fetch_batch(next);
                            pending = Some(((f.x, f.y), overlap.begin(f.secs)));
                        }
                        pair
                    }
                    None => {
                        let f = plane.fetch_batch(ids);
                        if f.secs > 0.0 {
                            ctx.clock.advance_comm(f.secs);
                        }
                        (f.x, f.y)
                    }
                };
                // The completion trace is a pure function of the model
                // structure: sample it on this rank's first step only.
                // Staleness never interleaves collectives with the
                // backward, so it has no use for fire points.
                let trace = buckets.is_some() && window.is_none() && fire.is_none();
                let (l, completion) = step.forward_backward_traced(
                    |tape| plane.forward(model, tape, ids, &x),
                    &y,
                    trace,
                );
                loss_sum += l as f64;
                batches += 1;
                // Charge modeled step compute (fwd + bwd ≈ 3× fwd).
                let compute_secs = 3.0 * model.flops_per_forward(ids.len()) / gpu_flops;
                ctx.clock.advance_compute(compute_secs);
                fwd_secs = compute_secs / 3.0;
                bwd_secs = compute_secs - fwd_secs;
                if let (true, Some(b)) = (trace, &buckets) {
                    fire = Some(b.fire_fractions(&completion));
                }
            }
            // Forward compute hides whatever was already in flight
            // (setup remainder, the double-buffered fetch).
            overlap.credit(fwd_secs);
            match (buckets.as_mut(), window.as_mut()) {
                (Some(b), Some(w)) => {
                    // Bounded staleness: every bucket becomes a deadline
                    // stream completing at the collective's cross-rank
                    // `ready_at` — no rendezvous, the rank's own clock
                    // keeps running. The averaged payload is captured now
                    // (contents are never cross-rank stale; *application*
                    // is what the bound delays) and applied when the
                    // stream arrives, or force-fenced at age `s`.
                    overlap.credit(bwd_secs);
                    for i in 0..b.num_buckets() {
                        let ready_at = b.reduce_bucket_async(i, &mut ctx.comm);
                        let stream = overlap.begin_at(ready_at, ctx.clock.now());
                        let mut buf = w.payload_buf();
                        buf.extend_from_slice(b.bucket_payload(i));
                        w.launch(i, round as u64, buf, stream);
                    }
                    // Local grads were folded into the payloads above;
                    // drop them so settled payloads accumulate cleanly.
                    opt.zero_grad();
                    let applied = w.settle(round as u64, &mut overlap, &ctx.clock, |i, p| {
                        b.apply_stale(i, p)
                    });
                    // Adam's bias-correction step count must only tick
                    // when a gradient actually lands.
                    if applied > 0 {
                        step.clip_and_step(&model.params(), &mut opt);
                    }
                }
                (Some(b), None) => {
                    // Pipelined sync: walk the buckets in firing order,
                    // crediting the backward segment up to each fire
                    // point before its quoted collective begins, so
                    // bucket i overlaps the backward tail behind it.
                    let fractions = fire.as_deref();
                    let mut done = 0.0;
                    let mut in_flight = Vec::with_capacity(b.num_buckets());
                    for i in 0..b.num_buckets() {
                        let at = fractions.map_or(1.0, |f| f[i]).max(done);
                        overlap.credit((at - done) * bwd_secs);
                        done = at;
                        let secs = b.reduce_bucket_quoted(i, &mut ctx.comm);
                        in_flight.push(overlap.begin(secs));
                    }
                    overlap.credit((1.0 - done) * bwd_secs);
                    // The optimizer needs every averaged gradient: settle
                    // all buckets, paying only what compute never hid.
                    for stream in in_flight {
                        overlap.wait(stream, &ctx.clock);
                    }
                    step.clip_and_step(&model.params(), &mut opt);
                }
                (None, _) => {
                    overlap.credit(bwd_secs);
                    if let Some(d) = ddp.as_mut() {
                        d.average_gradients(&mut ctx.comm);
                    }
                    step.clip_and_step(&model.params(), &mut opt);
                }
            }
        }
        // Epoch boundary: nothing stale may leak into the metric
        // reductions or the next epoch — settle every in-flight gradient,
        // fencing whatever has not arrived.
        if let (Some(b), Some(w)) = (buckets.as_mut(), window.as_mut()) {
            opt.zero_grad();
            let applied = w.flush(&mut overlap, &ctx.clock, |i, p| b.apply_stale(i, p));
            if applied > 0 {
                step.clip_and_step(&model.params(), &mut opt);
            }
        }

        // Mean training loss across contributing ranks (rank-order
        // combination). Ranks whose ragged plan had zero batches are
        // excluded — averaging their 0.0 in would bias the mean low.
        let mut sums = [
            (loss_sum / batches.max(1) as f64) as f32,
            (batches > 0) as u8 as f32,
        ];
        ctx.comm.all_reduce_sum(&mut sums);
        let train_loss = sums[0] / sums[1].max(1.0);

        // Validation: each rank evaluates its own slice synchronously.
        // Skippable per epoch (every rank derives the same decision, so
        // the metric collectives stay aligned).
        let val_mae = if plane.validate_epoch(epoch, cfg.epochs as u64) {
            let mut abs_sum = 0.0f64;
            let mut count = 0usize;
            for ids in plane.plan_val() {
                if ids.is_empty() {
                    continue;
                }
                let f = plane.fetch_batch(&ids);
                if f.secs > 0.0 {
                    ctx.clock.advance_comm(f.secs);
                }
                let (a, c) = step.val_batch(
                    |tape| plane.forward(model, tape, &ids, &f.x),
                    &f.y,
                    |pred, target| plane.val_views(pred, target),
                );
                ctx.clock
                    .advance_compute(model.flops_per_forward(ids.len()) / gpu_flops);
                abs_sum += a;
                count += c;
            }
            let totals = ctx.comm.all_gather_scalar(abs_sum as f32);
            let counts = ctx.comm.all_gather_scalar(count as f32);
            val_series.push((abs_sum, count));
            totals.iter().sum::<f32>() / counts.iter().sum::<f32>().max(1.0) * plane.scaler_std()
        } else {
            val_series.push((0.0, 0));
            f32::NAN
        };
        epoch_stats.push(DistEpochStats {
            epoch: epoch as usize,
            train_loss,
            val_mae,
            hidden_comm_secs: overlap.hidden_secs() - hidden_mark,
            exposed_comm_secs: ctx.clock.comm_secs() - comm_mark,
            stale_steps_applied: window.as_ref().map_or(0, |w| w.stale_applied()) - stale_mark,
            fence_stalls: window.as_ref().map_or(0, |w| w.fence_stalls()) - fence_mark,
            kernel_split: st_device::KernelSplit::snapshot().since(&kernel_mark),
        });
    }
    // Resuming at or past the configured horizon trains nothing; report
    // one explicit zero-epoch marker (NaN metrics, zero time and counters)
    // instead of silently empty series.
    if start_epoch >= cfg.epochs as u64 && opts.resume.is_some() {
        epoch_stats.push(DistEpochStats {
            epoch: start_epoch as usize,
            train_loss: f32::NAN,
            val_mae: f32::NAN,
            hidden_comm_secs: 0.0,
            exposed_comm_secs: 0.0,
            stale_steps_applied: 0,
            fence_stalls: 0,
            kernel_split: st_device::KernelSplit::default(),
        });
        val_series.push((0.0, 0));
    }
    // Any quoted time never hidden by compute (the setup remainder) is
    // still owed.
    overlap.wait_all(&ctx.clock);

    let checkpoint = (opts.capture_checkpoint && ctx.rank() == 0).then(|| {
        // A zero-epoch resume re-captures at the checkpoint's own epoch —
        // round-tripping must not rewind it.
        Checkpoint::capture(&model.params(), &opt, (cfg.epochs as u64).max(start_epoch))
            .to_bytes()
            .to_vec()
    });
    // Let every rank finish fetching before the shared ledger is read.
    ctx.comm.barrier();
    Ok(RankOutcome {
        epochs: epoch_stats,
        val_series,
        compute_secs: ctx.clock.compute_secs(),
        comm_secs: ctx.clock.comm_secs(),
        total_secs: ctx.clock.now(),
        hub_bytes: ctx.comm.hub().bytes_moved(),
        ledger_bytes: plane.ledger_bytes(),
        checkpoint,
    })
}

fn assemble(mut outcomes: Vec<RankOutcome>, start: std::time::Instant) -> EngineReport {
    let rank_val = outcomes.iter().map(|o| o.val_series.clone()).collect();
    let checkpoint = outcomes[0].checkpoint.take();
    let o0 = &outcomes[0];
    EngineReport {
        epochs: o0.epochs.clone(),
        sim_compute_secs: o0.compute_secs,
        sim_comm_secs: o0.comm_secs,
        sim_total_secs: o0.total_secs,
        bytes_moved: o0.hub_bytes + o0.ledger_bytes,
        data_plane_bytes: o0.ledger_bytes,
        wall_secs: start.elapsed().as_secs_f64(),
        rank_val,
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autograd::ops;
    use st_autograd::Module;

    /// `pred = x[..,0:1] * w + b` — two params so the bucketed path has a
    /// real firing sequence.
    struct ToyModel {
        w: Param,
        b: Param,
    }

    impl ToyModel {
        fn new() -> Self {
            ToyModel {
                w: Param::new("w", Tensor::zeros([1])),
                b: Param::new("b", Tensor::zeros([1])),
            }
        }
    }

    impl Module for ToyModel {
        fn params(&self) -> Vec<Param> {
            vec![self.w.clone(), self.b.clone()]
        }
    }

    impl Seq2Seq for ToyModel {
        fn forward(&self, tape: &Tape, x: &Tensor) -> Var {
            let xv = tape.constant(x.narrow(3, 0, 1).expect("feature 0").contiguous());
            let wx = ops::mul(&xv, &tape.param(&self.w));
            ops::add(&wx, &tape.param(&self.b))
        }

        fn name(&self) -> &'static str {
            "toy"
        }

        fn flops_per_forward(&self, batch: usize) -> f64 {
            batch as f64 * 1.0e9
        }
    }

    /// Two-rank toy plane. When `ragged`, rank 1's plan is empty: it meets
    /// every collective with zero gradients and must not drag the train
    /// loss.
    struct ToyPlane {
        rank: usize,
        ragged: bool,
    }

    impl DistDataPlane for ToyPlane {
        fn rounds_per_epoch(&self) -> usize {
            2
        }

        fn plan_epoch(&self, _epoch: u64) -> Vec<Vec<usize>> {
            if self.rank == 0 || !self.ragged {
                vec![vec![0], vec![1]]
            } else {
                Vec::new()
            }
        }

        fn plan_val(&self) -> Vec<Vec<usize>> {
            Vec::new()
        }

        fn fetch_batch(&self, ids: &[usize]) -> Fetch {
            Fetch {
                x: Tensor::full([1, 1, 2, 1], 1.0),
                y: Tensor::full([1, 1, 2, 1], (ids[0] + 1) as f32),
                secs: 0.0,
            }
        }

        fn scaler_std(&self) -> f32 {
            1.0
        }
    }

    fn ragged_cfg(bucket: Option<usize>) -> DistConfig {
        let mut cfg = DistConfig::new(2, 1, 1);
        cfg.batch_per_worker = 1;
        cfg.grad_bucket_bytes = bucket;
        cfg
    }

    #[test]
    fn zero_batch_ranks_do_not_dilute_the_train_loss() {
        // Rank 0's two batches have targets 1 and 2 against a zero-init
        // model: its local mean loss is ≥ 1. The old cross-rank reduction
        // averaged rank 1's phantom 0.0 in (reporting ~half); contributing
        // ranks only must keep the mean ≥ 1.
        let r = run(
            &ragged_cfg(None),
            &EngineOptions::default(),
            |rank, _cm| ToyPlane { rank, ragged: true },
            |_| Box::new(ToyModel::new()),
        )
        .expect("no resume");
        let loss = r.epochs[0].train_loss;
        assert!(loss > 1.0, "train loss {loss} diluted by a zero-batch rank");
    }

    #[test]
    fn bucketed_overlap_matches_flat_and_hides_collective_time() {
        let toy = |cap: Option<usize>, ragged: bool| {
            run(
                &ragged_cfg(cap),
                &EngineOptions::default(),
                move |rank, _cm| ToyPlane { rank, ragged },
                |_| Box::new(ToyModel::new()),
            )
            .expect("no resume")
        };
        let flat = toy(None, false);
        // A 4-byte cap puts w and b in separate buckets; the b-bucket
        // fires halfway through the modeled backward and hides fully
        // behind its tail, so only the final bucket's wire time stays
        // exposed — strictly less than the flat reduce's.
        let bucketed = toy(Some(4), false);
        for (a, b) in flat.epochs.iter().zip(&bucketed.epochs) {
            assert_eq!(
                a.train_loss.to_bits(),
                b.train_loss.to_bits(),
                "bucketing must not change numerics"
            );
            assert_eq!(a.val_mae.to_bits(), b.val_mae.to_bits());
        }
        assert_eq!(
            flat.epochs[0].hidden_comm_secs, 0.0,
            "flat path hides nothing"
        );
        let e = &bucketed.epochs[0];
        assert!(
            e.hidden_comm_secs > 0.0,
            "early-firing bucket must hide behind the backward tail"
        );
        assert!(e.exposed_comm_secs > 0.0, "rendezvous time stays exposed");
        assert!(
            bucketed.sim_comm_secs < flat.sim_comm_secs,
            "overlap must reduce exposed comm: {} vs {}",
            bucketed.sim_comm_secs,
            flat.sim_comm_secs
        );

        // Ragged worlds stay numerically identical too: the idle rank
        // meets every bucket collective with zeros.
        let rflat = toy(None, true);
        let rbucket = toy(Some(4), true);
        assert_eq!(
            rflat.epochs[0].train_loss.to_bits(),
            rbucket.epochs[0].train_loss.to_bits(),
            "ragged bucketing must not change numerics"
        );
    }
}
