//! The unified distributed training engine.
//!
//! The paper's central observation is architectural: index-batching
//! variants differ only in their **data plane** — full local copies
//! (§4.2), Dask-style on-demand fetches (§5), halo'd entry partitions
//! (§5.4), per-partition node subsets and dynamic-graph windows (§7) —
//! while the training loop itself (forward/backward, DDP averaging,
//! epoch shuffling, metric reductions) stays fixed. This module is that
//! fixed loop, factored once:
//!
//! - [`DistDataPlane`] — what a variant must provide: an epoch *plan*
//!   (per-rank batch rounds derived from the shared-seed shuffles),
//!   quoted batch *fetches* (tensors plus modeled data-plane seconds,
//!   with bytes on the plane's ledger), and a traffic ledger.
//! - [`StepLoop`] — the shared step and validation primitives
//!   (forward/backward/clip/step, original-unit MAE sums via the fused
//!   [`st_tensor::ops::sum_abs`]), used by the single-worker
//!   [`Trainer`](crate::trainer::Trainer) and by [`run`] alike.
//! - [`run`] / [`run_single`] — the epoch loop: one rank per worker,
//!   bit-deterministic rank-order metric reductions, simulated-clock
//!   charging, optional checkpoint capture/resume, and double-buffered
//!   prefetching for every remote data plane behind
//!   [`DistConfig::prefetch`].
//!
//! Determinism invariant (DESIGN.md §2): the engine charges *time* for
//! fetches and collectives but never lets it influence numerics — plans
//! are derived from `(seed, epoch[, rank])` alone and all cross-rank
//! combination happens in rank order.

use crate::dist_index::{DistConfig, DistEpochStats, DistRunResult};
use st_autograd::loss;
use st_autograd::module::Param;
use st_autograd::optim::{clip_grad_norm, Adam, Optimizer};
use st_autograd::{Checkpoint, Tape, Var};
use st_device::CostModel;
use st_dist::ddp::DdpContext;
use st_dist::launch::{self, run_workers, WorkerCtx};
use st_dist::prefetch::Prefetcher;
use st_dist::shuffle;
use st_models::Seq2Seq;
use st_tensor::Tensor;

/// One quoted data-plane fetch: the batch tensors plus the modeled seconds
/// of transfer time **not yet charged** to any clock. The plane records
/// ledger bytes at quote time (traffic is real whether or not its time is
/// hidden); the engine decides whether the seconds are paid synchronously
/// or overlapped with compute.
pub struct Fetch {
    /// Input window batch `[B, h, N, F]`.
    pub x: Tensor,
    /// Label window batch `[B, h, N, F]`.
    pub y: Tensor,
    /// Modeled data-plane seconds for this fetch (0 for local planes).
    pub secs: f64,
}

/// A data plane: everything that distinguishes one distributed
/// index-batching variant from another.
///
/// Implementations are built **per rank** (each holds its rank's view of
/// the data) but must agree across ranks on anything that drives
/// collectives — [`DistDataPlane::rounds_per_epoch`] in particular, which
/// every rank derives analytically via
/// [`st_dist::shuffle::common_rounds`] so ragged partitions never leave a
/// rank blocked on a missing peer.
pub trait DistDataPlane {
    /// The per-step collective count all ranks agree on for one epoch
    /// (≥ the length of any rank's plan). Only consulted when
    /// [`DistDataPlane::sync_gradients`] is true.
    fn rounds_per_epoch(&self) -> usize;

    /// This rank's training batches for `epoch`, in visit order: the
    /// variant's shuffle (global stripe, local permutation, batch-order)
    /// applied to its portion of the train split.
    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>>;

    /// This rank's validation batches.
    fn plan_val(&self) -> Vec<Vec<usize>>;

    /// Assemble a batch by snapshot id, quoting (not charging) its
    /// data-plane time and recording its bytes on the ledger.
    fn fetch_batch(&self, ids: &[usize]) -> Fetch;

    /// Quoted one-time setup transfer (the generalized mode's halo read).
    /// Charged up front when prefetching is off; overlapped with the first
    /// epochs' compute when it is on.
    fn setup_secs(&self) -> f64 {
        0.0
    }

    /// Whether fetches cross ranks — enables the prefetcher under
    /// [`DistConfig::prefetch`]. Local planes return false so the knob is
    /// a no-op for them.
    fn remote(&self) -> bool {
        false
    }

    /// Whether replicas train one shared model (DDP broadcast + per-step
    /// gradient averaging). Per-partition and single-worker planes return
    /// false: each rank trains its own independent model.
    fn sync_gradients(&self) -> bool {
        true
    }

    /// Whether to validate after `epoch` (0-based, of `epochs` total).
    /// Must be a pure function of the arguments so every rank skips the
    /// same epochs' metric collectives. Planes whose consumers only read
    /// the final numbers (partitioned training) validate the last epoch
    /// only; skipped epochs report `NaN` and a `(0.0, 0)` rank-val entry.
    fn validate_epoch(&self, epoch: u64, epochs: u64) -> bool {
        let _ = (epoch, epochs);
        true
    }

    /// σ of the fitted scaler — converts standardized MAE sums to
    /// original units.
    fn scaler_std(&self) -> f32;

    /// Total sample-data bytes moved between ranks so far (the shared
    /// data-plane ledger; zero for local-copy planes).
    fn ledger_bytes(&self) -> u64 {
        0
    }

    /// Run the model forward for a batch. The default is the static
    /// [`Seq2Seq::forward`]; planes whose samples carry extra context
    /// (per-step diffusion supports on dynamic graphs) override this.
    fn forward(&self, model: &dyn Seq2Seq, tape: &Tape, ids: &[usize], x: &Tensor) -> Var {
        let _ = ids;
        model.forward(tape, x)
    }

    /// Restrict `(pred, target)` before the validation reduction (the
    /// partitioned plane narrows to owned nodes so halo duplicates are
    /// not double-counted). Default: identity.
    fn val_views(&self, pred: Tensor, target: Tensor) -> (Tensor, Tensor) {
        (pred, target)
    }
}

/// Chunk explicit snapshot ids into batch-sized lists — the standard
/// validation plan for planes that own an id list outright.
pub fn chunk_ids(ids: Vec<usize>, batch: usize) -> Vec<Vec<usize>> {
    ids.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
}

/// Rank `rank`'s contiguous slice of a split `range`, chunked into
/// batches — the standard validation plan for replica planes that split
/// the val set evenly.
pub fn striped_val_plan(
    range: std::ops::Range<usize>,
    world: usize,
    rank: usize,
    batch: usize,
) -> Vec<Vec<usize>> {
    chunk_ids(
        shuffle::contiguous_partition(range.len(), world, rank)
            .map(|i| range.start + i)
            .collect(),
        batch,
    )
}

/// Rank `rank`'s globally-striped train plan for `epoch`: the shared-seed
/// permutation's ragged stripe over the split `range`, chunked into
/// batches. The plan both the local-copy (§4.2) and data-service (§5)
/// planes derive — only the fetch cost differs.
pub fn striped_plan(
    range: std::ops::Range<usize>,
    world: usize,
    rank: usize,
    seed: u64,
    epoch: u64,
    batch: usize,
) -> Vec<Vec<usize>> {
    chunk_ids(
        shuffle::global_stripe(range.len(), world, rank, seed, epoch)
            .into_iter()
            .map(|i| range.start + i)
            .collect(),
        batch,
    )
}

/// The collective round count for planes whose train split stripes into
/// (possibly ragged) contiguous partitions: every rank derives the same
/// maximum analytically, so per-step all-reduces never mismatch.
pub fn striped_rounds(train_len: usize, world: usize, batch: usize) -> usize {
    shuffle::common_rounds(
        (0..world).map(|r| shuffle::contiguous_partition(train_len, world, r).len()),
        batch,
    )
}

/// The shared training-step primitives: target extraction, one
/// forward/backward, clip + optimizer step, and the validation reduction.
/// Both the single-worker [`Trainer`](crate::trainer::Trainer) and the
/// distributed [`run`] are thin drivers around these.
pub struct StepLoop {
    /// Optional global-norm gradient clip applied before each step.
    pub grad_clip: Option<f32>,
}

impl StepLoop {
    /// The forecast target: feature 0 of the label window, contiguous.
    pub fn target_of(y: &Tensor) -> Tensor {
        y.narrow(3, 0, 1).expect("output feature").contiguous()
    }

    /// One forward/backward: run `fwd` on a fresh tape, take the MAE
    /// against `y`'s target, backprop, and accumulate parameter
    /// gradients. Returns the (standardized) loss value.
    pub fn forward_backward(&self, fwd: impl FnOnce(&Tape) -> Var, y: &Tensor) -> f32 {
        let target = Self::target_of(y);
        let tape = Tape::new();
        let pred = fwd(&tape);
        let tgt = tape.constant(target);
        let l = loss::mae(&pred, &tgt);
        let value = l.value().item();
        let grads = tape.backward(&l);
        tape.accumulate_param_grads(&grads);
        value
    }

    /// Clip (when configured) and apply one optimizer step.
    pub fn clip_and_step(&self, params: &[Param], opt: &mut dyn Optimizer) {
        if let Some(clip) = self.grad_clip {
            clip_grad_norm(params, clip);
        }
        opt.step();
    }

    /// One validation batch: forward, restrict views, and return the
    /// `(Σ|pred − target|, element count)` pair in standardized units.
    pub fn val_batch(
        &self,
        fwd: impl FnOnce(&Tape) -> Var,
        y: &Tensor,
        restrict: impl FnOnce(Tensor, Tensor) -> (Tensor, Tensor),
    ) -> (f64, usize) {
        let target = Self::target_of(y);
        let tape = Tape::new();
        let pred = fwd(&tape);
        let (pred, target) = restrict(pred.value().clone(), target);
        let diff = st_tensor::ops::sub(&pred, &target).expect("same shape");
        (st_tensor::ops::sum_abs(&diff), target.numel())
    }
}

/// Engine knobs beyond [`DistConfig`]: checkpoint capture and resume.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Serialized [`Checkpoint`] to restore before training. Every rank
    /// restores the same bytes (preserving replica equality) and the run
    /// continues from the checkpoint's epoch, replaying the exact
    /// epoch-keyed shuffle sequence an uninterrupted run would have used.
    pub resume: Option<Vec<u8>>,
    /// Capture a rank-0 checkpoint (model + Adam + next epoch) at the end
    /// of the run, returned in [`EngineReport::checkpoint`].
    pub capture_checkpoint: bool,
}

/// What one engine run reports.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-epoch stats (rank-0 view; all ranks agree).
    pub epochs: Vec<DistEpochStats>,
    /// Simulated compute seconds (rank 0).
    pub sim_compute_secs: f64,
    /// Simulated communication seconds (rank 0).
    pub sim_comm_secs: f64,
    /// Total simulated seconds (rank 0).
    pub sim_total_secs: f64,
    /// Collective payload bytes plus data-plane bytes.
    pub bytes_moved: u64,
    /// Sample-data bytes moved between ranks (the plane's ledger).
    pub data_plane_bytes: u64,
    /// Wall-clock seconds of the whole run.
    pub wall_secs: f64,
    /// Per-rank, per-epoch local validation `(Σ|err|, count)` sums in
    /// standardized units — the raw material for combinations the
    /// rank-uniform `epochs` view cannot express (per-partition MAE
    /// under per-partition scalers).
    pub rank_val: Vec<Vec<(f64, usize)>>,
    /// Final checkpoint bytes when requested via
    /// [`EngineOptions::capture_checkpoint`].
    pub checkpoint: Option<Vec<u8>>,
}

impl EngineReport {
    /// Collapse into the public per-runner result type.
    pub fn into_dist_result(self) -> DistRunResult {
        DistRunResult {
            epochs: self.epochs,
            sim_compute_secs: self.sim_compute_secs,
            sim_comm_secs: self.sim_comm_secs,
            sim_total_secs: self.sim_total_secs,
            bytes_moved: self.bytes_moved,
            data_plane_bytes: self.data_plane_bytes,
            wall_secs: self.wall_secs,
        }
    }
}

/// One rank's outcome, combined by [`run`] into an [`EngineReport`].
struct RankOutcome {
    epochs: Vec<DistEpochStats>,
    val_series: Vec<(f64, usize)>,
    compute_secs: f64,
    comm_secs: f64,
    total_secs: f64,
    hub_bytes: u64,
    ledger_bytes: u64,
    checkpoint: Option<Vec<u8>>,
}

/// Run the unified distributed epoch loop: one worker per rank, each with
/// its own plane (from `plane_factory`) and model replica (from
/// `model_factory`).
pub fn run<P, PF, MF>(
    cfg: &DistConfig,
    opts: &EngineOptions,
    plane_factory: PF,
    model_factory: MF,
) -> EngineReport
where
    P: DistDataPlane,
    PF: Fn(usize, &CostModel) -> P + Sync,
    MF: Fn(&P) -> Box<dyn Seq2Seq> + Sync,
{
    let start = std::time::Instant::now();
    let outcomes = run_workers(cfg.world, cfg.topology, |mut ctx| {
        let cm = ctx.comm.hub().cost_model().clone();
        let plane = plane_factory(ctx.rank(), &cm);
        let model = model_factory(&plane);
        run_rank(cfg, opts, &plane, model.as_ref(), &mut ctx, &cm)
    });
    assemble(outcomes, start)
}

/// Run the engine inline as a one-rank world, returning the trained model
/// alongside the report (models are not `Send`, so the threaded [`run`]
/// cannot hand them back). Used by the dynamic-graph runner, which
/// returns its model to the caller.
pub fn run_single<P, M, B>(cfg: &DistConfig, opts: &EngineOptions, build: B) -> (EngineReport, M)
where
    P: DistDataPlane,
    M: Seq2Seq,
    B: FnOnce(&CostModel) -> (P, M),
{
    assert_eq!(cfg.world, 1, "run_single is the world-of-one entry point");
    let start = std::time::Instant::now();
    let (outcome, model) = launch::run_single(cfg.topology, |mut ctx| {
        let cm = ctx.comm.hub().cost_model().clone();
        let (plane, model) = build(&cm);
        let outcome = run_rank(cfg, opts, &plane, &model, &mut ctx, &cm);
        (outcome, model)
    });
    (assemble(vec![outcome], start), model)
}

/// The per-rank epoch loop — the six former hand-copied loops, once.
fn run_rank<P: DistDataPlane>(
    cfg: &DistConfig,
    opts: &EngineOptions,
    plane: &P,
    model: &dyn Seq2Seq,
    ctx: &mut WorkerCtx,
    cm: &CostModel,
) -> RankOutcome {
    let step = StepLoop {
        grad_clip: cfg.grad_clip,
    };
    let sync = plane.sync_gradients();
    let mut ddp = sync.then(|| DdpContext::new(model.params()));
    if let Some(d) = ddp.as_mut() {
        d.broadcast_parameters(&mut ctx.comm);
    }
    let mut opt = Adam::new(model.params(), cfg.effective_lr());
    let mut start_epoch = 0u64;
    if let Some(bytes) = &opts.resume {
        let ck = Checkpoint::from_bytes(bytes).expect("valid checkpoint bytes");
        start_epoch = ck
            .restore(&model.params(), &mut opt)
            .expect("checkpoint matches model");
    }
    let gpu_flops = cm.gpu_flops;

    // §7 prefetching: remote planes double-buffer fetches so data-plane
    // time hides behind compute; the one-time setup transfer (halo reads)
    // is likewise issued asynchronously and its exposed remainder shrinks
    // as compute lands. Bytes are on the ledger either way.
    let prefetch_on = cfg.prefetch && plane.remote();
    let mut setup_exposed = plane.setup_secs();
    if !prefetch_on && setup_exposed > 0.0 {
        ctx.clock.advance_comm(setup_exposed);
        setup_exposed = 0.0;
    }

    let mut epoch_stats = Vec::with_capacity(cfg.epochs);
    let mut val_series = Vec::with_capacity(cfg.epochs);
    for epoch in start_epoch..cfg.epochs as u64 {
        let plan = plane.plan_epoch(epoch);
        // With synchronized gradients every rank must enter the same
        // number of per-step collectives; exhausted ranks contribute
        // zeros. Independent models just walk their own plan.
        let rounds = if sync {
            plane.rounds_per_epoch()
        } else {
            plan.len()
        };
        debug_assert!(rounds >= plan.len(), "plan exceeds agreed rounds");
        let mut pf = prefetch_on.then(Prefetcher::new);
        if let (Some(p), Some(first)) = (pf.as_mut(), plan.first()) {
            let f = plane.fetch_batch(first);
            p.issue((f.x, f.y), f.secs);
        }
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for round in 0..rounds {
            opt.zero_grad();
            if let Some(ids) = plan.get(round) {
                let (x, y) = match pf.as_mut() {
                    Some(p) => {
                        let pair = p.wait(&ctx.clock);
                        if let Some(next) = plan.get(round + 1) {
                            let f = plane.fetch_batch(next);
                            p.issue((f.x, f.y), f.secs);
                        }
                        pair
                    }
                    None => {
                        let f = plane.fetch_batch(ids);
                        if f.secs > 0.0 {
                            ctx.clock.advance_comm(f.secs);
                        }
                        (f.x, f.y)
                    }
                };
                let l = step.forward_backward(|tape| plane.forward(model, tape, ids, &x), &y);
                loss_sum += l as f64;
                batches += 1;
                // Charge modeled step compute (fwd + bwd ≈ 3× fwd) and
                // credit it against in-flight transfers: setup first,
                // then the double-buffered next batch.
                let compute_secs = 3.0 * model.flops_per_forward(ids.len()) / gpu_flops;
                ctx.clock.advance_compute(compute_secs);
                let mut budget = compute_secs;
                if setup_exposed > 0.0 {
                    let hidden = setup_exposed.min(budget);
                    setup_exposed -= hidden;
                    budget -= hidden;
                }
                if let Some(p) = pf.as_mut() {
                    p.overlap(budget);
                }
            }
            if let Some(d) = ddp.as_mut() {
                d.average_gradients(&mut ctx.comm);
            }
            step.clip_and_step(&model.params(), &mut opt);
        }

        // Mean training loss across ranks (rank-order combination).
        let sums = ctx
            .comm
            .all_gather_scalar((loss_sum / batches.max(1) as f64) as f32);
        let train_loss = sums.iter().sum::<f32>() / sums.len() as f32;

        // Validation: each rank evaluates its own slice synchronously.
        // Skippable per epoch (every rank derives the same decision, so
        // the metric collectives stay aligned).
        let val_mae = if plane.validate_epoch(epoch, cfg.epochs as u64) {
            let mut abs_sum = 0.0f64;
            let mut count = 0usize;
            for ids in plane.plan_val() {
                if ids.is_empty() {
                    continue;
                }
                let f = plane.fetch_batch(&ids);
                if f.secs > 0.0 {
                    ctx.clock.advance_comm(f.secs);
                }
                let (a, c) = step.val_batch(
                    |tape| plane.forward(model, tape, &ids, &f.x),
                    &f.y,
                    |pred, target| plane.val_views(pred, target),
                );
                ctx.clock
                    .advance_compute(model.flops_per_forward(ids.len()) / gpu_flops);
                abs_sum += a;
                count += c;
            }
            let totals = ctx.comm.all_gather_scalar(abs_sum as f32);
            let counts = ctx.comm.all_gather_scalar(count as f32);
            val_series.push((abs_sum, count));
            totals.iter().sum::<f32>() / counts.iter().sum::<f32>().max(1.0) * plane.scaler_std()
        } else {
            val_series.push((0.0, 0));
            f32::NAN
        };
        epoch_stats.push(DistEpochStats {
            epoch: epoch as usize,
            train_loss,
            val_mae,
        });
    }
    // Any setup time never hidden by compute is still owed.
    if setup_exposed > 0.0 {
        ctx.clock.advance_comm(setup_exposed);
    }

    let checkpoint = (opts.capture_checkpoint && ctx.rank() == 0).then(|| {
        Checkpoint::capture(&model.params(), &opt, cfg.epochs as u64)
            .to_bytes()
            .to_vec()
    });
    // Let every rank finish fetching before the shared ledger is read.
    ctx.comm.barrier();
    RankOutcome {
        epochs: epoch_stats,
        val_series,
        compute_secs: ctx.clock.compute_secs(),
        comm_secs: ctx.clock.comm_secs(),
        total_secs: ctx.clock.now(),
        hub_bytes: ctx.comm.hub().bytes_moved(),
        ledger_bytes: plane.ledger_bytes(),
        checkpoint,
    }
}

fn assemble(mut outcomes: Vec<RankOutcome>, start: std::time::Instant) -> EngineReport {
    let rank_val = outcomes.iter().map(|o| o.val_series.clone()).collect();
    let checkpoint = outcomes[0].checkpoint.take();
    let o0 = &outcomes[0];
    EngineReport {
        epochs: o0.epochs.clone(),
        sim_compute_secs: o0.compute_secs,
        sim_comm_secs: o0.comm_secs,
        sim_total_secs: o0.total_secs,
        bytes_moved: o0.hub_bytes + o0.ledger_bytes,
        data_plane_bytes: o0.ledger_bytes,
        wall_secs: start.elapsed().as_secs_f64(),
        rank_val,
        checkpoint,
    }
}
