//! The single-worker training loop (PGT workflow, §5.1).
//!
//! [`Trainer`] is batching-agnostic: it consumes any [`BatchSource`], so the
//! same loop runs with standard (materialized) batching and index-batching —
//! the apples-to-apples setup behind Table 3 and Fig. 5. Validation MAE is
//! reported in original (un-standardized) units, like the paper.

use crate::engine::StepLoop;
use crate::index_batching::IndexDataset;
use st_autograd::optim::{Adam, Optimizer};
use st_data::loader::Batcher;
use st_data::preprocess::PreprocessOutput;
use st_data::scaler::StandardScaler;
use st_data::splits::SplitIndices;
use st_models::Seq2Seq;
use st_tensor::Tensor;

/// Anything that can produce `(x, y)` minibatches from snapshot ids.
pub trait BatchSource {
    /// Total snapshots.
    fn num_snapshots(&self) -> usize;
    /// Train/val/test snapshot ranges.
    fn splits(&self) -> &SplitIndices;
    /// Assemble `[B, h, N, F]` x and y batches.
    fn get_batch(&self, indices: &[usize]) -> (Tensor, Tensor);
    /// The fitted scaler (for original-unit metrics).
    fn scaler(&self) -> &StandardScaler;
}

impl BatchSource for IndexDataset {
    fn num_snapshots(&self) -> usize {
        IndexDataset::num_snapshots(self)
    }

    fn splits(&self) -> &SplitIndices {
        IndexDataset::splits(self)
    }

    fn get_batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        self.batch(indices)
    }

    fn scaler(&self) -> &StandardScaler {
        IndexDataset::scaler(self)
    }
}

/// Standard-batching source over Algorithm-1 materialized arrays.
pub struct MaterializedDataset {
    out: PreprocessOutput,
}

impl MaterializedDataset {
    /// Wrap a preprocessing result.
    pub fn new(out: PreprocessOutput) -> Self {
        MaterializedDataset { out }
    }
}

impl BatchSource for MaterializedDataset {
    fn num_snapshots(&self) -> usize {
        self.out.x.dim(0)
    }

    fn splits(&self) -> &SplitIndices {
        &self.out.splits
    }

    fn get_batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        (
            self.out.x.index_select0(indices).expect("ids in range"),
            self.out.y.index_select0(indices).expect("ids in range"),
        )
    }

    fn scaler(&self) -> &StandardScaler {
        &self.out.scaler
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Compute validation MAE each epoch.
    pub validate: bool,
    /// Optional global-norm gradient clip.
    pub grad_clip: Option<f32>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 10,
            batch_size: 32,
            lr: 1e-2,
            seed: 42,
            validate: true,
            grad_clip: Some(5.0),
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss (standardized MAE).
    pub train_loss: f32,
    /// Validation MAE in original units (NaN when validation is off).
    pub val_mae: f32,
    /// Wall-clock seconds for the epoch.
    pub wall_secs: f64,
}

/// Full training record.
#[derive(Debug, Clone, Default)]
pub struct TrainingHistory {
    /// Per-epoch stats.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
}

impl TrainingHistory {
    /// Best (minimum) validation MAE across epochs.
    pub fn best_val_mae(&self) -> f32 {
        self.epochs
            .iter()
            .map(|e| e.val_mae)
            .fold(f32::INFINITY, f32::min)
    }

    /// Final-epoch training loss.
    pub fn final_train_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.train_loss).unwrap_or(f32::NAN)
    }
}

/// The single-worker trainer.
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// New trainer from a config.
    pub fn new(cfg: TrainerConfig) -> Self {
        Trainer { cfg }
    }

    /// The config.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Train `model` on `source`, returning the history.
    pub fn train<M: Seq2Seq + ?Sized>(
        &self,
        model: &M,
        source: &dyn BatchSource,
    ) -> TrainingHistory {
        let mut opt = Adam::new(model.params(), self.cfg.lr);
        self.train_with_optimizer(model, source, &mut opt)
    }

    /// Train under a learning-rate schedule (DCRNN's multi-step decay, the
    /// §5.3.3 warmup recipe, …): the schedule sets the rate at each epoch
    /// boundary, then the epoch proceeds as usual.
    pub fn train_with_schedule<M: Seq2Seq + ?Sized>(
        &self,
        model: &M,
        source: &dyn BatchSource,
        opt: &mut dyn Optimizer,
        schedule: &dyn st_autograd::schedule::LrSchedule,
    ) -> TrainingHistory {
        let mut history = TrainingHistory::default();
        let start = std::time::Instant::now();
        for epoch in 0..self.cfg.epochs {
            schedule.apply(opt, epoch);
            history
                .epochs
                .push(self.train_epoch(model, source, opt, epoch));
        }
        history.wall_secs = start.elapsed().as_secs_f64();
        history
    }

    /// One full epoch (train + optional validation) with `opt` as-is.
    fn train_epoch<M: Seq2Seq + ?Sized>(
        &self,
        model: &M,
        source: &dyn BatchSource,
        opt: &mut dyn Optimizer,
        epoch: usize,
    ) -> EpochStats {
        let e0 = std::time::Instant::now();
        let train_ids: Vec<usize> = source.splits().train.clone().collect();
        let batcher =
            Batcher::shuffled(train_ids, self.cfg.batch_size, self.cfg.seed, epoch as u64);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for batch_ids in batcher.batches() {
            loss_sum += self.train_step(model, source, batch_ids, opt) as f64;
            batches += 1;
        }
        let val_mae = if self.cfg.validate {
            self.evaluate(model, source, source.splits().val.clone())
        } else {
            f32::NAN
        };
        EpochStats {
            epoch,
            train_loss: (loss_sum / batches.max(1) as f64) as f32,
            val_mae,
            wall_secs: e0.elapsed().as_secs_f64(),
        }
    }

    /// Train with an externally-configured optimizer (used by the LR-scaled
    /// large-batch runs of §5.3.3).
    pub fn train_with_optimizer<M: Seq2Seq + ?Sized>(
        &self,
        model: &M,
        source: &dyn BatchSource,
        opt: &mut dyn Optimizer,
    ) -> TrainingHistory {
        let start = std::time::Instant::now();
        let mut history = TrainingHistory::default();
        for epoch in 0..self.cfg.epochs {
            history
                .epochs
                .push(self.train_epoch(model, source, opt, epoch));
        }
        history.wall_secs = start.elapsed().as_secs_f64();
        history
    }

    /// One optimizer step on one batch; returns the (standardized) loss.
    /// Drives the shared [`StepLoop`] — the same forward/backward/clip/
    /// step primitives the distributed engine uses.
    pub fn train_step<M: Seq2Seq + ?Sized>(
        &self,
        model: &M,
        source: &dyn BatchSource,
        batch_ids: &[usize],
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let step = StepLoop {
            grad_clip: self.cfg.grad_clip,
        };
        let (x, y) = source.get_batch(batch_ids);
        opt.zero_grad();
        let value = step.forward_backward(|tape| model.forward(tape, &x), &y);
        step.clip_and_step(&model.params(), opt);
        value
    }

    /// MAE over a snapshot range, in original units.
    pub fn evaluate<M: Seq2Seq + ?Sized>(
        &self,
        model: &M,
        source: &dyn BatchSource,
        range: std::ops::Range<usize>,
    ) -> f32 {
        let step = StepLoop {
            grad_clip: self.cfg.grad_clip,
        };
        let ids: Vec<usize> = range.collect();
        if ids.is_empty() {
            return f32::NAN;
        }
        let mut abs_sum = 0.0f64;
        let mut count = 0usize;
        for chunk in ids.chunks(self.cfg.batch_size) {
            let (x, y) = source.get_batch(chunk);
            let (a, c) = step.val_batch(|tape| model.forward(tape, &x), &y, |p, t| (p, t));
            abs_sum += a;
            count += c;
        }
        // Standardized MAE × σ = MAE in original units.
        (abs_sum / count.max(1) as f64) as f32 * source.scaler().std
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autograd::Module;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::splits::SplitRatios;
    use st_data::synthetic;
    use st_graph::diffusion_supports;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn setup() -> (PgtDcrnn, IndexDataset) {
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.3);
        let sig = synthetic::generate(&spec, 11);
        let ds = IndexDataset::from_signal(&sig, spec.horizon, SplitRatios::default(), None);
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let cfg = ModelConfig {
            input_dim: ds.num_features(),
            output_dim: 1,
            hidden: 8,
            num_nodes: ds.num_nodes(),
            horizon: spec.horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        (PgtDcrnn::new(cfg, &supports, 3), ds)
    }

    #[test]
    fn scheduled_training_applies_decay() {
        let (model, ds) = setup();
        let trainer = Trainer::new(TrainerConfig {
            epochs: 4,
            batch_size: 8,
            lr: 0.01,
            validate: false,
            ..Default::default()
        });
        let mut opt = st_autograd::optim::Adam::new(model.params(), 0.01);
        let schedule = st_autograd::schedule::StepLr {
            base_lr: 0.01,
            step_size: 2,
            gamma: 0.1,
        };
        let h = trainer.train_with_schedule(&model, &ds, &mut opt, &schedule);
        assert_eq!(h.epochs.len(), 4);
        // After epoch 2 the schedule decays the rate to 0.001.
        assert!((st_autograd::optim::Optimizer::lr(&opt) - 0.001).abs() < 1e-9);
        assert!(h.final_train_loss().is_finite());
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run() {
        // Train 4 epochs straight vs 2 epochs + checkpoint + 2 resumed
        // epochs: identical model state requires restoring Adam moments and
        // continuing the shuffle sequence at the right epoch — exactly what
        // Checkpoint + the epoch-indexed Batcher provide.
        use st_autograd::optim::Adam;
        use st_autograd::Checkpoint;
        let straight = {
            let (model, ds) = setup();
            let trainer = Trainer::new(TrainerConfig {
                epochs: 4,
                batch_size: 8,
                validate: false,
                ..Default::default()
            });
            let mut opt = Adam::new(model.params(), 0.01);
            trainer.train_with_optimizer(&model, &ds, &mut opt);
            StateDictProbe::of(&model)
        };
        let resumed = {
            let (model, ds) = setup();
            let one = |epochs: std::ops::Range<usize>, opt: &mut Adam, model: &PgtDcrnn| {
                let trainer = Trainer::new(TrainerConfig {
                    epochs: 1,
                    batch_size: 8,
                    validate: false,
                    ..Default::default()
                });
                for e in epochs {
                    trainer.train_epoch(model, &ds, opt, e);
                }
            };
            let mut opt = Adam::new(model.params(), 0.01);
            one(0..2, &mut opt, &model);
            let bytes = Checkpoint::capture(&model.params(), &opt, 2).to_bytes();
            // "Restart": fresh model + optimizer, restore, finish.
            let (model2, _) = setup();
            let mut opt2 = Adam::new(model2.params(), 0.01);
            let ck = Checkpoint::from_bytes(&bytes).unwrap();
            let next = ck.restore(&model2.params(), &mut opt2).unwrap();
            one(next as usize..4, &mut opt2, &model2);
            StateDictProbe::of(&model2)
        };
        assert_eq!(straight, resumed, "resumed run must be bit-exact");
    }

    /// Flattened parameter snapshot for exact-equality assertions.
    #[derive(PartialEq, Debug)]
    struct StateDictProbe(Vec<Vec<f32>>);

    impl StateDictProbe {
        fn of(model: &PgtDcrnn) -> Self {
            StateDictProbe(model.params().iter().map(|p| p.value().to_vec()).collect())
        }
    }

    #[test]
    fn training_loss_decreases() {
        let (model, ds) = setup();
        let trainer = Trainer::new(TrainerConfig {
            epochs: 6,
            batch_size: 8,
            lr: 0.01,
            validate: true,
            ..Default::default()
        });
        let h = trainer.train(&model, &ds);
        assert_eq!(h.epochs.len(), 6);
        let first = h.epochs.first().unwrap().train_loss;
        let last = h.epochs.last().unwrap().train_loss;
        assert!(last < first, "loss must decrease: {first} -> {last}");
        assert!(h.best_val_mae().is_finite());
    }

    #[test]
    fn index_and_materialized_sources_agree_per_batch() {
        // Same snapshots, same model ⇒ identical losses from either source
        // modulo standardization fit (verified separately); here we check
        // the materialized wrapper produces the right shapes and range.
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.3);
        let sig = synthetic::generate(&spec, 11);
        let out = st_data::preprocess::materialized_xy(&sig, spec.horizon, SplitRatios::default());
        let mat = MaterializedDataset::new(out);
        let (x, y) = mat.get_batch(&[0, 1, 2]);
        assert_eq!(x.dims()[0], 3);
        assert_eq!(y.dims(), x.dims());
        assert_eq!(
            mat.num_snapshots(),
            st_data::preprocess::num_snapshots(spec.entries, spec.horizon)
        );
    }

    #[test]
    fn evaluate_returns_original_units() {
        let (model, ds) = setup();
        let trainer = Trainer::new(TrainerConfig::default());
        let mae = trainer.evaluate(&model, &ds, ds.splits().val.clone());
        assert!(mae.is_finite() && mae >= 0.0);
        // Untrained model on case-count data: MAE should be on the order of
        // the data's std, not the standardized ~1.
        assert!(mae > 0.01);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (model, ds) = setup();
            let trainer = Trainer::new(TrainerConfig {
                epochs: 2,
                batch_size: 8,
                ..Default::default()
            });
            trainer.train(&model, &ds).final_train_loss()
        };
        assert_eq!(run(), run());
    }
}
