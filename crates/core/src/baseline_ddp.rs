//! Baseline DDP (§5): the Dask-style comparison system.
//!
//! The paper's baseline materializes the standard (Algorithm-1) arrays,
//! distributes them across workers with Dask, and fetches every batch **on
//! demand** — with the request-batching optimization the authors added
//! (one communication per batch rather than per sample). Global shuffling
//! means most of a worker's samples live on other ranks, so the data plane
//! dominates at scale: that traffic is the lighter bar segment of Fig. 7.

use crate::trainer::BatchSource;
use st_autograd::loss;
use st_autograd::optim::{clip_grad_norm, Adam, Optimizer};
use st_autograd::Tape;
use st_data::preprocess::materialized_xy;
use st_data::scaler::StandardScaler;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::{SplitIndices, SplitRatios};
use st_dist::datasvc::DistributedArray;
use st_dist::ddp::DdpContext;
use st_dist::launch::run_workers;
use st_dist::prefetch::Prefetcher;
use st_dist::shuffle;
use st_models::Seq2Seq;
use st_tensor::Tensor;

use crate::dist_index::{DistConfig, DistEpochStats, DistRunResult};
use std::sync::Arc;

/// A worker-side view of the Dask-distributed `(x, y)` arrays.
pub struct DistributedXy {
    x: Arc<DistributedArray>,
    y: Arc<DistributedArray>,
    scaler: StandardScaler,
    splits: SplitIndices,
    rank: usize,
    cost: st_device::CostModel,
    clock: st_device::SimClock,
}

impl DistributedXy {
    /// Fetch an x/y batch, charging communication for remote rows.
    pub fn fetch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        let x = self
            .x
            .fetch_rows(self.rank, indices, &self.cost, &self.clock);
        let y = self
            .y
            .fetch_rows(self.rank, indices, &self.cost, &self.clock);
        (x, y)
    }
}

impl BatchSource for DistributedXy {
    fn num_snapshots(&self) -> usize {
        self.x.rows()
    }

    fn splits(&self) -> &SplitIndices {
        &self.splits
    }

    fn get_batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        self.fetch(indices)
    }

    fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }
}

/// Run the baseline-DDP workflow (materialized arrays + on-demand fetch).
///
/// Returns the same result type as distributed-index-batching so harnesses
/// can print them side by side; additionally reports the data-plane bytes
/// through [`DistRunResult::bytes_moved`] (gradient + sample traffic).
pub fn run_baseline_ddp<F>(
    signal: &StaticGraphTemporalSignal,
    cfg: &DistConfig,
    model_factory: F,
) -> DistRunResult
where
    F: Fn(&DistributedXy) -> Box<dyn Seq2Seq> + Sync,
{
    let start = std::time::Instant::now();
    // Materialize once (the paper's baseline preprocesses distributedly;
    // here the shared-process equivalent is a single materialization whose
    // partitions are owned per rank by the data service).
    let augmented;
    let sig = match cfg.time_period {
        Some(p) => {
            augmented = signal.with_time_feature(p);
            &augmented
        }
        None => signal,
    };
    let out = materialized_xy(sig, cfg.horizon, SplitRatios::default());
    let scaler = out.scaler;
    let splits = out.splits.clone();
    let elem = 4; // f32 payloads
    let x = DistributedArray::new(out.x, cfg.world, cfg.topology, elem);
    let y = DistributedArray::new(out.y, cfg.world, cfg.topology, elem);

    let results = run_workers(cfg.world, cfg.topology, |mut ctx| {
        let view = DistributedXy {
            x: x.clone(),
            y: y.clone(),
            scaler,
            splits: splits.clone(),
            rank: ctx.rank(),
            cost: ctx.comm.hub().cost_model().clone(),
            clock: ctx.clock.clone(),
        };
        let model = model_factory(&view);
        let mut ddp = DdpContext::new(model.params());
        ddp.broadcast_parameters(&mut ctx.comm);
        let mut opt = Adam::new(model.params(), cfg.effective_lr());
        let cm = ctx.comm.hub().cost_model().clone();
        let gpu_flops = cm.gpu_flops;

        let train = view.splits.train.clone();
        let val = view.splits.val.clone();
        let mut epoch_stats = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            // Baseline DDP also shuffles globally (§5) — but unlike
            // dist-index, its samples live on other ranks, so every batch
            // fetch below pays communication.
            let my_ids: Vec<usize> =
                shuffle::global_stripe(train.len(), cfg.world, ctx.rank(), cfg.seed, epoch as u64)
                    .into_iter()
                    .map(|i| train.start + i)
                    .collect();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            let chunks: Vec<&[usize]> = my_ids.chunks(cfg.batch_per_worker).collect();
            // §7 prefetching: double-buffer the (x, y) fetches so the data
            // plane overlaps with compute instead of serializing with it.
            let mut pf = cfg.prefetch.then(|| {
                let mut p = Prefetcher::new(vec![x.clone(), y.clone()], ctx.rank(), cm.clone());
                if let Some(first) = chunks.first() {
                    p.issue(first);
                }
                p
            });
            for (i, chunk) in chunks.iter().enumerate() {
                let (xb, yb) = match pf.as_mut() {
                    Some(p) => {
                        let mut t = p.wait(&ctx.clock);
                        if let Some(next) = chunks.get(i + 1) {
                            p.issue(next);
                        }
                        let yb = t.pop().expect("y tensor");
                        let xb = t.pop().expect("x tensor");
                        (xb, yb)
                    }
                    None => view.fetch(chunk),
                };
                let target = yb.narrow(3, 0, 1).expect("feature 0").contiguous();
                opt.zero_grad();
                let tape = Tape::new();
                let pred = model.forward(&tape, &xb);
                let tgt = tape.constant(target);
                let l = loss::mae(&pred, &tgt);
                loss_sum += l.value().item() as f64;
                batches += 1;
                let grads = tape.backward(&l);
                tape.accumulate_param_grads(&grads);
                let compute_secs = 3.0 * model.flops_per_forward(chunk.len()) / gpu_flops;
                ctx.clock.advance_compute(compute_secs);
                if let Some(p) = pf.as_mut() {
                    p.overlap(compute_secs);
                }
                ddp.average_gradients(&mut ctx.comm);
                if let Some(clip) = cfg.grad_clip {
                    clip_grad_norm(&model.params(), clip);
                }
                opt.step();
            }
            let sums = ctx
                .comm
                .all_gather_scalar((loss_sum / batches.max(1) as f64) as f32);
            let train_loss = sums.iter().sum::<f32>() / sums.len() as f32;

            let my_val = shuffle::contiguous_partition(val.len(), cfg.world, ctx.rank());
            let mut abs_sum = 0.0f64;
            let mut count = 0usize;
            for chunk in my_val
                .map(|i| val.start + i)
                .collect::<Vec<_>>()
                .chunks(cfg.batch_per_worker.max(1))
            {
                if chunk.is_empty() {
                    continue;
                }
                let (xb, yb) = view.fetch(chunk);
                let target = yb.narrow(3, 0, 1).expect("feature 0").contiguous();
                let tape = Tape::new();
                let pred = model.forward(&tape, &xb);
                ctx.clock
                    .advance_compute(model.flops_per_forward(chunk.len()) / gpu_flops);
                let diff = st_tensor::ops::sub(pred.value(), &target).expect("same shape");
                abs_sum += st_tensor::ops::abs(&diff)
                    .to_vec()
                    .iter()
                    .map(|&v| v as f64)
                    .sum::<f64>();
                count += target.numel();
            }
            let totals = ctx.comm.all_gather_scalar(abs_sum as f32);
            let counts = ctx.comm.all_gather_scalar(count as f32);
            let val_mae =
                totals.iter().sum::<f32>() / counts.iter().sum::<f32>().max(1.0) * view.scaler.std;
            epoch_stats.push(DistEpochStats {
                epoch,
                train_loss,
                val_mae,
            });
        }
        (
            epoch_stats,
            ctx.clock.compute_secs(),
            ctx.clock.comm_secs(),
            ctx.clock.now(),
            ctx.comm.hub().bytes_moved(),
        )
    });

    let data_bytes = x.remote_bytes() + y.remote_bytes();
    let (epochs, compute, comm, total, grad_bytes) = results.into_iter().next().expect("rank 0");
    DistRunResult {
        epochs,
        sim_compute_secs: compute,
        sim_comm_secs: comm,
        sim_total_secs: total,
        bytes_moved: grad_bytes + data_bytes,
        data_plane_bytes: data_bytes,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_index::run_distributed_index;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::synthetic;
    use st_dist::shuffle::ShuffleStrategy;
    use st_graph::diffusion_supports;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn spec_and_signal() -> (DatasetSpec, StaticGraphTemporalSignal) {
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
        let sig = synthetic::generate(&spec, 21);
        (spec, sig)
    }

    fn make_model(
        sig: &StaticGraphTemporalSignal,
        features: usize,
        horizon: usize,
    ) -> Box<dyn Seq2Seq> {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let mc = ModelConfig {
            input_dim: features,
            output_dim: 1,
            hidden: 8,
            num_nodes: sig.num_nodes(),
            horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        Box::new(PgtDcrnn::new(mc, &supports, 42))
    }

    #[test]
    fn baseline_ddp_trains() {
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 3, spec.horizon);
        cfg.batch_per_worker = 4;
        let r = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        assert_eq!(r.epochs.len(), 3);
        let first = r.epochs.first().unwrap().train_loss;
        let last = r.epochs.last().unwrap().train_loss;
        assert!(last < first, "baseline loss must fall: {first} -> {last}");
    }

    #[test]
    fn baseline_moves_far_more_bytes_than_dist_index() {
        // The crux of Fig. 7: baseline DDP's data plane vs dist-index's
        // gradient-only traffic, same model and settings.
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.shuffle = ShuffleStrategy::Global;
        let base = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        let index = run_distributed_index(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        // Dist-index moves *no* sample data between workers; the baseline's
        // globally-shuffled on-demand fetches move plenty. (Gradient
        // traffic is identical on both sides, so compare data planes.)
        assert_eq!(
            index.data_plane_bytes, 0,
            "dist-index data plane must be empty"
        );
        assert!(
            base.data_plane_bytes > 0,
            "baseline must fetch samples remotely"
        );
        assert!(
            base.bytes_moved > index.bytes_moved,
            "baseline total {} bytes vs index {} bytes",
            base.bytes_moved,
            index.bytes_moved
        );
        assert!(
            base.sim_comm_secs > index.sim_comm_secs,
            "baseline comm {} s vs index {} s",
            base.sim_comm_secs,
            index.sim_comm_secs
        );
    }

    #[test]
    fn prefetch_hides_data_plane_time_without_changing_results() {
        // §7 prefetching ablation: same bytes, same learning trajectory,
        // strictly less exposed communication time.
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        let sync = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        cfg.prefetch = true;
        let pf = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        assert!(
            pf.sim_comm_secs < sync.sim_comm_secs,
            "prefetch comm {} s must beat sync {} s",
            pf.sim_comm_secs,
            sync.sim_comm_secs
        );
        assert_eq!(
            pf.data_plane_bytes, sync.data_plane_bytes,
            "prefetch moves the same bytes, it just hides them"
        );
        // Same seed + same samples ⇒ identical training losses.
        for (a, b) in pf.epochs.iter().zip(sync.epochs.iter()) {
            assert!(
                (a.train_loss - b.train_loss).abs() < 1e-6,
                "epoch {}: {} vs {}",
                a.epoch,
                a.train_loss,
                b.train_loss
            );
        }
    }

    #[test]
    fn both_reach_similar_accuracy() {
        // Same samples, same shuffle, same model ⇒ near-identical learning;
        // only the data plane differs.
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 3, spec.horizon);
        cfg.batch_per_worker = 4;
        let base = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        let index = run_distributed_index(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        let b = base.best_val_mae();
        let i = index.best_val_mae();
        assert!(
            (b - i).abs() < 0.35 * b.max(i),
            "val MAE diverged: baseline {b} vs index {i}"
        );
    }
}
