//! Baseline DDP (§5): the Dask-style comparison system.
//!
//! The paper's baseline materializes the standard (Algorithm-1) arrays,
//! distributes them across workers with Dask, and fetches every batch **on
//! demand** — with the request-batching optimization the authors added
//! (one communication per batch rather than per sample). Global shuffling
//! means most of a worker's samples live on other ranks, so the data plane
//! dominates at scale: that traffic is the lighter bar segment of Fig. 7.
//!
//! The epoch loop lives in [`crate::engine`]; this module contributes only
//! the data plane — [`DataSvcPlane`], a worker view over the Dask-style
//! [`DistributedArray`] pair whose every fetch is quoted against the
//! remote-traffic ledger.

use crate::engine::{self, DistDataPlane, EngineOptions, Fetch};
use crate::trainer::BatchSource;
use st_data::preprocess::materialized_xy;
use st_data::scaler::StandardScaler;
use st_data::signal::StaticGraphTemporalSignal;
use st_data::splits::{SplitIndices, SplitRatios};
use st_data::storage::SignalStorage;
use st_dist::datasvc::DistributedArray;
use st_models::Seq2Seq;
use st_tensor::Tensor;

use crate::dist_index::{DistConfig, DistRunResult};
use std::sync::Arc;

/// The §5 data plane: a worker-side view of the Dask-distributed `(x, y)`
/// arrays, fetching every batch on demand across ranks.
pub struct DataSvcPlane {
    x: Arc<DistributedArray>,
    y: Arc<DistributedArray>,
    scaler: StandardScaler,
    splits: SplitIndices,
    world: usize,
    rank: usize,
    batch: usize,
    seed: u64,
    cost: st_device::CostModel,
}

/// The pre-engine name for [`DataSvcPlane`], kept for downstream callers.
pub type DistributedXy = DataSvcPlane;

impl DataSvcPlane {
    /// Rank `rank`'s view over the shared arrays.
    pub fn new(
        x: Arc<DistributedArray>,
        y: Arc<DistributedArray>,
        scaler: StandardScaler,
        splits: SplitIndices,
        cfg: &DistConfig,
        rank: usize,
        cost: st_device::CostModel,
    ) -> Self {
        DataSvcPlane {
            x,
            y,
            scaler,
            splits,
            world: cfg.world,
            rank,
            batch: cfg.batch_per_worker,
            seed: cfg.seed,
            cost,
        }
    }

    /// Fetch an x/y batch, quoting communication for remote rows (bytes
    /// land on the shared ledger immediately).
    pub fn fetch(&self, indices: &[usize]) -> (Tensor, Tensor, f64) {
        let (x, sx) = self.x.fetch_rows_quoted(self.rank, indices, &self.cost);
        let (y, sy) = self.y.fetch_rows_quoted(self.rank, indices, &self.cost);
        (x, y, sx + sy)
    }
}

/// [`BatchSource`] lets model factories inspect dims/splits and drive
/// ad-hoc evaluation. **Timing caveat:** `get_batch` records remote bytes
/// on the shared ledger but discards the quoted transfer seconds — the
/// plane no longer holds a clock; inside the engine, fetch time is
/// charged (or prefetch-hidden) by the epoch loop. Callers that need
/// simulated fetch *time* outside the engine must use
/// [`DataSvcPlane::fetch`] and charge the returned seconds themselves.
impl BatchSource for DataSvcPlane {
    fn num_snapshots(&self) -> usize {
        self.x.rows()
    }

    fn splits(&self) -> &SplitIndices {
        &self.splits
    }

    fn get_batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        let (x, y, _) = self.fetch(indices);
        (x, y)
    }

    fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }
}

impl DistDataPlane for DataSvcPlane {
    fn rounds_per_epoch(&self) -> usize {
        engine::striped_rounds(self.splits.train.len(), self.world, self.batch)
    }

    fn plan_epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        // Baseline DDP also shuffles globally (§5) — but unlike
        // dist-index, its samples live on other ranks, so every fetch of
        // this plan pays communication.
        engine::striped_plan(
            self.splits.train.clone(),
            self.world,
            self.rank,
            self.seed,
            epoch,
            self.batch,
        )
    }

    fn plan_val(&self) -> Vec<Vec<usize>> {
        engine::striped_val_plan(self.splits.val.clone(), self.world, self.rank, self.batch)
    }

    fn fetch_batch(&self, ids: &[usize]) -> Fetch {
        let (x, y, secs) = self.fetch(ids);
        Fetch { x, y, secs }
    }

    fn remote(&self) -> bool {
        true
    }

    fn scaler_std(&self) -> f32 {
        self.scaler.std
    }

    fn ledger_bytes(&self) -> u64 {
        self.x.remote_bytes() + self.y.remote_bytes()
    }
}

/// Run the baseline-DDP workflow (materialized arrays + on-demand fetch).
///
/// Returns the same result type as distributed-index-batching so harnesses
/// can print them side by side; additionally reports the data-plane bytes
/// through [`DistRunResult::bytes_moved`] (gradient + sample traffic).
pub fn run_baseline_ddp<F>(
    signal: &StaticGraphTemporalSignal,
    cfg: &DistConfig,
    model_factory: F,
) -> DistRunResult
where
    F: Fn(&DataSvcPlane) -> Box<dyn Seq2Seq> + Sync,
{
    // Materialize once (the paper's baseline preprocesses distributedly;
    // here the shared-process equivalent is a single materialization whose
    // partitions are owned per rank by the data service).
    let augmented;
    let sig = match cfg.time_period {
        Some(p) => {
            augmented = signal.with_time_feature(p);
            &augmented
        }
        None => signal,
    };
    let out = materialized_xy(sig, cfg.horizon, SplitRatios::default());
    let scaler = out.scaler;
    let splits = out.splits.clone();
    let elem = 4; // f32 payloads
    let policy = st_dist::datasvc::PartitionPolicy::Contiguous;
    let x = DistributedArray::with_storage(
        SignalStorage::from_tensor_spec(out.x, cfg.storage),
        cfg.world,
        cfg.topology,
        elem,
        policy,
        cfg.wire_codec,
    );
    let y = DistributedArray::with_storage(
        SignalStorage::from_tensor_spec(out.y, cfg.storage),
        cfg.world,
        cfg.topology,
        elem,
        policy,
        cfg.wire_codec,
    );

    engine::run(
        cfg,
        &EngineOptions::default(),
        |rank, cm| {
            DataSvcPlane::new(
                x.clone(),
                y.clone(),
                scaler.clone(),
                splits.clone(),
                cfg,
                rank,
                cm.clone(),
            )
        },
        |plane: &DataSvcPlane| model_factory(plane),
    )
    .expect("engine run without resume cannot fail")
    .into_dist_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_index::run_distributed_index;
    use st_data::datasets::{DatasetKind, DatasetSpec};
    use st_data::synthetic;
    use st_dist::shuffle::ShuffleStrategy;
    use st_graph::diffusion_supports;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn spec_and_signal() -> (DatasetSpec, StaticGraphTemporalSignal) {
        let spec = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.35);
        let sig = synthetic::generate(&spec, 21);
        (spec, sig)
    }

    fn make_model(
        sig: &StaticGraphTemporalSignal,
        features: usize,
        horizon: usize,
    ) -> Box<dyn Seq2Seq> {
        let supports = Support::wrap_all(diffusion_supports(&sig.adjacency, 2));
        let mc = ModelConfig {
            input_dim: features,
            output_dim: 1,
            hidden: 8,
            num_nodes: sig.num_nodes(),
            horizon,
            diffusion_steps: 2,
            layers: 1,
        };
        Box::new(PgtDcrnn::new(mc, &supports, 42))
    }

    #[test]
    fn baseline_ddp_trains() {
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 3, spec.horizon);
        cfg.batch_per_worker = 4;
        let r = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        assert_eq!(r.epochs.len(), 3);
        let first = r.epochs.first().unwrap().train_loss;
        let last = r.epochs.last().unwrap().train_loss;
        assert!(last < first, "baseline loss must fall: {first} -> {last}");
    }

    #[test]
    fn baseline_moves_far_more_bytes_than_dist_index() {
        // The crux of Fig. 7: baseline DDP's data plane vs dist-index's
        // gradient-only traffic, same model and settings.
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        cfg.shuffle = ShuffleStrategy::Global;
        let base = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        let index = run_distributed_index(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        // Dist-index moves *no* sample data between workers; the baseline's
        // globally-shuffled on-demand fetches move plenty. (Gradient
        // traffic is identical on both sides, so compare data planes.)
        assert_eq!(
            index.data_plane_bytes, 0,
            "dist-index data plane must be empty"
        );
        assert!(
            base.data_plane_bytes > 0,
            "baseline must fetch samples remotely"
        );
        assert!(
            base.bytes_moved > index.bytes_moved,
            "baseline total {} bytes vs index {} bytes",
            base.bytes_moved,
            index.bytes_moved
        );
        assert!(
            base.sim_comm_secs > index.sim_comm_secs,
            "baseline comm {} s vs index {} s",
            base.sim_comm_secs,
            index.sim_comm_secs
        );
    }

    #[test]
    fn prefetch_hides_data_plane_time_without_changing_results() {
        // §7 prefetching ablation: same bytes, same learning trajectory,
        // strictly less exposed communication time.
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 2, spec.horizon);
        cfg.batch_per_worker = 4;
        let sync = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        cfg.prefetch = true;
        let pf = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        assert!(
            pf.sim_comm_secs < sync.sim_comm_secs,
            "prefetch comm {} s must beat sync {} s",
            pf.sim_comm_secs,
            sync.sim_comm_secs
        );
        assert_eq!(
            pf.data_plane_bytes, sync.data_plane_bytes,
            "prefetch moves the same bytes, it just hides them"
        );
        // Same seed + same samples ⇒ identical training losses.
        for (a, b) in pf.epochs.iter().zip(sync.epochs.iter()) {
            assert!(
                (a.train_loss - b.train_loss).abs() < 1e-6,
                "epoch {}: {} vs {}",
                a.epoch,
                a.train_loss,
                b.train_loss
            );
        }
    }

    #[test]
    fn both_reach_similar_accuracy() {
        // Same samples, same shuffle, same model ⇒ near-identical learning;
        // only the data plane differs.
        let (spec, sig) = spec_and_signal();
        let mut cfg = DistConfig::new(2, 3, spec.horizon);
        cfg.batch_per_worker = 4;
        let base = run_baseline_ddp(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        let index = run_distributed_index(&sig, &cfg, |_| make_model(&sig, 1, spec.horizon));
        let b = base.best_val_mae();
        let i = index.best_val_mae();
        assert!(
            (b - i).abs() < 0.35 * b.max(i),
            "val MAE diverged: baseline {b} vs index {i}"
        );
    }
}
