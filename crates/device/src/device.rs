//! Device identities and hardware specifications.
//!
//! The specs mirror a Polaris compute node (§3.1 of the paper): a 32-core
//! AMD EPYC Milan host with 512 GB DDR4 and four NVIDIA A100-40GB GPUs.

use serde::{Deserialize, Serialize};

/// Which device a buffer or computation lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Host CPU + system memory.
    Host,
    /// A GPU, identified by its index within the compute node.
    Gpu(u32),
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Host => write!(f, "host"),
            DeviceKind::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

/// Hardware description used by the cost model and memory pools.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: String,
    /// Memory capacity in bytes.
    pub mem_capacity: u64,
    /// Sustained FP32 throughput in FLOP/s (effective, not peak).
    pub flops: f64,
    /// Sustained memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
}

impl DeviceSpec {
    /// A Polaris host: 512 GB DDR4, EPYC Milan-class compute.
    pub fn polaris_host() -> Self {
        DeviceSpec {
            name: "AMD EPYC Milan 7543P (512 GB)".into(),
            mem_capacity: 512 * GIB,
            flops: 1.5e12,          // ~32 cores × AVX2 FMA, effective
            mem_bandwidth: 150.0e9, // 8-channel DDR4
        }
    }

    /// An NVIDIA A100-40GB (effective FP32 rates, not tensor-core peak).
    pub fn a100_40gb() -> Self {
        DeviceSpec {
            name: "NVIDIA A100-SXM4-40GB".into(),
            mem_capacity: 40 * GIB,
            flops: 14.0e12,        // effective FP32 on GEMM-like kernels
            mem_bandwidth: 1.3e12, // HBM2e, effective
        }
    }

    /// Capacity in GiB (for reports).
    pub fn capacity_gib(&self) -> f64 {
        self.mem_capacity as f64 / GIB as f64
    }
}

/// One binary gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// One binary mebibyte.
pub const MIB: u64 = 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polaris_specs_match_paper_hardware() {
        let host = DeviceSpec::polaris_host();
        assert_eq!(host.mem_capacity, 512 * GIB, "paper: 512 GB of DDR4 RAM");
        let gpu = DeviceSpec::a100_40gb();
        assert_eq!(
            gpu.mem_capacity,
            40 * GIB,
            "paper: A100 40 GB (Table 2 shows /40)"
        );
        assert!(gpu.flops > host.flops, "GPU must out-compute the host");
    }

    #[test]
    fn device_kind_display() {
        assert_eq!(DeviceKind::Host.to_string(), "host");
        assert_eq!(DeviceKind::Gpu(2).to_string(), "gpu2");
    }
}
