//! Host ↔ device transfer tracking.
//!
//! GPU-index-batching's headline effect (§4.1, Table 4) is consolidating
//! the many per-batch host→device copies of the standard workflow into a
//! single up-front transfer. [`TransferLedger`] records every modeled
//! transfer so experiments can report both the count and total bytes moved,
//! and charge simulated time through the cost model.

use crate::clock::SimClock;
use crate::costmodel::CostModel;
use parking_lot::Mutex;
use std::sync::Arc;

/// Records host↔device traffic for one worker.
#[derive(Debug, Clone, Default)]
pub struct TransferLedger {
    inner: Arc<Mutex<LedgerInner>>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    h2d_count: u64,
    h2d_bytes: u64,
    d2h_count: u64,
    d2h_bytes: u64,
}

impl TransferLedger {
    /// Fresh ledger.
    pub fn new() -> Self {
        TransferLedger::default()
    }

    /// Model a host→device copy: record it and charge time to the clock.
    pub fn h2d(&self, bytes: u64, cm: &CostModel, clock: &SimClock) {
        let mut i = self.inner.lock();
        i.h2d_count += 1;
        i.h2d_bytes += bytes;
        drop(i);
        clock.advance_comm(cm.h2d(bytes));
    }

    /// Model a device→host copy.
    pub fn d2h(&self, bytes: u64, cm: &CostModel, clock: &SimClock) {
        let mut i = self.inner.lock();
        i.d2h_count += 1;
        i.d2h_bytes += bytes;
        drop(i);
        clock.advance_comm(cm.h2d(bytes));
    }

    /// Number of host→device transfers.
    pub fn h2d_count(&self) -> u64 {
        self.inner.lock().h2d_count
    }

    /// Total host→device bytes.
    pub fn h2d_bytes(&self) -> u64 {
        self.inner.lock().h2d_bytes
    }

    /// Number of device→host transfers.
    pub fn d2h_count(&self) -> u64 {
        self.inner.lock().d2h_count
    }

    /// Total device→host bytes.
    pub fn d2h_bytes(&self) -> u64 {
        self.inner.lock().d2h_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counts_and_charges_time() {
        let ledger = TransferLedger::new();
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        ledger.h2d(1 << 30, &cm, &clock);
        ledger.h2d(1 << 30, &cm, &clock);
        ledger.d2h(1 << 20, &cm, &clock);
        assert_eq!(ledger.h2d_count(), 2);
        assert_eq!(ledger.h2d_bytes(), 2 << 30);
        assert_eq!(ledger.d2h_count(), 1);
        assert!(clock.comm_secs() > 0.08, "2 GiB over ~24 GB/s PCIe");
    }

    #[test]
    fn consolidated_transfer_beats_per_batch() {
        // The GPU-index-batching argument in miniature: one 8 GB transfer
        // is cheaper than 10k transfers of 0.8 MB because of latency.
        let cm = CostModel::polaris();
        let single = SimClock::new();
        TransferLedger::new().h2d(8 << 30, &cm, &single);
        let chatty = SimClock::new();
        let ledger = TransferLedger::new();
        for _ in 0..10_000 {
            ledger.h2d((8 << 30) / 10_000, &cm, &chatty);
        }
        assert!(single.comm_secs() < chatty.comm_secs());
    }
}
