//! # st-device
//!
//! Simulated device substrate replacing the paper's physical Polaris node
//! (AMD EPYC host + 4×NVIDIA A100) with an analytically modeled one:
//!
//! - [`memory`] — capacity-limited, peak-tracked memory pools with **real**
//!   and **virtual** accounting modes. Virtual mode registers byte counts
//!   without touching RAM, which is how this repo reproduces the paper's
//!   512 GB-host OOM crashes (Figs 2 and 6) for the 419.46 GB preprocessed
//!   PeMS dataset on a 21 GB container.
//! - [`clock`] — a simulated clock accumulating modeled seconds.
//! - [`costmodel`] — analytic compute / transfer / network / IO costs
//!   calibrated to A100-, PCIe-, NVLink- and Slingshot-class constants.
//! - [`overlap`] — the overlap ledger: FIFO accounting for quoted comm
//!   streams (setup reads, prefetched fetches, in-flight gradient
//!   buckets) hidden behind modeled compute.
//! - [`profiler`] — memory-timeline sampling, standing in for psutil/pynvml,
//!   plus [`profiler::KernelSplit`] snapshots over `st_tensor`'s per-thread
//!   kernel-time counters (gemm / spmm / elementwise seconds).

pub mod clock;
pub mod costmodel;
pub mod device;
pub mod memory;
pub mod overlap;
pub mod profiler;
pub mod transfer;

pub use clock::SimClock;
pub use costmodel::CostModel;
pub use device::{DeviceKind, DeviceSpec, GIB, MIB};
pub use memory::{AllocError, Allocation, MemPool, PoolMode};
pub use overlap::{OverlapLedger, StreamId};
pub use profiler::{KernelSplit, MemTimeline};
pub use transfer::TransferLedger;
