//! Analytic compute / transfer / network / I/O cost model.
//!
//! Calibrated to the paper's platform (§3.1): A100 GPUs, PCIe Gen4 host
//! links, NVLink within a node, Slingshot-11 between nodes, and a Lustre
//! parallel filesystem whose bandwidth fluctuates (the paper observed
//! preprocessing I/O varying between ~10 and ~40 s — §5.3.1). Absolute
//! seconds are projections, but the *ratios* between compute, transfer and
//! network terms are what shape Figs 7 and 9, and those come from the
//! relative magnitudes of these constants.

use serde::{Deserialize, Serialize};

/// Cost-model constants (all rates are "effective", not peak).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU FP32 throughput for GEMM-like kernels, FLOP/s.
    pub gpu_flops: f64,
    /// GPU memory bandwidth for elementwise kernels, bytes/s.
    pub gpu_membw: f64,
    /// CPU throughput, FLOP/s (used when the workflow stays host-side).
    pub cpu_flops: f64,
    /// CPU memory bandwidth, bytes/s.
    pub cpu_membw: f64,
    /// Host ↔ device transfer bandwidth (PCIe Gen4 x16), bytes/s.
    pub pcie_bw: f64,
    /// Per-transfer launch latency, seconds.
    pub pcie_latency: f64,
    /// Intra-node GPU ↔ GPU bandwidth (NVLink-class), bytes/s.
    pub nvlink_bw: f64,
    /// Inter-node network bandwidth per NIC (Slingshot-class), bytes/s.
    pub network_bw: f64,
    /// Per-message network latency, seconds.
    pub network_latency: f64,
    /// Parallel filesystem read bandwidth, bytes/s (mean).
    pub pfs_read_bw: f64,
    /// Fixed per-kernel launch overhead, seconds.
    pub kernel_latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::polaris()
    }
}

impl CostModel {
    /// Constants approximating ALCF Polaris.
    pub fn polaris() -> Self {
        CostModel {
            gpu_flops: 14.0e12,
            gpu_membw: 1.3e12,
            cpu_flops: 1.0e12,
            cpu_membw: 120.0e9,
            pcie_bw: 24.0e9,
            pcie_latency: 10e-6,
            nvlink_bw: 250.0e9,
            network_bw: 22.0e9,
            network_latency: 2.5e-6,
            pfs_read_bw: 2.5e9,
            kernel_latency: 6e-6,
        }
    }

    /// Seconds for a dense `[m,k] @ [k,n]` GEMM on the GPU.
    pub fn gemm(&self, m: usize, k: usize, n: usize) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        self.kernel_latency + flops / self.gpu_flops
    }

    /// Seconds for a dense GEMM on the CPU.
    pub fn gemm_cpu(&self, m: usize, k: usize, n: usize) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        flops / self.cpu_flops
    }

    /// Seconds for a sparse×dense product with `nnz` non-zeros and `n`
    /// output columns (memory-bound: 2 reads + 1 FMA per nnz per column).
    pub fn spmm(&self, nnz: usize, n: usize) -> f64 {
        let bytes = (nnz * n * 12) as f64; // value + col index + output traffic
        self.kernel_latency + bytes / self.gpu_membw
    }

    /// Seconds for an elementwise pass over `n` scalars on the GPU
    /// (memory-bound: read + write).
    pub fn elementwise(&self, n: usize) -> f64 {
        self.kernel_latency + (n * 8) as f64 / self.gpu_membw
    }

    /// Seconds for an elementwise pass on the CPU.
    pub fn elementwise_cpu(&self, n: usize) -> f64 {
        (n * 8) as f64 / self.cpu_membw
    }

    /// Seconds to move `bytes` host → device (or back) over PCIe.
    pub fn h2d(&self, bytes: u64) -> f64 {
        self.pcie_latency + bytes as f64 / self.pcie_bw
    }

    /// Seconds for a ring all-reduce of `bytes` across `world` ranks, where
    /// `ranks_per_node` determines whether the ring crosses the network.
    ///
    /// Ring all-reduce moves `2 (W-1)/W × bytes` per rank; the bottleneck
    /// link is NVLink when the ring stays in one node and the NIC otherwise.
    pub fn allreduce(&self, bytes: u64, world: usize, ranks_per_node: usize) -> f64 {
        if world <= 1 {
            return 0.0;
        }
        let w = world as f64;
        let volume = 2.0 * (w - 1.0) / w * bytes as f64;
        let bw = if world <= ranks_per_node {
            self.nvlink_bw
        } else {
            self.network_bw
        };
        let steps = 2.0 * (w - 1.0);
        steps * self.network_latency + volume / bw
    }

    /// Seconds to gather `bytes` from a remote rank (one request/response).
    pub fn remote_fetch(&self, bytes: u64, same_node: bool) -> f64 {
        let bw = if same_node {
            self.nvlink_bw
        } else {
            self.network_bw
        };
        2.0 * self.network_latency + bytes as f64 / bw
    }

    /// Seconds to read `bytes` from the parallel filesystem, with an
    /// optional multiplicative jitter factor (the paper's observed I/O
    /// variability; pass 1.0 for the mean).
    pub fn pfs_read(&self, bytes: u64, jitter: f64) -> f64 {
        bytes as f64 / self.pfs_read_bw * jitter.max(0.1)
    }

    /// Modeled `(fetch, compute)` seconds for one serving micro-batch:
    /// a cross-shard halo read of `halo_bytes` (zero bytes cost zero — an
    /// unsharded deployment never touches the network) followed by a
    /// batched forward of `flops`. The serving scheduler prices admission
    /// decisions and the shard executor prices its deadline streams with
    /// the **same** call, so a request is shed exactly when the model that
    /// will serve it says its SLO cannot be met.
    pub fn micro_batch_secs(&self, halo_bytes: u64, flops: f64) -> (f64, f64) {
        let fetch = if halo_bytes > 0 {
            self.remote_fetch(halo_bytes, false)
        } else {
            0.0
        };
        (fetch, flops / self.gpu_flops)
    }

    /// Per-rank straggler compute multiplier under a linear skew ramp:
    /// rank 0 stays at 1.0 and the last rank runs `1 + skew` slower, with
    /// the ranks between on the line — the deterministic stand-in for the
    /// per-node performance variability MSPipe-style bounded staleness is
    /// designed to ride out. `skew = 0` (the default) models a uniform
    /// healthy allocation.
    pub fn straggler_scale(&self, rank: usize, world: usize, skew: f64) -> f64 {
        if world <= 1 || skew == 0.0 {
            return 1.0;
        }
        1.0 + skew.max(0.0) * rank as f64 / (world - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_scales_with_flops() {
        let cm = CostModel::polaris();
        let t1 = cm.gemm(1024, 1024, 1024);
        let t2 = cm.gemm(2048, 1024, 1024);
        assert!(t2 > t1 * 1.8 && t2 < t1 * 2.2, "roughly linear in m");
    }

    #[test]
    fn gpu_beats_cpu_on_gemm() {
        let cm = CostModel::polaris();
        assert!(cm.gemm(512, 512, 512) < cm.gemm_cpu(512, 512, 512));
    }

    #[test]
    fn h2d_dominated_by_bandwidth_for_large_buffers() {
        let cm = CostModel::polaris();
        let t = cm.h2d(24_000_000_000); // 24 GB at 24 GB/s ≈ 1 s
        assert!((t - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn allreduce_zero_for_single_rank() {
        let cm = CostModel::polaris();
        assert_eq!(cm.allreduce(1 << 20, 1, 4), 0.0);
    }

    #[test]
    fn allreduce_slower_across_nodes() {
        let cm = CostModel::polaris();
        let intra = cm.allreduce(100 << 20, 4, 4);
        let inter = cm.allreduce(100 << 20, 8, 4);
        assert!(inter > intra, "crossing the NIC must cost more");
    }

    #[test]
    fn allreduce_volume_saturates_with_world_size() {
        // 2(W-1)/W approaches 2: cost grows sublinearly in W.
        let cm = CostModel::polaris();
        let w8 = cm.allreduce(1 << 30, 8, 4);
        let w128 = cm.allreduce(1 << 30, 128, 4);
        assert!(w128 < w8 * 1.5, "w8={w8}, w128={w128}");
    }

    #[test]
    fn straggler_ramp_is_linear_and_anchored() {
        let cm = CostModel::polaris();
        assert_eq!(cm.straggler_scale(0, 4, 0.3), 1.0, "rank 0 is healthy");
        assert!((cm.straggler_scale(3, 4, 0.3) - 1.3).abs() < 1e-12);
        assert!((cm.straggler_scale(1, 4, 0.3) - 1.1).abs() < 1e-12);
        assert_eq!(cm.straggler_scale(0, 1, 0.5), 1.0, "world of one");
        assert_eq!(cm.straggler_scale(2, 4, 0.0), 1.0, "no skew, no ramp");
    }

    #[test]
    fn micro_batch_pricing_matches_its_parts() {
        let cm = CostModel::polaris();
        let (fetch, compute) = cm.micro_batch_secs(1 << 20, 2.0e9);
        assert_eq!(fetch, cm.remote_fetch(1 << 20, false));
        assert_eq!(compute, 2.0e9 / cm.gpu_flops);
        // No halo bytes ⇒ no fetch term at all (not even message latency).
        let (fetch0, _) = cm.micro_batch_secs(0, 1.0e9);
        assert_eq!(fetch0, 0.0);
    }

    #[test]
    fn pfs_jitter_scales_time() {
        let cm = CostModel::polaris();
        let fast = cm.pfs_read(10 << 30, 0.5);
        let slow = cm.pfs_read(10 << 30, 2.0);
        assert!((slow / fast - 4.0).abs() < 1e-6);
    }
}
