//! A simulated clock for paper-scale runtime projection.
//!
//! Real training in this repo runs on scaled-down data; the paper's minutes
//! at Polaris scale are *projected* by accumulating modeled op costs (from
//! [`crate::costmodel::CostModel`]) onto a [`SimClock`]. Each worker owns a
//! clock; collective operations synchronize clocks to the maximum, mirroring
//! how a barrier or all-reduce holds every rank until the slowest arrives.

use parking_lot::Mutex;
use std::sync::Arc;

/// Accumulates simulated seconds, optionally split by category.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<Mutex<ClockInner>>,
}

#[derive(Debug)]
struct ClockInner {
    now: f64,
    compute: f64,
    communication: f64,
    io: f64,
    /// Multiplier applied to every compute advance — the straggler
    /// injection knob. 1.0 models a healthy rank; >1.0 a slow one.
    compute_scale: f64,
}

impl Default for ClockInner {
    fn default() -> Self {
        ClockInner {
            now: 0.0,
            compute: 0.0,
            communication: 0.0,
            io: 0.0,
            compute_scale: 1.0,
        }
    }
}

impl SimClock {
    /// Fresh clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.inner.lock().now
    }

    /// Advance by `secs` of compute time, scaled by the straggler knob
    /// ([`SimClock::set_compute_scale`]). The default scale is 1.0, so
    /// un-skewed clocks charge exactly `secs`.
    pub fn advance_compute(&self, secs: f64) {
        let mut i = self.inner.lock();
        let scaled = secs * i.compute_scale;
        i.now += scaled;
        i.compute += scaled;
    }

    /// Set the straggler compute multiplier (≥ 0; 1.0 = healthy rank).
    /// Timing only — the scale shapes this clock's modeled seconds and can
    /// never touch numerics directly (DESIGN.md §2); under bounded
    /// staleness the *engine* may consult modeled arrival times, which is
    /// the documented, deterministic relaxation of that invariant.
    pub fn set_compute_scale(&self, scale: f64) {
        self.inner.lock().compute_scale = scale.max(0.0);
    }

    /// The current straggler compute multiplier.
    pub fn compute_scale(&self) -> f64 {
        self.inner.lock().compute_scale
    }

    /// Advance by `secs` of communication time.
    pub fn advance_comm(&self, secs: f64) {
        let mut i = self.inner.lock();
        i.now += secs;
        i.communication += secs;
    }

    /// Advance by `secs` of I/O time.
    pub fn advance_io(&self, secs: f64) {
        let mut i = self.inner.lock();
        i.now += secs;
        i.io += secs;
    }

    /// Total compute seconds.
    pub fn compute_secs(&self) -> f64 {
        self.inner.lock().compute
    }

    /// Total communication seconds.
    pub fn comm_secs(&self) -> f64 {
        self.inner.lock().communication
    }

    /// Total I/O seconds.
    pub fn io_secs(&self) -> f64 {
        self.inner.lock().io
    }

    /// Jump forward to `t` if it is in the future (barrier semantics: a rank
    /// waiting on a collective idles until the slowest rank arrives). The
    /// waiting time is charged to communication.
    pub fn sync_to(&self, t: f64) {
        let mut i = self.inner.lock();
        if t > i.now {
            i.communication += t - i.now;
            i.now = t;
        }
    }

    /// Reset everything to zero.
    pub fn reset(&self) {
        *self.inner.lock() = ClockInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_category() {
        let c = SimClock::new();
        c.advance_compute(1.0);
        c.advance_comm(2.0);
        c.advance_io(0.5);
        assert_eq!(c.now(), 3.5);
        assert_eq!(c.compute_secs(), 1.0);
        assert_eq!(c.comm_secs(), 2.0);
        assert_eq!(c.io_secs(), 0.5);
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let c = SimClock::new();
        c.advance_compute(5.0);
        c.sync_to(3.0);
        assert_eq!(c.now(), 5.0, "never rewinds");
        c.sync_to(8.0);
        assert_eq!(c.now(), 8.0);
        assert_eq!(c.comm_secs(), 3.0, "waiting charged to communication");
    }

    #[test]
    fn compute_scale_slows_compute_only() {
        let c = SimClock::new();
        c.set_compute_scale(1.5);
        c.advance_compute(2.0);
        c.advance_comm(1.0);
        assert_eq!(c.compute_secs(), 3.0, "compute scaled by the knob");
        assert_eq!(c.comm_secs(), 1.0, "comm unaffected");
        assert_eq!(c.now(), 4.0);
        c.set_compute_scale(1.0);
        c.advance_compute(1.0);
        assert_eq!(c.compute_secs(), 4.0, "scale is live-settable");
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.advance_io(2.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.io_secs(), 0.0);
    }
}
