//! The overlap ledger: unified accounting for comm streams hidden behind
//! compute.
//!
//! The training engine runs several modeled transfers concurrently with
//! modeled compute — a one-time setup read (the generalized mode's halo),
//! the double-buffered next-batch fetch, and the in-flight gradient-bucket
//! collectives of the pipelined step engine. All of them follow the same
//! quote/overlap/settle protocol the prefetcher pioneered: seconds are
//! *quoted* when the transfer is issued (bytes go on whatever ledger owns
//! them at that moment), compute seconds *credit* the in-flight streams,
//! and whatever compute never hid is *charged* to the clock when a
//! consumer blocks on the stream.
//!
//! [`OverlapLedger`] is that protocol, once, for any number of concurrent
//! streams. Streams share one modeled interconnect, so a second of compute
//! hides at most one second of communication in total: credit drains
//! streams in issue (FIFO) order, mirroring the engine's historical
//! "setup first, then the prefetched batch" priority.
//!
//! Determinism invariant (DESIGN.md §2): the ledger only ever moves
//! *time* — payloads exist from the moment they are quoted, so nothing
//! here can influence numerics.

use crate::clock::SimClock;

/// Handle for one in-flight stream on an [`OverlapLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(u64);

/// FIFO accounting for concurrent communication streams overlapped with
/// compute. See the module docs for the quote/credit/settle protocol.
#[derive(Debug, Default)]
pub struct OverlapLedger {
    /// In-flight streams in issue order: `(id, exposed seconds left)`.
    streams: Vec<(u64, f64)>,
    next_id: u64,
    hidden: f64,
    charged: f64,
}

impl OverlapLedger {
    /// An empty ledger (nothing in flight).
    pub fn new() -> Self {
        OverlapLedger::default()
    }

    /// Issue a quoted transfer of `secs` modeled seconds. The payload is
    /// the caller's business (it already exists — simulation assembles
    /// eagerly); the ledger tracks only the not-yet-hidden time.
    pub fn begin(&mut self, secs: f64) -> StreamId {
        let id = self.next_id;
        self.next_id += 1;
        self.streams.push((id, secs.max(0.0)));
        StreamId(id)
    }

    /// Credit `secs` of concurrent compute against the in-flight streams,
    /// draining them in issue order (the interconnect is one resource: a
    /// compute second hides at most one comm second across all streams).
    pub fn credit(&mut self, mut secs: f64) {
        for (_, exposed) in self.streams.iter_mut() {
            if secs <= 0.0 {
                break;
            }
            let hide = exposed.min(secs);
            *exposed -= hide;
            secs -= hide;
            self.hidden += hide;
        }
    }

    /// Block on one stream: charge its exposed remainder to `clock` and
    /// retire it. Panics on an unknown (already settled) id — a settled
    /// stream's payload was already consumed once.
    pub fn wait(&mut self, id: StreamId, clock: &SimClock) {
        let pos = self
            .streams
            .iter()
            .position(|(sid, _)| *sid == id.0)
            .expect("stream already settled");
        let (_, exposed) = self.streams.remove(pos);
        if exposed > 0.0 {
            clock.advance_comm(exposed);
            self.charged += exposed;
        }
    }

    /// Settle every in-flight stream (end of run: whatever compute never
    /// hid is still owed).
    pub fn wait_all(&mut self, clock: &SimClock) {
        let owed: f64 = self.streams.drain(..).map(|(_, e)| e).sum();
        if owed > 0.0 {
            clock.advance_comm(owed);
            self.charged += owed;
        }
    }

    /// Number of streams currently in flight.
    pub fn in_flight(&self) -> usize {
        self.streams.len()
    }

    /// Total comm seconds hidden behind compute so far.
    pub fn hidden_secs(&self) -> f64 {
        self.hidden
    }

    /// Total exposed comm seconds this ledger has charged to clocks.
    pub fn charged_secs(&self) -> f64 {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_credited_stream_charges_nothing() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(2.0);
        ol.credit(5.0);
        ol.wait(s, &clock);
        assert_eq!(clock.comm_secs(), 0.0);
        assert_eq!(ol.hidden_secs(), 2.0);
        assert_eq!(ol.in_flight(), 0);
    }

    #[test]
    fn uncredited_remainder_is_charged_on_wait() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(3.0);
        ol.credit(1.0);
        ol.wait(s, &clock);
        assert_eq!(clock.comm_secs(), 2.0);
        assert_eq!(ol.hidden_secs(), 1.0);
        assert_eq!(ol.charged_secs(), 2.0);
    }

    #[test]
    fn credit_drains_streams_in_issue_order() {
        // One compute second hides at most one comm second in total: the
        // earlier stream absorbs the credit first.
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let a = ol.begin(2.0);
        let b = ol.begin(2.0);
        ol.credit(3.0);
        ol.wait(a, &clock);
        assert_eq!(clock.comm_secs(), 0.0, "first stream fully hidden");
        ol.wait(b, &clock);
        assert_eq!(clock.comm_secs(), 1.0, "second got the leftover credit");
    }

    #[test]
    fn wait_all_settles_everything_owed() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        ol.begin(1.5);
        ol.begin(0.5);
        ol.credit(1.0);
        assert_eq!(ol.in_flight(), 2);
        ol.wait_all(&clock);
        assert_eq!(ol.in_flight(), 0);
        assert_eq!(clock.comm_secs(), 1.0);
        assert_eq!(ol.hidden_secs() + ol.charged_secs(), 2.0);
    }

    #[test]
    fn zero_second_streams_are_free() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(0.0);
        ol.wait(s, &clock);
        assert_eq!(clock.comm_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "stream already settled")]
    fn double_wait_is_loud() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(1.0);
        ol.wait(s, &clock);
        ol.wait(s, &clock);
    }
}
