//! The overlap ledger: unified accounting for comm streams hidden behind
//! compute.
//!
//! The training engine runs several modeled transfers concurrently with
//! modeled compute — a one-time setup read (the generalized mode's halo),
//! the double-buffered next-batch fetch, and the in-flight gradient-bucket
//! collectives of the pipelined step engine. All of them follow the same
//! quote/overlap/settle protocol the prefetcher pioneered: seconds are
//! *quoted* when the transfer is issued (bytes go on whatever ledger owns
//! them at that moment), compute seconds *credit* the in-flight streams,
//! and whatever compute never hid is *charged* to the clock when a
//! consumer blocks on the stream.
//!
//! [`OverlapLedger`] is that protocol, once, for any number of concurrent
//! streams. Streams share one modeled interconnect, so a second of compute
//! hides at most one second of communication in total: credit drains
//! streams in issue (FIFO) order, mirroring the engine's historical
//! "setup first, then the prefetched batch" priority.
//!
//! Streams come in two flavors:
//!
//! - **credit streams** ([`OverlapLedger::begin`]) carry a relative quote
//!   that compute credits drain — the prefetch/bucket-overlap model;
//! - **deadline streams** ([`OverlapLedger::begin_at`]) complete at an
//!   absolute modeled instant (a collective's cross-rank `ready_at`) —
//!   the bounded-staleness model, where a rank's own clock advancing past
//!   the deadline is what hides the transfer, and a wait before the
//!   deadline is a *fence stall* charged as the remaining gap.
//!
//! Determinism invariant (DESIGN.md §2): the ledger only ever moves
//! *time* — payloads exist from the moment they are quoted, so nothing
//! here can influence numerics.

use crate::clock::SimClock;

/// Handle for one in-flight stream on an [`OverlapLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(u64);

/// One in-flight stream's accounting state.
#[derive(Debug)]
struct Stream {
    id: u64,
    /// Seconds of the original quote not yet hidden (credit streams drain
    /// this via [`OverlapLedger::credit`]; deadline streams keep the full
    /// quote here and split it hidden/charged at wait time).
    exposed: f64,
    /// Absolute completion instant for deadline streams; `None` for
    /// credit streams.
    deadline: Option<f64>,
}

/// FIFO accounting for concurrent communication streams overlapped with
/// compute. See the module docs for the quote/credit/settle protocol.
#[derive(Debug, Default)]
pub struct OverlapLedger {
    /// In-flight streams in issue order.
    streams: Vec<Stream>,
    next_id: u64,
    hidden: f64,
    charged: f64,
}

impl OverlapLedger {
    /// An empty ledger (nothing in flight).
    pub fn new() -> Self {
        OverlapLedger::default()
    }

    /// Issue a quoted transfer of `secs` modeled seconds. The payload is
    /// the caller's business (it already exists — simulation assembles
    /// eagerly); the ledger tracks only the not-yet-hidden time.
    pub fn begin(&mut self, secs: f64) -> StreamId {
        let id = self.next_id;
        self.next_id += 1;
        self.streams.push(Stream {
            id,
            exposed: secs.max(0.0),
            deadline: None,
        });
        StreamId(id)
    }

    /// Issue a transfer that completes at the absolute modeled instant
    /// `ready_at`, quoted from a clock currently at `now` (the exposed
    /// quote is `ready_at − now`, clamped at zero). Unlike credit streams,
    /// compute credits do not drain a deadline stream — the rank's own
    /// clock advancing past the deadline is what hides it; see
    /// [`OverlapLedger::wait`].
    pub fn begin_at(&mut self, ready_at: f64, now: f64) -> StreamId {
        let id = self.next_id;
        self.next_id += 1;
        self.streams.push(Stream {
            id,
            exposed: (ready_at - now).max(0.0),
            deadline: Some(ready_at),
        });
        StreamId(id)
    }

    /// Whether `id` has completed by modeled time `now`: a deadline stream
    /// is ready once `now` reaches its deadline; a credit stream once its
    /// quote is fully drained. Unknown (already settled) ids are ready.
    pub fn ready(&self, id: StreamId, now: f64) -> bool {
        match self.streams.iter().find(|s| s.id == id.0) {
            Some(s) => match s.deadline {
                Some(d) => now >= d,
                None => s.exposed <= 0.0,
            },
            None => true,
        }
    }

    /// Credit `secs` of concurrent compute against the in-flight streams,
    /// draining them in issue order (the interconnect is one resource: a
    /// compute second hides at most one comm second across all streams).
    /// Deadline streams are skipped — their completion is pinned to an
    /// absolute instant, not to accumulated compute.
    pub fn credit(&mut self, mut secs: f64) {
        for s in self.streams.iter_mut() {
            if secs <= 0.0 {
                break;
            }
            if s.deadline.is_some() {
                continue;
            }
            let hide = s.exposed.min(secs);
            s.exposed -= hide;
            secs -= hide;
            self.hidden += hide;
        }
    }

    /// Block on one stream and retire it. A credit stream charges its
    /// undrained remainder to `clock`. A deadline stream charges the gap
    /// from `clock`'s now to its deadline (zero once the clock has moved
    /// past it — the stream completed *while* the rank was computing) and
    /// books the rest of its quote as hidden. Panics on an unknown
    /// (already settled) id — a settled stream's payload was already
    /// consumed once.
    pub fn wait(&mut self, id: StreamId, clock: &SimClock) {
        let pos = self
            .streams
            .iter()
            .position(|s| s.id == id.0)
            .expect("stream already settled");
        let s = self.streams.remove(pos);
        let charge = match s.deadline {
            Some(deadline) => (deadline - clock.now()).max(0.0).min(s.exposed),
            None => s.exposed,
        };
        if charge > 0.0 {
            clock.advance_comm(charge);
            self.charged += charge;
        }
        if s.deadline.is_some() {
            self.hidden += s.exposed - charge;
        }
    }

    /// Settle every in-flight stream (end of run: whatever compute never
    /// hid is still owed), in issue order.
    pub fn wait_all(&mut self, clock: &SimClock) {
        while let Some(s) = self.streams.first() {
            let id = StreamId(s.id);
            self.wait(id, clock);
        }
    }

    /// Number of streams currently in flight.
    pub fn in_flight(&self) -> usize {
        self.streams.len()
    }

    /// Total comm seconds hidden behind compute so far.
    pub fn hidden_secs(&self) -> f64 {
        self.hidden
    }

    /// Total exposed comm seconds this ledger has charged to clocks.
    pub fn charged_secs(&self) -> f64 {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_credited_stream_charges_nothing() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(2.0);
        ol.credit(5.0);
        ol.wait(s, &clock);
        assert_eq!(clock.comm_secs(), 0.0);
        assert_eq!(ol.hidden_secs(), 2.0);
        assert_eq!(ol.in_flight(), 0);
    }

    #[test]
    fn uncredited_remainder_is_charged_on_wait() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(3.0);
        ol.credit(1.0);
        ol.wait(s, &clock);
        assert_eq!(clock.comm_secs(), 2.0);
        assert_eq!(ol.hidden_secs(), 1.0);
        assert_eq!(ol.charged_secs(), 2.0);
    }

    #[test]
    fn credit_drains_streams_in_issue_order() {
        // One compute second hides at most one comm second in total: the
        // earlier stream absorbs the credit first.
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let a = ol.begin(2.0);
        let b = ol.begin(2.0);
        ol.credit(3.0);
        ol.wait(a, &clock);
        assert_eq!(clock.comm_secs(), 0.0, "first stream fully hidden");
        ol.wait(b, &clock);
        assert_eq!(clock.comm_secs(), 1.0, "second got the leftover credit");
    }

    #[test]
    fn wait_all_settles_everything_owed() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        ol.begin(1.5);
        ol.begin(0.5);
        ol.credit(1.0);
        assert_eq!(ol.in_flight(), 2);
        ol.wait_all(&clock);
        assert_eq!(ol.in_flight(), 0);
        assert_eq!(clock.comm_secs(), 1.0);
        assert_eq!(ol.hidden_secs() + ol.charged_secs(), 2.0);
    }

    #[test]
    fn zero_second_streams_are_free() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(0.0);
        ol.wait(s, &clock);
        assert_eq!(clock.comm_secs(), 0.0);
    }

    #[test]
    fn deadline_stream_charges_the_gap_to_its_deadline() {
        // A fence before the deadline pays exactly the remaining gap.
        let clock = SimClock::new();
        clock.advance_compute(1.0);
        let mut ol = OverlapLedger::new();
        let s = ol.begin_at(4.0, clock.now()); // 3 s quote
        assert!(!ol.ready(s, clock.now()));
        clock.advance_compute(1.0); // now = 2.0
        ol.wait(s, &clock);
        assert_eq!(clock.now(), 4.0, "fence lands exactly on the deadline");
        assert_eq!(ol.charged_secs(), 2.0, "gap charged");
        assert_eq!(ol.hidden_secs(), 1.0, "compute-elapsed share hidden");
    }

    #[test]
    fn deadline_stream_passed_by_the_clock_is_free() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin_at(2.0, clock.now());
        clock.advance_compute(5.0); // rank computed past the deadline
        assert!(ol.ready(s, clock.now()));
        ol.wait(s, &clock);
        assert_eq!(clock.comm_secs(), 0.0, "nothing left to pay");
        assert_eq!(ol.hidden_secs(), 2.0, "entire quote hidden by compute");
    }

    #[test]
    fn credit_never_drains_deadline_streams() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let d = ol.begin_at(3.0, clock.now());
        let c = ol.begin(1.0);
        ol.credit(10.0);
        assert!(ol.ready(c, clock.now()), "credit stream fully drained");
        assert!(!ol.ready(d, clock.now()), "deadline pinned to the clock");
        ol.wait(d, &clock);
        assert_eq!(clock.comm_secs(), 3.0, "deadline gap still owed in full");
    }

    #[test]
    fn settled_ids_report_ready() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(1.0);
        ol.wait(s, &clock);
        assert!(ol.ready(s, clock.now()));
    }

    #[test]
    fn wait_all_settles_deadline_streams_in_order() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        ol.begin_at(1.0, 0.0);
        ol.begin_at(3.0, 0.0);
        ol.wait_all(&clock);
        // First fence moves the clock to 1.0 (charging 1.0); the second
        // charges only the remaining 2.0 — fences never double-pay.
        assert_eq!(clock.now(), 3.0);
        assert_eq!(ol.charged_secs(), 3.0);
        assert_eq!(ol.hidden_secs(), 1.0, "second quote partly elapsed");
    }

    #[test]
    #[should_panic(expected = "stream already settled")]
    fn double_wait_is_loud() {
        let clock = SimClock::new();
        let mut ol = OverlapLedger::new();
        let s = ol.begin(1.0);
        ol.wait(s, &clock);
        ol.wait(s, &clock);
    }
}
