//! Memory-timeline sampling — the psutil/pynvml substitute.
//!
//! The paper samples system and GPU memory once per second during training
//! (§3.1) and plots the timelines in Figs 2 and 6. Here, the workflow code
//! calls [`MemTimeline::sample`] at the same milestones (after load, after
//! each preprocessing stage, per training step); the x-axis is normalized
//! progress, exactly like the figures.

use crate::memory::MemPool;

/// A labeled sequence of (progress, bytes) samples for one pool.
#[derive(Debug, Clone)]
pub struct MemTimeline {
    label: String,
    samples: Vec<(f64, u64)>,
    oom_at: Option<f64>,
}

impl MemTimeline {
    /// New empty timeline.
    pub fn new(label: impl Into<String>) -> Self {
        MemTimeline {
            label: label.into(),
            samples: Vec::new(),
            oom_at: None,
        }
    }

    /// Record the pool's current usage at `progress` ∈ [0, 1].
    pub fn sample(&mut self, progress: f64, pool: &MemPool) {
        self.samples.push((progress, pool.in_use()));
    }

    /// Record a raw byte value at `progress`.
    pub fn sample_bytes(&mut self, progress: f64, bytes: u64) {
        self.samples.push((progress, bytes));
    }

    /// Mark that the workflow crashed with OOM at `progress`.
    pub fn mark_oom(&mut self, progress: f64) {
        self.oom_at = Some(progress);
    }

    /// Timeline label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(f64, u64)] {
        &self.samples
    }

    /// Progress at which OOM occurred, if it did.
    pub fn oom_at(&self) -> Option<f64> {
        self.oom_at
    }

    /// Peak bytes over the timeline.
    pub fn peak(&self) -> u64 {
        self.samples.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// Render as rows of `progress%, GiB` for the report tables.
    pub fn rows_gib(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|&(p, b)| (p * 100.0, b as f64 / (1u64 << 30) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PoolMode;

    #[test]
    fn samples_track_pool_usage() {
        let pool = MemPool::new("host", 1000, PoolMode::Virtual);
        let mut tl = MemTimeline::new("test");
        tl.sample(0.0, &pool);
        let _a = pool.alloc(600).unwrap();
        tl.sample(0.5, &pool);
        tl.sample(1.0, &pool);
        assert_eq!(tl.samples(), &[(0.0, 0), (0.5, 600), (1.0, 600)]);
        assert_eq!(tl.peak(), 600);
    }

    #[test]
    fn oom_marker() {
        let mut tl = MemTimeline::new("pems");
        tl.sample_bytes(0.1, 100);
        tl.mark_oom(0.15);
        assert_eq!(tl.oom_at(), Some(0.15));
    }

    #[test]
    fn gib_rows() {
        let mut tl = MemTimeline::new("x");
        tl.sample_bytes(0.5, 2 << 30);
        let rows = tl.rows_gib();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].0 - 50.0).abs() < 1e-9);
        assert!((rows[0].1 - 2.0).abs() < 1e-9);
    }
}
