//! Memory-timeline sampling — the psutil/pynvml substitute.
//!
//! The paper samples system and GPU memory once per second during training
//! (§3.1) and plots the timelines in Figs 2 and 6. Here, the workflow code
//! calls [`MemTimeline::sample`] at the same milestones (after load, after
//! each preprocessing stage, per training step); the x-axis is normalized
//! progress, exactly like the figures.
//!
//! This module also hosts [`KernelSplit`], a thin profiler view over the
//! per-thread kernel-time counters that `st_tensor`'s compute backends
//! maintain (see [`st_tensor::backend::kernel_secs`]). The trainer snapshots
//! the counters at epoch boundaries to attribute wall time to GEMM, spmm,
//! or elementwise work.

use crate::memory::MemPool;

/// Cumulative kernel seconds by class, as reported by the calling thread's
/// `st_tensor` backend counters.
///
/// Snapshots are *cumulative marks*; subtract two of them
/// ([`KernelSplit::since`]) to get the time spent inside each kernel class
/// over an interval — the same mark/delta idiom the engine uses for comm
/// time. Counters are thread-local, so take both marks on the thread that
/// ran the compute (each engine rank runs on its own thread).
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct KernelSplit {
    /// Seconds inside dense matmul/bmm kernels.
    pub gemm_secs: f64,
    /// Seconds inside sparse×dense (CSR spmm) kernels.
    pub spmm_secs: f64,
    /// Seconds inside elementwise map/zip and fused gate kernels.
    pub elementwise_secs: f64,
}

impl KernelSplit {
    /// Snapshot the calling thread's cumulative kernel-time counters.
    pub fn snapshot() -> Self {
        let [gemm, spmm, elementwise] = st_tensor::backend::kernel_secs();
        KernelSplit {
            gemm_secs: gemm,
            spmm_secs: spmm,
            elementwise_secs: elementwise,
        }
    }

    /// Per-class delta from an earlier snapshot on the same thread.
    pub fn since(&self, mark: &KernelSplit) -> KernelSplit {
        KernelSplit {
            gemm_secs: self.gemm_secs - mark.gemm_secs,
            spmm_secs: self.spmm_secs - mark.spmm_secs,
            elementwise_secs: self.elementwise_secs - mark.elementwise_secs,
        }
    }

    /// Total seconds across all kernel classes.
    pub fn total_secs(&self) -> f64 {
        self.gemm_secs + self.spmm_secs + self.elementwise_secs
    }
}

/// A labeled sequence of (progress, bytes) samples for one pool.
#[derive(Debug, Clone)]
pub struct MemTimeline {
    label: String,
    samples: Vec<(f64, u64)>,
    oom_at: Option<f64>,
}

impl MemTimeline {
    /// New empty timeline.
    pub fn new(label: impl Into<String>) -> Self {
        MemTimeline {
            label: label.into(),
            samples: Vec::new(),
            oom_at: None,
        }
    }

    /// Record the pool's current usage at `progress` ∈ [0, 1].
    pub fn sample(&mut self, progress: f64, pool: &MemPool) {
        self.samples.push((progress, pool.in_use()));
    }

    /// Record a raw byte value at `progress`.
    pub fn sample_bytes(&mut self, progress: f64, bytes: u64) {
        self.samples.push((progress, bytes));
    }

    /// Mark that the workflow crashed with OOM at `progress`.
    pub fn mark_oom(&mut self, progress: f64) {
        self.oom_at = Some(progress);
    }

    /// Timeline label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[(f64, u64)] {
        &self.samples
    }

    /// Progress at which OOM occurred, if it did.
    pub fn oom_at(&self) -> Option<f64> {
        self.oom_at
    }

    /// Peak bytes over the timeline.
    pub fn peak(&self) -> u64 {
        self.samples.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// Render as rows of `progress%, GiB` for the report tables.
    pub fn rows_gib(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|&(p, b)| (p * 100.0, b as f64 / (1u64 << 30) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PoolMode;

    #[test]
    fn samples_track_pool_usage() {
        let pool = MemPool::new("host", 1000, PoolMode::Virtual);
        let mut tl = MemTimeline::new("test");
        tl.sample(0.0, &pool);
        let _a = pool.alloc(600).unwrap();
        tl.sample(0.5, &pool);
        tl.sample(1.0, &pool);
        assert_eq!(tl.samples(), &[(0.0, 0), (0.5, 600), (1.0, 600)]);
        assert_eq!(tl.peak(), 600);
    }

    #[test]
    fn oom_marker() {
        let mut tl = MemTimeline::new("pems");
        tl.sample_bytes(0.1, 100);
        tl.mark_oom(0.15);
        assert_eq!(tl.oom_at(), Some(0.15));
    }

    #[test]
    fn kernel_split_snapshot_and_delta() {
        let before = KernelSplit::snapshot();
        // Drive a real kernel so the gemm counter moves on this thread.
        let a = st_tensor::Tensor::ones([24, 24]);
        let _ = st_tensor::ops::matmul(&a, &a).unwrap();
        let after = KernelSplit::snapshot();
        let delta = after.since(&before);
        assert!(delta.gemm_secs >= 0.0);
        assert!(after.gemm_secs >= before.gemm_secs);
        assert!(
            (delta.total_secs() - (delta.gemm_secs + delta.spmm_secs + delta.elementwise_secs))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn gib_rows() {
        let mut tl = MemTimeline::new("x");
        tl.sample_bytes(0.5, 2 << 30);
        let rows = tl.rows_gib();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].0 - 50.0).abs() < 1e-9);
        assert!((rows[0].1 - 2.0).abs() < 1e-9);
    }
}
