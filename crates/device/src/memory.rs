//! Capacity-limited, peak-tracked memory pools.
//!
//! A [`MemPool`] accounts every allocation against a device's capacity and
//! records the high-water mark. In [`PoolMode::Virtual`] the pool *only*
//! accounts — no RAM is touched — which lets the harness replay the paper's
//! full-scale preprocessing (419.46 GB for PeMS) on a small container and
//! reproduce the OOM crashes of Figs 2 and 6 exactly.
//!
//! Allocations are RAII guards: dropping an [`Allocation`] returns its bytes
//! to the pool, so peak tracking follows real object lifetimes.

use parking_lot::Mutex;
use std::sync::Arc;

/// Whether a pool actually backs allocations or only accounts for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Accounting only. Allocation never touches RAM; used to replay
    /// paper-scale workloads on small machines.
    Virtual,
    /// Accounting for real buffers that live elsewhere (the pool still does
    /// not own memory, but callers allocate real tensors alongside).
    Real,
}

/// Error returned when an allocation would exceed the pool capacity —
/// the simulated equivalent of the paper's OOM crashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Bytes requested by the failed allocation.
    pub requested: u64,
    /// Bytes in use at the time of the request.
    pub in_use: u64,
    /// Pool capacity in bytes.
    pub capacity: u64,
    /// Pool label (e.g. "host", "gpu0").
    pub pool: String,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OOM on {}: requested {:.2} GiB with {:.2}/{:.2} GiB in use",
            self.pool,
            self.requested as f64 / GIB,
            self.in_use as f64 / GIB,
            self.capacity as f64 / GIB
        )
    }
}

impl std::error::Error for AllocError {}

const GIB: f64 = (1u64 << 30) as f64;

#[derive(Debug)]
struct PoolInner {
    label: String,
    capacity: u64,
    in_use: u64,
    peak: u64,
    mode: PoolMode,
}

/// A shared, thread-safe memory pool.
#[derive(Debug, Clone)]
pub struct MemPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl MemPool {
    /// Create a pool with the given capacity.
    pub fn new(label: impl Into<String>, capacity: u64, mode: PoolMode) -> Self {
        MemPool {
            inner: Arc::new(Mutex::new(PoolInner {
                label: label.into(),
                capacity,
                in_use: 0,
                peak: 0,
                mode,
            })),
        }
    }

    /// Allocate `bytes`; fails with [`AllocError`] when capacity would be
    /// exceeded. The returned guard frees the bytes on drop.
    pub fn alloc(&self, bytes: u64) -> Result<Allocation, AllocError> {
        let mut inner = self.inner.lock();
        if inner.in_use + bytes > inner.capacity {
            return Err(AllocError {
                requested: bytes,
                in_use: inner.in_use,
                capacity: inner.capacity,
                pool: inner.label.clone(),
            });
        }
        inner.in_use += bytes;
        inner.peak = inner.peak.max(inner.in_use);
        Ok(Allocation {
            pool: self.clone(),
            bytes,
        })
    }

    /// Allocate without a guard (caller promises a matching [`MemPool::free`]).
    /// Prefer [`MemPool::alloc`]; this exists for FFI-like call patterns in
    /// the preprocessing replays.
    pub fn alloc_untracked(&self, bytes: u64) -> Result<(), AllocError> {
        self.alloc(bytes).map(std::mem::forget)
    }

    /// Return `bytes` to the pool (pairs with [`MemPool::alloc_untracked`]).
    pub fn free(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.in_use = inner.in_use.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.inner.lock().in_use
    }

    /// High-water mark since creation (or the last [`MemPool::reset_peak`]).
    pub fn peak(&self) -> u64 {
        self.inner.lock().peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.lock().capacity
    }

    /// The pool's accounting mode.
    pub fn mode(&self) -> PoolMode {
        self.inner.lock().mode
    }

    /// Pool label.
    pub fn label(&self) -> String {
        self.inner.lock().label.clone()
    }

    /// Reset the peak to the current usage.
    pub fn reset_peak(&self) {
        let mut inner = self.inner.lock();
        inner.peak = inner.in_use;
    }

    /// Peak usage in GiB (for reports).
    pub fn peak_gib(&self) -> f64 {
        self.peak() as f64 / GIB
    }

    /// Current usage in GiB.
    pub fn in_use_gib(&self) -> f64 {
        self.in_use() as f64 / GIB
    }
}

/// RAII guard for pool bytes.
#[derive(Debug)]
pub struct Allocation {
    pool: MemPool,
    bytes: u64,
}

impl Allocation {
    /// Size of this allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.pool.free(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_usage_and_peak() {
        let pool = MemPool::new("host", 1000, PoolMode::Virtual);
        let a = pool.alloc(400).unwrap();
        let b = pool.alloc(500).unwrap();
        assert_eq!(pool.in_use(), 900);
        drop(a);
        assert_eq!(pool.in_use(), 500);
        assert_eq!(pool.peak(), 900, "peak survives frees");
        drop(b);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let pool = MemPool::new("host", 100, PoolMode::Virtual);
        let _a = pool.alloc(80).unwrap();
        let err = pool.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert!(err.to_string().contains("OOM"));
        // Failed allocation does not change usage.
        assert_eq!(pool.in_use(), 80);
    }

    #[test]
    fn paper_scale_pems_oom_on_512gb_host() {
        // PeMS grows to 419.46 GB *after* preprocessing while the original
        // ~8.71 GB copy is still resident (Table 1) — together they exceed
        // the 512 GB Polaris node, which is exactly the crash in Fig. 2.
        let gib = 1u64 << 30;
        let host = MemPool::new("polaris-host", 512 * gib, PoolMode::Virtual);
        let original = host.alloc((8.71 * gib as f64) as u64).unwrap();
        let preprocessed = host.alloc((419.46 * gib as f64) as u64);
        assert!(preprocessed.is_ok(), "the materialized arrays alone fit");
        // The duplicate working copies made while stacking snapshots tip it:
        let stacking_copy = host.alloc((419.46 * gib as f64 * 0.5) as u64);
        assert!(stacking_copy.is_err(), "stack() duplication must OOM");
        drop(original);
    }

    #[test]
    fn reset_peak() {
        let pool = MemPool::new("gpu0", 1000, PoolMode::Virtual);
        let a = pool.alloc(600).unwrap();
        drop(a);
        assert_eq!(pool.peak(), 600);
        pool.reset_peak();
        assert_eq!(pool.peak(), 0);
    }

    #[test]
    fn untracked_alloc_requires_manual_free() {
        let pool = MemPool::new("host", 100, PoolMode::Virtual);
        pool.alloc_untracked(60).unwrap();
        assert_eq!(pool.in_use(), 60);
        pool.free(60);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn pools_are_shared_across_clones() {
        let pool = MemPool::new("host", 100, PoolMode::Virtual);
        let clone = pool.clone();
        let _a = pool.alloc(50).unwrap();
        assert_eq!(clone.in_use(), 50);
    }
}
