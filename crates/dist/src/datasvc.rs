//! The Dask-style distributed data service backing baseline DDP (§5) and
//! the generalized mode's shared entry array (§5.4).
//!
//! A [`DistributedArray`] is a row-partitioned array: rank `r` owns a
//! subset of dim-0 rows (by [`PartitionPolicy`]). Fetches are
//! **request-batched** — one modeled message per remote *owner* per call,
//! the optimization the paper's authors added to their Dask baseline — and
//! every remote row lands on the shared ledger (`remote_bytes`,
//! `remote_requests`), which is exactly the data-plane bar of Fig. 7.
//!
//! Since PR 8 the backing store is a [`SignalStorage`]: the in-memory
//! backend keeps the historical behavior exactly (one shared tensor, O(1)
//! clones, zero-copy range views), while the chunked backend streams rows
//! from an on-disk columnar file through its bounded LRU cache — the store
//! quotes the disk bytes it had to touch and fetches convert them to
//! modeled PFS seconds, so the engine's `Prefetcher` can hide chunk IO the
//! same way it hides network time. Remote payloads can additionally be
//! wire-compressed with a [`WireCodec`] (honestly transcoded and
//! ledger-accounted at encoded size; lossless by default).

use crate::shuffle::contiguous_partition;
use crate::topology::ClusterTopology;
use crate::wire::WireCodec;
use st_data::storage::{RowStore, SignalStorage};
use st_device::{CostModel, SimClock};
use st_tensor::Tensor;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How rows map to owning ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// Rank `r` owns a balanced contiguous block (halo-friendly: a
    /// contiguous window read touches at most two owners).
    Contiguous,
    /// Round-robin rows (`row % world`): balanced for any access pattern,
    /// but a contiguous read touches every rank.
    Strided,
}

impl PartitionPolicy {
    /// The rank owning `row` of `rows` total across `world` ranks.
    pub fn owner_of(&self, row: usize, rows: usize, world: usize) -> usize {
        assert!(world > 0, "world must be positive");
        match self {
            PartitionPolicy::Contiguous => {
                if rows == 0 {
                    return 0;
                }
                let base = rows / world;
                let rem = rows % world;
                // First `rem` ranks own `base + 1` rows.
                let boundary = rem * (base + 1);
                if row < boundary {
                    row / (base + 1)
                } else {
                    match (row - boundary).checked_div(base) {
                        Some(q) => rem + q,
                        // More ranks than rows: tail rows pile on the last.
                        None => world - 1,
                    }
                }
            }
            PartitionPolicy::Strided => row % world,
        }
    }
}

/// A row-partitioned array with a remote-traffic ledger. Constructors
/// return `Arc<Self>` so worker threads share one ledger.
pub struct DistributedArray {
    store: SignalStorage,
    world: usize,
    topology: ClusterTopology,
    elem_bytes: usize,
    policy: PartitionPolicy,
    wire: WireCodec,
    remote_bytes: AtomicU64,
    remote_requests: AtomicU64,
}

impl DistributedArray {
    /// Partition `data`'s rows contiguously across `world` ranks.
    /// `elem_bytes` sets the modeled payload width per scalar (the paper's
    /// Dask baseline ships float64, i.e. 8, even though compute is f32).
    pub fn new(
        data: Tensor,
        world: usize,
        topology: ClusterTopology,
        elem_bytes: usize,
    ) -> Arc<Self> {
        Self::with_policy(
            data,
            world,
            topology,
            elem_bytes,
            PartitionPolicy::Contiguous,
        )
    }

    /// Like [`DistributedArray::new`] with an explicit ownership policy.
    pub fn with_policy(
        data: Tensor,
        world: usize,
        topology: ClusterTopology,
        elem_bytes: usize,
        policy: PartitionPolicy,
    ) -> Arc<Self> {
        Self::with_storage(
            SignalStorage::InMemory(data.contiguous()),
            world,
            topology,
            elem_bytes,
            policy,
            WireCodec::Lossless,
        )
    }

    /// Fully general constructor: any storage backend, any ownership
    /// policy, any wire codec.
    pub fn with_storage(
        store: SignalStorage,
        world: usize,
        topology: ClusterTopology,
        elem_bytes: usize,
        policy: PartitionPolicy,
        wire: WireCodec,
    ) -> Arc<Self> {
        assert!(world > 0, "world must be positive");
        assert!(
            !store.dims().is_empty(),
            "need at least one dimension to partition"
        );
        Arc::new(DistributedArray {
            store,
            world,
            topology,
            elem_bytes,
            policy,
            wire,
            remote_bytes: AtomicU64::new(0),
            remote_requests: AtomicU64::new(0),
        })
    }

    /// Number of rows (dim 0).
    pub fn rows(&self) -> usize {
        self.store.rows()
    }

    /// Modeled bytes of one (uncompressed) row.
    pub fn row_bytes(&self) -> u64 {
        (self.store.row_width() * self.elem_bytes) as u64
    }

    /// The backing storage (chunk-IO counters live on it).
    pub fn storage(&self) -> &SignalStorage {
        &self.store
    }

    /// The wire codec remote payloads travel under.
    pub fn wire_codec(&self) -> WireCodec {
        self.wire
    }

    /// The contiguous row range rank `rank` owns (meaningful for the
    /// contiguous policy; strided owners interleave).
    pub fn partition(&self, rank: usize) -> Range<usize> {
        contiguous_partition(self.rows(), self.world, rank)
    }

    /// Total remote payload bytes fetched so far, across all ranks (encoded
    /// size under a lossy wire codec).
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes.load(Ordering::Relaxed)
    }

    /// Total remote fetch requests (one per remote owner per call).
    pub fn remote_requests(&self) -> u64 {
        self.remote_requests.load(Ordering::Relaxed)
    }

    /// Request-batch `row_iter`'s remote rows — one modeled message per
    /// remote owner, priced at the wire codec's encoded size — onto the
    /// ledger, returning the modeled seconds.
    fn charge_owners(
        &self,
        rank: usize,
        row_iter: impl Iterator<Item = usize>,
        cm: &CostModel,
    ) -> f64 {
        let rows = self.rows();
        let mut per_owner_rows = vec![0u64; self.world];
        for idx in row_iter {
            assert!(idx < rows, "row {idx} out of bounds ({rows})");
            let owner = self.policy.owner_of(idx, rows, self.world);
            if owner != rank {
                per_owner_rows[owner] += 1;
            }
        }
        let width = self.store.row_width() as u64;
        let mut secs = 0.0;
        for (owner, &count) in per_owner_rows.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let bytes = self
                .wire
                .payload_bytes(count, width, self.elem_bytes as u64);
            secs += cm.remote_fetch(bytes, self.topology.same_node(rank, owner));
            self.remote_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.remote_requests.fetch_add(1, Ordering::Relaxed);
        }
        secs
    }

    /// Transcode the remote rows of a gathered batch through the wire
    /// codec, one per-owner block at a time (matching the per-owner
    /// messages the ledger charged). No-op under the lossless codec.
    fn transcode_gather(&self, rank: usize, indices: &[usize], batch: Tensor) -> Tensor {
        if self.wire.is_lossless() {
            return batch;
        }
        let width = self.store.row_width();
        let dims = batch.dims().to_vec();
        let mut buf = batch.to_vec();
        let rows = self.rows();
        let mut per_owner: Vec<Vec<usize>> = vec![Vec::new(); self.world];
        for (j, &idx) in indices.iter().enumerate() {
            let owner = self.policy.owner_of(idx, rows, self.world);
            if owner != rank {
                per_owner[owner].push(j);
            }
        }
        for group in per_owner.iter().filter(|g| !g.is_empty()) {
            let mut block = Vec::with_capacity(group.len() * width);
            for &j in group {
                block.extend_from_slice(&buf[j * width..(j + 1) * width]);
            }
            self.wire.transcode_rows(&mut block, width);
            for (k, &j) in group.iter().enumerate() {
                buf[j * width..(j + 1) * width].copy_from_slice(&block[k * width..(k + 1) * width]);
            }
        }
        Tensor::from_vec(buf, dims).expect("same numel")
    }

    /// Transcode the remote runs of a contiguous range read (maximal
    /// same-owner stretches — the actual per-owner messages).
    fn transcode_range(&self, rank: usize, range: &Range<usize>, view: Tensor) -> Tensor {
        if self.wire.is_lossless() || range.is_empty() {
            return view;
        }
        let width = self.store.row_width();
        let dims = view.dims().to_vec();
        let mut buf = view.to_vec();
        let rows = self.rows();
        let mut run_start = range.start;
        let mut run_owner = self.policy.owner_of(range.start, rows, self.world);
        let flush = |buf: &mut Vec<f32>, start: usize, end: usize, owner: usize| {
            if owner != rank && end > start {
                let lo = (start - range.start) * width;
                let hi = (end - range.start) * width;
                self.wire.transcode_rows(&mut buf[lo..hi], width);
            }
        };
        for r in range.start + 1..range.end {
            let owner = self.policy.owner_of(r, rows, self.world);
            if owner != run_owner {
                flush(&mut buf, run_start, r, run_owner);
                run_start = r;
                run_owner = owner;
            }
        }
        flush(&mut buf, run_start, range.end, run_owner);
        Tensor::from_vec(buf, dims).expect("same numel")
    }

    /// Gather `indices` rows for `rank`, recording remote traffic on the
    /// ledger and returning `(batch, modeled seconds)` without charging any
    /// clock — the quote lets callers overlap the time (prefetching) or
    /// charge it synchronously ([`DistributedArray::fetch_rows`]). The
    /// quote covers network messages plus any chunk IO the backing store
    /// performed ([`st_device::CostModel::pfs_read`]).
    pub fn fetch_rows_quoted(
        &self,
        rank: usize,
        indices: &[usize],
        cm: &CostModel,
    ) -> (Tensor, f64) {
        let mut secs = self.charge_owners(rank, indices.iter().copied(), cm);
        let (batch, io_bytes) = self.store.gather_rows_quoted(indices);
        if io_bytes > 0 {
            secs += cm.pfs_read(io_bytes, 1.0);
        }
        (self.transcode_gather(rank, indices, batch), secs)
    }

    /// Gather `indices` rows for `rank`, charging the modeled fetch time to
    /// `clock` synchronously.
    pub fn fetch_rows(
        &self,
        rank: usize,
        indices: &[usize],
        cm: &CostModel,
        clock: &SimClock,
    ) -> Tensor {
        let (batch, secs) = self.fetch_rows_quoted(rank, indices, cm);
        if secs > 0.0 {
            clock.advance_comm(secs);
        }
        batch
    }

    /// Read a contiguous row range (a partition plus its halo in the
    /// generalized mode): one modeled message per remote owner touched,
    /// returning the rows plus the modeled seconds **without** charging any
    /// clock — bytes land on the ledger immediately, but the caller decides
    /// whether the time is paid synchronously or overlapped with compute
    /// (the engine's setup prefetch). Under the in-memory backend and the
    /// lossless codec the returned tensor is a zero-copy view.
    pub fn fetch_range_quoted(
        &self,
        rank: usize,
        range: Range<usize>,
        cm: &CostModel,
    ) -> (Tensor, f64) {
        let mut secs = self.charge_owners(rank, range.clone(), cm);
        let (view, io_bytes) = self.store.read_rows_quoted(range.clone());
        if io_bytes > 0 {
            secs += cm.pfs_read(io_bytes, 1.0);
        }
        (self.transcode_range(rank, &range, view), secs)
    }

    /// Read a contiguous row range, charging the modeled fetch time to
    /// `clock` synchronously.
    pub fn fetch_range(
        &self,
        rank: usize,
        range: Range<usize>,
        cm: &CostModel,
        clock: &SimClock,
    ) -> Tensor {
        let (view, secs) = self.fetch_range_quoted(rank, range, cm);
        if secs > 0.0 {
            clock.advance_comm(secs);
        }
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::storage::{ChunkedSpec, StorageSpec};

    fn arr(rows: usize, world: usize, policy: PartitionPolicy) -> Arc<DistributedArray> {
        let t = Tensor::from_vec((0..rows * 3).map(|v| v as f32).collect(), [rows, 3]).unwrap();
        DistributedArray::with_policy(t, world, ClusterTopology::polaris(), 4, policy)
    }

    fn chunked_arr(rows: usize, world: usize, chunk: usize) -> Arc<DistributedArray> {
        let t = Tensor::from_vec((0..rows * 3).map(|v| v as f32).collect(), [rows, 3]).unwrap();
        let store =
            SignalStorage::InMemory(t).rechunk(StorageSpec::Chunked(ChunkedSpec::new(chunk)));
        DistributedArray::with_storage(
            store,
            world,
            ClusterTopology::polaris(),
            4,
            PartitionPolicy::Contiguous,
            WireCodec::Lossless,
        )
    }

    #[test]
    fn local_rows_are_free() {
        let a = arr(16, 4, PartitionPolicy::Contiguous);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let own: Vec<usize> = a.partition(0).collect();
        let batch = a.fetch_rows(0, &own, &cm, &clock);
        assert_eq!(batch.dims(), &[4, 3]);
        assert_eq!(a.remote_bytes(), 0);
        assert_eq!(a.remote_requests(), 0);
        assert_eq!(clock.comm_secs(), 0.0);
    }

    #[test]
    fn remote_rows_charge_time_and_ledger() {
        let a = arr(16, 4, PartitionPolicy::Contiguous);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        // Rows 12..16 belong to rank 3; fetch them as rank 0.
        let batch = a.fetch_rows(0, &[12, 13, 14, 15], &cm, &clock);
        assert_eq!(batch.to_vec()[0], 36.0);
        assert_eq!(a.remote_bytes(), 4 * 3 * 4);
        assert_eq!(
            a.remote_requests(),
            1,
            "request batching: one owner, one message"
        );
        assert!(clock.comm_secs() > 0.0);
    }

    #[test]
    fn strided_policy_spreads_ownership() {
        let a = arr(16, 4, PartitionPolicy::Strided);
        let cm = CostModel::polaris();
        // A contiguous 8-row read touches 3 remote owners under striding.
        let ids: Vec<usize> = (0..8).collect();
        let (_, secs) = a.fetch_rows_quoted(0, &ids, &cm);
        assert!(secs > 0.0);
        assert_eq!(a.remote_requests(), 3);
        assert_eq!(a.remote_bytes(), 6 * 3 * 4, "6 of 8 rows are remote");
    }

    #[test]
    fn fetch_range_returns_a_view() {
        let a = arr(10, 2, PartitionPolicy::Contiguous);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let window = a.fetch_range(0, 3..8, &cm, &clock);
        assert_eq!(window.dims(), &[5, 3]);
        assert_eq!(window.to_vec()[0], 9.0);
        // Rows 5..8 were remote (rank 1 owns 5..10).
        assert_eq!(a.remote_bytes(), 3 * 3 * 4);
        assert!(clock.comm_secs() > 0.0);
    }

    #[test]
    fn owner_of_matches_contiguous_partition() {
        for rows in [1usize, 7, 16, 33] {
            for world in [1usize, 2, 5, 8] {
                for rank in 0..world {
                    for idx in contiguous_partition(rows, world, rank) {
                        assert_eq!(
                            PartitionPolicy::Contiguous.owner_of(idx, rows, world),
                            rank,
                            "rows={rows} world={world} idx={idx}"
                        );
                    }
                }
            }
        }
    }

    // --- chunk-boundary coverage for contiguous row-range reads ---

    #[test]
    fn range_straddling_two_chunks() {
        let a = chunked_arr(20, 2, 8); // chunks: 0..8, 8..16, 16..20
        let cm = CostModel::polaris();
        let (t, secs) = a.fetch_range_quoted(0, 5..11, &cm);
        assert_eq!(t.dims(), &[6, 3]);
        let want: Vec<f32> = (5 * 3..11 * 3).map(|v| v as f32).collect();
        assert_eq!(t.to_vec(), want);
        // Two chunks decoded from disk, priced into the quote.
        assert_eq!(a.storage().io_bytes(), 2 * 8 * 3 * 4);
        assert!(secs > 0.0, "chunk IO must show up in the quote");
    }

    #[test]
    fn range_equal_to_one_chunk() {
        let a = chunked_arr(20, 1, 8);
        let cm = CostModel::polaris();
        let (t, _) = a.fetch_range_quoted(0, 8..16, &cm);
        assert_eq!(t.dims(), &[8, 3]);
        let want: Vec<f32> = (8 * 3..16 * 3).map(|v| v as f32).collect();
        assert_eq!(t.to_vec(), want);
        assert_eq!(a.storage().io_bytes(), 8 * 3 * 4, "exactly one chunk");
    }

    #[test]
    fn empty_range_reads_nothing() {
        let a = chunked_arr(20, 2, 8);
        let cm = CostModel::polaris();
        let (t, secs) = a.fetch_range_quoted(0, 4..4, &cm);
        assert_eq!(t.dims(), &[0, 3]);
        assert_eq!(secs, 0.0);
        assert_eq!(a.storage().io_bytes(), 0);
        assert_eq!(a.remote_bytes(), 0);
    }

    #[test]
    fn final_ragged_chunk() {
        let a = chunked_arr(20, 1, 8); // last chunk holds rows 16..20
        let cm = CostModel::polaris();
        let (t, _) = a.fetch_range_quoted(0, 17..20, &cm);
        assert_eq!(t.dims(), &[3, 3]);
        let want: Vec<f32> = (17 * 3..20 * 3).map(|v| v as f32).collect();
        assert_eq!(t.to_vec(), want);
        // The ragged chunk stores only 4 rows.
        assert_eq!(a.storage().io_bytes(), 4 * 3 * 4);
    }

    #[test]
    fn chunked_lossless_matches_in_memory_bitwise() {
        let rows = 26;
        let dense = arr(rows, 3, PartitionPolicy::Contiguous);
        let chunked = chunked_arr(rows, 3, 7);
        let cm = CostModel::polaris();
        for range in [0..rows, 3..19, 25..26] {
            let (a, _) = dense.fetch_range_quoted(1, range.clone(), &cm);
            let (b, _) = chunked.fetch_range_quoted(1, range, &cm);
            let (av, bv) = (a.to_vec(), b.to_vec());
            assert_eq!(av.len(), bv.len());
            for (x, y) in av.iter().zip(&bv) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Network-ledger bytes are storage-invariant.
        assert_eq!(dense.remote_bytes(), chunked.remote_bytes());
    }

    #[test]
    fn f16_wire_codec_halves_ledger_bytes() {
        let t = Tensor::from_vec((0..16 * 3).map(|v| v as f32 * 0.5).collect(), [16, 3]).unwrap();
        let mk = |wire| {
            DistributedArray::with_storage(
                SignalStorage::InMemory(t.clone()),
                4,
                ClusterTopology::polaris(),
                4,
                PartitionPolicy::Contiguous,
                wire,
            )
        };
        let raw = mk(WireCodec::Lossless);
        let f16 = mk(WireCodec::F16);
        let cm = CostModel::polaris();
        let ids: Vec<usize> = (8..16).collect(); // all remote for rank 0
        let (exact, _) = raw.fetch_rows_quoted(0, &ids, &cm);
        let (coded, _) = f16.fetch_rows_quoted(0, &ids, &cm);
        assert_eq!(f16.remote_bytes() * 2, raw.remote_bytes());
        // Values really pass through the codec (but stay close).
        for (a, b) in coded.to_vec().iter().zip(exact.to_vec().iter()) {
            assert!((a - b).abs() <= b.abs() / 2048.0 + 1e-6);
        }
    }

    #[test]
    fn lossy_codec_leaves_local_rows_exact() {
        let t = Tensor::from_vec((0..12 * 3).map(|v| v as f32 + 0.1).collect(), [12, 3]).unwrap();
        let a = DistributedArray::with_storage(
            SignalStorage::InMemory(t.clone()),
            2,
            ClusterTopology::polaris(),
            4,
            PartitionPolicy::Contiguous,
            WireCodec::DeltaI8,
        );
        let cm = CostModel::polaris();
        // Rank 0 owns 0..6: a straddling range keeps local rows bit-exact.
        let (got, _) = a.fetch_range_quoted(0, 2..9, &cm);
        let got = got.to_vec();
        let want = t.to_vec();
        for r in 2..6 {
            for c in 0..3 {
                assert_eq!(
                    got[(r - 2) * 3 + c].to_bits(),
                    want[r * 3 + c].to_bits(),
                    "local row {r} must not be transcoded"
                );
            }
        }
    }
}
