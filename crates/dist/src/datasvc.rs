//! The Dask-style distributed data service backing baseline DDP (§5) and
//! the generalized mode's shared entry array (§5.4).
//!
//! A [`DistributedArray`] is a row-partitioned tensor: rank `r` owns a
//! subset of dim-0 rows (by [`PartitionPolicy`]). Fetches are
//! **request-batched** — one modeled message per remote *owner* per call,
//! the optimization the paper's authors added to their Dask baseline — and
//! every remote row lands on the shared ledger (`remote_bytes`,
//! `remote_requests`), which is exactly the data-plane bar of Fig. 7.
//!
//! The backing store is one in-process tensor (clones are O(1) via shared
//! storage), so "remote" reads cost simulated time and ledger bytes but no
//! real copies beyond batch assembly.

use crate::shuffle::contiguous_partition;
use crate::topology::ClusterTopology;
use st_device::{CostModel, SimClock};
use st_tensor::Tensor;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How rows map to owning ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// Rank `r` owns a balanced contiguous block (halo-friendly: a
    /// contiguous window read touches at most two owners).
    Contiguous,
    /// Round-robin rows (`row % world`): balanced for any access pattern,
    /// but a contiguous read touches every rank.
    Strided,
}

impl PartitionPolicy {
    /// The rank owning `row` of `rows` total across `world` ranks.
    pub fn owner_of(&self, row: usize, rows: usize, world: usize) -> usize {
        assert!(world > 0, "world must be positive");
        match self {
            PartitionPolicy::Contiguous => {
                if rows == 0 {
                    return 0;
                }
                let base = rows / world;
                let rem = rows % world;
                // First `rem` ranks own `base + 1` rows.
                let boundary = rem * (base + 1);
                if row < boundary {
                    row / (base + 1)
                } else {
                    match (row - boundary).checked_div(base) {
                        Some(q) => rem + q,
                        // More ranks than rows: tail rows pile on the last.
                        None => world - 1,
                    }
                }
            }
            PartitionPolicy::Strided => row % world,
        }
    }
}

/// A row-partitioned tensor with a remote-traffic ledger. Constructors
/// return `Arc<Self>` so worker threads share one ledger.
pub struct DistributedArray {
    data: Tensor,
    world: usize,
    topology: ClusterTopology,
    elem_bytes: usize,
    policy: PartitionPolicy,
    remote_bytes: AtomicU64,
    remote_requests: AtomicU64,
}

impl DistributedArray {
    /// Partition `data`'s rows contiguously across `world` ranks.
    /// `elem_bytes` sets the modeled payload width per scalar (the paper's
    /// Dask baseline ships float64, i.e. 8, even though compute is f32).
    pub fn new(
        data: Tensor,
        world: usize,
        topology: ClusterTopology,
        elem_bytes: usize,
    ) -> Arc<Self> {
        Self::with_policy(
            data,
            world,
            topology,
            elem_bytes,
            PartitionPolicy::Contiguous,
        )
    }

    /// Like [`DistributedArray::new`] with an explicit ownership policy.
    pub fn with_policy(
        data: Tensor,
        world: usize,
        topology: ClusterTopology,
        elem_bytes: usize,
        policy: PartitionPolicy,
    ) -> Arc<Self> {
        assert!(world > 0, "world must be positive");
        assert!(data.rank() >= 1, "need at least one dimension to partition");
        Arc::new(DistributedArray {
            data: data.contiguous(),
            world,
            topology,
            elem_bytes,
            policy,
            remote_bytes: AtomicU64::new(0),
            remote_requests: AtomicU64::new(0),
        })
    }

    /// Number of rows (dim 0).
    pub fn rows(&self) -> usize {
        self.data.dim(0)
    }

    /// Modeled bytes of one row.
    pub fn row_bytes(&self) -> u64 {
        ((self.data.numel() / self.rows().max(1)) * self.elem_bytes) as u64
    }

    /// The contiguous row range rank `rank` owns (meaningful for the
    /// contiguous policy; strided owners interleave).
    pub fn partition(&self, rank: usize) -> Range<usize> {
        contiguous_partition(self.rows(), self.world, rank)
    }

    /// Total remote row bytes fetched so far, across all ranks.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes.load(Ordering::Relaxed)
    }

    /// Total remote fetch requests (one per remote owner per call).
    pub fn remote_requests(&self) -> u64 {
        self.remote_requests.load(Ordering::Relaxed)
    }

    /// Request-batch `row_iter`'s remote rows — one modeled message per
    /// remote owner — onto the ledger, returning the modeled seconds.
    fn charge_owners(
        &self,
        rank: usize,
        row_iter: impl Iterator<Item = usize>,
        cm: &CostModel,
    ) -> f64 {
        let rows = self.rows();
        let mut per_owner_bytes = vec![0u64; self.world];
        for idx in row_iter {
            assert!(idx < rows, "row {idx} out of bounds ({rows})");
            let owner = self.policy.owner_of(idx, rows, self.world);
            if owner != rank {
                per_owner_bytes[owner] += self.row_bytes();
            }
        }
        let mut secs = 0.0;
        for (owner, &bytes) in per_owner_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            secs += cm.remote_fetch(bytes, self.topology.same_node(rank, owner));
            self.remote_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.remote_requests.fetch_add(1, Ordering::Relaxed);
        }
        secs
    }

    /// Gather `indices` rows for `rank`, recording remote traffic on the
    /// ledger and returning `(batch, modeled seconds)` without charging any
    /// clock — the quote lets callers overlap the time (prefetching) or
    /// charge it synchronously ([`DistributedArray::fetch_rows`]).
    pub fn fetch_rows_quoted(
        &self,
        rank: usize,
        indices: &[usize],
        cm: &CostModel,
    ) -> (Tensor, f64) {
        let secs = self.charge_owners(rank, indices.iter().copied(), cm);
        let batch = self
            .data
            .index_select0(indices)
            .expect("indices validated by charge_owners");
        (batch, secs)
    }

    /// Gather `indices` rows for `rank`, charging the modeled fetch time to
    /// `clock` synchronously.
    pub fn fetch_rows(
        &self,
        rank: usize,
        indices: &[usize],
        cm: &CostModel,
        clock: &SimClock,
    ) -> Tensor {
        let (batch, secs) = self.fetch_rows_quoted(rank, indices, cm);
        if secs > 0.0 {
            clock.advance_comm(secs);
        }
        batch
    }

    /// Read a contiguous row range (a partition plus its halo in the
    /// generalized mode): one modeled message per remote owner touched,
    /// returning a zero-copy view plus the modeled seconds **without**
    /// charging any clock — bytes land on the ledger immediately, but the
    /// caller decides whether the time is paid synchronously or overlapped
    /// with compute (the engine's setup prefetch).
    pub fn fetch_range_quoted(
        &self,
        rank: usize,
        range: Range<usize>,
        cm: &CostModel,
    ) -> (Tensor, f64) {
        let secs = self.charge_owners(rank, range.clone(), cm);
        let view = self
            .data
            .narrow(0, range.start, range.len())
            .expect("range validated by charge_owners");
        (view, secs)
    }

    /// Read a contiguous row range, charging the modeled fetch time to
    /// `clock` synchronously.
    pub fn fetch_range(
        &self,
        rank: usize,
        range: Range<usize>,
        cm: &CostModel,
        clock: &SimClock,
    ) -> Tensor {
        let (view, secs) = self.fetch_range_quoted(rank, range, cm);
        if secs > 0.0 {
            clock.advance_comm(secs);
        }
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(rows: usize, world: usize, policy: PartitionPolicy) -> Arc<DistributedArray> {
        let t = Tensor::from_vec((0..rows * 3).map(|v| v as f32).collect(), [rows, 3]).unwrap();
        DistributedArray::with_policy(t, world, ClusterTopology::polaris(), 4, policy)
    }

    #[test]
    fn local_rows_are_free() {
        let a = arr(16, 4, PartitionPolicy::Contiguous);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let own: Vec<usize> = a.partition(0).collect();
        let batch = a.fetch_rows(0, &own, &cm, &clock);
        assert_eq!(batch.dims(), &[4, 3]);
        assert_eq!(a.remote_bytes(), 0);
        assert_eq!(a.remote_requests(), 0);
        assert_eq!(clock.comm_secs(), 0.0);
    }

    #[test]
    fn remote_rows_charge_time_and_ledger() {
        let a = arr(16, 4, PartitionPolicy::Contiguous);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        // Rows 12..16 belong to rank 3; fetch them as rank 0.
        let batch = a.fetch_rows(0, &[12, 13, 14, 15], &cm, &clock);
        assert_eq!(batch.to_vec()[0], 36.0);
        assert_eq!(a.remote_bytes(), 4 * 3 * 4);
        assert_eq!(
            a.remote_requests(),
            1,
            "request batching: one owner, one message"
        );
        assert!(clock.comm_secs() > 0.0);
    }

    #[test]
    fn strided_policy_spreads_ownership() {
        let a = arr(16, 4, PartitionPolicy::Strided);
        let cm = CostModel::polaris();
        // A contiguous 8-row read touches 3 remote owners under striding.
        let ids: Vec<usize> = (0..8).collect();
        let (_, secs) = a.fetch_rows_quoted(0, &ids, &cm);
        assert!(secs > 0.0);
        assert_eq!(a.remote_requests(), 3);
        assert_eq!(a.remote_bytes(), 6 * 3 * 4, "6 of 8 rows are remote");
    }

    #[test]
    fn fetch_range_returns_a_view() {
        let a = arr(10, 2, PartitionPolicy::Contiguous);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let window = a.fetch_range(0, 3..8, &cm, &clock);
        assert_eq!(window.dims(), &[5, 3]);
        assert_eq!(window.to_vec()[0], 9.0);
        // Rows 5..8 were remote (rank 1 owns 5..10).
        assert_eq!(a.remote_bytes(), 3 * 3 * 4);
        assert!(clock.comm_secs() > 0.0);
    }

    #[test]
    fn owner_of_matches_contiguous_partition() {
        for rows in [1usize, 7, 16, 33] {
            for world in [1usize, 2, 5, 8] {
                for rank in 0..world {
                    for idx in contiguous_partition(rows, world, rank) {
                        assert_eq!(
                            PartitionPolicy::Contiguous.owner_of(idx, rows, world),
                            rank,
                            "rows={rows} world={world} idx={idx}"
                        );
                    }
                }
            }
        }
    }
}
