//! The bounded-staleness window over in-flight gradient collectives.
//!
//! MSPipe-style bounded staleness (PAPERS.md) relaxes the synchronous
//! step barrier: a rank may run up to `s` steps ahead of a gradient
//! collective it has issued, applying the averaged result whenever it
//! *arrives* (its modeled completion instant passes the rank's own clock)
//! — with a **hard sync fence** the moment the bound would be exceeded.
//! `s = 0` degenerates to today's synchronous path: every collective is
//! fenced in the step that issued it, bitwise identical to the flat
//! reduce.
//!
//! [`StalenessWindow`] owns the bookkeeping, not the policy mechanics: it
//! queues `(bucket, step, payload, stream)` launches in FIFO order and
//! settles the queue front against an [`st_device::OverlapLedger`] —
//! apply when the deadline stream is ready, fence when the pending
//! gradient's age hits the bound. FIFO settling keeps same-bucket
//! payloads ordered and makes the applied-age invariant (`age ≤ s`,
//! pinned by proptests) easy to audit.
//!
//! Determinism: arrival decisions read *modeled* clocks, which are pure
//! functions of the run configuration — so runs are reproducible
//! bit-for-bit, while replicas on different ranks may (deliberately,
//! realistically) diverge once `s ≥ 1`. DESIGN.md §4 spells out the
//! timing model.

use st_device::{OverlapLedger, SimClock, StreamId};
use std::collections::VecDeque;

/// One in-flight averaged gradient awaiting application.
struct Pending {
    bucket: usize,
    step: u64,
    stream: StreamId,
    payload: Vec<f32>,
}

/// FIFO window of in-flight gradient collectives under a staleness bound.
/// See the module docs for the settle policy.
pub struct StalenessWindow {
    bound: u64,
    pending: VecDeque<Pending>,
    /// Recycled payload buffers — steady state allocates nothing.
    pool: Vec<Vec<f32>>,
    stale_applied: u64,
    fence_stalls: u64,
    max_applied_age: u64,
}

impl StalenessWindow {
    /// A window allowing gradients up to `bound` steps stale (`0` =
    /// synchronous: everything settles in its own step).
    pub fn new(bound: usize) -> Self {
        StalenessWindow {
            bound: bound as u64,
            pending: VecDeque::new(),
            pool: Vec::new(),
            stale_applied: 0,
            fence_stalls: 0,
            max_applied_age: 0,
        }
    }

    /// The configured staleness bound `s`.
    pub fn bound(&self) -> usize {
        self.bound as usize
    }

    /// Number of launched-but-unapplied gradients.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Gradients applied at age ≥ 1 so far (stale applications).
    pub fn stale_applied(&self) -> u64 {
        self.stale_applied
    }

    /// Hard fences taken because the bound would have been exceeded by a
    /// not-yet-arrived collective.
    pub fn fence_stalls(&self) -> u64 {
        self.fence_stalls
    }

    /// Maximum age (in steps) at which any gradient has been applied —
    /// never exceeds [`StalenessWindow::bound`].
    pub fn max_applied_age(&self) -> u64 {
        self.max_applied_age
    }

    /// A cleared payload buffer, recycled from an earlier settle when one
    /// is available.
    pub fn payload_buf(&mut self) -> Vec<f32> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Enqueue bucket `bucket`'s averaged `payload`, issued at `step`,
    /// whose arrival is tracked by `stream` (an
    /// [`OverlapLedger::begin_at`] deadline stream).
    pub fn launch(&mut self, bucket: usize, step: u64, payload: Vec<f32>, stream: StreamId) {
        self.pending.push_back(Pending {
            bucket,
            step,
            stream,
            payload,
        });
    }

    /// Settle the queue front while settling is due at `step`: a pending
    /// gradient is applied if its stream has arrived (free — the rank's
    /// clock already passed the deadline, or the wait charges the
    /// remaining gap as hidden/exposed per the ledger), or **force-fenced**
    /// if its age reached the bound (the wait then charges the gap to the
    /// deadline — the hard sync fence). Stops at the first pending that is
    /// neither due nor arrived, preserving FIFO application order. Calls
    /// `apply(bucket, payload)` per settled gradient and returns how many
    /// settled.
    pub fn settle(
        &mut self,
        step: u64,
        overlap: &mut OverlapLedger,
        clock: &SimClock,
        mut apply: impl FnMut(usize, &[f32]),
    ) -> usize {
        let mut applied = 0;
        while let Some(front) = self.pending.front() {
            let age = step.saturating_sub(front.step);
            let arrived = overlap.ready(front.stream, clock.now());
            if age < self.bound && !arrived {
                break;
            }
            if !arrived {
                self.fence_stalls += 1;
            }
            let p = self.pending.pop_front().expect("front exists");
            overlap.wait(p.stream, clock);
            apply(p.bucket, &p.payload);
            self.max_applied_age = self.max_applied_age.max(age);
            if age >= 1 {
                self.stale_applied += 1;
            }
            self.pool.push(p.payload);
            applied += 1;
        }
        applied
    }

    /// Settle **everything** still in flight (epoch boundary: the epoch's
    /// optimizer state must not leak pending gradients into the metric
    /// reductions or the next epoch's shuffle). Fences any stream that has
    /// not arrived. Returns how many settled.
    pub fn flush(
        &mut self,
        overlap: &mut OverlapLedger,
        clock: &SimClock,
        mut apply: impl FnMut(usize, &[f32]),
    ) -> usize {
        let mut applied = 0;
        while let Some(p) = self.pending.pop_front() {
            if !overlap.ready(p.stream, clock.now()) {
                self.fence_stalls += 1;
            }
            overlap.wait(p.stream, clock);
            apply(p.bucket, &p.payload);
            self.pool.push(p.payload);
            applied += 1;
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a window through `launches` of (step, ready_at) pairs with a
    /// compute advance per step, recording (bucket, launch step, settle
    /// step) triples.
    fn drive(bound: usize, steps: u64, ready_delay: f64, step_secs: f64) -> Vec<(u64, u64)> {
        let clock = SimClock::new();
        let mut overlap = OverlapLedger::new();
        let mut w = StalenessWindow::new(bound);
        let mut settled = Vec::new();
        for step in 0..steps {
            clock.advance_compute(step_secs);
            let ready_at = clock.now() + ready_delay;
            let stream = overlap.begin_at(ready_at, clock.now());
            let buf = w.payload_buf();
            w.launch(step as usize, step, buf, stream);
            let mut hits = Vec::new();
            w.settle(step, &mut overlap, &clock, |bucket, _| {
                hits.push(bucket as u64);
            });
            settled.extend(hits.into_iter().map(|launch| (launch, step)));
        }
        w.flush(&mut overlap, &clock, |_, _| {});
        assert_eq!(w.in_flight(), 0);
        assert!(w.max_applied_age() <= bound as u64, "bound respected");
        settled
    }

    #[test]
    fn bound_zero_settles_every_step_in_step() {
        let settled = drive(0, 6, 10.0, 1.0);
        assert_eq!(settled.len(), 6);
        for (launch, settle) in settled {
            assert_eq!(launch, settle, "s = 0 is synchronous");
        }
    }

    #[test]
    fn slow_arrivals_defer_until_the_bound_forces_them() {
        // Arrival 10 s out, steps 1 s apart: nothing arrives on time, so
        // every settle is a forced fence exactly `bound` steps late.
        let settled = drive(2, 8, 10.0, 1.0);
        for (launch, settle) in settled {
            assert_eq!(settle - launch, 2, "forced at the bound");
        }
    }

    #[test]
    fn fast_arrivals_settle_without_fences() {
        let clock = SimClock::new();
        let mut overlap = OverlapLedger::new();
        let mut w = StalenessWindow::new(3);
        for step in 0..5u64 {
            clock.advance_compute(1.0);
            // Ready in the past: arrived before the next settle.
            let stream = overlap.begin_at(clock.now() - 0.5, clock.now());
            let buf = w.payload_buf();
            w.launch(0, step, buf, stream);
            w.settle(step, &mut overlap, &clock, |_, _| {});
        }
        assert_eq!(w.fence_stalls(), 0, "everything arrived on its own");
        assert_eq!(w.in_flight(), 0);
        assert_eq!(w.max_applied_age(), 0);
    }

    #[test]
    fn fifo_order_is_preserved_under_mixed_arrivals() {
        let clock = SimClock::new();
        let mut overlap = OverlapLedger::new();
        let mut w = StalenessWindow::new(1);
        // Step 0: slow stream. Step 1: instant stream. The instant one
        // must NOT settle before the slow one (FIFO prefix rule).
        clock.advance_compute(1.0);
        let slow = overlap.begin_at(clock.now() + 100.0, clock.now());
        let buf = w.payload_buf();
        w.launch(7, 0, buf, slow);
        let mut order = Vec::new();
        w.settle(0, &mut overlap, &clock, |b, _| order.push(b));
        assert!(order.is_empty(), "not due, not arrived");
        clock.advance_compute(1.0);
        let fast = overlap.begin_at(clock.now(), clock.now());
        let buf = w.payload_buf();
        w.launch(9, 1, buf, fast);
        w.settle(1, &mut overlap, &clock, |b, _| order.push(b));
        assert_eq!(order, vec![7, 9], "front fenced first, then the fast one");
        assert_eq!(w.fence_stalls(), 1);
        assert_eq!(w.stale_applied(), 1, "the slow one settled one step old");
    }

    #[test]
    fn payload_buffers_recycle() {
        let clock = SimClock::new();
        let mut overlap = OverlapLedger::new();
        let mut w = StalenessWindow::new(0);
        let mut buf = w.payload_buf();
        buf.extend_from_slice(&[1.0, 2.0]);
        let s = overlap.begin_at(0.0, 0.0);
        w.launch(0, 0, buf, s);
        w.settle(0, &mut overlap, &clock, |_, p| assert_eq!(p, [1.0, 2.0]));
        let recycled = w.payload_buf();
        assert!(recycled.is_empty(), "recycled buffer comes back cleared");
        assert!(recycled.capacity() >= 2, "and keeps its allocation");
    }
}
