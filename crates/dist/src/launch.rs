//! Worker launch and barrier-synchronized collectives.
//!
//! [`run_workers`] spawns one OS thread per rank; each gets a [`WorkerCtx`]
//! holding a [`Comm`] (rank + shared [`CommHub`]) and its own
//! [`SimClock`]. Collectives exchange payloads through the hub under a
//! reusable barrier and combine them **in rank order**, so results are
//! bit-identical regardless of thread scheduling — the invariant that lets
//! the simulated clock model stragglers without perturbing numerics
//! (`tests/distributed.rs::straggler_noise_never_leaks_into_numerics`).
//!
//! Every collective also synchronizes simulated clocks to the latest rank
//! (barrier semantics: nobody leaves an all-reduce before the slowest
//! arrives) and then charges the modeled collective time from
//! [`CostModel::allreduce`].

use crate::topology::ClusterTopology;
use st_device::{CostModel, SimClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// One rank's posted payload: `(simulated now, payload)`.
type Slot = Option<(f64, Vec<f32>)>;

/// Shared state for one `run_workers` world: payload slots, a reusable
/// barrier, the cost model, and the cross-rank traffic ledger.
pub struct CommHub {
    world: usize,
    topology: ClusterTopology,
    cost: CostModel,
    /// One payload slot per rank.
    slots: Mutex<Vec<Slot>>,
    barrier: Barrier,
    /// Total collective payload bytes moved across all ranks.
    bytes: AtomicU64,
}

impl CommHub {
    /// Hub for `world` ranks on `topology`, with Polaris cost constants.
    pub fn new(world: usize, topology: ClusterTopology) -> Self {
        assert!(world > 0, "world must be positive");
        CommHub {
            world,
            topology,
            cost: CostModel::default(),
            slots: Mutex::new(vec![None; world]),
            barrier: Barrier::new(world),
            bytes: AtomicU64::new(0),
        }
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The cluster topology.
    pub fn topology(&self) -> ClusterTopology {
        self.topology
    }

    /// The cost model all collectives charge against.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Total collective payload bytes moved so far (all ranks).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// One rank's handle on the collective hub.
pub struct Comm {
    rank: usize,
    hub: Arc<CommHub>,
    clock: SimClock,
}

impl Comm {
    /// This rank's index in `[0, world)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The shared hub (cost model, topology, byte ledger).
    pub fn hub(&self) -> &CommHub {
        &self.hub
    }

    /// Exchange `payload` with every rank; returns all payloads in rank
    /// order. The building block for every collective below. Synchronizes
    /// simulated clocks to the slowest rank.
    fn exchange(&mut self, payload: Vec<f32>) -> Vec<Vec<f32>> {
        let (t_max, all) = self.exchange_unsynced(payload);
        self.clock.sync_to(t_max);
        all
    }

    /// [`Comm::exchange`] without the closing clock rendezvous: returns
    /// `(t_max, payloads)` where `t_max` is the slowest participating
    /// rank's simulated time. The bounded-staleness path builds on this —
    /// the payloads are combined eagerly (numerics never wait), while the
    /// caller decides when, if ever, its clock observes `t_max`.
    fn exchange_unsynced(&mut self, payload: Vec<f32>) -> (f64, Vec<Vec<f32>>) {
        if self.hub.world == 1 {
            return (self.clock.now(), vec![payload]);
        }
        {
            let mut slots = self.hub.slots.lock().unwrap();
            slots[self.rank] = Some((self.clock.now(), payload));
        }
        // Everyone has written.
        self.hub.barrier.wait();
        let (t_max, all) = {
            let slots = self.hub.slots.lock().unwrap();
            let t_max = slots
                .iter()
                .map(|s| s.as_ref().expect("slot filled").0)
                .fold(0.0_f64, f64::max);
            let all: Vec<Vec<f32>> = slots
                .iter()
                .map(|s| s.as_ref().expect("slot filled").1.clone())
                .collect();
            (t_max, all)
        };
        // Everyone has read; only now may a rank start the next collective
        // (its slot write would otherwise race a slow reader).
        self.hub.barrier.wait();
        (t_max, all)
    }

    /// Record `bytes` on the shared traffic ledger. Rank 0 posts the whole
    /// collective's volume **before** the payload exchange, so the exchange
    /// barriers order the write ahead of any rank's post-collective
    /// `bytes_moved` read (posting after the exchange raced those reads).
    fn ledger_collective(&self, bytes: u64) {
        if self.rank == 0 {
            self.hub.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Modeled seconds of a ring all-reduce of `payload_elems` f32 per
    /// rank, **not** charged to any clock.
    fn quote_allreduce(&self, payload_elems: usize) -> f64 {
        let world = self.hub.world;
        if world == 1 {
            return 0.0;
        }
        let bytes = (payload_elems * 4) as u64;
        self.hub
            .cost
            .allreduce(bytes, world, self.hub.topology.gpus_per_node)
    }

    /// Charge modeled time for a ring all-reduce of `payload_elems` f32 per
    /// rank.
    fn charge_allreduce(&self, payload_elems: usize) {
        let secs = self.quote_allreduce(payload_elems);
        if secs > 0.0 {
            self.clock.advance_comm(secs);
        }
    }

    /// Ring all-reduce ledger volume for `payload_elems` f32 per rank.
    fn allreduce_ledger_bytes(&self, payload_elems: usize) -> u64 {
        let world = self.hub.world as u64;
        if world == 1 {
            return 0;
        }
        2 * (world - 1) * (payload_elems * 4) as u64
    }

    /// Element-wise mean across ranks, in place. Deterministic: the sum is
    /// accumulated in rank order on every rank.
    pub fn all_reduce_mean(&mut self, buf: &mut [f32]) {
        let secs = self.all_reduce_mean_quoted(buf);
        if secs > 0.0 {
            self.clock.advance_comm(secs);
        }
    }

    /// Element-wise sum across ranks, in place.
    pub fn all_reduce_sum(&mut self, buf: &mut [f32]) {
        let secs = self.all_reduce_sum_quoted(buf);
        if secs > 0.0 {
            self.clock.advance_comm(secs);
        }
    }

    /// [`Comm::all_reduce_mean`] as an **async-style quote**: the result is
    /// in `buf` on return (numerics identical to the charging variant) and
    /// the collective's bytes are already on the ledger, but its modeled
    /// seconds come back to the caller instead of hitting the clock —
    /// mirroring the data planes' quoted fetches, so an overlap scheduler
    /// decides whether the time hides behind compute or is paid exposed.
    pub fn all_reduce_mean_quoted(&mut self, buf: &mut [f32]) -> f64 {
        let world = self.hub.world as f32;
        let secs = self.all_reduce_sum_quoted(buf);
        for v in buf.iter_mut() {
            *v /= world;
        }
        secs
    }

    /// [`Comm::all_reduce_sum`] as an async-style quote (see
    /// [`Comm::all_reduce_mean_quoted`]). Clock rendezvous still happens —
    /// no rank owns the result before the slowest has contributed — but
    /// the ring's wire time is returned, not charged.
    pub fn all_reduce_sum_quoted(&mut self, buf: &mut [f32]) -> f64 {
        let n = buf.len();
        self.ledger_collective(self.allreduce_ledger_bytes(n));
        let all = self.exchange(buf.to_vec());
        buf.fill(0.0);
        for contribution in &all {
            assert_eq!(contribution.len(), n, "all-reduce length mismatch");
            for (acc, v) in buf.iter_mut().zip(contribution) {
                *acc += v;
            }
        }
        self.quote_allreduce(n)
    }

    /// [`Comm::all_reduce_mean`] as a **non-blocking** collective for the
    /// bounded-staleness engine: the rank-order mean is in `buf` on return
    /// (numerics identical to every other variant) and the bytes are
    /// ledgered, but this rank's clock neither rendezvouses with the
    /// slowest rank nor pays the ring's wire time. Instead the absolute
    /// modeled instant at which the result is *available* —
    /// `t_slowest + wire` — comes back, for an
    /// [`st_device::OverlapLedger::begin_at`] deadline stream.
    pub fn all_reduce_mean_async(&mut self, buf: &mut [f32]) -> f64 {
        let world = self.hub.world as f32;
        let ready_at = self.all_reduce_sum_async(buf);
        for v in buf.iter_mut() {
            *v /= world;
        }
        ready_at
    }

    /// [`Comm::all_reduce_sum`] as a non-blocking collective (see
    /// [`Comm::all_reduce_mean_async`]). Returns the absolute modeled
    /// completion instant; never touches this rank's clock.
    pub fn all_reduce_sum_async(&mut self, buf: &mut [f32]) -> f64 {
        let n = buf.len();
        self.ledger_collective(self.allreduce_ledger_bytes(n));
        let (t_max, all) = self.exchange_unsynced(buf.to_vec());
        buf.fill(0.0);
        for contribution in &all {
            assert_eq!(contribution.len(), n, "all-reduce length mismatch");
            for (acc, v) in buf.iter_mut().zip(contribution) {
                *acc += v;
            }
        }
        t_max + self.quote_allreduce(n)
    }

    /// Gather one scalar from every rank, in rank order.
    pub fn all_gather_scalar(&mut self, v: f32) -> Vec<f32> {
        self.ledger_collective(self.allreduce_ledger_bytes(1));
        let all = self.exchange(vec![v]);
        self.charge_allreduce(1);
        all.into_iter().map(|p| p[0]).collect()
    }

    /// Overwrite `buf` with rank 0's copy on every rank.
    pub fn broadcast(&mut self, buf: &mut [f32]) {
        let world = self.hub.world;
        if world == 1 {
            return;
        }
        let n = buf.len();
        let bytes = (n * 4) as u64;
        // Tree broadcast: everyone receives one copy from upstream.
        self.ledger_collective((world as u64 - 1) * bytes);
        let all = self.exchange(buf.to_vec());
        assert_eq!(all[0].len(), n, "broadcast length mismatch");
        buf.copy_from_slice(&all[0]);
        let hops = (world as f64).log2().ceil();
        let secs = hops * (self.hub.cost.network_latency + bytes as f64 / self.hub.cost.network_bw);
        self.clock.advance_comm(secs);
    }

    /// Barrier: rendezvous and synchronize simulated clocks.
    pub fn barrier(&mut self) {
        let _ = self.exchange(Vec::new());
    }
}

/// Per-worker context handed to the `run_workers` closure.
pub struct WorkerCtx {
    /// Collective communicator bound to this rank.
    pub comm: Comm,
    /// This worker's simulated clock (shared with `comm`, which charges
    /// collective time onto it).
    pub clock: SimClock,
}

impl WorkerCtx {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Total ranks in this run.
    pub fn world(&self) -> usize {
        self.comm.hub().world()
    }
}

/// Spawn `world` worker threads, run `f(ctx)` on each, and return the
/// results **in rank order**. Panics in any worker propagate.
///
/// The closure is shared (`Fn + Sync`) and may borrow from the caller;
/// results only need `Send`.
pub fn run_workers<F, R>(world: usize, topology: ClusterTopology, f: F) -> Vec<R>
where
    F: Fn(WorkerCtx) -> R + Sync,
    R: Send,
{
    assert!(world > 0, "world must be positive");
    if world == 1 {
        // Fast path: no thread spawn for single-rank runs.
        return vec![run_single(topology, f)];
    }
    let hub = Arc::new(CommHub::new(world, topology));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let hub = Arc::clone(&hub);
                let f = &f;
                scope.spawn(move || {
                    let clock = SimClock::new();
                    let comm = Comm {
                        rank,
                        hub,
                        clock: clock.clone(),
                    };
                    f(WorkerCtx { comm, clock })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Run `f` as a one-rank world **on the calling thread**. Collectives are
/// free no-ops, so this is the inline path for single-worker consumers
/// that still speak the engine's `WorkerCtx` protocol — unlike
/// [`run_workers`] it needs neither `Sync` on the closure nor `Send` on
/// the result, so non-`Send` state (models hold `Rc` parameters) can be
/// built inside and handed back.
pub fn run_single<F, R>(topology: ClusterTopology, f: F) -> R
where
    F: FnOnce(WorkerCtx) -> R,
{
    let hub = Arc::new(CommHub::new(1, topology));
    let clock = SimClock::new();
    let comm = Comm {
        rank: 0,
        hub,
        clock: clock.clone(),
    };
    f(WorkerCtx { comm, clock })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = run_workers(4, ClusterTopology::polaris(), |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_reduce_sum_is_exact_and_symmetric() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            let mut buf = vec![ctx.rank() as f32, 1.0];
            ctx.comm.all_reduce_sum(&mut buf);
            buf
        });
        for r in out {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn all_gather_scalar_orders_by_rank() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            ctx.comm.all_gather_scalar(10.0 * ctx.rank() as f32)
        });
        for r in out {
            assert_eq!(r, vec![0.0, 10.0, 20.0]);
        }
    }

    #[test]
    fn broadcast_imposes_rank0_values() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            let mut buf = vec![ctx.rank() as f32; 4];
            ctx.comm.broadcast(&mut buf);
            buf
        });
        for r in out {
            assert_eq!(r, vec![0.0; 4]);
        }
    }

    #[test]
    fn collectives_charge_time_and_bytes() {
        let out = run_workers(2, ClusterTopology::polaris(), |mut ctx| {
            let mut buf = vec![1.0f32; 1024];
            ctx.comm.all_reduce_mean(&mut buf);
            (ctx.clock.comm_secs(), ctx.comm.hub().bytes_moved())
        });
        for (comm_secs, bytes) in out {
            assert!(comm_secs > 0.0);
            // 2(world-1) × 4 KiB payload = 8 KiB on the ledger.
            assert_eq!(bytes, 2 * 1024 * 4);
        }
    }

    #[test]
    fn quoted_all_reduce_matches_charging_variant_except_the_clock() {
        let out = run_workers(2, ClusterTopology::polaris(), |mut ctx| {
            let mut charged = vec![ctx.rank() as f32 + 1.0; 16];
            let mut quoted = charged.clone();
            ctx.comm.all_reduce_mean(&mut charged);
            let charged_secs = ctx.clock.comm_secs();
            let quote = ctx.comm.all_reduce_mean_quoted(&mut quoted);
            (charged, quoted, charged_secs, quote, ctx.clock.comm_secs())
        });
        for (charged, quoted, charged_secs, quote, after) in out {
            assert_eq!(charged, quoted, "identical numerics");
            assert!(charged_secs > 0.0);
            assert!((quote - charged_secs).abs() < 1e-12, "same modeled time");
            assert_eq!(after, charged_secs, "quote did not touch the clock");
        }
    }

    #[test]
    fn async_all_reduce_matches_sync_numerics_without_rendezvous() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            // Skew the clocks so the rendezvous would be visible.
            ctx.clock.advance_compute(ctx.rank() as f64);
            let mut sync_buf = vec![ctx.rank() as f32 + 1.0; 16];
            let mut async_buf = sync_buf.clone();
            let before = ctx.clock.now();
            let ready_at = ctx.comm.all_reduce_mean_async(&mut async_buf);
            let after = ctx.clock.now();
            ctx.comm.all_reduce_mean(&mut sync_buf);
            (sync_buf, async_buf, before, after, ready_at)
        });
        for (sync_buf, async_buf, before, after, ready_at) in out {
            assert_eq!(sync_buf, async_buf, "identical rank-order mean");
            assert_eq!(before, after, "async variant never moves the clock");
            // Result is available strictly after the slowest rank (t=2.0)
            // contributed plus the ring's wire time.
            assert!(ready_at > 2.0, "ready_at = {ready_at}");
        }
    }

    #[test]
    fn single_rank_async_all_reduce_is_immediately_ready() {
        let out = run_workers(1, ClusterTopology::polaris(), |mut ctx| {
            ctx.clock.advance_compute(1.5);
            let mut buf = vec![4.0f32; 4];
            let ready_at = ctx.comm.all_reduce_mean_async(&mut buf);
            (buf, ready_at, ctx.clock.now())
        });
        let (buf, ready_at, now) = &out[0];
        assert_eq!(*buf, vec![4.0f32; 4]);
        assert_eq!(*ready_at, *now, "no peers, no wire: ready now");
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let out = run_workers(1, ClusterTopology::polaris(), |mut ctx| {
            let mut buf = vec![2.0f32; 8];
            ctx.comm.all_reduce_mean(&mut buf);
            (buf, ctx.clock.comm_secs(), ctx.comm.hub().bytes_moved())
        });
        let (buf, secs, bytes) = &out[0];
        assert_eq!(*buf, vec![2.0f32; 8]);
        assert_eq!(*secs, 0.0);
        assert_eq!(*bytes, 0);
    }

    #[test]
    fn run_single_supports_non_send_results() {
        // The inline path exists so single-rank callers can hand back
        // non-Send state (e.g. Rc-parameterized models).
        let out = run_single(ClusterTopology::polaris(), |mut ctx| {
            let mut buf = vec![3.0f32; 2];
            ctx.comm.all_reduce_mean(&mut buf);
            std::rc::Rc::new((buf, ctx.rank()))
        });
        assert_eq!(*out, (vec![3.0, 3.0], 0));
    }

    #[test]
    fn clocks_sync_to_the_slowest_rank() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            ctx.clock.advance_compute(ctx.rank() as f64);
            ctx.comm.barrier();
            ctx.clock.now()
        });
        // All ranks leave the barrier at (at least) the slowest rank's time.
        for now in out {
            assert!(now >= 2.0, "now = {now}");
        }
    }
}
