//! Communication-free epoch shuffling (§4.2, Table 5).
//!
//! Because every distributed-index-batching worker holds a full local copy,
//! a *global* shuffle needs no communication: all ranks derive the same
//! shared-seed permutation and each takes its stripe. The local variants
//! (whole-partition and batch-order) cover Table 5's ablation and the
//! generalized mode of §5.4, where a partition-bound worker may only
//! reorder what it owns.
//!
//! All derivations are keyed on `(seed, epoch[, rank])` through SplitMix64
//! Fisher–Yates, so any worker count reproduces the identical epoch order —
//! the determinism claim behind the paper's accuracy-parity results.

use std::ops::Range;

/// Which epoch shuffle a distributed run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShuffleStrategy {
    /// Shared-seed global permutation; each rank takes its stripe
    /// (communication-free — the paper's default).
    Global,
    /// Each rank permutes its own contiguous partition.
    Local,
    /// Fixed batch contents, shuffled batch *order* within the partition
    /// (the generalized mode's choice; Table 5 shows no accuracy cost).
    LocalBatch,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn mix_key(seed: u64, rank: u64, epoch: u64) -> u64 {
    let mut s = seed ^ 0x5851_f42d_4c95_7f2d;
    let a = splitmix64(&mut s);
    let mut s2 = a ^ rank.wrapping_mul(0xa24b_aed4_963e_e407);
    let b = splitmix64(&mut s2);
    let mut s3 = b ^ epoch.wrapping_mul(0x9fb2_1c65_1e98_df25);
    splitmix64(&mut s3)
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn seeded_perm(n: usize, key: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = key;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Global shared-seed shuffle: permute `0..n` with a key derived from
/// `(seed, epoch)` — identical on every rank — and return rank `rank`'s
/// stripe. Stripes are ragged: the first `n % world` ranks take one extra
/// index (via [`contiguous_partition`] over the permutation), so **every**
/// sample is visited each epoch. Ranks disagree on stripe length by at
/// most one; [`common_rounds`] gives the per-step collective count they
/// must all agree on.
pub fn global_stripe(n: usize, world: usize, rank: usize, seed: u64, epoch: u64) -> Vec<usize> {
    assert!(
        world > 0 && rank < world,
        "rank {rank} outside world {world}"
    );
    let perm = seeded_perm(n, mix_key(seed, u64::MAX, epoch));
    perm[contiguous_partition(n, world, rank)].to_vec()
}

/// Permute `ids` with a key derived from `(seed, rank, epoch)`.
pub fn local_shuffle(ids: &[usize], seed: u64, rank: usize, epoch: u64) -> Vec<usize> {
    let order = seeded_perm(ids.len(), mix_key(seed, rank as u64, epoch));
    order.into_iter().map(|i| ids[i]).collect()
}

/// Shuffled visit order over `num_batches` fixed batches, keyed on
/// `(seed, rank, epoch)`.
pub fn batch_order_shuffle(num_batches: usize, seed: u64, rank: usize, epoch: u64) -> Vec<usize> {
    seeded_perm(num_batches, mix_key(seed, rank as u64, epoch))
}

/// Balanced contiguous partition of `0..n` over `world` ranks: the first
/// `n % world` ranks own one extra element; partitions tile `0..n` exactly.
pub fn contiguous_partition(n: usize, world: usize, rank: usize) -> Range<usize> {
    assert!(
        world > 0 && rank < world,
        "rank {rank} outside world {world}"
    );
    let base = n / world;
    let rem = n % world;
    let start = rank * base + rank.min(rem);
    let len = base + usize::from(rank < rem);
    start..start + len
}

/// Size of the intersection of two index ranges.
pub fn range_overlap(a: &Range<usize>, b: &Range<usize>) -> usize {
    let lo = a.start.max(b.start);
    let hi = a.end.min(b.end);
    hi.saturating_sub(lo)
}

/// The per-step all-reduce count every rank must agree on when partitions
/// are ragged: the maximum over ranks of `ceil(samples / batch)`. Ranks
/// with fewer (or zero) local batches still enter every collective with a
/// zero contribution, so no rank ever blocks on a missing peer.
pub fn common_rounds(per_rank_samples: impl IntoIterator<Item = usize>, batch: usize) -> usize {
    let batch = batch.max(1);
    per_rank_samples
        .into_iter()
        .map(|samples| samples.div_ceil(batch))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Union of all ranks' index sets, asserting pairwise disjointness.
    fn disjoint_union(sets: &[Vec<usize>]) -> HashSet<usize> {
        let mut seen = HashSet::new();
        for (rank, set) in sets.iter().enumerate() {
            for &idx in set {
                assert!(seen.insert(idx), "rank {rank} repeats index {idx}");
            }
        }
        seen
    }

    #[test]
    fn global_stripe_is_a_disjoint_exhaustive_permutation() {
        // The paper's correctness claim for communication-free shuffling:
        // across ranks, stripes are disjoint and cover the whole sample
        // set — together they are a permutation of 0..n, with no dropped
        // tail even when world does not divide n.
        for n in [12usize, 97, 256] {
            for world in [1usize, 2, 3, 5, 8] {
                let stripes: Vec<Vec<usize>> = (0..world)
                    .map(|r| global_stripe(n, world, r, 42, 7))
                    .collect();
                for (r, s) in stripes.iter().enumerate() {
                    assert_eq!(
                        s.len(),
                        contiguous_partition(n, world, r).len(),
                        "ragged stripe at n={n} world={world} rank={r}"
                    );
                }
                let union = disjoint_union(&stripes);
                assert_eq!(union.len(), n, "no index dropped at n={n} world={world}");
                assert!(union.iter().all(|&i| i < n));
            }
        }
    }

    #[test]
    fn global_stripe_visits_every_train_id_each_epoch_for_non_divisible_n() {
        // Regression: the old implementation dropped the n % world
        // permutation tail every epoch, so those samples were never
        // trained on. Ragged stripes must cover all of 0..n per epoch.
        let (n, world) = (123usize, 4usize); // 123 % 4 = 3 leftovers
        for epoch in 0..3u64 {
            let union = disjoint_union(
                &(0..world)
                    .map(|r| global_stripe(n, world, r, 7, epoch))
                    .collect::<Vec<_>>(),
            );
            assert_eq!(union.len(), n, "epoch {epoch} dropped indices");
        }
        // And the extra elements land on the first n % world ranks.
        let lens: Vec<usize> = (0..world)
            .map(|r| global_stripe(n, world, r, 7, 0).len())
            .collect();
        assert_eq!(lens, vec![31, 31, 31, 30]);
    }

    #[test]
    fn local_and_batch_shuffles_are_permutations() {
        for world in [1usize, 3, 4] {
            let n = 61;
            let stripes: Vec<Vec<usize>> = (0..world)
                .map(|r| {
                    let ids: Vec<usize> = contiguous_partition(n, world, r).collect();
                    local_shuffle(&ids, 9, r, 2)
                })
                .collect();
            // Local shuffle permutes each partition in place: the union is
            // exhaustive over ALL of 0..n (no drop-last).
            assert_eq!(disjoint_union(&stripes).len(), n);

            let order = batch_order_shuffle(17, 9, world, 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..17).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stripes_are_deterministic_for_fixed_seed_across_worker_counts() {
        // The underlying permutation is keyed on (seed, epoch) only, so a
        // rank's stripe is a prefix-slice of the SAME global order no
        // matter the world size: world=2's rank-0 stripe is exactly the
        // first half of world=1's full order.
        let n = 120;
        let full = global_stripe(n, 1, 0, 1234, 3);
        for world in [2usize, 3, 4, 6, 7] {
            for rank in 0..world {
                let stripe = global_stripe(n, world, rank, 1234, 3);
                assert_eq!(
                    stripe,
                    full[contiguous_partition(n, world, rank)].to_vec(),
                    "world={world} rank={rank} must slice the shared order"
                );
            }
        }
        // And repeated derivation is bit-identical.
        assert_eq!(global_stripe(n, 4, 2, 77, 5), global_stripe(n, 4, 2, 77, 5));
        assert_eq!(
            local_shuffle(&[5, 6, 7, 8], 77, 1, 5),
            local_shuffle(&[5, 6, 7, 8], 77, 1, 5)
        );
        assert_eq!(
            batch_order_shuffle(9, 77, 1, 5),
            batch_order_shuffle(9, 77, 1, 5)
        );
    }

    #[test]
    fn different_epochs_reshuffle() {
        let a = global_stripe(100, 2, 0, 42, 0);
        let b = global_stripe(100, 2, 0, 42, 1);
        assert_ne!(a, b, "epochs must not repeat the same order");
    }

    #[test]
    fn partitions_tile_for_any_world() {
        for n in [0usize, 1, 7, 100] {
            for world in [1usize, 2, 3, 7, 16] {
                let mut cursor = 0;
                for rank in 0..world {
                    let part = contiguous_partition(n, world, rank);
                    assert_eq!(part.start, cursor);
                    cursor = part.end;
                }
                assert_eq!(cursor, n);
            }
        }
    }

    #[test]
    fn common_rounds_covers_the_largest_rank() {
        assert_eq!(common_rounds([10usize, 7, 0], 4), 3);
        assert_eq!(common_rounds([0usize, 0], 4), 0);
        assert_eq!(common_rounds(std::iter::empty::<usize>(), 4), 0);
        assert_eq!(common_rounds([5usize], 0), 5, "batch clamps to 1");
    }

    #[test]
    fn range_overlap_basics() {
        assert_eq!(range_overlap(&(0..10), &(5..20)), 5);
        assert_eq!(range_overlap(&(0..3), &(7..9)), 0);
        assert_eq!(range_overlap(&(2..8), &(0..100)), 6);
    }
}
