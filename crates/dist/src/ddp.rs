//! DDP-style parameter broadcast and gradient synchronization.
//!
//! Mirrors PyTorch DistributedDataParallel at the granularity this repo
//! needs, in two flavors:
//!
//! - [`DdpContext`] — the degenerate single-bucket form: every parameter
//!   flattens into one persistent f32 scratch buffer and a training step
//!   costs one synchronous all-reduce.
//! - [`GradBuckets`] — real DDP bucketing for the pipelined step engine:
//!   deterministic byte-capped buckets in **gradient-completion order**
//!   (the order `Tape::backward` finalizes grads, approximated up front by
//!   reversed module order exactly as PyTorch does), each all-reduced as a
//!   *quoted* collective (`Comm::all_reduce_mean_quoted`) so its wire time
//!   can hide behind the backward compute still running for earlier
//!   parameters.
//!
//! Both paths are **bit-identical**: an element-wise rank-order mean does
//! not care how the flat buffer is split (pinned by
//! `tests/proptests_ext.rs::bucketed_all_reduce_equals_flat`). Ranks whose
//! epoch ran out of batches contribute zero gradients but still enter
//! every collective — see [`crate::shuffle::common_rounds`].
//!
//! Scratch buffers and per-parameter output tensors are allocated once at
//! construction and reused every step; in steady state a gradient sync
//! performs no per-step allocation beyond the collective's own payload
//! exchange.

use crate::launch::Comm;
use st_autograd::module::Param;
use st_tensor::Tensor;

/// A flat view over an ordered parameter group: one persistent scratch
/// buffer plus persistent output-gradient tensors, so gather → all-reduce
/// → scatter allocates nothing in steady state.
struct FlatChunk {
    params: Vec<Param>,
    numel: usize,
    scratch: Vec<f32>,
    /// Persistent per-param averaged-gradient tensors, rewritten in place
    /// each step (`zero_grad` drops the param's handle between steps, so
    /// the copy-on-write storage stays uniquely owned).
    out: Vec<Tensor>,
}

impl FlatChunk {
    fn new(params: Vec<Param>) -> Self {
        let numel = params.iter().map(Param::numel).sum();
        let out = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().clone()))
            .collect();
        FlatChunk {
            scratch: vec![0.0; numel],
            numel,
            params,
            out,
        }
    }

    /// Flatten the parameters' gradients into the scratch buffer; missing
    /// gradients contribute zeros.
    fn gather_grads(&mut self) {
        let mut offset = 0;
        for p in &self.params {
            let n = p.numel();
            let dst = &mut self.scratch[offset..offset + n];
            match p.grad() {
                Some(g) => match g.as_slice() {
                    Ok(s) => dst.copy_from_slice(s),
                    Err(_) => dst.copy_from_slice(&g.to_vec()),
                },
                None => dst.fill(0.0),
            }
            offset += n;
        }
    }

    /// Scatter the reduced scratch buffer back into every parameter's
    /// gradient through the persistent output tensors.
    fn scatter_grads(&mut self) {
        let mut offset = 0;
        for (p, t) in self.params.iter().zip(&mut self.out) {
            let n = p.numel();
            t.make_mut_contiguous()
                .copy_from_slice(&self.scratch[offset..offset + n]);
            offset += n;
            p.set_grad(Some(t.clone()));
        }
    }

    /// Scatter the scratch buffer into the parameters' gradients,
    /// **adding** to any gradient already present — the settle path of the
    /// bounded-staleness window, where two delayed collectives of the same
    /// bucket may land in one optimizer round and must both be applied
    /// (summing ≈ gradient accumulation across the deferred steps).
    fn scatter_grads_accumulate(&mut self) {
        let mut offset = 0;
        for p in &self.params {
            let n = p.numel();
            let span = &self.scratch[offset..offset + n];
            offset += n;
            let acc = match p.grad() {
                Some(g) => {
                    let mut v = g.to_vec();
                    for (a, s) in v.iter_mut().zip(span) {
                        *a += *s;
                    }
                    Tensor::from_vec(v, g.dims().to_vec()).expect("grad shape")
                }
                None => {
                    Tensor::from_vec(span.to_vec(), p.value().dims().to_vec()).expect("param shape")
                }
            };
            p.set_grad(Some(acc));
        }
    }
}

/// Per-replica DDP state: the parameter list this worker synchronizes as
/// one flat bucket.
pub struct DdpContext {
    chunk: FlatChunk,
}

impl DdpContext {
    /// Wrap a replica's parameters (order must match across ranks).
    pub fn new(params: Vec<Param>) -> Self {
        DdpContext {
            chunk: FlatChunk::new(params),
        }
    }

    /// Number of synchronized parameters.
    pub fn num_params(&self) -> usize {
        self.chunk.params.len()
    }

    /// Total scalars synchronized per all-reduce.
    pub fn numel(&self) -> usize {
        self.chunk.numel
    }

    /// Bytes of one gradient bucket (f32).
    pub fn grad_bytes(&self) -> u64 {
        (self.numel() * 4) as u64
    }

    /// Overwrite every rank's parameter values with rank 0's, so replicas
    /// start identical even if a model factory ignored the shared seed.
    pub fn broadcast_parameters(&mut self, comm: &mut Comm) {
        broadcast_parameters(&self.chunk.params, comm);
    }

    /// Average gradients across ranks in one flat all-reduce. Parameters
    /// with no local gradient contribute zeros; afterwards every parameter
    /// on every rank holds the identical averaged gradient.
    pub fn average_gradients(&mut self, comm: &mut Comm) {
        self.chunk.gather_grads();
        comm.all_reduce_mean(&mut self.chunk.scratch);
        self.chunk.scatter_grads();
    }
}

/// Overwrite every rank's parameter values with rank 0's (one flat
/// broadcast), so replicas start identical even if a model factory
/// ignored the shared seed. A one-time operation — the engine's bucketed
/// sync path uses this directly so it need not build a whole
/// [`DdpContext`] just for the startup broadcast.
pub fn broadcast_parameters(params: &[Param], comm: &mut Comm) {
    let mut bucket: Vec<f32> = Vec::with_capacity(params.iter().map(Param::numel).sum());
    for p in params {
        let v = p.value();
        match v.as_slice() {
            Ok(s) => bucket.extend_from_slice(s),
            Err(_) => bucket.extend_from_slice(&v.to_vec()),
        }
    }
    comm.broadcast(&mut bucket);
    let mut offset = 0;
    for p in params {
        let value = p.value();
        let n = value.numel();
        let slice = bucket[offset..offset + n].to_vec();
        offset += n;
        p.set_value(
            Tensor::from_vec(slice, value.dims().to_vec()).expect("bucket slice matches shape"),
        );
    }
}

/// Default byte cap for [`GradBuckets`]: small enough that the repo's
/// measured-scale models split into several buckets (so the backward
/// overlap is exercised), in the spirit of PyTorch DDP's 25 MB default at
/// real scale.
pub const DEFAULT_GRAD_BUCKET_BYTES: usize = 16 << 10;

/// Byte-capped gradient buckets for backward-overlapped synchronization.
///
/// Construction is deterministic and rank-independent: walk `params` in
/// the given order (callers pass reversed module order — the up-front
/// approximation of gradient-completion order) and greedily pack
/// consecutive parameters until the next one would exceed `cap_bytes`
/// (every bucket holds at least one parameter, so an oversized parameter
/// gets a bucket of its own). Every rank derives the identical partition,
/// which is what keeps the per-bucket collectives aligned.
pub struct GradBuckets {
    buckets: Vec<FlatChunk>,
}

impl GradBuckets {
    /// Pack `params` (in intended firing order) into byte-capped buckets.
    pub fn new(params: Vec<Param>, cap_bytes: usize) -> Self {
        let mut buckets = Vec::new();
        let mut cur: Vec<Param> = Vec::new();
        let mut cur_bytes = 0usize;
        for p in params {
            let bytes = p.numel() * 4;
            if !cur.is_empty() && cur_bytes + bytes > cap_bytes {
                buckets.push(FlatChunk::new(std::mem::take(&mut cur)));
                cur_bytes = 0;
            }
            cur_bytes += bytes;
            cur.push(p);
        }
        if !cur.is_empty() {
            buckets.push(FlatChunk::new(cur));
        }
        GradBuckets { buckets }
    }

    /// Number of buckets (= per-step collectives).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total scalars across all buckets.
    pub fn numel(&self) -> usize {
        self.buckets.iter().map(|b| b.numel).sum()
    }

    /// All-reduce-mean bucket `i`'s gradients as a quoted collective: the
    /// averaged gradients are in place on return (bit-identical to the
    /// flat reduce) and the bytes are ledgered, but the modeled seconds
    /// come back for the caller's overlap scheduler instead of hitting the
    /// clock.
    pub fn reduce_bucket_quoted(&mut self, i: usize, comm: &mut Comm) -> f64 {
        let chunk = &mut self.buckets[i];
        chunk.gather_grads();
        let secs = comm.all_reduce_mean_quoted(&mut chunk.scratch);
        chunk.scatter_grads();
        secs
    }

    /// All-reduce-mean bucket `i` as a **non-blocking** collective for the
    /// bounded-staleness engine: gather this rank's gradients, combine
    /// across ranks (eager, rank-order, bit-identical to every other
    /// variant), and leave the averaged payload in the bucket's scratch —
    /// readable via [`GradBuckets::bucket_payload`] — *without* scattering
    /// into the parameters and without touching this rank's clock. Returns
    /// the absolute modeled instant the result is available
    /// ([`Comm::all_reduce_mean_async`]); application is deferred to
    /// [`GradBuckets::apply_stale`] whenever the staleness window settles.
    pub fn reduce_bucket_async(&mut self, i: usize, comm: &mut Comm) -> f64 {
        let chunk = &mut self.buckets[i];
        chunk.gather_grads();
        comm.all_reduce_mean_async(&mut chunk.scratch)
    }

    /// Bucket `i`'s most recently reduced payload (the averaged gradient
    /// left by [`GradBuckets::reduce_bucket_async`]). Copy it out before
    /// the next step's reduce reuses the scratch.
    pub fn bucket_payload(&self, i: usize) -> &[f32] {
        &self.buckets[i].scratch
    }

    /// Apply a previously captured averaged-gradient `payload` to bucket
    /// `i`'s parameters, **adding** to any gradient already present (two
    /// deferred steps of the same bucket settling in one round accumulate,
    /// so no averaged gradient is ever dropped).
    pub fn apply_stale(&mut self, i: usize, payload: &[f32]) {
        let chunk = &mut self.buckets[i];
        assert_eq!(payload.len(), chunk.numel, "payload matches bucket");
        chunk.scratch.copy_from_slice(payload);
        chunk.scatter_grads_accumulate();
    }

    /// The modeled backward fraction at which each bucket can fire, given
    /// the tape's actual gradient-completion sequence for one step (see
    /// `Tape::param_completion_order`): a bucket is ready when its
    /// last-completing member's gradient is final, modeled as the
    /// cumulative-numel fraction of the completion sequence up to that
    /// member. Parameters absent from `completion` (no gradient flowed
    /// this step — they contribute zeros) never gate a bucket. Timing
    /// only: nothing here can influence numerics.
    pub fn fire_fractions(&self, completion: &[Param]) -> Vec<f64> {
        let total: f64 = completion.iter().map(|p| p.numel() as f64).sum();
        let mut cum = Vec::with_capacity(completion.len());
        let mut acc = 0.0;
        for p in completion {
            acc += p.numel() as f64;
            cum.push(acc / total.max(1.0));
        }
        self.buckets
            .iter()
            .map(|b| {
                b.params
                    .iter()
                    .filter_map(|p| {
                        completion
                            .iter()
                            .position(|q| q.same_param(p))
                            .map(|i| cum[i])
                    })
                    .fold(0.0, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::run_workers;
    use crate::topology::ClusterTopology;

    fn param(name: &str, vals: Vec<f32>) -> Param {
        let n = vals.len();
        Param::new(name, Tensor::from_vec(vals, [n]).unwrap())
    }

    #[test]
    fn broadcast_copies_rank0_values_everywhere() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            let p = param("w", vec![ctx.rank() as f32; 4]);
            let mut ddp = DdpContext::new(vec![p.clone()]);
            ddp.broadcast_parameters(&mut ctx.comm);
            p.value().to_vec()
        });
        for vals in out {
            assert_eq!(vals, vec![0.0; 4]);
        }
    }

    #[test]
    fn averaging_fills_missing_grads_with_zeros() {
        let out = run_workers(2, ClusterTopology::polaris(), |mut ctx| {
            let p = param("w", vec![0.0; 2]);
            if ctx.rank() == 0 {
                p.set_grad(Some(Tensor::from_vec(vec![4.0, 8.0], [2]).unwrap()));
            } // rank 1: no grad — an exhausted rank meeting the collective
            let mut ddp = DdpContext::new(vec![p.clone()]);
            ddp.average_gradients(&mut ctx.comm);
            p.grad().unwrap().to_vec()
        });
        for vals in out {
            assert_eq!(vals, vec![2.0, 4.0], "mean of (grad, zeros)");
        }
    }

    #[test]
    fn averaging_twice_reuses_the_scratch_and_stays_correct() {
        // The persistent-scratch path must not leak one step's values into
        // the next (missing grads in step 2 must re-zero their span).
        let out = run_workers(2, ClusterTopology::polaris(), |mut ctx| {
            let p = param("w", vec![0.0; 2]);
            let q = param("v", vec![0.0; 3]);
            let mut ddp = DdpContext::new(vec![p.clone(), q.clone()]);
            p.set_grad(Some(Tensor::from_vec(vec![2.0, 2.0], [2]).unwrap()));
            q.set_grad(Some(Tensor::from_vec(vec![6.0, 6.0, 6.0], [3]).unwrap()));
            ddp.average_gradients(&mut ctx.comm);
            let first = (p.grad().unwrap().to_vec(), q.grad().unwrap().to_vec());
            p.zero_grad();
            q.zero_grad();
            if ctx.rank() == 0 {
                p.set_grad(Some(Tensor::from_vec(vec![4.0, 4.0], [2]).unwrap()));
            }
            ddp.average_gradients(&mut ctx.comm);
            (
                first,
                p.grad().unwrap().to_vec(),
                q.grad().unwrap().to_vec(),
            )
        });
        for (first, p2, q2) in out {
            assert_eq!(first, (vec![2.0, 2.0], vec![6.0, 6.0, 6.0]));
            assert_eq!(p2, vec![2.0, 2.0], "mean of (4, missing)");
            assert_eq!(q2, vec![0.0; 3], "stale step-1 grads must not leak");
        }
    }

    #[test]
    fn bucket_partition_is_deterministic_and_byte_capped() {
        let ps = vec![
            param("a", vec![0.0; 4]), // 16 B
            param("b", vec![0.0; 2]), // 8 B
            param("c", vec![0.0; 8]), // 32 B — oversized alone
            param("d", vec![0.0; 1]), // 4 B
        ];
        let b = GradBuckets::new(ps.clone(), 24);
        // Greedy packing: [a, b] (24 B), [c] (32 B > cap but alone), [d].
        assert_eq!(b.num_buckets(), 3);
        assert_eq!(b.numel(), 15);
        let again = GradBuckets::new(ps, 24);
        let sizes: Vec<usize> = again.buckets.iter().map(|c| c.numel).collect();
        assert_eq!(sizes, vec![6, 8, 1]);
    }

    #[test]
    fn bucketed_reduce_matches_flat_reduce_bitwise() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            let rank = ctx.rank();
            let make = |tag: &str| {
                let ps = vec![
                    param(&format!("{tag}.a"), vec![0.0; 3]),
                    param(&format!("{tag}.b"), vec![0.0; 5]),
                    param(&format!("{tag}.c"), vec![0.0; 2]),
                ];
                for (i, p) in ps.iter().enumerate() {
                    // Rank-dependent grads; rank 1 misses the middle param.
                    if !(rank == 1 && i == 1) {
                        let v: Vec<f32> = (0..p.numel())
                            .map(|j| (rank * 10 + i * 3 + j) as f32 * 0.7)
                            .collect();
                        let n = v.len();
                        p.set_grad(Some(Tensor::from_vec(v, [n]).unwrap()));
                    }
                }
                ps
            };
            let flat_ps = make("flat");
            let mut flat = DdpContext::new(flat_ps.clone());
            flat.average_gradients(&mut ctx.comm);

            let bucket_ps = make("bucket");
            let mut rev = bucket_ps.clone();
            rev.reverse();
            let mut buckets = GradBuckets::new(rev, 12); // several tiny buckets
            for i in 0..buckets.num_buckets() {
                buckets.reduce_bucket_quoted(i, &mut ctx.comm);
            }
            let bits = |ps: &[Param]| -> Vec<u32> {
                ps.iter()
                    .flat_map(|p| p.grad().unwrap().to_vec())
                    .map(f32::to_bits)
                    .collect()
            };
            (bits(&flat_ps), bits(&bucket_ps))
        });
        for (flat, bucketed) in out {
            assert_eq!(flat, bucketed, "bucketing must not change a single bit");
        }
    }

    #[test]
    fn async_reduce_plus_apply_matches_the_quoted_path_bitwise() {
        let out = run_workers(2, ClusterTopology::polaris(), |mut ctx| {
            let rank = ctx.rank();
            let make = |tag: &str| {
                let ps = vec![
                    param(&format!("{tag}.a"), vec![0.0; 3]),
                    param(&format!("{tag}.b"), vec![0.0; 4]),
                ];
                for (i, p) in ps.iter().enumerate() {
                    let v: Vec<f32> = (0..p.numel())
                        .map(|j| (rank * 11 + i * 5 + j) as f32 * 0.3)
                        .collect();
                    let n = v.len();
                    p.set_grad(Some(Tensor::from_vec(v, [n]).unwrap()));
                }
                ps
            };
            let sync_ps = make("sync");
            let mut sync = GradBuckets::new(sync_ps.clone(), 12);
            for i in 0..sync.num_buckets() {
                sync.reduce_bucket_quoted(i, &mut ctx.comm);
            }

            let async_ps = make("async");
            let mut buckets = GradBuckets::new(async_ps.clone(), 12);
            let payloads: Vec<Vec<f32>> = (0..buckets.num_buckets())
                .map(|i| {
                    buckets.reduce_bucket_async(i, &mut ctx.comm);
                    buckets.bucket_payload(i).to_vec()
                })
                .collect();
            // Deferred application: drop the local grads (the engine does
            // this before settling) and apply the captured payloads.
            for p in &async_ps {
                p.zero_grad();
            }
            for (i, payload) in payloads.iter().enumerate() {
                buckets.apply_stale(i, payload);
            }
            let bits = |ps: &[Param]| -> Vec<u32> {
                ps.iter()
                    .flat_map(|p| p.grad().unwrap().to_vec())
                    .map(f32::to_bits)
                    .collect()
            };
            (bits(&sync_ps), bits(&async_ps))
        });
        for (sync, stale) in out {
            assert_eq!(sync, stale, "deferred apply must not change a bit");
        }
    }

    #[test]
    fn apply_stale_accumulates_same_bucket_payloads() {
        let p = param("w", vec![0.0; 2]);
        let mut b = GradBuckets::new(vec![p.clone()], 64);
        b.apply_stale(0, &[1.0, 2.0]);
        b.apply_stale(0, &[10.0, 20.0]);
        assert_eq!(
            p.grad().unwrap().to_vec(),
            vec![11.0, 22.0],
            "two deferred steps of one bucket must both land"
        );
    }

    #[test]
    fn fire_fractions_follow_the_completion_sequence() {
        let a = param("a", vec![0.0; 6]);
        let b = param("b", vec![0.0; 2]);
        let c = param("c", vec![0.0; 2]);
        // Buckets in firing order with a 16-byte cap: [c, b] then [a].
        let buckets = GradBuckets::new(vec![c.clone(), b.clone(), a.clone()], 16);
        assert_eq!(buckets.num_buckets(), 2);
        // Completion order c (2), b (2), a (6) of 10 total.
        let fr = buckets.fire_fractions(&[c.clone(), b.clone(), a.clone()]);
        assert_eq!(fr.len(), buckets.num_buckets());
        assert!((fr[0] - 0.4).abs() < 1e-12, "[c, b] fires once b is done");
        assert!((fr[1] - 1.0).abs() < 1e-12, "bucket gated by a fires last");
        // A param absent from the completion sequence never gates: with only
        // [c, b] completing, the a-bucket fires immediately.
        let fr2 = buckets.fire_fractions(&[c, b]);
        assert_eq!(fr2[1], 0.0, "a missing from completion never gates");
    }
}
