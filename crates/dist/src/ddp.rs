//! DDP-style parameter broadcast and gradient averaging.
//!
//! Mirrors PyTorch DistributedDataParallel at the granularity this repo
//! needs: parameters are flattened into one f32 bucket per collective, so a
//! training step costs a single all-reduce regardless of parameter count
//! (DDP's bucketing, degenerated to one bucket). Ranks whose epoch ran out
//! of batches contribute zero gradients but still enter the collective —
//! see [`crate::shuffle::common_rounds`].

use crate::launch::Comm;
use st_autograd::module::Param;
use st_tensor::Tensor;

/// Per-replica DDP state: the parameter list this worker synchronizes.
pub struct DdpContext {
    params: Vec<Param>,
}

impl DdpContext {
    /// Wrap a replica's parameters (order must match across ranks).
    pub fn new(params: Vec<Param>) -> Self {
        DdpContext { params }
    }

    /// Number of synchronized parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Total scalars synchronized per all-reduce.
    pub fn numel(&self) -> usize {
        self.params.iter().map(|p| p.numel()).sum()
    }

    /// Bytes of one gradient bucket (f32).
    pub fn grad_bytes(&self) -> u64 {
        (self.numel() * 4) as u64
    }

    /// Overwrite every rank's parameter values with rank 0's, so replicas
    /// start identical even if a model factory ignored the shared seed.
    pub fn broadcast_parameters(&mut self, comm: &mut Comm) {
        let mut bucket: Vec<f32> = Vec::with_capacity(self.numel());
        for p in &self.params {
            bucket.extend_from_slice(&p.value().to_vec());
        }
        comm.broadcast(&mut bucket);
        let mut offset = 0;
        for p in &self.params {
            let value = p.value();
            let n = value.numel();
            let slice = bucket[offset..offset + n].to_vec();
            offset += n;
            p.set_value(
                Tensor::from_vec(slice, value.dims().to_vec()).expect("bucket slice matches shape"),
            );
        }
    }

    /// Average gradients across ranks in one flat all-reduce. Parameters
    /// with no local gradient contribute zeros; afterwards every parameter
    /// on every rank holds the identical averaged gradient.
    pub fn average_gradients(&mut self, comm: &mut Comm) {
        let mut bucket: Vec<f32> = Vec::with_capacity(self.numel());
        for p in &self.params {
            match p.grad() {
                Some(g) => bucket.extend_from_slice(&g.to_vec()),
                None => bucket.extend(std::iter::repeat_n(0.0, p.numel())),
            }
        }
        comm.all_reduce_mean(&mut bucket);
        let mut offset = 0;
        for p in &self.params {
            let value = p.value();
            let n = value.numel();
            let slice = bucket[offset..offset + n].to_vec();
            offset += n;
            p.set_grad(Some(
                Tensor::from_vec(slice, value.dims().to_vec()).expect("bucket slice matches shape"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::run_workers;
    use crate::topology::ClusterTopology;

    fn param(name: &str, vals: Vec<f32>) -> Param {
        let n = vals.len();
        Param::new(name, Tensor::from_vec(vals, [n]).unwrap())
    }

    #[test]
    fn broadcast_copies_rank0_values_everywhere() {
        let out = run_workers(3, ClusterTopology::polaris(), |mut ctx| {
            let p = param("w", vec![ctx.rank() as f32; 4]);
            let mut ddp = DdpContext::new(vec![p.clone()]);
            ddp.broadcast_parameters(&mut ctx.comm);
            p.value().to_vec()
        });
        for vals in out {
            assert_eq!(vals, vec![0.0; 4]);
        }
    }

    #[test]
    fn averaging_fills_missing_grads_with_zeros() {
        let out = run_workers(2, ClusterTopology::polaris(), |mut ctx| {
            let p = param("w", vec![0.0; 2]);
            if ctx.rank() == 0 {
                p.set_grad(Some(Tensor::from_vec(vec![4.0, 8.0], [2]).unwrap()));
            } // rank 1: no grad — an exhausted rank meeting the collective
            let mut ddp = DdpContext::new(vec![p.clone()]);
            ddp.average_gradients(&mut ctx.comm);
            p.grad().unwrap().to_vec()
        });
        for vals in out {
            assert_eq!(vals, vec![2.0, 4.0], "mean of (grad, zeros)");
        }
    }
}
