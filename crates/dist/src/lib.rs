//! # st-dist
//!
//! The simulated distributed runtime behind PGT-I's headline contribution
//! (§4.2, §5.4): every "GPU worker" is an OS thread with its own model
//! replica and [`st_device::SimClock`]; collectives are barrier-synchronized
//! exchanges through a shared in-process hub that charge *modeled* Polaris
//! time (via [`st_device::CostModel`]) while keeping numerics bit-identical
//! regardless of thread scheduling.
//!
//! Modules:
//! - [`topology`] — cluster shape (ranks per node) deciding whether traffic
//!   rides NVLink or the inter-node network.
//! - [`launch`] — [`launch::run_workers`]: spawn one thread per rank, hand
//!   each a [`launch::WorkerCtx`] (communicator + clock), join in rank order.
//! - [`ddp`] — [`ddp::DdpContext`]: parameter broadcast and single-bucket
//!   gradient averaging; [`ddp::GradBuckets`]: byte-capped buckets in
//!   gradient-completion order, all-reduced as quoted collectives so the
//!   pipelined engine can hide them behind backward compute.
//! - [`shuffle`] — the paper's communication-free epoch shuffling: shared-
//!   seed global stripes, local and batch-order variants, and the partition
//!   arithmetic (`contiguous_partition`, `common_rounds`, `range_overlap`)
//!   that keeps ragged ranks aligned on collectives.
//! - [`datasvc`] — [`datasvc::DistributedArray`]: the Dask-style baseline
//!   data service (partitioned rows, on-demand batched fetches, remote-byte
//!   ledger).
//! - [`prefetch`] — [`prefetch::Prefetcher`]: double-buffered fetches that
//!   overlap the data plane with compute (§7).
//! - [`staleness`] — [`staleness::StalenessWindow`]: the bounded-staleness
//!   window over in-flight gradient collectives (apply-at-arrival with a
//!   hard fence at age `s`; `s = 0` is the synchronous path).
//! - [`wire`] — [`wire::WireCodec`]: optional compression of data-plane
//!   payloads (f16 / entry-axis-delta i8), honestly transcoded and
//!   ledger-accounted; lossless by default.

pub mod datasvc;
pub mod ddp;
pub mod launch;
pub mod prefetch;
pub mod shuffle;
pub mod staleness;
pub mod topology;
pub mod wire;

pub use datasvc::{DistributedArray, PartitionPolicy};
pub use ddp::{DdpContext, GradBuckets, DEFAULT_GRAD_BUCKET_BYTES};
pub use launch::{run_workers, Comm, CommHub, WorkerCtx};
pub use prefetch::Prefetcher;
pub use shuffle::ShuffleStrategy;
pub use staleness::StalenessWindow;
pub use topology::ClusterTopology;
pub use wire::WireCodec;
