//! Double-buffered fetch overlap (§7 future work, ablated in
//! `repro_ablation_prefetch`): issue the next fetch's *quote* (payload plus
//! modeled seconds), overlap those seconds with compute, and charge only
//! the exposed remainder when the consumer waits. Ledger bytes are
//! recorded at quote time by the data plane, so they are identical to
//! synchronous fetching — prefetching hides time, not traffic.
//!
//! [`Prefetcher`] is generic over the in-flight payload so any data plane
//! can use it: the training engine buffers whole `(x, y)` batches, while a
//! raw [`DistributedArray`](crate::datasvc::DistributedArray) consumer can
//! buffer row tensors quoted via `fetch_rows_quoted`.

use st_device::SimClock;

/// A depth-one double buffer over quoted fetches of payload type `T`.
pub struct Prefetcher<T> {
    /// In-flight fetch: the payload plus the not-yet-hidden seconds of its
    /// modeled transfer time.
    pending: Option<(T, f64)>,
}

impl<T> Default for Prefetcher<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Prefetcher<T> {
    /// An empty prefetcher (nothing in flight).
    pub fn new() -> Self {
        Prefetcher { pending: None }
    }

    /// Start an already-quoted fetch in the background: the payload exists
    /// (the simulation assembles it eagerly and its bytes are already on
    /// the data plane's ledger) but its `secs` of modeled transfer time are
    /// held back so compute can hide them via [`Prefetcher::overlap`].
    pub fn issue(&mut self, payload: T, secs: f64) {
        assert!(
            self.pending.is_none(),
            "double-buffer depth is one: wait() first"
        );
        self.pending = Some((payload, secs));
    }

    /// Credit `secs` of concurrent compute against the in-flight fetch —
    /// its exposed time shrinks, saturating at zero.
    pub fn overlap(&mut self, secs: f64) {
        if let Some((_, exposed)) = &mut self.pending {
            *exposed = (*exposed - secs).max(0.0);
        }
    }

    /// Whether a fetch is in flight.
    pub fn in_flight(&self) -> bool {
        self.pending.is_some()
    }

    /// Block on the in-flight fetch: charge whatever time compute did not
    /// hide, and hand back the payload.
    pub fn wait(&mut self, clock: &SimClock) -> T {
        let (payload, exposed) = self.pending.take().expect("no fetch in flight");
        if exposed > 0.0 {
            clock.advance_comm(exposed);
        }
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasvc::DistributedArray;
    use crate::topology::ClusterTopology;
    use st_device::CostModel;
    use st_tensor::Tensor;
    use std::sync::Arc;

    fn array(rows: usize) -> Arc<DistributedArray> {
        let t = Tensor::from_vec((0..rows * 2).map(|v| v as f32).collect(), [rows, 2]).unwrap();
        DistributedArray::new(t, 4, ClusterTopology::polaris(), 4)
    }

    #[test]
    fn full_overlap_hides_all_fetch_time() {
        let a = array(16);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let mut pf = Prefetcher::new();
        let (t, secs) = a.fetch_rows_quoted(0, &[12, 13], &cm); // remote rows
        assert!(secs > 0.0);
        pf.issue(t, secs);
        pf.overlap(10.0); // plenty of compute
        let out = pf.wait(&clock);
        assert_eq!(out.dims(), &[2, 2]);
        assert_eq!(clock.comm_secs(), 0.0, "fully hidden");
        assert!(a.remote_bytes() > 0, "bytes still on the ledger");
    }

    #[test]
    fn unhidden_remainder_is_charged() {
        let a = array(16);
        let cm = CostModel::polaris();
        let sync_clock = SimClock::new();
        a.fetch_rows(0, &[12, 13], &cm, &sync_clock);
        let sync_secs = sync_clock.comm_secs();
        assert!(sync_secs > 0.0);

        let clock = SimClock::new();
        let mut pf = Prefetcher::new();
        let (t, secs) = a.fetch_rows_quoted(0, &[12, 13], &cm);
        pf.issue(t, secs);
        pf.overlap(sync_secs / 2.0);
        pf.wait(&clock);
        let exposed = clock.comm_secs();
        assert!(
            exposed > 0.0 && exposed < sync_secs,
            "half hidden: {exposed} vs {sync_secs}"
        );
    }

    #[test]
    fn payloads_are_generic_over_fetch_type() {
        // The engine's use: buffer a whole (x, y) pair as one payload.
        let x = array(8);
        let y = array(8);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let mut pf = Prefetcher::new();
        let (xb, xs) = x.fetch_rows_quoted(0, &[0, 1], &cm);
        let (yb, ys) = y.fetch_rows_quoted(0, &[0, 1], &cm);
        assert!(!pf.in_flight());
        pf.issue((xb, yb), xs + ys);
        assert!(pf.in_flight());
        let (xb, yb) = pf.wait(&clock);
        assert_eq!(xb.dims(), &[2, 2]);
        assert_eq!(yb.dims(), &[2, 2]);
        assert!(!pf.in_flight());
    }
}
