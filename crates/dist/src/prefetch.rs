//! Double-buffered batch prefetching (§7 future work, ablated in
//! `repro_ablation_prefetch`): issue the next batch's fetch, overlap its
//! modeled time with compute, and charge only the *exposed* remainder when
//! the consumer waits. Bytes on the [`DistributedArray`] ledger are
//! identical to synchronous fetching — prefetching hides time, not traffic.

use crate::datasvc::DistributedArray;
use st_device::{CostModel, SimClock};
use st_tensor::Tensor;
use std::sync::Arc;

/// Double-buffers fetches from a set of parallel arrays (e.g. the x and y
/// halves of a materialized dataset) for one rank.
pub struct Prefetcher {
    arrays: Vec<Arc<DistributedArray>>,
    rank: usize,
    cost: CostModel,
    /// In-flight fetch: tensors (one per array, in `arrays` order) plus the
    /// not-yet-hidden seconds of its modeled transfer time.
    pending: Option<(Vec<Tensor>, f64)>,
}

impl Prefetcher {
    /// A prefetcher for `rank` over `arrays` (fetches hit every array with
    /// the same indices).
    pub fn new(arrays: Vec<Arc<DistributedArray>>, rank: usize, cost: CostModel) -> Self {
        Prefetcher {
            arrays,
            rank,
            cost,
            pending: None,
        }
    }

    /// Start fetching `indices` in the background. Ledger bytes are
    /// recorded immediately (the traffic is real either way); the modeled
    /// seconds are held back so compute can hide them via
    /// [`Prefetcher::overlap`].
    pub fn issue(&mut self, indices: &[usize]) {
        assert!(
            self.pending.is_none(),
            "double-buffer depth is one: wait() first"
        );
        let mut tensors = Vec::with_capacity(self.arrays.len());
        let mut secs = 0.0;
        for array in &self.arrays {
            let (t, s) = array.fetch_rows_quoted(self.rank, indices, &self.cost);
            tensors.push(t);
            secs += s;
        }
        self.pending = Some((tensors, secs));
    }

    /// Credit `secs` of concurrent compute against the in-flight fetch —
    /// its exposed time shrinks, saturating at zero.
    pub fn overlap(&mut self, secs: f64) {
        if let Some((_, exposed)) = &mut self.pending {
            *exposed = (*exposed - secs).max(0.0);
        }
    }

    /// Block on the in-flight fetch: charge whatever time compute did not
    /// hide, and hand back the tensors (in the order `arrays` were given).
    pub fn wait(&mut self, clock: &SimClock) -> Vec<Tensor> {
        let (tensors, exposed) = self.pending.take().expect("no fetch in flight");
        if exposed > 0.0 {
            clock.advance_comm(exposed);
        }
        tensors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterTopology;

    fn array(rows: usize) -> Arc<DistributedArray> {
        let t = Tensor::from_vec((0..rows * 2).map(|v| v as f32).collect(), [rows, 2]).unwrap();
        DistributedArray::new(t, 4, ClusterTopology::polaris(), 4)
    }

    #[test]
    fn full_overlap_hides_all_fetch_time() {
        let a = array(16);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let mut pf = Prefetcher::new(vec![a.clone()], 0, cm);
        pf.issue(&[12, 13]); // remote rows
        pf.overlap(10.0); // plenty of compute
        let out = pf.wait(&clock);
        assert_eq!(out.len(), 1);
        assert_eq!(clock.comm_secs(), 0.0, "fully hidden");
        assert!(a.remote_bytes() > 0, "bytes still on the ledger");
    }

    #[test]
    fn unhidden_remainder_is_charged() {
        let a = array(16);
        let cm = CostModel::polaris();
        let sync_clock = SimClock::new();
        a.fetch_rows(0, &[12, 13], &cm, &sync_clock);
        let sync_secs = sync_clock.comm_secs();
        assert!(sync_secs > 0.0);

        let clock = SimClock::new();
        let mut pf = Prefetcher::new(vec![a], 0, cm);
        pf.issue(&[12, 13]);
        pf.overlap(sync_secs / 2.0);
        pf.wait(&clock);
        let exposed = clock.comm_secs();
        assert!(
            exposed > 0.0 && exposed < sync_secs,
            "half hidden: {exposed} vs {sync_secs}"
        );
    }

    #[test]
    fn wait_returns_tensors_in_array_order() {
        let x = array(8);
        let y = array(8);
        let cm = CostModel::polaris();
        let clock = SimClock::new();
        let mut pf = Prefetcher::new(vec![x, y], 0, cm);
        pf.issue(&[0, 1]);
        let mut out = pf.wait(&clock);
        assert_eq!(out.len(), 2);
        let _y = out.pop().unwrap();
        let _x = out.pop().unwrap();
    }
}
