//! Cluster shape: how many ranks share a node (and therefore NVLink).

/// Shape of the simulated cluster. Ranks are packed onto nodes in order:
/// ranks `[k·g, (k+1)·g)` share node `k` for `g = gpus_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterTopology {
    /// Ranks (GPUs) per node; intra-node traffic rides NVLink.
    pub gpus_per_node: usize,
}

impl ClusterTopology {
    /// A topology with `gpus_per_node` ranks per node.
    pub fn new(gpus_per_node: usize) -> Self {
        assert!(gpus_per_node > 0, "nodes must hold at least one rank");
        ClusterTopology { gpus_per_node }
    }

    /// ALCF Polaris: 4 × A100 per node (§3.1).
    pub fn polaris() -> Self {
        ClusterTopology::new(4)
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Whether two ranks share a node (traffic stays on NVLink).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of nodes needed for `world` ranks.
    pub fn nodes_for(&self, world: usize) -> usize {
        world.div_ceil(self.gpus_per_node)
    }
}

impl Default for ClusterTopology {
    fn default() -> Self {
        ClusterTopology::polaris()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polaris_packs_four_per_node() {
        let t = ClusterTopology::polaris();
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert_eq!(t.node_of(9), 2);
        assert_eq!(t.nodes_for(9), 3);
    }
}
