//! Wire compression for data-plane payloads (the DGC-style direction in
//! PAPERS.md, applied to *data* rather than gradients).
//!
//! Remote row fetches in the data service ([`crate::datasvc`]) and the
//! generalized mode's halo/entry reads ship `[rows, width]` f32 blocks. A
//! [`WireCodec`] decides how those blocks travel:
//!
//! - [`WireCodec::Lossless`] — raw scalars at the modeled element width
//!   (float64 for the paper's Dask baseline). The default; bit-exact, so
//!   every engine golden is codec-invariant.
//! - [`WireCodec::F16`] — each scalar as IEEE binary16: exactly half the
//!   f32 bytes (or ¼ of a float64 payload), ~2⁻¹¹ relative error.
//! - [`WireCodec::DeltaI8`] — delta encoding along the entry axis + signed
//!   8-bit quantization: the base row and the per-row deltas each carry one
//!   f32 scale, every scalar costs one byte (≈4× under f32 accounting, 8×
//!   under float64). Deltas are taken against the *decoded* previous row,
//!   so quantization error cannot accumulate along the block.
//!
//! Encoding is simulated the honest way: payload bytes on the ledger use
//! the encoded size, and lossy codecs really transcode (encode → decode)
//! the delivered rows so training sees exactly what a receiver would.

use st_tensor::half::f16_round_trip;

/// How remote data-plane rows are encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCodec {
    /// Raw scalars at the array's modeled element width (default).
    Lossless,
    /// IEEE binary16 per scalar — 2 bytes each.
    F16,
    /// Entry-axis delta encoding, 8-bit quantized — 1 byte per scalar plus
    /// an 8-byte per-message scale header.
    DeltaI8,
}

impl WireCodec {
    /// True when delivered rows are bit-identical to the stored rows.
    pub fn is_lossless(&self) -> bool {
        matches!(self, WireCodec::Lossless)
    }

    /// Encoded bytes for one per-owner message of `rows` rows of
    /// `row_scalars` scalars, where a raw scalar would cost `elem_bytes`.
    pub fn payload_bytes(&self, rows: u64, row_scalars: u64, elem_bytes: u64) -> u64 {
        match self {
            WireCodec::Lossless => rows * row_scalars * elem_bytes,
            WireCodec::F16 => rows * row_scalars * 2,
            // [scale_base f32][scale_delta f32] + 1 byte per scalar.
            WireCodec::DeltaI8 => {
                if rows == 0 {
                    0
                } else {
                    8 + rows * row_scalars
                }
            }
        }
    }

    /// Transcode (encode → decode) a `[rows, width]` block in place: after
    /// the call, `data` holds what the receiver of this message would see.
    /// A no-op for [`WireCodec::Lossless`].
    pub fn transcode_rows(&self, data: &mut [f32], width: usize) {
        match self {
            WireCodec::Lossless => {}
            WireCodec::F16 => {
                for v in data.iter_mut() {
                    *v = f16_round_trip(*v);
                }
            }
            WireCodec::DeltaI8 => {
                if data.is_empty() || width == 0 {
                    return;
                }
                assert_eq!(data.len() % width, 0, "whole rows only");
                let rows = data.len() / width;
                // Base row: per-message max-abs scale.
                let base_max = data[..width].iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let s_base = if base_max > 0.0 {
                    base_max / 127.0
                } else {
                    1.0
                };
                for v in data[..width].iter_mut() {
                    *v = (*v / s_base).round().clamp(-127.0, 127.0) * s_base;
                }
                if rows == 1 {
                    return;
                }
                // Delta scale from the raw consecutive-row differences (a
                // cheap deterministic estimate; clamping bounds the rest).
                let mut delta_max = 0.0f32;
                for t in 1..rows {
                    for c in 0..width {
                        delta_max =
                            delta_max.max((data[t * width + c] - data[(t - 1) * width + c]).abs());
                    }
                }
                let s_delta = if delta_max > 0.0 {
                    delta_max / 127.0
                } else {
                    1.0
                };
                // Sequential: quantize each row's delta against the *decoded*
                // previous row so error never accumulates.
                for t in 1..rows {
                    for c in 0..width {
                        let prev = data[(t - 1) * width + c];
                        let d = data[t * width + c] - prev;
                        let q = (d / s_delta).round().clamp(-127.0, 127.0);
                        data[t * width + c] = prev + q * s_delta;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_is_identity_and_full_width() {
        let mut v = vec![1.5f32, -2.25, 0.0, 7.125];
        let before = v.clone();
        WireCodec::Lossless.transcode_rows(&mut v, 2);
        assert_eq!(v, before);
        assert_eq!(WireCodec::Lossless.payload_bytes(4, 3, 8), 96);
    }

    #[test]
    fn f16_halves_bytes_at_half_precision() {
        assert_eq!(WireCodec::F16.payload_bytes(4, 3, 4), 24);
        let mut v: Vec<f32> = (0..64).map(|i| (i as f32 * 0.13).sin() * 50.0).collect();
        let orig = v.clone();
        WireCodec::F16.transcode_rows(&mut v, 8);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() <= b.abs() / 2048.0 + 1e-6);
        }
    }

    #[test]
    fn delta_i8_quarters_bytes_without_error_accumulation() {
        assert_eq!(WireCodec::DeltaI8.payload_bytes(10, 4, 4), 48);
        assert_eq!(WireCodec::DeltaI8.payload_bytes(0, 4, 4), 0);
        // A smooth entry-axis series (what temporal signals look like):
        // deltas are small, so even the last row stays close.
        let width = 4;
        let rows = 50;
        let mut v = Vec::with_capacity(rows * width);
        for t in 0..rows {
            for c in 0..width {
                v.push((t as f32 * 0.05 + c as f32).sin() * 10.0);
            }
        }
        let orig = v.clone();
        WireCodec::DeltaI8.transcode_rows(&mut v, width);
        let max_abs = orig.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let max_delta = (1..rows)
            .flat_map(|t| (0..width).map(move |c| (t, c)))
            .fold(0.0f32, |m, (t, c)| {
                m.max((orig[t * width + c] - orig[(t - 1) * width + c]).abs())
            });
        // Per-step error ≤ base step + one delta step (sequential decode
        // re-anchors every row, so steps don't compound).
        let bound = max_abs / 127.0 + max_delta / 127.0 + 1e-5;
        for (t, (a, b)) in v.iter().zip(&orig).enumerate() {
            assert!((a - b).abs() <= bound, "row-scalar {t}: {b} -> {a}");
        }
    }

    #[test]
    fn delta_i8_single_row_is_plain_quantization() {
        let mut v = vec![12.7f32, -6.35, 0.0];
        WireCodec::DeltaI8.transcode_rows(&mut v, 3);
        assert!((v[0] - 12.7).abs() <= 12.7 / 127.0 + 1e-6);
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn constant_blocks_survive_exactly() {
        // All-zero deltas and a zero base quantize exactly.
        let mut v = vec![0.0f32; 12];
        WireCodec::DeltaI8.transcode_rows(&mut v, 3);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
