//! The DDP correctness property (§4.2): averaging per-worker gradients over
//! equal sub-batches is mathematically identical to computing the gradient
//! of the same mean loss on the concatenated batch. This is the distributed
//! analogue of `crates/autograd/tests/gradcheck.rs` — there the backward
//! rules are pinned against finite differences; here the *collective* is
//! pinned against the single-worker autograd result.

use st_autograd::module::Param;
use st_autograd::{loss, ops, Tape};
use st_dist::{run_workers, ClusterTopology, DdpContext};
use st_tensor::Tensor;

const DIM: usize = 5;
const PER_WORKER: usize = 4;

/// Deterministic pseudo-random inputs (shared by both sides of the check).
fn data(world: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = world * PER_WORKER;
    let xs: Vec<f32> = (0..n * DIM)
        .map(|i| ((i.wrapping_mul(2_654_435_761) >> 7) % 1000) as f32 / 500.0 - 1.0)
        .collect();
    let ys: Vec<f32> = (0..n).map(|i| (i % 7) as f32 / 3.0 - 1.0).collect();
    let w0: Vec<f32> = (0..DIM).map(|i| 0.05 * (i as f32 + 1.0)).collect();
    (xs, ys, w0)
}

/// Gradient of mean-squared error of `y = X·w` on one batch.
fn reference_grad(xs: &[f32], ys: &[f32], w0: &[f32], rows: usize) -> Vec<f32> {
    let p = Param::new("w", Tensor::from_vec(w0.to_vec(), [DIM, 1]).unwrap());
    let tape = Tape::new();
    let x = tape.constant(Tensor::from_vec(xs.to_vec(), [rows, DIM]).unwrap());
    let target = tape.constant(Tensor::from_vec(ys.to_vec(), [rows, 1]).unwrap());
    let w = tape.param(&p);
    let pred = ops::matmul(&x, &w);
    let l = loss::mse(&pred, &target);
    let grads = tape.backward(&l);
    tape.accumulate_param_grads(&grads);
    p.grad().expect("reference gradient").to_vec()
}

#[test]
fn averaged_gradients_match_concatenated_batch() {
    for world in [1usize, 2, 3, 4] {
        let (xs, ys, w0) = data(world);
        let want = reference_grad(&xs, &ys, &w0, world * PER_WORKER);

        let results = run_workers(world, ClusterTopology::polaris(), |mut ctx| {
            let r = ctx.rank();
            let p = Param::new("w", Tensor::from_vec(w0.clone(), [DIM, 1]).unwrap());
            let mut ddp = DdpContext::new(vec![p.clone()]);
            ddp.broadcast_parameters(&mut ctx.comm);

            let tape = Tape::new();
            let x = tape.constant(
                Tensor::from_vec(
                    xs[r * PER_WORKER * DIM..(r + 1) * PER_WORKER * DIM].to_vec(),
                    [PER_WORKER, DIM],
                )
                .unwrap(),
            );
            let target = tape.constant(
                Tensor::from_vec(
                    ys[r * PER_WORKER..(r + 1) * PER_WORKER].to_vec(),
                    [PER_WORKER, 1],
                )
                .unwrap(),
            );
            let w = tape.param(&p);
            let pred = ops::matmul(&x, &w);
            let l = loss::mse(&pred, &target);
            let grads = tape.backward(&l);
            tape.accumulate_param_grads(&grads);
            ddp.average_gradients(&mut ctx.comm);
            p.grad().expect("averaged gradient").to_vec()
        });

        for (rank, got) in results.iter().enumerate() {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() <= 1e-5 * w.abs().max(1.0),
                    "world={world} rank={rank}: averaged {g} vs concatenated {w}"
                );
            }
        }
    }
}

#[test]
fn all_ranks_hold_identical_gradients_after_averaging() {
    let world = 3;
    let (xs, ys, w0) = data(world);
    let results = run_workers(world, ClusterTopology::polaris(), |mut ctx| {
        let r = ctx.rank();
        let p = Param::new("w", Tensor::from_vec(w0.clone(), [DIM, 1]).unwrap());
        let mut ddp = DdpContext::new(vec![p.clone()]);
        let tape = Tape::new();
        let x = tape.constant(
            Tensor::from_vec(
                xs[r * PER_WORKER * DIM..(r + 1) * PER_WORKER * DIM].to_vec(),
                [PER_WORKER, DIM],
            )
            .unwrap(),
        );
        let target = tape.constant(
            Tensor::from_vec(
                ys[r * PER_WORKER..(r + 1) * PER_WORKER].to_vec(),
                [PER_WORKER, 1],
            )
            .unwrap(),
        );
        let w = tape.param(&p);
        let l = loss::mse(&ops::matmul(&x, &w), &target);
        let grads = tape.backward(&l);
        tape.accumulate_param_grads(&grads);
        ddp.average_gradients(&mut ctx.comm);
        p.grad().unwrap().to_vec()
    });
    // Bit-identical across ranks: the collective combines in rank order.
    for r in 1..world {
        assert_eq!(results[0], results[r], "rank {r} diverged from rank 0");
    }
}
