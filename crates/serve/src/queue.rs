//! Micro-batching: coalesce concurrent forecast requests into batched
//! forward passes.
//!
//! Serving traffic arrives one request at a time, but the model amortizes
//! per-launch fixed costs (kernel latency, halo round-trips) across a
//! batch. [`coalesce`] implements the standard micro-batching policy over
//! *modeled* time: an open batch dispatches when it holds `max_batch`
//! distinct windows (full — dispatched the instant the filling request
//! arrives) or when its oldest request has waited `max_delay_secs` (timer —
//! dispatched at the deadline). Requests for the **same** window share one
//! batch slot: the forward computes each distinct window once no matter how
//! many users asked about it.
//!
//! The function is pure — arrival times in, dispatch schedule out — so the
//! policy is deterministic and unit-testable; the sharded server replays
//! the schedule against its simulated clock.

/// Micro-batching policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Maximum distinct request windows per batched forward.
    pub max_batch: usize,
    /// Maximum modeled seconds the oldest request may wait before its
    /// batch dispatches anyway.
    pub max_delay_secs: f64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_batch: 32,
            max_delay_secs: 5e-3,
        }
    }
}

/// One enqueued forecast request.
#[derive(Debug, Clone, Copy)]
pub struct PendingRequest {
    /// Caller-side id (index into the submitter's request list).
    pub id: usize,
    /// Modeled arrival time, seconds.
    pub arrival_secs: f64,
    /// Input window end (exclusive stream time).
    pub window_end: usize,
}

/// One coalesced batch: the requests it answers and the distinct windows
/// its single forward pass must compute.
#[derive(Debug, Clone)]
pub struct MicroBatch {
    /// Modeled dispatch time, seconds.
    pub dispatch_secs: f64,
    /// Request ids answered by this batch, in arrival order.
    pub requests: Vec<usize>,
    /// Distinct window ends, in first-seen order; `window_of[i]` indexes
    /// into this for request `i` of `requests`.
    pub windows: Vec<usize>,
    /// Per-request index into `windows`.
    pub window_of: Vec<usize>,
}

/// Coalesce arrival-ordered requests into dispatchable micro-batches.
///
/// Panics if arrivals are not non-decreasing — the queue models a single
/// shard's inbox, which observes time monotonically.
pub fn coalesce(requests: &[PendingRequest], cfg: &QueueConfig) -> Vec<MicroBatch> {
    assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
    assert!(cfg.max_delay_secs >= 0.0, "max_delay must be non-negative");
    let mut batches = Vec::new();
    let mut open: Option<MicroBatch> = None;
    let mut deadline = f64::INFINITY;
    for (i, r) in requests.iter().enumerate() {
        if i > 0 {
            assert!(
                r.arrival_secs >= requests[i - 1].arrival_secs,
                "requests must be sorted by arrival"
            );
        }
        // The timer fires before this arrival: flush at the deadline.
        if let Some(b) = open.take_if(|_| r.arrival_secs > deadline) {
            batches.push(b);
        }
        let b = open.get_or_insert_with(|| {
            deadline = r.arrival_secs + cfg.max_delay_secs;
            MicroBatch {
                dispatch_secs: deadline,
                requests: Vec::new(),
                windows: Vec::new(),
                window_of: Vec::new(),
            }
        });
        let slot = match b.windows.iter().position(|&w| w == r.window_end) {
            Some(s) => s,
            None => {
                b.windows.push(r.window_end);
                b.windows.len() - 1
            }
        };
        b.requests.push(r.id);
        b.window_of.push(slot);
        // Full: dispatch immediately, at the arrival that filled it.
        if b.windows.len() >= cfg.max_batch {
            let mut b = open.take().expect("just inserted");
            b.dispatch_secs = r.arrival_secs;
            batches.push(b);
            deadline = f64::INFINITY;
        }
    }
    // The stream ended; the last open batch waits out its timer.
    if let Some(b) = open {
        batches.push(b);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, at: f64, window: usize) -> PendingRequest {
        PendingRequest {
            id,
            arrival_secs: at,
            window_end: window,
        }
    }

    #[test]
    fn full_batches_dispatch_at_the_filling_arrival() {
        let cfg = QueueConfig {
            max_batch: 2,
            max_delay_secs: 10.0,
        };
        let rs = [req(0, 0.0, 10), req(1, 0.5, 11), req(2, 0.6, 12)];
        let bs = coalesce(&rs, &cfg);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].requests, vec![0, 1]);
        assert_eq!(bs[0].dispatch_secs, 0.5, "dispatched when filled");
        // The trailing partial batch waits out its timer.
        assert_eq!(bs[1].requests, vec![2]);
        assert_eq!(bs[1].dispatch_secs, 0.6 + 10.0);
    }

    #[test]
    fn timer_flushes_a_stale_batch() {
        let cfg = QueueConfig {
            max_batch: 8,
            max_delay_secs: 1.0,
        };
        let rs = [req(0, 0.0, 10), req(1, 0.2, 11), req(2, 5.0, 12)];
        let bs = coalesce(&rs, &cfg);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].requests, vec![0, 1]);
        assert_eq!(bs[0].dispatch_secs, 1.0, "timer fires at open + delay");
        assert_eq!(bs[1].requests, vec![2]);
    }

    #[test]
    fn duplicate_windows_share_a_slot() {
        let cfg = QueueConfig {
            max_batch: 2,
            max_delay_secs: 1.0,
        };
        // Three users ask about window 10 — one forward slot, max_batch
        // counts distinct windows so the batch is NOT full yet.
        let rs = [req(0, 0.0, 10), req(1, 0.1, 10), req(2, 0.2, 10)];
        let bs = coalesce(&rs, &cfg);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].windows, vec![10]);
        assert_eq!(bs[0].requests, vec![0, 1, 2]);
        assert_eq!(bs[0].window_of, vec![0, 0, 0]);
    }

    #[test]
    fn arrival_exactly_at_deadline_joins_the_batch() {
        let cfg = QueueConfig {
            max_batch: 8,
            max_delay_secs: 1.0,
        };
        let rs = [req(0, 0.0, 10), req(1, 1.0, 11)];
        let bs = coalesce(&rs, &cfg);
        assert_eq!(bs.len(), 1, "t == deadline is still in time");
    }

    #[test]
    fn max_batch_one_degenerates_to_per_request_dispatch() {
        let cfg = QueueConfig {
            max_batch: 1,
            max_delay_secs: 9.0,
        };
        let rs = [req(0, 0.0, 10), req(1, 0.5, 10), req(2, 0.7, 11)];
        let bs = coalesce(&rs, &cfg);
        assert_eq!(bs.len(), 3);
        for (b, r) in bs.iter().zip(&rs) {
            assert_eq!(b.dispatch_secs, r.arrival_secs, "no coalescing delay");
        }
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_arrivals_are_rejected() {
        let cfg = QueueConfig::default();
        coalesce(&[req(0, 1.0, 10), req(1, 0.5, 11)], &cfg);
    }

    #[test]
    fn empty_stream_yields_no_batches() {
        assert!(coalesce(&[], &QueueConfig::default()).is_empty());
    }
}
