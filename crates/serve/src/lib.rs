//! # st-serve
//!
//! Forward-only batched inference on top of trained PGT-I artifacts — the
//! deployment half the training crates never had. The design transplants
//! the paper's two load-bearing ideas to serving:
//!
//! - **Index-batching at inference time** ([`window::RollingWindow`]): a
//!   deployed forecaster holds *one* rolling `[E, N, F]` signal buffer and
//!   answers every window query as a zero-copy, index-addressed view —
//!   exactly the `IndexDataset` trick (§4.1), applied to a live stream
//!   instead of a training set.
//! - **Static partition-parallel execution** ([`shard::BatchedServer`]):
//!   the graph is partitioned once and each shard statically owns its
//!   nodes' queries (DistTGL's serving-side lesson: never repartition per
//!   query). Shards run concurrently under `st_dist::run_workers`, with
//!   halo reads for non-owned signal rows charged to a traffic ledger.
//!
//! Between the two sits [`queue::coalesce`], a micro-batching request
//! queue: concurrent forecast requests are coalesced into batched
//! **tape-free** forward passes ([`st_models::Seq2Seq::forward_inference`],
//! which allocates no autograd graph) under a `max_batch` / `max_delay`
//! policy, so per-batch fixed costs amortize across requests.
//!
//! [`snapshot::ModelSnapshot`] is the handoff format: trained parameters
//! (the engine's checkpoint state-dict), the `ModelConfig`, the fitted
//! `StandardScaler`, and split metadata in one versioned, checksummed file.
//! The round-trip contract — snapshot, load, serve — is bit-identical to
//! the trainer's own evaluation forward pass, and the integration tests
//! pin exactly that.

pub mod queue;
pub mod shard;
pub mod snapshot;
pub mod window;

pub use queue::{coalesce, MicroBatch, PendingRequest, QueueConfig};
pub use shard::{BatchedServer, Query, QueryResult, ServeConfig, ServeReport};
pub use snapshot::{ModelSnapshot, SnapshotError};
pub use window::RollingWindow;
