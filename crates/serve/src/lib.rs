//! # st-serve
//!
//! Forward-only batched inference on top of trained PGT-I artifacts — the
//! deployment half the training crates never had. The design transplants
//! the paper's two load-bearing ideas to serving:
//!
//! - **Index-batching at inference time** ([`window::RollingWindow`]): a
//!   deployed forecaster holds *one* rolling `[E, N, F]` signal buffer and
//!   answers every window query as a zero-copy, index-addressed view —
//!   exactly the `IndexDataset` trick (§4.1), applied to a live stream
//!   instead of a training set.
//! - **Static partition-parallel execution** ([`shard::BatchedServer`]):
//!   the graph is partitioned once and each shard statically owns its
//!   nodes' queries (DistTGL's serving-side lesson: never repartition per
//!   query). Shards run concurrently under `st_dist::run_workers`, with
//!   halo reads for non-owned signal rows charged to a traffic ledger.
//!
//! Between the two sits [`queue::coalesce`], a micro-batching request
//! queue: concurrent forecast requests are coalesced into batched
//! **tape-free** forward passes ([`st_models::Seq2Seq::forward_inference`],
//! which allocates no autograd graph) under a `max_batch` / `max_delay`
//! policy, so per-batch fixed costs amortize across requests.
//!
//! [`snapshot::ModelSnapshot`] is the handoff format: trained parameters
//! (the engine's checkpoint state-dict), the `ModelConfig`, the fitted
//! `StandardScaler`, and split metadata in one versioned, checksummed file.
//! The round-trip contract — snapshot, load, serve — is bit-identical to
//! the trainer's own evaluation forward pass, and the integration tests
//! pin exactly that.
//!
//! The production serving plane wraps the core in three layers
//! (DESIGN.md §11):
//!
//! - **Live ingest** ([`ingest::StreamIngest`]): per-node tick streams
//!   staged behind per-node watermarks; a row enters the ring only once
//!   every node has delivered it, so servability is monotone and a query
//!   whose window outruns ingest gets a typed
//!   [`error::ServeError::NotYetServable`].
//! - **SLO admission control** ([`slo::admit_and_coalesce`]): the
//!   micro-batch queue gains a bounded depth and a deadline gate priced
//!   through the same [`st_device::CostModel`] deadline streams the shard
//!   executor replays — overload sheds typed [`slo::Shed`] rejections
//!   instead of letting tail latency grow without bound.
//! - **Multi-tenant hot-swap** ([`registry::SnapshotRegistry`]): many
//!   deployments per process behind atomic `Arc` swaps; a retrained
//!   snapshot hot-reloads with its forwards pinned bit-identical to a
//!   cold deploy.
//!
//! ## Deploying a snapshot in one example
//!
//! ```
//! use st_autograd::Module;
//! use st_data::scaler::StandardScaler;
//! use st_graph::{diffusion_supports, generators};
//! use st_models::{ModelConfig, PgtDcrnn, Support};
//! use st_serve::{BatchedServer, ModelSnapshot, Query, ServeConfig};
//! use st_tensor::Tensor;
//!
//! // A (toy) trained model over an 8-sensor corridor…
//! let net = generators::highway_corridor(8, 1, 5);
//! let cfg = ModelConfig {
//!     input_dim: 1, output_dim: 1, hidden: 4, num_nodes: 8,
//!     horizon: 3, diffusion_steps: 2, layers: 1,
//! };
//! let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
//! let model = PgtDcrnn::new(cfg.clone(), &supports, 7);
//! let snap = ModelSnapshot::capture(
//!     cfg, StandardScaler::identity(), None, &model.params(), 1);
//!
//! // …served across 2 shards routed by the multilevel partitioner.
//! let history = Tensor::arange(20 * 8).reshape([20, 8, 1]).unwrap();
//! let server = BatchedServer::with_history(
//!     snap, net.adjacency.clone(), &history, ServeConfig::new(2, 20));
//! let report = server.serve(&[Query {
//!     id: 1, node: 3, window_end: 10, arrival_secs: 0.0,
//! }]);
//! assert_eq!(report.results.len(), 1);
//! assert_eq!(report.results[0].forecast.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod ingest;
pub mod queue;
pub mod registry;
pub mod shard;
pub mod slo;
pub mod snapshot;
pub mod window;

pub use error::ServeError;
pub use ingest::{IngestError, StreamIngest, Tick};
pub use queue::{coalesce, MicroBatch, PendingRequest, QueueConfig};
pub use registry::SnapshotRegistry;
pub use shard::{
    BatchedServer, Query, QueryResult, Rejection, ServeConfig, ServeReport, ShardStats,
};
pub use slo::{admit_and_coalesce, BatchCost, Shed, ShedReason, SloConfig, SloSchedule};
pub use snapshot::{ModelSnapshot, SnapshotError};
pub use window::RollingWindow;
