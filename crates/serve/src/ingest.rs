//! Live streaming ingest: append-only per-node tick streams feeding the
//! rolling ring through per-node watermarks.
//!
//! Production readings do not arrive as complete `[N, F]` rows — each
//! sensor (node) reports on its own schedule. [`StreamIngest`] accepts one
//! [`Tick`] at a time (one node's reading for one stream instant), stages
//! partial rows, and releases a row to the ring only once **every** node
//! has delivered it. The release frontier is the minimum per-node
//! watermark, so admission into [`crate::RollingWindow`] is monotone by
//! construction and a query is servable exactly when all the nodes it
//! reads have passed its `window_end`.
//!
//! Two typed guard rails keep an open stream healthy:
//!
//! - **per-node monotonicity** — a node's stream is append-only; a tick
//!   that is not the node's next expected instant is rejected
//!   ([`IngestError::OutOfOrder`]) without perturbing any state;
//! - **bounded skew** — a fast node may run at most `max_skew` rows ahead
//!   of the slowest node ([`IngestError::SkewBound`]), bounding the
//!   staging buffer the way a bounded queue bounds admission: a dead
//!   sensor stalls the frontier instead of ballooning memory.

use st_tensor::Tensor;
use std::collections::VecDeque;

/// One node's reading for one stream instant, in **original units**.
#[derive(Debug, Clone, PartialEq)]
pub struct Tick {
    /// The reporting node.
    pub node: usize,
    /// Stream time of the reading (must be the node's next expected
    /// instant — per-node streams are append-only).
    pub t: usize,
    /// The node's feature vector at `t` (`features` scalars).
    pub values: Vec<f32>,
}

/// Why a tick was rejected. Rejections never mutate ingest state — the
/// stream stays exactly where it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The tick names a node outside the deployment's graph.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the deployment.
        nodes: usize,
    },
    /// The tick's feature vector has the wrong length.
    BadFeatureCount {
        /// Length delivered.
        got: usize,
        /// Length the signal schema requires.
        want: usize,
    },
    /// The tick is not the node's next expected instant (duplicate,
    /// regression, or gap — per-node streams are append-only).
    OutOfOrder {
        /// The reporting node.
        node: usize,
        /// Stream time delivered.
        t: usize,
        /// The node's watermark (next expected instant).
        expected: usize,
    },
    /// Admitting the tick would let its node run more than `max_skew`
    /// rows ahead of the slowest node.
    SkewBound {
        /// The reporting node.
        node: usize,
        /// Stream time delivered.
        t: usize,
        /// The current admission frontier (fully-admitted rows).
        frontier: usize,
        /// The configured skew bound.
        max_skew: usize,
    },
    /// A whole-row admission was attempted while partial rows are staged
    /// (the two admission paths cannot interleave mid-row).
    PartialRowsInFlight {
        /// Rows currently staged beyond the frontier.
        staged: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::NodeOutOfRange { node, nodes } => {
                write!(f, "tick names node {node} of a {nodes}-node deployment")
            }
            IngestError::BadFeatureCount { got, want } => {
                write!(f, "tick carries {got} features, schema wants {want}")
            }
            IngestError::OutOfOrder { node, t, expected } => write!(
                f,
                "node {node} delivered t={t}, watermark expects t={expected}"
            ),
            IngestError::SkewBound {
                node,
                t,
                frontier,
                max_skew,
            } => write!(
                f,
                "node {node} at t={t} would run more than {max_skew} rows \
                 ahead of the frontier {frontier}"
            ),
            IngestError::PartialRowsInFlight { staged } => {
                write!(f, "{staged} partial rows staged; drain ticks first")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// One staged (not yet complete) stream row.
#[derive(Debug, Clone)]
struct StagedRow {
    /// Row-major `[nodes, features]` scratch, original units.
    data: Vec<f32>,
    /// Nodes that have delivered this row.
    filled: usize,
}

/// Per-node watermark tracking and partial-row staging for an append-only
/// tick stream. Completed rows come back out in stream order, ready for
/// [`crate::RollingWindow::admit`].
#[derive(Debug, Clone)]
pub struct StreamIngest {
    nodes: usize,
    features: usize,
    max_skew: usize,
    /// `watermarks[n]` = the next stream instant node `n` must deliver
    /// (it has delivered everything before it). Monotone non-decreasing.
    watermarks: Vec<usize>,
    /// Rows `frontier .. frontier + staged.len()`, oldest first.
    staged: VecDeque<StagedRow>,
    /// Rows fully delivered and released, `== min(watermarks)`.
    frontier: usize,
}

impl StreamIngest {
    /// An ingest front for `nodes × features` readings starting at stream
    /// time 0, allowing any node to run at most `max_skew` rows ahead of
    /// the slowest (`max_skew ≥ 1`).
    pub fn new(nodes: usize, features: usize, max_skew: usize) -> Self {
        StreamIngest::with_start(nodes, features, max_skew, 0)
    }

    /// [`StreamIngest::new`], but the stream resumes at absolute time
    /// `start` — the seeded-history case, where rows `0..start` were
    /// admitted wholesale before going live.
    pub fn with_start(nodes: usize, features: usize, max_skew: usize, start: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(features > 0, "need at least one feature");
        assert!(max_skew >= 1, "max_skew must be at least 1");
        StreamIngest {
            nodes,
            features,
            max_skew,
            watermarks: vec![start; nodes],
            staged: VecDeque::new(),
            frontier: start,
        }
    }

    /// Node `n`'s watermark: it has delivered every instant before this.
    pub fn watermark(&self, node: usize) -> usize {
        self.watermarks[node]
    }

    /// The admission frontier: rows `< frontier` are fully delivered (the
    /// minimum watermark). Only these rows are servable.
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    /// Rows staged beyond the frontier, waiting on slower nodes.
    pub fn staged_rows(&self) -> usize {
        self.staged.len()
    }

    /// The configured skew bound.
    pub fn max_skew(&self) -> usize {
        self.max_skew
    }

    /// Ingest one tick. On success returns the stream rows the tick
    /// **completed** (usually none or one; in original units, `[N, F]`
    /// each, oldest first) — admit them to the ring in order. A rejected
    /// tick leaves every watermark and staged row untouched.
    pub fn push(&mut self, tick: &Tick) -> Result<Vec<Tensor>, IngestError> {
        if tick.node >= self.nodes {
            return Err(IngestError::NodeOutOfRange {
                node: tick.node,
                nodes: self.nodes,
            });
        }
        if tick.values.len() != self.features {
            return Err(IngestError::BadFeatureCount {
                got: tick.values.len(),
                want: self.features,
            });
        }
        let expected = self.watermarks[tick.node];
        if tick.t != expected {
            return Err(IngestError::OutOfOrder {
                node: tick.node,
                t: tick.t,
                expected,
            });
        }
        if tick.t >= self.frontier.saturating_add(self.max_skew) {
            return Err(IngestError::SkewBound {
                node: tick.node,
                t: tick.t,
                frontier: self.frontier,
                max_skew: self.max_skew,
            });
        }

        // Stage the reading.
        let idx = tick.t - self.frontier;
        while self.staged.len() <= idx {
            self.staged.push_back(StagedRow {
                data: vec![0.0; self.nodes * self.features],
                filled: 0,
            });
        }
        let row = &mut self.staged[idx];
        let at = tick.node * self.features;
        row.data[at..at + self.features].copy_from_slice(&tick.values);
        row.filled += 1;
        self.watermarks[tick.node] = tick.t + 1;

        // Release every complete row at the front (monotone admission:
        // a row can only complete once all before it are complete, since
        // per-node streams are sequential).
        let mut released = Vec::new();
        while self.staged.front().is_some_and(|r| r.filled == self.nodes) {
            let r = self.staged.pop_front().expect("front exists");
            self.frontier += 1;
            released
                .push(Tensor::from_vec(r.data, [self.nodes, self.features]).expect("row numel"));
        }
        debug_assert_eq!(
            self.frontier,
            *self.watermarks.iter().min().expect("nonempty"),
            "frontier must equal the minimum watermark"
        );
        Ok(released)
    }

    /// Record a whole-row admission (the legacy [`crate::BatchedServer::admit`]
    /// path): bumps every watermark past the frontier row. Fails if any
    /// partial rows are staged — whole-row and tick admission cannot
    /// interleave mid-row.
    pub fn note_full_row(&mut self) -> Result<usize, IngestError> {
        if !self.staged.is_empty() {
            return Err(IngestError::PartialRowsInFlight {
                staged: self.staged.len(),
            });
        }
        let t = self.frontier;
        self.frontier += 1;
        for w in &mut self.watermarks {
            *w = self.frontier;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(node: usize, t: usize, v: f32) -> Tick {
        Tick {
            node,
            t,
            values: vec![v],
        }
    }

    #[test]
    fn rows_release_only_when_every_node_delivered() {
        let mut ing = StreamIngest::new(3, 1, 4);
        assert!(ing.push(&tick(0, 0, 1.0)).unwrap().is_empty());
        assert!(ing.push(&tick(2, 0, 3.0)).unwrap().is_empty());
        assert_eq!(ing.frontier(), 0, "node 1 still owes t=0");
        let out = ing.push(&tick(1, 0, 2.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(ing.frontier(), 1);
    }

    #[test]
    fn a_lagging_node_holds_back_a_cascade() {
        let mut ing = StreamIngest::new(2, 1, 4);
        // Node 0 races ahead three rows; nothing releases.
        for t in 0..3 {
            assert!(ing.push(&tick(0, t, t as f32)).unwrap().is_empty());
        }
        assert_eq!(ing.staged_rows(), 3);
        // Node 1 delivers t=0,1: exactly those two rows cascade out.
        let out = ing.push(&tick(1, 0, 10.0)).unwrap();
        assert_eq!(out.len(), 1);
        let out = ing.push(&tick(1, 1, 11.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_vec(), vec![1.0, 11.0]);
        assert_eq!(ing.frontier(), 2);
    }

    #[test]
    fn out_of_order_and_duplicate_ticks_are_typed_rejections() {
        let mut ing = StreamIngest::new(2, 1, 4);
        ing.push(&tick(0, 0, 1.0)).unwrap();
        assert_eq!(
            ing.push(&tick(0, 0, 9.0)).unwrap_err(),
            IngestError::OutOfOrder {
                node: 0,
                t: 0,
                expected: 1
            },
            "duplicate"
        );
        assert_eq!(
            ing.push(&tick(0, 5, 9.0)).unwrap_err(),
            IngestError::OutOfOrder {
                node: 0,
                t: 5,
                expected: 1
            },
            "gap"
        );
        // State untouched by the rejections.
        assert_eq!(ing.watermark(0), 1);
        assert_eq!(ing.staged_rows(), 1);
    }

    #[test]
    fn skew_bound_rejects_a_runaway_node() {
        let mut ing = StreamIngest::new(2, 1, 2);
        ing.push(&tick(0, 0, 0.0)).unwrap();
        ing.push(&tick(0, 1, 1.0)).unwrap();
        let err = ing.push(&tick(0, 2, 2.0)).unwrap_err();
        assert_eq!(
            err,
            IngestError::SkewBound {
                node: 0,
                t: 2,
                frontier: 0,
                max_skew: 2
            }
        );
        // The slow node catching up re-opens the window.
        ing.push(&tick(1, 0, 9.0)).unwrap();
        assert!(ing.push(&tick(0, 2, 2.0)).is_ok());
    }

    #[test]
    fn schema_violations_are_typed() {
        let mut ing = StreamIngest::new(2, 2, 4);
        assert_eq!(
            ing.push(&Tick {
                node: 7,
                t: 0,
                values: vec![0.0; 2]
            })
            .unwrap_err(),
            IngestError::NodeOutOfRange { node: 7, nodes: 2 }
        );
        assert_eq!(
            ing.push(&Tick {
                node: 0,
                t: 0,
                values: vec![0.0; 3]
            })
            .unwrap_err(),
            IngestError::BadFeatureCount { got: 3, want: 2 }
        );
    }

    #[test]
    fn full_row_admission_interlocks_with_staging() {
        let mut ing = StreamIngest::with_start(2, 1, 4, 10);
        assert_eq!(ing.note_full_row().unwrap(), 10);
        assert_eq!(ing.frontier(), 11);
        assert_eq!(ing.watermark(0), 11);
        ing.push(&tick(0, 11, 1.0)).unwrap();
        assert_eq!(
            ing.note_full_row().unwrap_err(),
            IngestError::PartialRowsInFlight { staged: 1 }
        );
    }
}
