//! The rolling index window: index-batching for a live stream.
//!
//! Training-side index-batching (§4.1) keeps **one** standardized signal
//! copy and reconstructs every sliding-window sample as a zero-copy view.
//! [`RollingWindow`] is the inference analogue: one `[capacity, N, F]` ring
//! of the most recent readings, where any in-buffer request window is
//! served as an index-addressed `narrow` view — no per-query window
//! materialization, ever.
//!
//! The ring stores each admitted row **twice**, at slots `t % cap` and
//! `t % cap + cap` of a `[2·cap, N, F]` tensor. That doubling makes every
//! window of length `h ≤ cap` a *contiguous* row run regardless of where
//! the ring's write head sits, which is what keeps window reads zero-copy
//! (a wrap-around window in a single-copy ring would need a gather).

use crate::error::ServeError;
use st_data::scaler::StandardScaler;
use st_data::storage::{RowStore, SignalStorage};
use st_tensor::Tensor;

/// A rolling, standardized `[E, N, F]` signal buffer with zero-copy window
/// views.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    /// `[2·cap, N, F]`; row `t` lives at `t % cap` and `t % cap + cap`.
    buf: Tensor,
    cap: usize,
    nodes: usize,
    features: usize,
    /// Total readings admitted since construction (monotonic stream time).
    admitted: usize,
    scaler: StandardScaler,
}

impl RollingWindow {
    /// An empty buffer holding up to `capacity` readings of `[nodes,
    /// features]` each, standardized on admission with `scaler`.
    pub fn new(capacity: usize, nodes: usize, features: usize, scaler: StandardScaler) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RollingWindow {
            buf: Tensor::zeros([2 * capacity, nodes, features]),
            cap: capacity,
            nodes,
            features,
            admitted: 0,
            scaler,
        }
    }

    /// Seed a buffer from an **already-standardized** `[E, N, F]` history
    /// (e.g. an `IndexDataset`'s single copy): every row is admitted in
    /// order, so subsequent windows are bit-identical to training windows.
    pub fn from_standardized_history(
        history: &Tensor,
        capacity: usize,
        scaler: StandardScaler,
    ) -> Self {
        assert_eq!(history.rank(), 3, "history must be [E, N, F]");
        let mut w = RollingWindow::new(capacity, history.dim(1), history.dim(2), scaler);
        let rows = history.contiguous();
        let src = rows.as_slice().expect("contiguous");
        let row = w.nodes * w.features;
        for t in 0..history.dim(0) {
            w.admit_standardized(&src[t * row..(t + 1) * row]);
        }
        w
    }

    /// [`RollingWindow::from_standardized_history`] over a
    /// [`SignalStorage`] backend: only the final `capacity` rows are ever
    /// read (earlier rows would be overwritten in the ring anyway), so an
    /// out-of-core history seeds the buffer touching at most
    /// `ceil(capacity / chunk_entries) + 1` chunks.
    pub fn from_storage_history(
        history: &SignalStorage,
        capacity: usize,
        scaler: StandardScaler,
    ) -> Self {
        let dims = history.dims();
        assert_eq!(dims.len(), 3, "history must be [E, N, F]");
        let entries = dims[0];
        let mut w = RollingWindow::new(capacity, dims[1], dims[2], scaler);
        let start = entries.saturating_sub(capacity);
        // The ring indexes rows by monotonic stream time; skipping the
        // overwritten prefix must keep `admitted` identical to a full
        // replay so window ids line up with training snapshot ids.
        w.admitted = start;
        let (rows, _) = history.read_rows_quoted(start..entries);
        let rows = rows.contiguous();
        let src = rows.as_slice().expect("contiguous");
        let row = w.nodes * w.features;
        for t in 0..(entries - start) {
            w.admit_standardized(&src[t * row..(t + 1) * row]);
        }
        w
    }

    /// Admit one reading in **original units**, `[nodes, features]`; it is
    /// standardized with the fitted scaler before entering the ring.
    pub fn admit(&mut self, reading: &Tensor) {
        assert_eq!(
            reading.dims(),
            &[self.nodes, self.features],
            "reading must be [nodes, features]"
        );
        let std = self.scaler.transform(reading).contiguous();
        self.admit_standardized(std.as_slice().expect("contiguous"));
    }

    /// Admit one already-standardized reading (row-major `nodes × features`
    /// scalars).
    pub fn admit_standardized(&mut self, row: &[f32]) {
        let stride = self.nodes * self.features;
        assert_eq!(row.len(), stride, "row must be nodes × features scalars");
        let slot = self.admitted % self.cap;
        let buf = self.buf.make_mut_contiguous();
        buf[slot * stride..(slot + 1) * stride].copy_from_slice(row);
        let hi = (slot + self.cap) * stride;
        buf[hi..hi + stride].copy_from_slice(row);
        self.admitted += 1;
    }

    /// Total readings admitted so far (stream time).
    pub fn len(&self) -> usize {
        self.admitted
    }

    /// True before any reading has been admitted.
    pub fn is_empty(&self) -> bool {
        self.admitted == 0
    }

    /// Ring capacity (maximum window reach into the past).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Feature count.
    pub fn num_features(&self) -> usize {
        self.features
    }

    /// The admission scaler.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// Oldest stream row the ring still retains (rows before it were
    /// evicted by newer admissions).
    pub fn oldest_retained(&self) -> usize {
        self.admitted.saturating_sub(self.cap)
    }

    /// Classify the window `[end − h, end)`: `Ok(())` when it is fully
    /// buffered, otherwise the **typed** reason it is not —
    /// [`ServeError::WindowEvicted`] when live ingest already overwrote
    /// part of it (or it reaches before stream time 0),
    /// [`ServeError::NotYetServable`] when some node it reads has not
    /// passed its watermark, and [`ServeError::BadHorizon`] when no ingest
    /// state could ever satisfy it.
    pub fn window_status(&self, end: usize, h: usize) -> Result<(), ServeError> {
        if h == 0 || h > self.cap {
            return Err(ServeError::BadHorizon {
                horizon: h,
                capacity: self.cap,
            });
        }
        if end > self.admitted {
            return Err(ServeError::NotYetServable {
                window_end: end,
                admitted: self.admitted,
            });
        }
        if end < h || end - h < self.oldest_retained() {
            return Err(ServeError::WindowEvicted {
                window_end: end,
                horizon: h,
                oldest_retained: self.oldest_retained(),
            });
        }
        Ok(())
    }

    /// True when the window `[end − h, end)` is still fully buffered.
    pub fn contains_window(&self, end: usize, h: usize) -> bool {
        self.window_status(end, h).is_ok()
    }

    /// The standardized window `[end − h, end)` as a **zero-copy**
    /// `[h, N, F]` view of the ring. `end` is exclusive stream time; a
    /// window that was evicted, never admitted, or malformed comes back as
    /// the typed [`ServeError`] — never a panic (an out-of-range view was
    /// reachable here once live ingest started evicting rows).
    pub fn window(&self, end: usize, h: usize) -> Result<Tensor, ServeError> {
        self.window_status(end, h)?;
        let start = (end - h) % self.cap;
        Ok(self.buf.narrow(0, start, h).expect("doubled ring in range"))
    }

    /// Assemble `[B, h, N, F]` from window end times — the serving twin of
    /// `IndexDataset::batch` (one contiguous memcpy per window). Fails
    /// with the first offending window's typed status.
    pub fn batch(&self, ends: &[usize], h: usize) -> Result<Tensor, ServeError> {
        let stride = self.nodes * self.features;
        let mut out = Vec::with_capacity(ends.len() * h * stride);
        let src = self.buf.as_slice().expect("ring is contiguous");
        for &end in ends {
            self.window_status(end, h)?;
            let start = ((end - h) % self.cap) * stride;
            out.extend_from_slice(&src[start..start + h * stride]);
        }
        Ok(Tensor::from_vec(out, [ends.len(), h, self.nodes, self.features]).expect("batch numel"))
    }

    /// Assert the structural ring invariants — every retained row is
    /// stored **twice** (slots `t % cap` and `t % cap + cap` hold
    /// bit-identical copies, the property that keeps wrap-around windows
    /// contiguous) and every retained window agrees with
    /// [`RollingWindow::window_status`]. The ingest proptests drive this
    /// after arbitrary tick interleavings; it is cheap enough to call in
    /// debug assertions.
    pub fn assert_ring_invariants(&self) {
        let stride = self.nodes * self.features;
        let src = self.buf.as_slice().expect("ring is contiguous");
        let filled = self.admitted.min(self.cap);
        for t in self.admitted - filled..self.admitted {
            let slot = t % self.cap;
            let lo = &src[slot * stride..(slot + 1) * stride];
            let hi = &src[(slot + self.cap) * stride..(slot + self.cap + 1) * stride];
            assert!(
                lo.iter().zip(hi).all(|(a, b)| a.to_bits() == b.to_bits()),
                "doubled-row contiguity broken at stream row {t} (slot {slot})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange_rows(e: usize, n: usize, f: usize) -> Tensor {
        Tensor::arange(e * n * f).reshape([e, n, f]).unwrap()
    }

    #[test]
    fn windows_match_source_rows_across_wraparound() {
        let hist = arange_rows(50, 3, 2);
        let w = RollingWindow::from_standardized_history(&hist, 16, StandardScaler::identity());
        assert_eq!(w.len(), 50);
        // Any window within the last 16 rows reproduces the source exactly,
        // including ones that straddle the ring's wrap point.
        for end in [50usize, 47, 40, 50 - 16 + 4] {
            let h = 4;
            let got = w.window(end, h).unwrap();
            let want = hist.narrow(0, end - h, h).unwrap();
            assert_eq!(got.to_vec(), want.to_vec(), "window ending at {end}");
        }
        w.assert_ring_invariants();
    }

    #[test]
    fn storage_history_matches_dense_history_bitwise() {
        use st_data::storage::{ChunkedSpec, StorageSpec};
        let hist = arange_rows(37, 3, 2);
        let dense = RollingWindow::from_standardized_history(&hist, 10, StandardScaler::identity());
        for chunk in [1usize, 4, 7, 64] {
            let store = SignalStorage::from_tensor_spec(
                hist.clone(),
                StorageSpec::Chunked(ChunkedSpec::new(chunk)),
            );
            let w = RollingWindow::from_storage_history(&store, 10, StandardScaler::identity());
            assert_eq!(w.len(), dense.len(), "chunk {chunk}");
            assert_eq!(
                w.buf.to_vec(),
                dense.buf.to_vec(),
                "ring contents, chunk {chunk}"
            );
            let got = w.window(37, 6).unwrap();
            let want = hist.narrow(0, 31, 6).unwrap();
            assert_eq!(got.to_vec(), want.to_vec());
        }
    }

    #[test]
    fn window_views_are_zero_copy() {
        let hist = arange_rows(20, 2, 1);
        let w = RollingWindow::from_standardized_history(&hist, 8, StandardScaler::identity());
        let v = w.window(20, 5).unwrap();
        assert!(v.shares_storage(&w.buf), "window must alias the ring");
        let v2 = w.window(17, 3).unwrap();
        assert!(v2.shares_storage(&v));
    }

    #[test]
    fn batch_matches_individual_windows() {
        let hist = arange_rows(30, 2, 2);
        let w = RollingWindow::from_standardized_history(&hist, 12, StandardScaler::identity());
        let ends = [30usize, 25, 22];
        let b = w.batch(&ends, 3).unwrap();
        assert_eq!(b.dims(), &[3, 3, 2, 2]);
        for (row, &end) in ends.iter().enumerate() {
            assert_eq!(
                b.select(0, row).unwrap().to_vec(),
                w.window(end, 3).unwrap().to_vec()
            );
        }
    }

    #[test]
    fn admission_standardizes_with_the_scaler() {
        let scaler = StandardScaler::from_feature_stats(vec![(10.0, 2.0)]);
        let mut w = RollingWindow::new(4, 2, 1, scaler);
        w.admit(&Tensor::from_vec(vec![12.0, 8.0], [2, 1]).unwrap());
        let v = w.window(1, 1).unwrap();
        assert_eq!(v.to_vec(), vec![1.0, -1.0]); // (x - 10) / 2
    }

    #[test]
    fn evicted_windows_come_back_typed() {
        let hist = arange_rows(20, 1, 1);
        let w = RollingWindow::from_standardized_history(&hist, 8, StandardScaler::identity());
        // Rows [2, 6) fell out of the 8-row ring long ago — a typed
        // eviction, never a panic or an out-of-range view.
        assert_eq!(
            w.window(6, 4).unwrap_err(),
            ServeError::WindowEvicted {
                window_end: 6,
                horizon: 4,
                oldest_retained: 12
            }
        );
        // A batch fails on its first evicted member.
        assert!(matches!(
            w.batch(&[20, 6], 4).unwrap_err(),
            ServeError::WindowEvicted { window_end: 6, .. }
        ));
    }

    #[test]
    fn future_windows_come_back_typed() {
        let hist = arange_rows(10, 1, 1);
        let w = RollingWindow::from_standardized_history(&hist, 8, StandardScaler::identity());
        assert_eq!(
            w.window(11, 4).unwrap_err(),
            ServeError::NotYetServable {
                window_end: 11,
                admitted: 10
            }
        );
    }

    #[test]
    fn malformed_horizons_come_back_typed() {
        let hist = arange_rows(10, 1, 1);
        let w = RollingWindow::from_standardized_history(&hist, 8, StandardScaler::identity());
        assert_eq!(
            w.window(10, 0).unwrap_err(),
            ServeError::BadHorizon {
                horizon: 0,
                capacity: 8
            }
        );
        assert_eq!(
            w.window(10, 9).unwrap_err(),
            ServeError::BadHorizon {
                horizon: 9,
                capacity: 8
            }
        );
        // A window reaching before stream time 0 never existed: eviction.
        assert!(matches!(
            w.window(3, 4).unwrap_err(),
            ServeError::WindowEvicted { .. }
        ));
    }

    #[test]
    fn contains_window_boundaries() {
        let hist = arange_rows(20, 1, 1);
        let w = RollingWindow::from_standardized_history(&hist, 8, StandardScaler::identity());
        assert!(w.contains_window(20, 8)); // the full ring
        assert!(w.contains_window(13, 1)); // oldest surviving row
        assert!(!w.contains_window(12, 1)); // just evicted
        assert!(!w.contains_window(20, 9)); // longer than capacity
        assert!(!w.contains_window(3, 4)); // end < h
    }
}
