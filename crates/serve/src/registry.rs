//! Multi-tenant snapshot registry with atomic hot-swap.
//!
//! One serving process hosts many deployments — one per city, per model
//! generation, per tenant — each a [`BatchedServer`] keyed by name.
//! [`SnapshotRegistry`] is the process-wide map, with two concurrency
//! guarantees the hot-reload path needs:
//!
//! - **Atomic swap, no torn reads.** A tenant's server lives behind an
//!   `Arc`; [`SnapshotRegistry::get`] hands out a clone of that `Arc`
//!   under a read lock. A retrain that [`SnapshotRegistry::swap`]s in a
//!   new server replaces the map entry under the write lock — in-flight
//!   workloads keep serving from the `Arc` they already hold (snapshot
//!   A), new lookups see snapshot B, and nobody observes a half-swapped
//!   server.
//! - **Bit-identical swapped-in serving.** [`SnapshotRegistry::swap_snapshot`]
//!   carries the live ring and ingest watermarks over to the new
//!   snapshot via [`BatchedServer::with_snapshot`], which re-partitions
//!   for the new horizon exactly as a cold deploy would — so post-swap
//!   forwards are bitwise equal to a server constructed fresh from the
//!   new snapshot over the same history (pinned in `tests/serve_plane.rs`).
//!
//! Live ingest goes through the registry too
//! ([`SnapshotRegistry::admit_tick`]): a copy-on-write `Arc::make_mut`
//! under the write lock mutates the tenant's ring without disturbing
//! readers still holding the previous `Arc`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use st_tensor::Tensor;

use crate::error::ServeError;
use crate::ingest::Tick;
use crate::shard::{BatchedServer, Query, ServeReport};
use crate::slo::SloConfig;
use crate::snapshot::ModelSnapshot;

/// A named map of live [`BatchedServer`] deployments with atomic
/// `Arc`-swap hot-reload. See the [module docs](self) for the
/// concurrency contract.
#[derive(Default)]
pub struct SnapshotRegistry {
    tenants: RwLock<HashMap<String, Arc<BatchedServer>>>,
}

impl SnapshotRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SnapshotRegistry::default()
    }

    /// Register a new tenant. Fails with [`ServeError::TenantExists`] if
    /// the name is taken — replacing a live deployment is an explicit
    /// [`SnapshotRegistry::swap`], never an accidental re-register.
    pub fn register(&self, name: &str, server: BatchedServer) -> Result<(), ServeError> {
        let mut tenants = self.tenants.write();
        if tenants.contains_key(name) {
            return Err(ServeError::TenantExists(name.to_string()));
        }
        tenants.insert(name.to_string(), Arc::new(server));
        Ok(())
    }

    /// The tenant's current server. The returned `Arc` is a stable view:
    /// swaps after this call do not affect it, so a caller mid-workload
    /// finishes on the snapshot it started with.
    pub fn get(&self, name: &str) -> Result<Arc<BatchedServer>, ServeError> {
        self.tenants
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    /// Atomically replace the tenant's server, returning the retired one
    /// (still alive for whoever holds an `Arc` to it).
    pub fn swap(
        &self,
        name: &str,
        server: BatchedServer,
    ) -> Result<Arc<BatchedServer>, ServeError> {
        let mut tenants = self.tenants.write();
        match tenants.get_mut(name) {
            Some(slot) => Ok(std::mem::replace(slot, Arc::new(server))),
            None => Err(ServeError::UnknownTenant(name.to_string())),
        }
    }

    /// Hot-reload after a retrain: swap only the tenant's **model**,
    /// carrying the live ring and ingest watermarks over. The new server
    /// is built under the write lock so no tick lands between the
    /// carry-over and the swap. Returns the retired server.
    ///
    /// Fails (leaving the tenant untouched) if the snapshot does not fit
    /// the deployment: [`ServeError::GraphMismatch`],
    /// [`ServeError::FeatureMismatch`], [`ServeError::ScalerMismatch`],
    /// or [`ServeError::CapacityTooSmall`].
    pub fn swap_snapshot(
        &self,
        name: &str,
        snapshot: ModelSnapshot,
    ) -> Result<Arc<BatchedServer>, ServeError> {
        let mut tenants = self.tenants.write();
        let slot = tenants
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))?;
        let next = slot.with_snapshot(snapshot)?;
        Ok(std::mem::replace(slot, Arc::new(next)))
    }

    /// Remove a tenant, returning its server.
    pub fn remove(&self, name: &str) -> Result<Arc<BatchedServer>, ServeError> {
        self.tenants
            .write()
            .remove(name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    /// Push one live-ingest tick into the tenant's stream; returns the
    /// number of newly completed `[N, F]` rows admitted to its ring.
    /// Copy-on-write: readers holding a pre-tick `Arc` keep their view.
    pub fn admit_tick(&self, name: &str, tick: &Tick) -> Result<usize, ServeError> {
        let mut tenants = self.tenants.write();
        let slot = tenants
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))?;
        Ok(Arc::make_mut(slot).admit_tick(tick)?)
    }

    /// Admit one whole `[N, F]` reading (original units) to the tenant's
    /// ring — the legacy full-row path, valid only when no partial ticks
    /// are staged.
    pub fn admit(&self, name: &str, reading: &Tensor) -> Result<(), ServeError> {
        let mut tenants = self.tenants.write();
        let slot = tenants
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))?;
        Ok(Arc::make_mut(slot).admit(reading)?)
    }

    /// Serve a query stream on the tenant's *current* server (stable for
    /// the whole call even if a swap lands mid-serve).
    pub fn serve(&self, name: &str, queries: &[Query]) -> Result<ServeReport, ServeError> {
        Ok(self.get(name)?.serve(queries))
    }

    /// [`SnapshotRegistry::serve`] under an explicit per-tenant SLO.
    pub fn serve_slo(
        &self,
        name: &str,
        queries: &[Query],
        slo: &SloConfig,
    ) -> Result<ServeReport, ServeError> {
        Ok(self.get(name)?.serve_slo(queries, slo))
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ServeConfig;
    use st_autograd::Module;
    use st_data::scaler::StandardScaler;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn tiny_server(seed: u64) -> BatchedServer {
        let net = st_graph::generators::highway_corridor(6, 1, 4);
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 3,
            num_nodes: 6,
            horizon: 2,
            diffusion_steps: 1,
            layers: 1,
        };
        let supports = Support::wrap_all(st_graph::diffusion_supports(&net.adjacency, 1));
        let trained = PgtDcrnn::new(cfg.clone(), &supports, seed);
        let snap =
            ModelSnapshot::capture(cfg, StandardScaler::identity(), None, &trained.params(), 1);
        let history = Tensor::arange(10 * 6).reshape([10, 6, 1]).unwrap();
        BatchedServer::with_history(
            snap,
            net.adjacency.clone(),
            &history,
            ServeConfig::new(1, 8),
        )
    }

    #[test]
    fn register_get_and_duplicate_protection() {
        let reg = SnapshotRegistry::new();
        assert!(reg.is_empty());
        reg.register("sf", tiny_server(1)).unwrap();
        reg.register("la", tiny_server(2)).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.tenants(), vec!["la".to_string(), "sf".to_string()]);
        assert!(reg.get("sf").is_ok());
        assert_eq!(
            reg.register("sf", tiny_server(3)),
            Err(ServeError::TenantExists("sf".to_string()))
        );
        assert_eq!(
            reg.get("nyc").unwrap_err(),
            ServeError::UnknownTenant("nyc".to_string())
        );
    }

    #[test]
    fn swap_retires_the_old_server_but_held_arcs_survive() {
        let reg = SnapshotRegistry::new();
        reg.register("sf", tiny_server(1)).unwrap();
        let before = reg.get("sf").unwrap();
        let retired = reg.swap("sf", tiny_server(9)).unwrap();
        assert!(Arc::ptr_eq(&before, &retired), "swap returns what get saw");
        let after = reg.get("sf").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "lookups see the new server");
        // The held Arc still serves: in-flight work completes on A.
        assert_eq!(before.window().len(), 10);
    }

    #[test]
    fn ticks_through_the_registry_are_copy_on_write() {
        let reg = SnapshotRegistry::new();
        reg.register("sf", tiny_server(1)).unwrap();
        let stale = reg.get("sf").unwrap();
        // One full row, node-by-node: completes on the last node's tick.
        for node in 0..6 {
            let admitted = reg
                .admit_tick(
                    "sf",
                    &Tick {
                        node,
                        t: 10,
                        values: vec![1.5],
                    },
                )
                .unwrap();
            assert_eq!(admitted, usize::from(node == 5));
        }
        assert_eq!(reg.get("sf").unwrap().window().len(), 11);
        assert_eq!(stale.window().len(), 10, "pre-tick view is unchanged");
        assert_eq!(
            reg.admit_tick(
                "bad",
                &Tick {
                    node: 0,
                    t: 0,
                    values: vec![0.0]
                }
            )
            .unwrap_err(),
            ServeError::UnknownTenant("bad".to_string())
        );
    }

    #[test]
    fn remove_unregisters() {
        let reg = SnapshotRegistry::new();
        reg.register("sf", tiny_server(1)).unwrap();
        reg.remove("sf").unwrap();
        assert!(reg.is_empty());
        assert!(reg.remove("sf").is_err());
    }
}
