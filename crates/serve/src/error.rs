//! Typed serving errors.
//!
//! A production serving plane never panics on a bad request: a query whose
//! window fell out of the ring, arrived before its data, or names an
//! unknown tenant gets a **typed** error the caller can act on (retry,
//! backfill, re-route), while programmer errors (malformed configs) stay
//! loud assertions. Every fallible public entry point in this crate
//! returns [`ServeError`].

use crate::ingest::IngestError;

/// Why a serving-plane operation could not be carried out.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The requested window reaches past the rows the ring still retains —
    /// live ingest evicted them. The caller can only re-issue against a
    /// newer `window_end`; the data is gone.
    WindowEvicted {
        /// The requested exclusive window end (stream time).
        window_end: usize,
        /// The requested window length.
        horizon: usize,
        /// Oldest stream row the ring still holds.
        oldest_retained: usize,
    },
    /// The requested window ends after the newest fully-admitted row: some
    /// node it reads has not passed its watermark yet. Retry once ingest
    /// catches up.
    NotYetServable {
        /// The requested exclusive window end (stream time).
        window_end: usize,
        /// Rows admitted so far (the per-node watermark frontier).
        admitted: usize,
    },
    /// The window length is zero or exceeds the ring capacity — no ingest
    /// state could ever satisfy it.
    BadHorizon {
        /// The requested window length.
        horizon: usize,
        /// The ring capacity.
        capacity: usize,
    },
    /// The named tenant is not registered.
    UnknownTenant(String),
    /// A tenant with this name is already registered (use
    /// [`crate::registry::SnapshotRegistry::swap`] to replace it).
    TenantExists(String),
    /// A hot-swap snapshot's scaler differs from the one the live ring was
    /// standardized with — serving it against the current buffer would
    /// silently mix normalizations. Re-seed the window instead.
    ScalerMismatch,
    /// A hot-swap snapshot was trained on a different node count than the
    /// deployment's graph.
    GraphMismatch {
        /// Node count of the offered snapshot.
        snapshot_nodes: usize,
        /// Node count of the deployed graph.
        graph_nodes: usize,
    },
    /// A hot-swap snapshot expects a different per-node feature count
    /// than the live ring stores.
    FeatureMismatch {
        /// Input features the offered snapshot was trained on.
        snapshot_features: usize,
        /// Features per node the live ring stores.
        window_features: usize,
    },
    /// The deployment's ring cannot hold one input window of the offered
    /// snapshot's horizon.
    CapacityTooSmall {
        /// Ring capacity of the deployment.
        capacity: usize,
        /// Input-window length the snapshot needs.
        horizon: usize,
    },
    /// A live-ingest tick was rejected.
    Ingest(IngestError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::WindowEvicted {
                window_end,
                horizon,
                oldest_retained,
            } => write!(
                f,
                "window [{}, {window_end}) evicted: ring retains rows >= {oldest_retained}",
                window_end.saturating_sub(*horizon)
            ),
            ServeError::NotYetServable {
                window_end,
                admitted,
            } => write!(
                f,
                "window ending at {window_end} not yet servable: {admitted} rows admitted"
            ),
            ServeError::BadHorizon { horizon, capacity } => write!(
                f,
                "window length {horizon} unservable on a capacity-{capacity} ring"
            ),
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t:?} already registered"),
            ServeError::ScalerMismatch => {
                write!(f, "hot-swap snapshot scaler differs from the live ring's")
            }
            ServeError::GraphMismatch {
                snapshot_nodes,
                graph_nodes,
            } => write!(
                f,
                "snapshot trained on {snapshot_nodes} nodes, graph has {graph_nodes}"
            ),
            ServeError::FeatureMismatch {
                snapshot_features,
                window_features,
            } => write!(
                f,
                "snapshot expects {snapshot_features} features, ring stores {window_features}"
            ),
            ServeError::CapacityTooSmall { capacity, horizon } => write!(
                f,
                "ring capacity {capacity} cannot hold a horizon-{horizon} window"
            ),
            ServeError::Ingest(e) => write!(f, "ingest: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IngestError> for ServeError {
    fn from(e: IngestError) -> Self {
        ServeError::Ingest(e)
    }
}
