//! Model snapshots: the versioned on-disk handoff from training to serving.
//!
//! A [`ModelSnapshot`] bundles everything a serving process needs to answer
//! queries in original units: the trained parameters (as the same
//! `StateDict` the engine's checkpoints capture), the [`ModelConfig`] to
//! rebuild the architecture, the fitted per-feature [`StandardScaler`], and
//! split metadata (time-of-day period, trained epochs). The binary layout
//! is magic-tagged, versioned, and trailed by an FNV-1a checksum so a
//! truncated or bit-flipped file fails loudly at load time — never with
//! silently wrong forecasts.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use st_autograd::checkpoint::{Checkpoint, CheckpointError, StateDict};
use st_autograd::module::{Module, Param};
use st_data::scaler::StandardScaler;
use st_graph::{diffusion_supports, Adjacency};
use st_models::{ModelConfig, PgtDcrnn, Support};

/// Format magic (8 bytes) — bumped on breaking layout changes.
const MAGIC: &[u8; 8] = b"PGTSNAP1";

/// Current format version.
const VERSION: u32 = 1;

/// Errors surfaced by snapshot encode/decode/restore.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Buffer does not start with the snapshot magic.
    BadMagic,
    /// Format version this build does not understand.
    BadVersion(u32),
    /// Buffer ended mid-record.
    Truncated,
    /// Checksum mismatch: the payload was corrupted.
    Corrupt {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// The parameter state-dict failed to decode or apply.
    State(CheckpointError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a PGTSNAP1 snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt { stored, actual } => write!(
                f,
                "snapshot corrupt: stored checksum {stored:#018x} != computed {actual:#018x}"
            ),
            SnapshotError::State(e) => write!(f, "snapshot state: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<CheckpointError> for SnapshotError {
    fn from(e: CheckpointError) -> Self {
        SnapshotError::State(e)
    }
}

/// FNV-1a 64 over a byte slice (integrity check, not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A trained model ready to serve: parameters + architecture + normalizer.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Architecture hyperparameters (rebuilds the model shell).
    pub config: ModelConfig,
    /// The scaler fitted on the training split (per-feature statistics).
    pub scaler: StandardScaler,
    /// Time-of-day augmentation period the training pipeline used, if any.
    pub time_period: Option<usize>,
    /// Epochs the captured parameters were trained for.
    pub trained_epochs: u64,
    /// Trained parameters (position-prefixed names, like engine
    /// checkpoints).
    pub params: StateDict,
}

impl ModelSnapshot {
    /// Capture a snapshot from live parameters.
    pub fn capture(
        config: ModelConfig,
        scaler: StandardScaler,
        time_period: Option<usize>,
        params: &[Param],
        trained_epochs: u64,
    ) -> Self {
        ModelSnapshot {
            config,
            scaler,
            time_period,
            trained_epochs,
            params: StateDict::from_params(params),
        }
    }

    /// Build a snapshot from an engine training [`Checkpoint`] (the bytes
    /// `EngineOptions::capture_checkpoint` hands back): the checkpoint's
    /// model section becomes the served parameters and its epoch marker the
    /// training-progress stamp. Optimizer moments are deliberately dropped
    /// — serving never steps.
    pub fn from_checkpoint(
        ck: &Checkpoint,
        config: ModelConfig,
        scaler: StandardScaler,
        time_period: Option<usize>,
    ) -> Self {
        ModelSnapshot {
            config,
            scaler,
            time_period,
            trained_epochs: ck.epoch,
            params: ck.model.clone(),
        }
    }

    /// Restore the captured parameters into a live parameter list (strict
    /// name/shape checking, like checkpoint restore).
    pub fn restore_params(&self, params: &[Param]) -> Result<(), SnapshotError> {
        self.params.apply_to_params(params)?;
        Ok(())
    }

    /// Rebuild a ready-to-serve PGT-DCRNN: construct the shell from the
    /// stored config and the graph's diffusion supports, then overwrite
    /// every parameter with the trained values. The init seed is irrelevant
    /// — all parameters are replaced — so restored replicas are
    /// bit-identical across shards.
    pub fn build_pgt_dcrnn(&self, adjacency: &Adjacency) -> Result<PgtDcrnn, SnapshotError> {
        let supports =
            Support::wrap_all(diffusion_supports(adjacency, self.config.diffusion_steps));
        let model = PgtDcrnn::new(self.config.clone(), &supports, 0);
        self.restore_params(&model.params())?;
        Ok(model)
    }

    /// Serialize to the versioned, checksummed binary format.
    pub fn to_bytes(&self) -> Bytes {
        let params = self.params.to_bytes();
        let mut buf = BytesMut::with_capacity(params.len() + 128);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        for v in [
            self.config.input_dim,
            self.config.output_dim,
            self.config.hidden,
            self.config.num_nodes,
            self.config.horizon,
            self.config.diffusion_steps,
            self.config.layers,
        ] {
            buf.put_u64_le(v as u64);
        }
        buf.put_u64_le(self.time_period.unwrap_or(0) as u64);
        buf.put_u64_le(self.trained_epochs);
        let stats = self.scaler.feature_stats();
        buf.put_u32_le(stats.len() as u32);
        for &(m, s) in stats {
            buf.put_f32_le(m);
            buf.put_f32_le(s);
        }
        buf.put_u64_le(params.len() as u64);
        buf.put_slice(&params);
        let checksum = fnv1a(&buf);
        buf.put_u64_le(checksum);
        buf.freeze()
    }

    /// Deserialize, verifying magic, version, and checksum.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, SnapshotError> {
        if buf.len() < MAGIC.len() + 4 + 8 || &buf[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        // Checksum covers everything before the trailing u64.
        let payload = &buf[..buf.len() - 8];
        let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(SnapshotError::Corrupt { stored, actual });
        }
        let mut buf = &payload[MAGIC.len()..];
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        if buf.remaining() < 9 * 8 + 4 {
            return Err(SnapshotError::Truncated);
        }
        let mut next = || buf.get_u64_le() as usize;
        let config = ModelConfig {
            input_dim: next(),
            output_dim: next(),
            hidden: next(),
            num_nodes: next(),
            horizon: next(),
            diffusion_steps: next(),
            layers: next(),
        };
        let time_period = match buf.get_u64_le() as usize {
            0 => None,
            p => Some(p),
        };
        let trained_epochs = buf.get_u64_le();
        let count = buf.get_u32_le() as usize;
        if count == 0 || buf.remaining() < count * 8 + 8 {
            return Err(SnapshotError::Truncated);
        }
        let stats: Vec<(f32, f32)> = (0..count)
            .map(|_| (buf.get_f32_le(), buf.get_f32_le()))
            .collect();
        let scaler = StandardScaler::from_feature_stats(stats);
        let params_len = buf.get_u64_le() as usize;
        if buf.remaining() < params_len {
            return Err(SnapshotError::Truncated);
        }
        let params = StateDict::from_bytes(&buf[..params_len])?;
        Ok(ModelSnapshot {
            config,
            scaler,
            time_period,
            trained_epochs,
            params,
        })
    }

    /// Write to a file.
    ///
    /// Round-trips bit-exactly through [`ModelSnapshot::load`]:
    ///
    /// ```
    /// use st_autograd::module::Param;
    /// use st_data::scaler::StandardScaler;
    /// use st_models::ModelConfig;
    /// use st_serve::ModelSnapshot;
    /// use st_tensor::Tensor;
    ///
    /// let config = ModelConfig {
    ///     input_dim: 1, output_dim: 1, hidden: 2, num_nodes: 4,
    ///     horizon: 3, diffusion_steps: 2, layers: 1,
    /// };
    /// let params = vec![Param::new("w", Tensor::arange(4))];
    /// let snap = ModelSnapshot::capture(
    ///     config, StandardScaler::identity(), None, &params, 5);
    ///
    /// let path = std::env::temp_dir().join("pgt_snapshot_doctest.bin");
    /// snap.save(&path)?;
    /// let loaded = ModelSnapshot::load(&path)?;
    /// assert_eq!(loaded.trained_epochs, 5);
    /// assert_eq!(loaded.params.to_bytes(), snap.params.to_bytes());
    /// # std::fs::remove_file(&path).ok();
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read from a file, verifying integrity (the checksum and layout
    /// checks of `ModelSnapshot::from_bytes` surface as
    /// [`std::io::ErrorKind::InvalidData`]):
    ///
    /// ```
    /// use st_serve::ModelSnapshot;
    ///
    /// let path = std::env::temp_dir().join("pgt_snapshot_doctest_bad.bin");
    /// std::fs::write(&path, b"not a snapshot")?;
    /// let err = ModelSnapshot::load(&path).unwrap_err();
    /// assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    /// # std::fs::remove_file(&path).ok();
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        ModelSnapshot::from_bytes(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::Tensor;

    fn toy_snapshot() -> ModelSnapshot {
        let params = vec![
            Param::new(
                "w",
                Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], [2, 2]).unwrap(),
            ),
            Param::new("b", Tensor::from_slice(&[0.25])),
        ];
        ModelSnapshot::capture(
            ModelConfig::small(7, 2, 4),
            StandardScaler::from_feature_stats(vec![(60.0, 9.5), (0.5, 0.29)]),
            Some(288),
            &params,
            5,
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = toy_snapshot();
        let back = ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.config.num_nodes, 7);
        assert_eq!(back.config.horizon, 4);
        assert_eq!(back.time_period, Some(288));
        assert_eq!(back.trained_epochs, 5);
        assert_eq!(back.scaler, snap.scaler);
        assert_eq!(back.params.len(), 2);
        for (name, t) in snap.params.iter() {
            assert_eq!(back.params.get(name).unwrap().to_vec(), t.to_vec());
        }
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let snap = toy_snapshot();
        let mut bytes = snap.to_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_and_garbage_are_loud() {
        let snap = toy_snapshot();
        let bytes = snap.to_bytes();
        // Truncation invalidates the trailing checksum.
        assert!(ModelSnapshot::from_bytes(&bytes[..bytes.len() - 5]).is_err());
        assert!(matches!(
            ModelSnapshot::from_bytes(b"definitely not a snapshot file"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let snap = toy_snapshot();
        let dir = std::env::temp_dir().join("pgt_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        snap.save(&path).unwrap();
        let loaded = ModelSnapshot::load(&path).unwrap();
        assert_eq!(loaded.trained_epochs, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restored_replicas_are_bit_identical() {
        // Two independent rebuilds from one snapshot must agree parameter
        // by parameter — the invariant sharded serving relies on.
        let net = st_graph::generators::highway_corridor(7, 1, 3);
        let supports = Support::wrap_all(diffusion_supports(&net.adjacency, 2));
        let cfg = ModelConfig::small(7, 2, 4);
        let trained = PgtDcrnn::new(cfg.clone(), &supports, 99);
        let snap =
            ModelSnapshot::capture(cfg, StandardScaler::identity(), None, &trained.params(), 1);
        let a = snap.build_pgt_dcrnn(&net.adjacency).unwrap();
        let b = snap.build_pgt_dcrnn(&net.adjacency).unwrap();
        for ((pa, pb), pt) in a
            .params()
            .iter()
            .zip(b.params().iter())
            .zip(trained.params().iter())
        {
            assert_eq!(pa.value().to_vec(), pb.value().to_vec());
            assert_eq!(pa.value().to_vec(), pt.value().to_vec());
        }
    }

    #[test]
    fn wrong_architecture_rejects_params() {
        let snap = toy_snapshot();
        let net = st_graph::generators::highway_corridor(7, 1, 3);
        // Tamper the config so shapes no longer line up with the stored
        // state dict (toy params aren't a real DCRNN state dict anyway).
        assert!(snap.build_pgt_dcrnn(&net.adjacency).is_err());
    }
}
