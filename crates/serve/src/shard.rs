//! Partition-parallel batched serving.
//!
//! DistTGL's serving-side lesson, transplanted: partition the graph **once**
//! and let each shard statically own its nodes' queries — never repartition
//! per request. [`BatchedServer`] routes every [`Query`] to the shard that
//! owns its node ([`st_graph::Partitioning::part_of`]), and the shards run
//! concurrently under [`st_dist::run_workers`], each draining its own
//! micro-batch schedule — [`crate::slo::admit_and_coalesce`], the
//! SLO-gated [`crate::queue::coalesce`] (inert gates by default; see
//! [`ServeConfig::slo`]).
//!
//! Every shard restores the **same** full-model replica from the
//! [`ModelSnapshot`] (restored replicas are bit-identical — the snapshot
//! tests pin it), so a served forecast is bitwise the value the trainer's
//! own evaluation forward would produce, no matter which shard computed it.
//! What a shard does *not* own is the signal: the rows of each request
//! window belonging to other shards' nodes are halo reads, charged to the
//! traffic ledger in bytes and to the simulated clock via
//! [`st_device::CostModel::micro_batch_secs`] — the same
//! physically-local-but-modeled-remote idiom the training data planes use.
//!
//! Time is simulated, numerics are real: arrival times drive the
//! micro-batch schedule and the per-shard timeline (an
//! [`st_device::SimClock`] + [`st_device::OverlapLedger`] pair replaying
//! MSPipe-style deadline streams: a batch's halo fetch is in flight from
//! its dispatch and overlaps the tail of the previous batch's compute),
//! producing modeled p50/p99/p999 latencies and throughput, while the
//! forwards themselves are real tape-free computations
//! ([`st_models::Seq2Seq::forward_inference`]).

use std::collections::HashMap;

use crate::error::ServeError;
use crate::ingest::{IngestError, StreamIngest, Tick};
use crate::queue::{PendingRequest, QueueConfig};
use crate::slo::{admit_and_coalesce, BatchCost, ShedReason, SloConfig};
use crate::snapshot::ModelSnapshot;
use crate::window::RollingWindow;
use st_device::{OverlapLedger, SimClock};
use st_dist::launch::run_workers;
use st_dist::topology::ClusterTopology;
use st_graph::{Adjacency, PartitionerKind, Partitioning};
use st_models::{PgtDcrnn, Seq2Seq};
use st_tensor::Tensor;

/// Serving deployment knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of partition-parallel shards.
    pub shards: usize,
    /// Micro-batching policy each shard's queue runs.
    pub queue: QueueConfig,
    /// Ring capacity of the rolling signal buffer (maximum window reach).
    pub capacity: usize,
    /// Cluster topology the shards are modeled on.
    pub topology: ClusterTopology,
    /// The partitioner the one-time routing split runs — the same choice
    /// the training planes take via `DistConfig`. Defaults to the
    /// multilevel partitioner, which minimizes the modeled halo bytes
    /// ([`st_graph::HaloCostModel`]) every cross-shard window read pays.
    pub partitioner: PartitionerKind,
    /// Compute backend each shard selects before its first forward
    /// ([`st_tensor::backend::set_backend`]). Backends are bitwise
    /// identical — served forecasts stay bit-equal to the trainer's
    /// forward either way; only inference wall time moves. Defaults to
    /// [`st_tensor::backend::BackendKind::Tiled`].
    pub backend: st_tensor::backend::BackendKind,
    /// Per-tenant SLO the default [`BatchedServer::serve`] path enforces.
    /// Defaults to [`SloConfig::unbounded`] — never sheds, bit-identical
    /// to pre-SLO serving.
    pub slo: SloConfig,
    /// Cache each distinct window's standardized target-channel forecast
    /// for the duration of a [`BatchedServer::serve`] call, so repeat
    /// windows across micro-batches skip their forward (and its modeled
    /// halo fetch + compute). Safe because per-window forwards are
    /// batch-composition-invariant bitwise (pinned by the round-trip
    /// tests). Defaults to `false` — every batch pays its forward, the
    /// pre-cache behavior the serve benchmarks pin.
    pub forecast_cache: bool,
    /// Live-ingest skew bound: a fast sensor may run at most this many
    /// rows ahead of the slowest ([`crate::StreamIngest`]). Defaults to
    /// the ring capacity — staging beyond a full ring is pathological.
    pub max_skew: usize,
}

impl ServeConfig {
    /// A deployment of `shards` shards with default queue and a
    /// `capacity`-deep rolling buffer.
    pub fn new(shards: usize, capacity: usize) -> Self {
        ServeConfig {
            shards,
            queue: QueueConfig::default(),
            capacity,
            topology: ClusterTopology::polaris(),
            partitioner: PartitionerKind::Multilevel,
            backend: st_tensor::backend::BackendKind::Tiled,
            slo: SloConfig::unbounded(),
            forecast_cache: false,
            max_skew: capacity.max(1),
        }
    }
}

/// One forecast request: "what happens at `node` after stream time
/// `window_end`?"
#[derive(Debug, Clone, Copy)]
pub struct Query {
    /// Caller-side request id (echoed back on the result).
    pub id: usize,
    /// The node whose forecast is requested; decides the owning shard.
    pub node: usize,
    /// Input window end, exclusive stream time (the window is the
    /// `horizon` most recent readings before it).
    pub window_end: usize,
    /// Modeled arrival time, seconds.
    pub arrival_secs: f64,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The caller-side id from the [`Query`].
    pub id: usize,
    /// The queried node.
    pub node: usize,
    /// The shard that served it.
    pub shard: usize,
    /// The input window end served.
    pub window_end: usize,
    /// Standardized target-channel forecast, one value per horizon step —
    /// bitwise the trainer-side forward's output for this window/node.
    pub forecast_std: Vec<f32>,
    /// The forecast in original units (scaler-inverted target channel).
    pub forecast: Vec<f32>,
    /// Modeled completion − arrival.
    pub latency_secs: f64,
    /// Distinct windows in the micro-batch that served this query.
    pub batch_windows: usize,
}

/// One rejected query: the typed refusal the serving plane hands back in
/// place of a result — either admission control shed it
/// ([`ShedReason::QueueFull`] / [`ShedReason::DeadlineUnmeetable`]) or
/// its window is not servable against the live ring
/// ([`ShedReason::WindowEvicted`] / [`ShedReason::NotYetServable`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejection {
    /// The caller-side id from the [`Query`].
    pub id: usize,
    /// The queried node.
    pub node: usize,
    /// The shard that owns (and refused) the query.
    pub shard: usize,
    /// The requested window end.
    pub window_end: usize,
    /// Why it was rejected.
    pub reason: ShedReason,
}

/// Per-shard serving statistics.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Nodes this shard owns.
    pub owned_nodes: usize,
    /// Requests routed here (servable windows; pre-routing rejections
    /// excluded).
    pub requests: usize,
    /// Requests this shard's admission control shed.
    pub shed: usize,
    /// Micro-batches dispatched.
    pub batches: usize,
    /// Distinct windows answered from the forecast cache instead of a
    /// forward (always 0 with [`ServeConfig::forecast_cache`] off).
    pub cache_hits: usize,
    /// Halo-read bytes charged to the ledger.
    pub halo_bytes: u64,
    /// Modeled forward-compute seconds.
    pub compute_secs: f64,
    /// Modeled *exposed* halo-fetch seconds (the part the deadline
    /// streams could not hide behind compute).
    pub comm_secs: f64,
    /// Modeled seconds this shard was busy (exposed fetch + compute).
    pub busy_secs: f64,
    /// Completion time of this shard's last batch (0 when idle).
    pub finish_secs: f64,
}

impl ShardStats {
    /// Fraction of `[0, makespan]` this shard spent busy.
    pub fn utilization(&self, makespan_secs: f64) -> f64 {
        if makespan_secs > 0.0 {
            self.busy_secs / makespan_secs
        } else {
            0.0
        }
    }
}

/// Outcome of one [`BatchedServer::serve`] call.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// All answered queries, in submission order (the position each query
    /// held in the `serve` input slice).
    pub results: Vec<QueryResult>,
    /// All rejected queries, in submission order. Every submitted query
    /// lands in exactly one of `results` / `rejections`.
    pub rejections: Vec<Rejection>,
    /// Per-shard statistics.
    pub shards: Vec<ShardStats>,
    /// Median modeled latency, seconds (served requests only).
    pub p50_latency_secs: f64,
    /// 99th-percentile modeled latency, seconds.
    pub p99_latency_secs: f64,
    /// 99.9th-percentile modeled latency, seconds.
    pub p999_latency_secs: f64,
    /// Fraction of submitted queries rejected (shed + unservable).
    pub shed_rate: f64,
    /// Modeled makespan: the last completion across shards.
    pub makespan_secs: f64,
    /// Requests served per modeled second.
    pub requests_per_sec: f64,
    /// Total halo-read bytes across shards (the data-plane ledger).
    pub halo_bytes: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A snapshot-backed, partition-parallel batched inference server.
///
/// Holds the deployment's static state — the trained [`ModelSnapshot`],
/// the graph and its one-time [`Partitioning`], the rolling signal
/// buffer, and the live-ingest front. [`BatchedServer::serve`] is the
/// request path; [`BatchedServer::admit_tick`] is the data path.
#[derive(Debug, Clone)]
pub struct BatchedServer {
    snapshot: ModelSnapshot,
    adjacency: Adjacency,
    partitioning: Partitioning,
    window: RollingWindow,
    ingest: StreamIngest,
    cfg: ServeConfig,
}

impl BatchedServer {
    /// Deploy a snapshot over `adjacency` with an empty signal buffer.
    /// The graph is partitioned once, here, by
    /// [`ServeConfig::partitioner`] (multilevel by default); queries are
    /// routed against this static assignment forever after.
    pub fn new(snapshot: ModelSnapshot, adjacency: Adjacency, cfg: ServeConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(
            snapshot.config.num_nodes,
            adjacency.num_nodes(),
            "snapshot was trained on a different graph"
        );
        assert!(
            cfg.capacity >= snapshot.config.horizon,
            "ring capacity {} cannot hold a horizon-{} window",
            cfg.capacity,
            snapshot.config.horizon
        );
        let partitioning =
            cfg.partitioner
                .partition(&adjacency, None, cfg.shards, snapshot.config.horizon);
        let window = RollingWindow::new(
            cfg.capacity,
            snapshot.config.num_nodes,
            snapshot.config.input_dim,
            snapshot.scaler.clone(),
        );
        let ingest = StreamIngest::new(
            snapshot.config.num_nodes,
            snapshot.config.input_dim,
            cfg.max_skew.max(1),
        );
        BatchedServer {
            snapshot,
            adjacency,
            partitioning,
            window,
            ingest,
            cfg,
        }
    }

    /// Deploy with the buffer pre-seeded from an **already-standardized**
    /// `[E, N, F]` history (e.g. the training `IndexDataset`'s single
    /// copy), so served windows are bit-identical to training windows.
    pub fn with_history(
        snapshot: ModelSnapshot,
        adjacency: Adjacency,
        history: &Tensor,
        cfg: ServeConfig,
    ) -> Self {
        let mut server = BatchedServer::new(snapshot, adjacency, cfg);
        server.window = RollingWindow::from_standardized_history(
            history,
            server.cfg.capacity,
            server.snapshot.scaler.clone(),
        );
        server.reset_ingest();
        server
    }

    /// [`BatchedServer::with_history`] over a
    /// [`st_data::SignalStorage`] backend: an out-of-core training copy
    /// seeds the ring by streaming only its final `capacity` rows, so
    /// deployment never materializes the dense history.
    pub fn with_storage_history(
        snapshot: ModelSnapshot,
        adjacency: Adjacency,
        history: &st_data::SignalStorage,
        cfg: ServeConfig,
    ) -> Self {
        let mut server = BatchedServer::new(snapshot, adjacency, cfg);
        server.window = RollingWindow::from_storage_history(
            history,
            server.cfg.capacity,
            server.snapshot.scaler.clone(),
        );
        server.reset_ingest();
        server
    }

    /// Re-anchor the ingest front at the ring's current stream time (all
    /// seeded rows were admitted wholesale).
    fn reset_ingest(&mut self) {
        self.ingest = StreamIngest::with_start(
            self.window.num_nodes(),
            self.window.num_features(),
            self.cfg.max_skew.max(1),
            self.window.len(),
        );
    }

    /// Redeploy with a **new model snapshot** over the live state: the
    /// ring, ingest watermarks, graph and config carry over; the routing
    /// partitioning is recomputed for the new horizon exactly as a cold
    /// deploy would, so the swapped-in server's forwards are bit-identical
    /// to a server constructed fresh from the new snapshot over the same
    /// history. The hot-reload building block behind
    /// [`crate::SnapshotRegistry::swap_snapshot`].
    pub fn with_snapshot(&self, snapshot: ModelSnapshot) -> Result<BatchedServer, ServeError> {
        if snapshot.config.num_nodes != self.adjacency.num_nodes() {
            return Err(ServeError::GraphMismatch {
                snapshot_nodes: snapshot.config.num_nodes,
                graph_nodes: self.adjacency.num_nodes(),
            });
        }
        if snapshot.config.input_dim != self.window.num_features() {
            return Err(ServeError::FeatureMismatch {
                snapshot_features: snapshot.config.input_dim,
                window_features: self.window.num_features(),
            });
        }
        if snapshot.scaler != *self.window.scaler() {
            return Err(ServeError::ScalerMismatch);
        }
        if self.cfg.capacity < snapshot.config.horizon {
            return Err(ServeError::CapacityTooSmall {
                capacity: self.cfg.capacity,
                horizon: snapshot.config.horizon,
            });
        }
        let partitioning = self.cfg.partitioner.partition(
            &self.adjacency,
            None,
            self.cfg.shards,
            snapshot.config.horizon,
        );
        Ok(BatchedServer {
            snapshot,
            adjacency: self.adjacency.clone(),
            partitioning,
            window: self.window.clone(),
            ingest: self.ingest.clone(),
            cfg: self.cfg.clone(),
        })
    }

    /// Admit one whole reading in original units (`[N, F]`); it is
    /// standardized with the snapshot's scaler on entry. Fails with
    /// [`IngestError::PartialRowsInFlight`] if per-node ticks have
    /// staged a partial row — the two admission paths cannot interleave
    /// mid-row.
    pub fn admit(&mut self, reading: &Tensor) -> Result<(), IngestError> {
        self.ingest.note_full_row()?;
        self.window.admit(reading);
        Ok(())
    }

    /// Push one live per-node tick (original units) through the ingest
    /// watermarks; rows completed by this tick are admitted to the ring
    /// in stream order. Returns how many rows the tick completed.
    pub fn admit_tick(&mut self, tick: &Tick) -> Result<usize, IngestError> {
        let rows = self.ingest.push(tick)?;
        let n = rows.len();
        for row in &rows {
            self.window.admit(row);
        }
        Ok(n)
    }

    /// The rolling signal buffer.
    pub fn window(&self) -> &RollingWindow {
        &self.window
    }

    /// The live-ingest front (per-node watermarks and staged rows).
    pub fn ingest(&self) -> &StreamIngest {
        &self.ingest
    }

    /// The deployed snapshot.
    pub fn snapshot(&self) -> &ModelSnapshot {
        &self.snapshot
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The static query-routing partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The shard that owns `node`'s queries.
    pub fn owner_of(&self, node: usize) -> usize {
        self.partitioning.part_of(node)
    }

    /// Restore the served model replica from the snapshot. Expensive (full
    /// parameter restore + diffusion-support construction): build once and
    /// reuse across [`BatchedServer::predict_windows_with`] calls.
    pub fn build_model(&self) -> PgtDcrnn {
        self.snapshot
            .build_pgt_dcrnn(&self.adjacency)
            .expect("snapshot matches its own config")
    }

    /// Tape-free batched forward over the buffered windows ending at
    /// `ends`: returns the standardized `[B, horizon, N, 1]` prediction —
    /// bitwise what the trainer's evaluation forward produces on the same
    /// windows. The single-shard reference path the round-trip tests pin.
    /// Convenience wrapper that rebuilds the replica each call; loops
    /// should [`BatchedServer::build_model`] once and use
    /// [`BatchedServer::predict_windows_with`].
    pub fn predict_windows(&self, ends: &[usize]) -> Result<Tensor, ServeError> {
        self.predict_windows_with(&self.build_model(), ends)
    }

    /// [`BatchedServer::predict_windows`] against a replica built earlier
    /// with [`BatchedServer::build_model`].
    pub fn predict_windows_with(
        &self,
        model: &PgtDcrnn,
        ends: &[usize],
    ) -> Result<Tensor, ServeError> {
        let x = self.window.batch(ends, self.snapshot.config.horizon)?;
        Ok(model.forward_inference(&x))
    }

    /// Serve a stream of queries under the deployment's configured SLO
    /// ([`ServeConfig::slo`]; unbounded — never shedding — by default).
    pub fn serve(&self, queries: &[Query]) -> ServeReport {
        self.serve_slo(queries, &self.cfg.slo.clone())
    }

    /// Serve a stream of queries (sorted by arrival) under an explicit
    /// SLO: route each to its owning shard, run SLO admission control
    /// over each shard's micro-batch queue, and replay the admitted
    /// schedule as batched tape-free forwards concurrently across
    /// shards. Unservable windows (evicted / not yet ingested) are
    /// rejected before routing; every query lands in exactly one of
    /// [`ServeReport::results`] / [`ServeReport::rejections`].
    pub fn serve_slo(&self, queries: &[Query], slo: &SloConfig) -> ServeReport {
        let horizon = self.snapshot.config.horizon;
        let nodes = self.snapshot.config.num_nodes;
        let features = self.snapshot.config.input_dim;
        for q in queries {
            assert!(
                q.node < nodes,
                "query {} names node {} of {nodes}",
                q.id,
                q.node
            );
        }

        // Pre-routing servability: a window the ring cannot produce is a
        // typed rejection, not a panic in a worker thread.
        let mut pre_rejected: Vec<(usize, Rejection)> = Vec::new();
        // Static routing: shard r sees only its owned nodes' servable
        // requests, in arrival order (`PendingRequest::id` is the index
        // into `queries`).
        let mut routed = vec![Vec::new(); self.cfg.shards];
        for (idx, q) in queries.iter().enumerate() {
            let shard = self.owner_of(q.node);
            match self.window.window_status(q.window_end, horizon) {
                Ok(()) => routed[shard].push(PendingRequest {
                    id: idx,
                    arrival_secs: q.arrival_secs,
                    window_end: q.window_end,
                }),
                Err(e) => {
                    let reason = match e {
                        ServeError::WindowEvicted {
                            window_end,
                            oldest_retained,
                            ..
                        } => ShedReason::WindowEvicted {
                            window_end,
                            oldest_retained,
                        },
                        ServeError::NotYetServable {
                            window_end,
                            admitted,
                        } => ShedReason::NotYetServable {
                            window_end,
                            admitted,
                        },
                        other => panic!("unservable query {}: {other}", q.id),
                    };
                    pre_rejected.push((
                        idx,
                        Rejection {
                            id: q.id,
                            node: q.node,
                            shard,
                            window_end: q.window_end,
                            reason,
                        },
                    ));
                }
            }
        }

        let per_shard = run_workers(self.cfg.shards, self.cfg.topology, |ctx| {
            let shard = ctx.rank();
            // Each shard thread selects the deployment's compute backend
            // before any forward runs (bitwise-identical either way).
            st_tensor::backend::set_backend(self.cfg.backend);
            let cost = ctx.comm.hub().cost_model().clone();
            // Every shard restores the same bit-identical replica.
            let model = self
                .snapshot
                .build_pgt_dcrnn(&self.adjacency)
                .expect("snapshot matches its own config");
            let owned = self.partitioning.part_nodes(shard).len();
            let halo_row_bytes = (horizon * (nodes - owned) * features * 4) as u64;

            // Admission control prices batches through the same
            // CostModel::micro_batch_secs the executor below charges.
            let schedule = admit_and_coalesce(
                &routed[shard],
                &self.cfg.queue,
                slo,
                &BatchCost {
                    halo_bytes_per_window: halo_row_bytes,
                    flops_per_window: model.flops_per_forward(1),
                    cost: cost.clone(),
                },
            );
            let rejections: Vec<(usize, Rejection)> = schedule
                .rejections
                .iter()
                .map(|s| {
                    let q = &queries[s.id];
                    (
                        s.id,
                        Rejection {
                            id: q.id,
                            node: q.node,
                            shard,
                            window_end: q.window_end,
                            reason: s.reason,
                        },
                    )
                })
                .collect();

            let mut results = Vec::with_capacity(routed[shard].len());
            let mut stats = ShardStats {
                shard,
                owned_nodes: owned,
                requests: routed[shard].len(),
                shed: rejections.len(),
                batches: 0,
                cache_hits: 0,
                halo_bytes: 0,
                compute_secs: 0.0,
                comm_secs: 0.0,
                busy_secs: 0.0,
                finish_secs: 0.0,
            };
            // The shard's modeled timeline. A batch occupies it from
            // max(previous completion, dispatch); its halo fetch is a
            // deadline stream in flight since dispatch, so only the part
            // not hidden behind the previous batch's compute is charged.
            let tl = SimClock::new();
            let mut ledger = OverlapLedger::new();
            // Standardized target-channel planes ([horizon × N] each) of
            // windows already forwarded this call.
            let mut cache: HashMap<usize, Vec<f32>> = HashMap::new();
            for batch in &schedule.batches {
                let uncached: Vec<usize> = batch
                    .windows
                    .iter()
                    .copied()
                    .filter(|w| !cache.contains_key(w))
                    .collect();
                stats.cache_hits += batch.windows.len() - uncached.len();
                tl.sync_to(batch.dispatch_secs);
                let mut fresh: HashMap<usize, Vec<f32>> = HashMap::new();
                if !uncached.is_empty() {
                    let halo_bytes = uncached.len() as u64 * halo_row_bytes;
                    let (fetch_secs, compute_secs) =
                        cost.micro_batch_secs(halo_bytes, model.flops_per_forward(uncached.len()));
                    let charged_before = ledger.charged_secs();
                    let sid =
                        ledger.begin_at(batch.dispatch_secs + fetch_secs, batch.dispatch_secs);
                    ledger.wait(sid, &tl);
                    let exposed = ledger.charged_secs() - charged_before;
                    let x = self
                        .window
                        .batch(&uncached, horizon)
                        .expect("servability pre-checked before routing");
                    let pred = model.forward_inference(&x);
                    tl.advance_compute(compute_secs);
                    ctx.clock.advance_comm(exposed);
                    ctx.clock.advance_compute(compute_secs);
                    stats.halo_bytes += halo_bytes;
                    stats.busy_secs += exposed + compute_secs;
                    for (j, &w) in uncached.iter().enumerate() {
                        let mut plane = vec![0.0f32; horizon * nodes];
                        for t in 0..horizon {
                            for node in 0..nodes {
                                plane[t * nodes + node] = pred.at(&[j, t, node, 0]);
                            }
                        }
                        fresh.insert(w, plane);
                    }
                }
                let done = tl.now();
                stats.batches += 1;
                stats.finish_secs = done;
                for (&idx, &slot) in batch.requests.iter().zip(&batch.window_of) {
                    let q = &queries[idx];
                    let w = batch.windows[slot];
                    let plane = fresh
                        .get(&w)
                        .or_else(|| cache.get(&w))
                        .expect("every batch window is fresh or cached");
                    let forecast_std: Vec<f32> =
                        (0..horizon).map(|t| plane[t * nodes + q.node]).collect();
                    let forecast = forecast_std
                        .iter()
                        .map(|&v| self.snapshot.scaler.inverse_scalar(v))
                        .collect();
                    results.push((
                        idx,
                        QueryResult {
                            id: q.id,
                            node: q.node,
                            shard,
                            window_end: q.window_end,
                            forecast_std,
                            forecast,
                            latency_secs: done - q.arrival_secs,
                            batch_windows: batch.windows.len(),
                        },
                    ));
                }
                if self.cfg.forecast_cache {
                    cache.extend(fresh);
                }
            }
            stats.compute_secs = ctx.clock.compute_secs();
            stats.comm_secs = ctx.clock.comm_secs();
            (results, rejections, stats)
        });

        let mut indexed = Vec::with_capacity(queries.len());
        let mut rejected = pre_rejected;
        let mut shards = Vec::with_capacity(self.cfg.shards);
        for (r, rej, s) in per_shard {
            indexed.extend(r);
            rejected.extend(rej);
            shards.push(s);
        }
        // Submission order (the internal routing index), not the
        // caller-side id — ids need not be unique or monotone.
        indexed.sort_by_key(|(idx, _)| *idx);
        rejected.sort_by_key(|(idx, _)| *idx);
        let results: Vec<QueryResult> = indexed.into_iter().map(|(_, r)| r).collect();
        let rejections: Vec<Rejection> = rejected.into_iter().map(|(_, r)| r).collect();
        let mut latencies: Vec<f64> = results.iter().map(|r| r.latency_secs).collect();
        latencies.sort_by(f64::total_cmp);
        let makespan = shards.iter().map(|s| s.finish_secs).fold(0.0, f64::max);
        ServeReport {
            p50_latency_secs: percentile(&latencies, 0.5),
            p99_latency_secs: percentile(&latencies, 0.99),
            p999_latency_secs: percentile(&latencies, 0.999),
            shed_rate: if queries.is_empty() {
                0.0
            } else {
                rejections.len() as f64 / queries.len() as f64
            },
            makespan_secs: makespan,
            requests_per_sec: if makespan > 0.0 {
                results.len() as f64 / makespan
            } else {
                0.0
            },
            halo_bytes: shards.iter().map(|s| s.halo_bytes).sum(),
            results,
            rejections,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autograd::Module;
    use st_data::scaler::StandardScaler;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn deployment(shards: usize) -> (BatchedServer, Tensor) {
        let net = st_graph::generators::highway_corridor(8, 1, 5);
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 4,
            num_nodes: 8,
            horizon: 3,
            diffusion_steps: 2,
            layers: 1,
        };
        let supports = Support::wrap_all(st_graph::diffusion_supports(&net.adjacency, 2));
        let trained = PgtDcrnn::new(cfg.clone(), &supports, 7);
        let snap =
            ModelSnapshot::capture(cfg, StandardScaler::identity(), None, &trained.params(), 1);
        let history = Tensor::arange(20 * 8).reshape([20, 8, 1]).unwrap();
        let server = BatchedServer::with_history(
            snap,
            net.adjacency.clone(),
            &history,
            ServeConfig::new(shards, 20),
        );
        (server, history)
    }

    fn burst(n: usize, nodes: usize) -> Vec<Query> {
        (0..n)
            .map(|i| Query {
                id: 100 + i,
                node: i % nodes,
                window_end: 10 + (i % 8),
                arrival_secs: i as f64 * 1e-6,
            })
            .collect()
    }

    #[test]
    fn sharded_results_match_the_single_shard_reference() {
        let queries = burst(24, 8);
        let (single, _) = deployment(1);
        let (sharded, _) = deployment(2);
        let a = single.serve(&queries);
        let b = sharded.serve(&queries);
        assert_eq!(a.results.len(), 24);
        assert_eq!(b.results.len(), 24);
        assert!(a.rejections.is_empty() && b.rejections.is_empty());
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.id, rb.id);
            // Bit-identical replicas + identical windows ⇒ identical
            // forecasts, regardless of shard count or batch grouping.
            for (va, vb) in ra.forecast_std.iter().zip(&rb.forecast_std) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn served_forecasts_match_predict_windows() {
        let (server, _) = deployment(2);
        let queries = burst(16, 8);
        let report = server.serve(&queries);
        let model = server.build_model();
        for r in &report.results {
            let pred = server
                .predict_windows_with(&model, &[r.window_end])
                .unwrap();
            for (t, &v) in r.forecast_std.iter().enumerate() {
                assert_eq!(v.to_bits(), pred.at(&[0, t, r.node, 0]).to_bits());
            }
        }
    }

    #[test]
    fn single_shard_has_no_halo_traffic() {
        let (server, _) = deployment(1);
        let report = server.serve(&burst(8, 8));
        assert_eq!(report.halo_bytes, 0, "one shard owns every row");
        assert!(report.p50_latency_secs > 0.0);
        assert!(report.p99_latency_secs >= report.p50_latency_secs);
        assert!(report.p999_latency_secs >= report.p99_latency_secs);
    }

    #[test]
    fn sharding_charges_halo_reads_and_routes_by_owner() {
        let (server, _) = deployment(2);
        let queries = burst(16, 8);
        let report = server.serve(&queries);
        assert!(report.halo_bytes > 0, "2 shards must exchange halo rows");
        for r in &report.results {
            assert_eq!(r.shard, server.owner_of(r.node), "static routing");
        }
        let total: usize = report.shards.iter().map(|s| s.requests).sum();
        assert_eq!(total, 16);
        for s in &report.shards {
            assert!(s.utilization(report.makespan_secs) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn original_units_apply_the_scaler() {
        let (mut server, _) = deployment(1);
        // Swap in a non-trivial scaler and re-admit standardized history.
        let scaler = StandardScaler::from_feature_stats(vec![(50.0, 5.0)]);
        server.snapshot.scaler = scaler.clone();
        let report = server.serve(&burst(4, 8));
        for r in &report.results {
            for (std, orig) in r.forecast_std.iter().zip(&r.forecast) {
                assert_eq!(orig.to_bits(), (std * 5.0 + 50.0).to_bits());
            }
        }
    }

    #[test]
    fn latencies_respect_the_busy_chain() {
        // One shard, queue of 1: every request is its own batch, so each
        // completion waits for the previous one — latencies must be
        // non-decreasing for a burst arriving (almost) together.
        let (server, _) = deployment(1);
        let mut cfgd = server.cfg.clone();
        cfgd.queue = QueueConfig {
            max_batch: 1,
            max_delay_secs: 0.0,
        };
        let server = BatchedServer {
            cfg: cfgd,
            ..server
        };
        let queries = burst(6, 8);
        let report = server.serve(&queries);
        for pair in report.results.windows(2) {
            assert!(
                pair[1].latency_secs >= pair[0].latency_secs - 1e-5,
                "queueing delay accumulates across a burst"
            );
        }
    }

    #[test]
    fn unservable_windows_are_rejected_not_panicked() {
        let (server, _) = deployment(1);
        let mut queries = burst(4, 8);
        queries[1].window_end = 1; // reaches below the ring? no — evicted once > cap admitted
        queries[1].window_end = 2; // horizon 3: end < h ⇒ evicted
        queries[2].window_end = 99; // far future ⇒ not yet servable
        let report = server.serve(&queries);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.rejections.len(), 2);
        assert!((report.shed_rate - 0.5).abs() < 1e-12);
        assert!(matches!(
            report.rejections[0].reason,
            ShedReason::WindowEvicted { window_end: 2, .. }
        ));
        assert!(matches!(
            report.rejections[1].reason,
            ShedReason::NotYetServable {
                window_end: 99,
                admitted: 20
            }
        ));
        // Ids echo the caller's, and every query landed somewhere.
        assert_eq!(report.rejections[0].id, 101);
        assert_eq!(report.rejections[1].id, 102);
    }

    #[test]
    fn overload_with_slo_sheds_and_improves_tail_latency() {
        let (server, _) = deployment(1);
        // A hard burst into a per-request queue: the busy chain stacks up.
        let mut cfgd = server.cfg.clone();
        cfgd.queue = QueueConfig {
            max_batch: 1,
            max_delay_secs: 0.0,
        };
        let server = BatchedServer {
            cfg: cfgd,
            ..server
        };
        // Arrivals effectively simultaneous relative to per-batch service
        // time, so the busy chain stacks 64 deep without shedding.
        let mut queries = burst(64, 8);
        for (i, q) in queries.iter_mut().enumerate() {
            q.arrival_secs = i as f64 * 1e-12;
        }
        let unbounded = server.serve_slo(&queries, &SloConfig::unbounded());
        assert!(unbounded.rejections.is_empty());
        assert!(unbounded.p50_latency_secs > 0.0);
        let slo = SloConfig {
            deadline_secs: unbounded.p50_latency_secs,
            max_queue_depth: usize::MAX,
        };
        let bounded = server.serve_slo(&queries, &slo);
        assert!(bounded.shed_rate > 0.0, "overload must shed");
        assert!(
            bounded.p99_latency_secs < unbounded.p99_latency_secs,
            "admission control must strictly improve the served tail: {} vs {}",
            bounded.p99_latency_secs,
            unbounded.p99_latency_secs
        );
        let placed = bounded.results.len() + bounded.rejections.len();
        assert_eq!(placed, queries.len(), "no silent loss");
        for s in &bounded.shards {
            assert_eq!(s.shed, bounded.rejections.len());
        }
    }

    #[test]
    fn forecast_cache_is_bitwise_transparent() {
        let (server, _) = deployment(2);
        let mut cfgc = server.cfg.clone();
        cfgc.forecast_cache = true;
        let cached = BatchedServer {
            cfg: cfgc,
            ..server.clone()
        };
        // Repeat windows across many batches: the cache path must answer
        // bitwise what the forward path answers.
        let mut queries = burst(48, 8);
        for (i, q) in queries.iter_mut().enumerate() {
            q.window_end = 12 + (i % 3);
            q.arrival_secs = i as f64 * 0.5; // far apart: one batch each
        }
        let plain = server.serve(&queries);
        let fast = cached.serve(&queries);
        assert_eq!(plain.results.len(), fast.results.len());
        for (a, b) in plain.results.iter().zip(&fast.results) {
            for (va, vb) in a.forecast_std.iter().zip(&b.forecast_std) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
        let hits: usize = fast.shards.iter().map(|s| s.cache_hits).sum();
        assert!(hits > 0, "repeat windows must hit the cache");
        assert!(
            fast.halo_bytes < plain.halo_bytes,
            "cached windows skip halo"
        );
        assert_eq!(
            plain.shards.iter().map(|s| s.cache_hits).sum::<usize>(),
            0,
            "cache off by default"
        );
    }

    #[test]
    fn live_ticks_extend_servability() {
        let (mut server, _) = deployment(1);
        let report = server.serve(&[Query {
            id: 0,
            node: 0,
            window_end: 21,
            arrival_secs: 0.0,
        }]);
        assert_eq!(report.rejections.len(), 1, "row 20 not ingested yet");
        for node in 0..8 {
            server
                .admit_tick(&Tick {
                    node,
                    t: 20,
                    values: vec![0.25],
                })
                .unwrap();
        }
        assert_eq!(server.window().len(), 21);
        let report = server.serve(&[Query {
            id: 0,
            node: 0,
            window_end: 21,
            arrival_secs: 0.0,
        }]);
        assert_eq!(report.results.len(), 1, "tick completion unlocked it");
    }
}
