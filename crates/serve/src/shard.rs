//! Partition-parallel batched serving.
//!
//! DistTGL's serving-side lesson, transplanted: partition the graph **once**
//! and let each shard statically own its nodes' queries — never repartition
//! per request. [`BatchedServer`] routes every [`Query`] to the shard that
//! owns its node ([`st_graph::Partitioning::part_of`]), and the shards run
//! concurrently under [`st_dist::run_workers`], each draining its own
//! micro-batch schedule ([`crate::queue::coalesce`]).
//!
//! Every shard restores the **same** full-model replica from the
//! [`ModelSnapshot`] (restored replicas are bit-identical — the snapshot
//! tests pin it), so a served forecast is bitwise the value the trainer's
//! own evaluation forward would produce, no matter which shard computed it.
//! What a shard does *not* own is the signal: the rows of each request
//! window belonging to other shards' nodes are halo reads, charged to the
//! traffic ledger in bytes and to the simulated clock via
//! [`st_device::CostModel::remote_fetch`] — the same
//! physically-local-but-modeled-remote idiom the training data planes use.
//!
//! Time is simulated, numerics are real: arrival times drive the
//! micro-batch schedule and the per-shard busy chain (a batch starts at
//! `max(dispatch, previous completion)`), producing modeled p50/p99
//! latencies and throughput, while the forwards themselves are real
//! tape-free computations ([`st_models::Seq2Seq::forward_inference`]).

use crate::queue::{coalesce, PendingRequest, QueueConfig};
use crate::snapshot::ModelSnapshot;
use crate::window::RollingWindow;
use st_dist::launch::run_workers;
use st_dist::topology::ClusterTopology;
use st_graph::{Adjacency, PartitionerKind, Partitioning};
use st_models::{PgtDcrnn, Seq2Seq};
use st_tensor::Tensor;

/// Serving deployment knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of partition-parallel shards.
    pub shards: usize,
    /// Micro-batching policy each shard's queue runs.
    pub queue: QueueConfig,
    /// Ring capacity of the rolling signal buffer (maximum window reach).
    pub capacity: usize,
    /// Cluster topology the shards are modeled on.
    pub topology: ClusterTopology,
    /// The partitioner the one-time routing split runs — the same choice
    /// the training planes take via `DistConfig`. Defaults to the
    /// multilevel partitioner, which minimizes the modeled halo bytes
    /// ([`st_graph::HaloCostModel`]) every cross-shard window read pays.
    pub partitioner: PartitionerKind,
    /// Compute backend each shard selects before its first forward
    /// ([`st_tensor::backend::set_backend`]). Backends are bitwise
    /// identical — served forecasts stay bit-equal to the trainer's
    /// forward either way; only inference wall time moves. Defaults to
    /// [`st_tensor::backend::BackendKind::Tiled`].
    pub backend: st_tensor::backend::BackendKind,
}

impl ServeConfig {
    /// A deployment of `shards` shards with default queue and a
    /// `capacity`-deep rolling buffer.
    pub fn new(shards: usize, capacity: usize) -> Self {
        ServeConfig {
            shards,
            queue: QueueConfig::default(),
            capacity,
            topology: ClusterTopology::polaris(),
            partitioner: PartitionerKind::Multilevel,
            backend: st_tensor::backend::BackendKind::Tiled,
        }
    }
}

/// One forecast request: "what happens at `node` after stream time
/// `window_end`?"
#[derive(Debug, Clone, Copy)]
pub struct Query {
    /// Caller-side request id (echoed back on the result).
    pub id: usize,
    /// The node whose forecast is requested; decides the owning shard.
    pub node: usize,
    /// Input window end, exclusive stream time (the window is the
    /// `horizon` most recent readings before it).
    pub window_end: usize,
    /// Modeled arrival time, seconds.
    pub arrival_secs: f64,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The caller-side id from the [`Query`].
    pub id: usize,
    /// The queried node.
    pub node: usize,
    /// The shard that served it.
    pub shard: usize,
    /// The input window end served.
    pub window_end: usize,
    /// Standardized target-channel forecast, one value per horizon step —
    /// bitwise the trainer-side forward's output for this window/node.
    pub forecast_std: Vec<f32>,
    /// The forecast in original units (scaler-inverted target channel).
    pub forecast: Vec<f32>,
    /// Modeled completion − arrival.
    pub latency_secs: f64,
    /// Distinct windows in the micro-batch that served this query.
    pub batch_windows: usize,
}

/// Per-shard serving statistics.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Nodes this shard owns.
    pub owned_nodes: usize,
    /// Requests routed here.
    pub requests: usize,
    /// Micro-batches dispatched.
    pub batches: usize,
    /// Halo-read bytes charged to the ledger.
    pub halo_bytes: u64,
    /// Modeled forward-compute seconds.
    pub compute_secs: f64,
    /// Modeled halo-fetch seconds.
    pub comm_secs: f64,
    /// Completion time of this shard's last batch (0 when idle).
    pub finish_secs: f64,
}

/// Outcome of one [`BatchedServer::serve`] call.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// All answered queries, in submission order (the position each query
    /// held in the `serve` input slice).
    pub results: Vec<QueryResult>,
    /// Per-shard statistics.
    pub shards: Vec<ShardStats>,
    /// Median modeled latency, seconds.
    pub p50_latency_secs: f64,
    /// 99th-percentile modeled latency, seconds.
    pub p99_latency_secs: f64,
    /// Modeled makespan: the last completion across shards.
    pub makespan_secs: f64,
    /// Requests served per modeled second.
    pub requests_per_sec: f64,
    /// Total halo-read bytes across shards (the data-plane ledger).
    pub halo_bytes: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A snapshot-backed, partition-parallel batched inference server.
///
/// Holds the deployment's static state — the trained [`ModelSnapshot`],
/// the graph and its one-time [`Partitioning`], and the rolling signal
/// buffer. [`BatchedServer::serve`] is the request path.
pub struct BatchedServer {
    snapshot: ModelSnapshot,
    adjacency: Adjacency,
    partitioning: Partitioning,
    window: RollingWindow,
    cfg: ServeConfig,
}

impl BatchedServer {
    /// Deploy a snapshot over `adjacency` with an empty signal buffer.
    /// The graph is partitioned once, here, by
    /// [`ServeConfig::partitioner`] (multilevel by default); queries are
    /// routed against this static assignment forever after.
    pub fn new(snapshot: ModelSnapshot, adjacency: Adjacency, cfg: ServeConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(
            snapshot.config.num_nodes,
            adjacency.num_nodes(),
            "snapshot was trained on a different graph"
        );
        assert!(
            cfg.capacity >= snapshot.config.horizon,
            "ring capacity {} cannot hold a horizon-{} window",
            cfg.capacity,
            snapshot.config.horizon
        );
        let partitioning =
            cfg.partitioner
                .partition(&adjacency, None, cfg.shards, snapshot.config.horizon);
        let window = RollingWindow::new(
            cfg.capacity,
            snapshot.config.num_nodes,
            snapshot.config.input_dim,
            snapshot.scaler.clone(),
        );
        BatchedServer {
            snapshot,
            adjacency,
            partitioning,
            window,
            cfg,
        }
    }

    /// Deploy with the buffer pre-seeded from an **already-standardized**
    /// `[E, N, F]` history (e.g. the training `IndexDataset`'s single
    /// copy), so served windows are bit-identical to training windows.
    pub fn with_history(
        snapshot: ModelSnapshot,
        adjacency: Adjacency,
        history: &Tensor,
        cfg: ServeConfig,
    ) -> Self {
        let mut server = BatchedServer::new(snapshot, adjacency, cfg);
        server.window = RollingWindow::from_standardized_history(
            history,
            server.cfg.capacity,
            server.snapshot.scaler.clone(),
        );
        server
    }

    /// [`BatchedServer::with_history`] over a
    /// [`st_data::SignalStorage`] backend: an out-of-core training copy
    /// seeds the ring by streaming only its final `capacity` rows, so
    /// deployment never materializes the dense history.
    pub fn with_storage_history(
        snapshot: ModelSnapshot,
        adjacency: Adjacency,
        history: &st_data::SignalStorage,
        cfg: ServeConfig,
    ) -> Self {
        let mut server = BatchedServer::new(snapshot, adjacency, cfg);
        server.window = RollingWindow::from_storage_history(
            history,
            server.cfg.capacity,
            server.snapshot.scaler.clone(),
        );
        server
    }

    /// Admit one reading in original units (`[N, F]`); it is standardized
    /// with the snapshot's scaler on entry.
    pub fn admit(&mut self, reading: &Tensor) {
        self.window.admit(reading);
    }

    /// The rolling signal buffer.
    pub fn window(&self) -> &RollingWindow {
        &self.window
    }

    /// The deployed snapshot.
    pub fn snapshot(&self) -> &ModelSnapshot {
        &self.snapshot
    }

    /// The static query-routing partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The shard that owns `node`'s queries.
    pub fn owner_of(&self, node: usize) -> usize {
        self.partitioning.part_of(node)
    }

    /// Restore the served model replica from the snapshot. Expensive (full
    /// parameter restore + diffusion-support construction): build once and
    /// reuse across [`BatchedServer::predict_windows_with`] calls.
    pub fn build_model(&self) -> PgtDcrnn {
        self.snapshot
            .build_pgt_dcrnn(&self.adjacency)
            .expect("snapshot matches its own config")
    }

    /// Tape-free batched forward over the buffered windows ending at
    /// `ends`: returns the standardized `[B, horizon, N, 1]` prediction —
    /// bitwise what the trainer's evaluation forward produces on the same
    /// windows. The single-shard reference path the round-trip tests pin.
    /// Convenience wrapper that rebuilds the replica each call; loops
    /// should [`BatchedServer::build_model`] once and use
    /// [`BatchedServer::predict_windows_with`].
    pub fn predict_windows(&self, ends: &[usize]) -> Tensor {
        self.predict_windows_with(&self.build_model(), ends)
    }

    /// [`BatchedServer::predict_windows`] against a replica built earlier
    /// with [`BatchedServer::build_model`].
    pub fn predict_windows_with(&self, model: &PgtDcrnn, ends: &[usize]) -> Tensor {
        let x = self.window.batch(ends, self.snapshot.config.horizon);
        model.forward_inference(&x)
    }

    /// Serve a stream of queries (sorted by arrival): route each to its
    /// owning shard, coalesce per-shard micro-batches, and run the batched
    /// tape-free forwards concurrently across shards.
    pub fn serve(&self, queries: &[Query]) -> ServeReport {
        let horizon = self.snapshot.config.horizon;
        let nodes = self.snapshot.config.num_nodes;
        let features = self.snapshot.config.input_dim;
        for q in queries {
            assert!(
                q.node < nodes,
                "query {} names node {} of {nodes}",
                q.id,
                q.node
            );
        }

        // Static routing: shard r sees only its owned nodes' requests, in
        // arrival order (`PendingRequest::id` is the index into `queries`).
        let routed: Vec<Vec<PendingRequest>> = {
            let mut routed = vec![Vec::new(); self.cfg.shards];
            for (idx, q) in queries.iter().enumerate() {
                routed[self.owner_of(q.node)].push(PendingRequest {
                    id: idx,
                    arrival_secs: q.arrival_secs,
                    window_end: q.window_end,
                });
            }
            routed
        };

        let per_shard = run_workers(self.cfg.shards, self.cfg.topology, |ctx| {
            let shard = ctx.rank();
            // Each shard thread selects the deployment's compute backend
            // before any forward runs (bitwise-identical either way).
            st_tensor::backend::set_backend(self.cfg.backend);
            let cost = ctx.comm.hub().cost_model().clone();
            // Every shard restores the same bit-identical replica.
            let model = self
                .snapshot
                .build_pgt_dcrnn(&self.adjacency)
                .expect("snapshot matches its own config");
            let owned = self.partitioning.part_nodes(shard).len();
            let halo_row_bytes = (horizon * (nodes - owned) * features * 4) as u64;

            let mut results = Vec::with_capacity(routed[shard].len());
            let mut stats = ShardStats {
                shard,
                owned_nodes: owned,
                requests: routed[shard].len(),
                batches: 0,
                halo_bytes: 0,
                compute_secs: 0.0,
                comm_secs: 0.0,
                finish_secs: 0.0,
            };
            // The busy chain: a batch starts when it dispatches AND the
            // previous batch has finished.
            let mut busy = 0.0f64;
            for batch in coalesce(&routed[shard], &self.cfg.queue) {
                // Halo exchange: the non-owned rows of each distinct
                // window, on the ledger and the clock.
                let halo_bytes = batch.windows.len() as u64 * halo_row_bytes;
                let fetch_secs = if halo_bytes > 0 {
                    cost.remote_fetch(halo_bytes, false)
                } else {
                    0.0
                };
                let x = self.window.batch(&batch.windows, horizon);
                let pred = model.forward_inference(&x);
                let compute_secs = model.flops_per_forward(batch.windows.len()) / cost.gpu_flops;
                let start = busy.max(batch.dispatch_secs);
                let done = start + fetch_secs + compute_secs;
                busy = done;
                ctx.clock.advance_comm(fetch_secs);
                ctx.clock.advance_compute(compute_secs);
                stats.batches += 1;
                stats.halo_bytes += halo_bytes;
                stats.finish_secs = done;
                for (&idx, &slot) in batch.requests.iter().zip(&batch.window_of) {
                    let q = &queries[idx];
                    let forecast_std: Vec<f32> = (0..horizon)
                        .map(|t| pred.at(&[slot, t, q.node, 0]))
                        .collect();
                    let forecast = forecast_std
                        .iter()
                        .map(|&v| self.snapshot.scaler.inverse_scalar(v))
                        .collect();
                    results.push((
                        idx,
                        QueryResult {
                            id: q.id,
                            node: q.node,
                            shard,
                            window_end: q.window_end,
                            forecast_std,
                            forecast,
                            latency_secs: done - q.arrival_secs,
                            batch_windows: batch.windows.len(),
                        },
                    ));
                }
            }
            stats.compute_secs = ctx.clock.compute_secs();
            stats.comm_secs = ctx.clock.comm_secs();
            (results, stats)
        });

        let mut indexed = Vec::with_capacity(queries.len());
        let mut shards = Vec::with_capacity(self.cfg.shards);
        for (r, s) in per_shard {
            indexed.extend(r);
            shards.push(s);
        }
        // Submission order (the internal routing index), not the
        // caller-side id — ids need not be unique or monotone.
        indexed.sort_by_key(|(idx, _)| *idx);
        let results: Vec<QueryResult> = indexed.into_iter().map(|(_, r)| r).collect();
        let mut latencies: Vec<f64> = results.iter().map(|r| r.latency_secs).collect();
        latencies.sort_by(f64::total_cmp);
        let makespan = shards.iter().map(|s| s.finish_secs).fold(0.0, f64::max);
        ServeReport {
            p50_latency_secs: percentile(&latencies, 0.5),
            p99_latency_secs: percentile(&latencies, 0.99),
            makespan_secs: makespan,
            requests_per_sec: if makespan > 0.0 {
                results.len() as f64 / makespan
            } else {
                0.0
            },
            halo_bytes: shards.iter().map(|s| s.halo_bytes).sum(),
            results,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autograd::Module;
    use st_data::scaler::StandardScaler;
    use st_models::{ModelConfig, PgtDcrnn, Support};

    fn deployment(shards: usize) -> (BatchedServer, Tensor) {
        let net = st_graph::generators::highway_corridor(8, 1, 5);
        let cfg = ModelConfig {
            input_dim: 1,
            output_dim: 1,
            hidden: 4,
            num_nodes: 8,
            horizon: 3,
            diffusion_steps: 2,
            layers: 1,
        };
        let supports = Support::wrap_all(st_graph::diffusion_supports(&net.adjacency, 2));
        let trained = PgtDcrnn::new(cfg.clone(), &supports, 7);
        let snap =
            ModelSnapshot::capture(cfg, StandardScaler::identity(), None, &trained.params(), 1);
        let history = Tensor::arange(20 * 8).reshape([20, 8, 1]).unwrap();
        let server = BatchedServer::with_history(
            snap,
            net.adjacency.clone(),
            &history,
            ServeConfig::new(shards, 20),
        );
        (server, history)
    }

    fn burst(n: usize, nodes: usize) -> Vec<Query> {
        (0..n)
            .map(|i| Query {
                id: 100 + i,
                node: i % nodes,
                window_end: 10 + (i % 8),
                arrival_secs: i as f64 * 1e-6,
            })
            .collect()
    }

    #[test]
    fn sharded_results_match_the_single_shard_reference() {
        let queries = burst(24, 8);
        let (single, _) = deployment(1);
        let (sharded, _) = deployment(2);
        let a = single.serve(&queries);
        let b = sharded.serve(&queries);
        assert_eq!(a.results.len(), 24);
        assert_eq!(b.results.len(), 24);
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.id, rb.id);
            // Bit-identical replicas + identical windows ⇒ identical
            // forecasts, regardless of shard count or batch grouping.
            for (va, vb) in ra.forecast_std.iter().zip(&rb.forecast_std) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn served_forecasts_match_predict_windows() {
        let (server, _) = deployment(2);
        let queries = burst(16, 8);
        let report = server.serve(&queries);
        let model = server.build_model();
        for r in &report.results {
            let pred = server.predict_windows_with(&model, &[r.window_end]);
            for (t, &v) in r.forecast_std.iter().enumerate() {
                assert_eq!(v.to_bits(), pred.at(&[0, t, r.node, 0]).to_bits());
            }
        }
    }

    #[test]
    fn single_shard_has_no_halo_traffic() {
        let (server, _) = deployment(1);
        let report = server.serve(&burst(8, 8));
        assert_eq!(report.halo_bytes, 0, "one shard owns every row");
        assert!(report.p50_latency_secs > 0.0);
        assert!(report.p99_latency_secs >= report.p50_latency_secs);
    }

    #[test]
    fn sharding_charges_halo_reads_and_routes_by_owner() {
        let (server, _) = deployment(2);
        let queries = burst(16, 8);
        let report = server.serve(&queries);
        assert!(report.halo_bytes > 0, "2 shards must exchange halo rows");
        for r in &report.results {
            assert_eq!(r.shard, server.owner_of(r.node), "static routing");
        }
        let total: usize = report.shards.iter().map(|s| s.requests).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn original_units_apply_the_scaler() {
        let (mut server, _) = deployment(1);
        // Swap in a non-trivial scaler and re-admit standardized history.
        let scaler = StandardScaler::from_feature_stats(vec![(50.0, 5.0)]);
        server.snapshot.scaler = scaler.clone();
        let report = server.serve(&burst(4, 8));
        for r in &report.results {
            for (std, orig) in r.forecast_std.iter().zip(&r.forecast) {
                assert_eq!(orig.to_bits(), (std * 5.0 + 50.0).to_bits());
            }
        }
    }

    #[test]
    fn latencies_respect_the_busy_chain() {
        // One shard, queue of 1: every request is its own batch, so each
        // completion waits for the previous one — latencies must be
        // non-decreasing for a burst arriving (almost) together.
        let (server, _) = deployment(1);
        let mut cfgd = server.cfg.clone();
        cfgd.queue = QueueConfig {
            max_batch: 1,
            max_delay_secs: 0.0,
        };
        let server = BatchedServer {
            cfg: cfgd,
            ..server
        };
        let queries = burst(6, 8);
        let report = server.serve(&queries);
        for pair in report.results.windows(2) {
            assert!(
                pair[1].latency_secs >= pair[0].latency_secs - 1e-5,
                "queueing delay accumulates across a burst"
            );
        }
    }
}
