//! SLO-driven admission control and load shedding on the micro-batch queue.
//!
//! [`crate::queue::coalesce`] batches everything it is given; under
//! sustained overload that drives the busy chain — and with it every
//! later request's latency — unboundedly high. [`admit_and_coalesce`]
//! wraps the same coalescing state machine with two admission gates,
//! evaluated at each arrival *before* the request joins a batch:
//!
//! 1. **Bounded queue depth** — requests admitted but not yet complete
//!    (open-batch members plus dispatched work whose modeled completion
//!    is still in the future) may not exceed
//!    [`SloConfig::max_queue_depth`]; excess arrivals shed
//!    [`ShedReason::QueueFull`].
//! 2. **Deadline-aware shedding** — the batch the request would join is
//!    priced through [`BatchCost`] (the same
//!    [`st_device::CostModel::micro_batch_secs`] call the shard executor
//!    charges to its deadline streams, MSPipe-style): halo fetch plus
//!    batched forward, started no earlier than the shard is free. If the
//!    modeled completion at the batch's *latest* possible dispatch (its
//!    timer deadline) would land past `arrival + deadline_secs`, the
//!    request is shed [`ShedReason::DeadlineUnmeetable`] instead of
//!    being queued only to blow its SLO.
//!
//! Shedding never mutates queue state: the schedule after a rejection is
//! exactly the schedule of the stream without that request, and every
//! shed request gets an explicit typed [`Shed`] record — no silent loss.
//! With [`SloConfig::unbounded`] both gates are inert and the schedule
//! is bit-for-bit the plain [`crate::queue::coalesce`] schedule (pinned
//! by test and proptest).

use std::collections::VecDeque;

use st_device::CostModel;

use crate::queue::{MicroBatch, PendingRequest, QueueConfig};

/// Per-tenant service-level objective knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Maximum modeled seconds between a request's arrival and its
    /// batch's completion before admission control sheds it.
    /// `f64::INFINITY` disables deadline shedding.
    pub deadline_secs: f64,
    /// Maximum requests admitted-but-incomplete per shard queue;
    /// arrivals beyond it shed [`ShedReason::QueueFull`].
    /// `usize::MAX` disables the depth bound.
    pub max_queue_depth: usize,
}

impl SloConfig {
    /// No SLO: never shed. [`admit_and_coalesce`] degenerates to
    /// [`crate::queue::coalesce`].
    pub fn unbounded() -> Self {
        SloConfig {
            deadline_secs: f64::INFINITY,
            max_queue_depth: usize::MAX,
        }
    }
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig::unbounded()
    }
}

/// Why admission control shed a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedReason {
    /// The shard's queue already held [`SloConfig::max_queue_depth`]
    /// admitted-but-incomplete requests at this arrival.
    QueueFull {
        /// Queue depth observed at the arrival.
        depth: usize,
    },
    /// The modeled completion of the batch this request would join lands
    /// past the request's SLO deadline.
    DeadlineUnmeetable {
        /// Modeled completion time (absolute, seconds) the admission
        /// estimator priced for this request.
        modeled_completion_secs: f64,
        /// The absolute deadline (`arrival + deadline_secs`) it missed.
        deadline_secs: f64,
    },
    /// The requested window reaches below the ring's retained rows —
    /// live ingest evicted them (server-side pre-routing check).
    WindowEvicted {
        /// The requested exclusive window end.
        window_end: usize,
        /// Oldest stream row the ring still holds.
        oldest_retained: usize,
    },
    /// The requested window ends past the fully-admitted frontier: some
    /// node it reads has not passed its watermark yet (server-side
    /// pre-routing check). Retry once ingest catches up.
    NotYetServable {
        /// The requested exclusive window end.
        window_end: usize,
        /// Rows admitted so far.
        admitted: usize,
    },
}

/// One shed request: the typed rejection admission control hands back in
/// place of a result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shed {
    /// Caller-side id from the [`PendingRequest`].
    pub id: usize,
    /// Why it was shed.
    pub reason: ShedReason,
}

/// Outcome of [`admit_and_coalesce`]: the dispatchable schedule for the
/// admitted requests plus a typed rejection per shed request.
#[derive(Debug, Clone)]
pub struct SloSchedule {
    /// Micro-batches over the admitted requests, in dispatch order.
    pub batches: Vec<MicroBatch>,
    /// Shed requests, in arrival order.
    pub rejections: Vec<Shed>,
}

/// The admission estimator's pricing of one shard's micro-batches: the
/// per-window halo read and forward FLOPs, priced through the deployment
/// [`CostModel`]. Scheduler and executor price through the **same**
/// [`CostModel::micro_batch_secs`] call, so a request is shed exactly
/// when the model that would serve it says its SLO cannot be met.
#[derive(Debug, Clone)]
pub struct BatchCost {
    /// Cross-shard halo bytes one distinct window's read costs.
    pub halo_bytes_per_window: u64,
    /// Forward FLOPs one distinct window adds to a batch (the model's
    /// `flops_per_forward` is linear in batch size).
    pub flops_per_window: f64,
    /// The deployment cost model.
    pub cost: CostModel,
}

impl BatchCost {
    /// Modeled `(fetch, compute)` seconds for a batch of `windows`
    /// distinct windows.
    pub fn batch_secs(&self, windows: usize) -> (f64, f64) {
        self.cost.micro_batch_secs(
            self.halo_bytes_per_window * windows as u64,
            self.flops_per_window * windows as f64,
        )
    }

    /// Modeled completion of a `windows`-window batch dispatched at
    /// `dispatch_secs` on a shard busy until `busy_secs`: the halo fetch
    /// streams from dispatch and overlaps the tail of the previous
    /// batch's compute (the executor's deadline-stream replay of the
    /// same formula), so the forward starts at
    /// `max(busy, dispatch + fetch)`.
    pub fn completion(&self, busy_secs: f64, dispatch_secs: f64, windows: usize) -> f64 {
        let (fetch, compute) = self.batch_secs(windows);
        busy_secs.max(dispatch_secs + fetch) + compute
    }
}

/// Dispatch the batch: price its completion, extend the busy chain, and
/// record one in-flight completion per member request for the depth
/// ledger. Completions are monotone across dispatches (each starts no
/// earlier than the previous finished), keeping the ledger sorted.
fn dispatch(b: &MicroBatch, busy: f64, cost: &BatchCost, in_system: &mut VecDeque<f64>) -> f64 {
    let done = cost.completion(busy, b.dispatch_secs, b.windows.len());
    for _ in &b.requests {
        in_system.push_back(done);
    }
    done
}

/// [`crate::queue::coalesce`] with SLO admission control: coalesce
/// arrival-ordered requests into micro-batches, shedding arrivals that
/// would overflow the queue or miss their deadline.
///
/// Panics if arrivals are not non-decreasing, `max_batch == 0`,
/// `max_delay_secs < 0`, or `deadline_secs <= 0` (an unmeetable-by-
/// construction SLO is a config error, not traffic).
pub fn admit_and_coalesce(
    requests: &[PendingRequest],
    queue: &QueueConfig,
    slo: &SloConfig,
    cost: &BatchCost,
) -> SloSchedule {
    assert!(queue.max_batch >= 1, "max_batch must be at least 1");
    assert!(
        queue.max_delay_secs >= 0.0,
        "max_delay must be non-negative"
    );
    assert!(slo.deadline_secs > 0.0, "deadline must be positive");
    assert!(
        slo.max_queue_depth >= 1,
        "queue depth bound must admit work"
    );
    let mut batches = Vec::new();
    let mut rejections = Vec::new();
    let mut open: Option<MicroBatch> = None;
    let mut deadline = f64::INFINITY;
    // Busy chain over modeled time, mirrored from the shard executor.
    let mut busy = 0.0f64;
    // Modeled completions of dispatched-but-unfinished requests,
    // ascending; the depth ledger.
    let mut in_system: VecDeque<f64> = VecDeque::new();
    for (i, r) in requests.iter().enumerate() {
        if i > 0 {
            assert!(
                r.arrival_secs >= requests[i - 1].arrival_secs,
                "requests must be sorted by arrival"
            );
        }
        // The timer fires before this arrival: flush at the deadline.
        if let Some(b) = open.take_if(|_| r.arrival_secs > deadline) {
            busy = dispatch(&b, busy, cost, &mut in_system);
            batches.push(b);
            deadline = f64::INFINITY;
        }
        // Retire work whose modeled completion has passed.
        while in_system.front().is_some_and(|&d| d <= r.arrival_secs) {
            in_system.pop_front();
        }
        // Gate 1: bounded queue depth.
        let depth = in_system.len() + open.as_ref().map_or(0, |b| b.requests.len());
        if depth >= slo.max_queue_depth {
            rejections.push(Shed {
                id: r.id,
                reason: ShedReason::QueueFull { depth },
            });
            continue;
        }
        // Gate 2: price the batch this request would join at its latest
        // possible dispatch (joining a duplicate window adds no slot).
        let (dispatch_est, windows_est) = match &open {
            Some(b) => {
                let extra = usize::from(!b.windows.contains(&r.window_end));
                (deadline, b.windows.len() + extra)
            }
            None => (r.arrival_secs + queue.max_delay_secs, 1),
        };
        let modeled_completion_secs = cost.completion(busy, dispatch_est, windows_est);
        let slo_deadline = r.arrival_secs + slo.deadline_secs;
        if modeled_completion_secs > slo_deadline {
            rejections.push(Shed {
                id: r.id,
                reason: ShedReason::DeadlineUnmeetable {
                    modeled_completion_secs,
                    deadline_secs: slo_deadline,
                },
            });
            continue;
        }
        // Admitted: exactly the coalesce state machine from here on.
        let b = open.get_or_insert_with(|| {
            deadline = r.arrival_secs + queue.max_delay_secs;
            MicroBatch {
                dispatch_secs: deadline,
                requests: Vec::new(),
                windows: Vec::new(),
                window_of: Vec::new(),
            }
        });
        let slot = match b.windows.iter().position(|&w| w == r.window_end) {
            Some(s) => s,
            None => {
                b.windows.push(r.window_end);
                b.windows.len() - 1
            }
        };
        b.requests.push(r.id);
        b.window_of.push(slot);
        // Full: dispatch immediately, at the arrival that filled it.
        if b.windows.len() >= queue.max_batch {
            let mut b = open.take().expect("just inserted");
            b.dispatch_secs = r.arrival_secs;
            busy = dispatch(&b, busy, cost, &mut in_system);
            batches.push(b);
            deadline = f64::INFINITY;
        }
    }
    // The stream ended; the last open batch waits out its timer.
    if let Some(b) = open {
        busy = dispatch(&b, busy, cost, &mut in_system);
        batches.push(b);
        let _ = busy;
    }
    SloSchedule {
        batches,
        rejections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::coalesce;

    fn req(id: usize, at: f64, window: usize) -> PendingRequest {
        PendingRequest {
            id,
            arrival_secs: at,
            window_end: window,
        }
    }

    /// A cost where each window's forward takes exactly one modeled
    /// second and halo reads are free.
    fn second_per_window() -> BatchCost {
        let cost = CostModel::polaris();
        BatchCost {
            halo_bytes_per_window: 0,
            flops_per_window: cost.gpu_flops,
            cost,
        }
    }

    #[test]
    fn unbounded_slo_reduces_to_plain_coalesce() {
        let queue = QueueConfig {
            max_batch: 3,
            max_delay_secs: 0.5,
        };
        let rs: Vec<PendingRequest> = (0..17)
            .map(|i| req(i, i as f64 * 0.21, 10 + i % 4))
            .collect();
        let plain = coalesce(&rs, &queue);
        let slo = admit_and_coalesce(&rs, &queue, &SloConfig::unbounded(), &second_per_window());
        assert!(slo.rejections.is_empty());
        assert_eq!(slo.batches.len(), plain.len());
        for (a, b) in slo.batches.iter().zip(&plain) {
            assert_eq!(a.dispatch_secs, b.dispatch_secs);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.windows, b.windows);
            assert_eq!(a.window_of, b.window_of);
        }
    }

    #[test]
    fn queue_depth_bound_sheds_the_overflow() {
        let queue = QueueConfig {
            max_batch: 1,
            max_delay_secs: 0.0,
        };
        let slo = SloConfig {
            deadline_secs: f64::INFINITY,
            max_queue_depth: 2,
        };
        // Four requests in a burst, each a 1 s forward: the first two are
        // admitted (depth 0, then 1); the third and fourth see a full
        // queue — their admitted predecessors complete at t = 1 and 2.
        let rs = [
            req(0, 0.0, 10),
            req(1, 1e-4, 11),
            req(2, 2e-4, 12),
            req(3, 3e-4, 13),
        ];
        let out = admit_and_coalesce(&rs, &queue, &slo, &second_per_window());
        assert_eq!(out.batches.len(), 2);
        assert_eq!(
            out.rejections,
            vec![
                Shed {
                    id: 2,
                    reason: ShedReason::QueueFull { depth: 2 }
                },
                Shed {
                    id: 3,
                    reason: ShedReason::QueueFull { depth: 2 }
                },
            ]
        );
        // Once the modeled completions pass, depth frees up again.
        let mut rs2 = rs.to_vec();
        rs2.push(req(4, 2.5, 14));
        let out2 = admit_and_coalesce(&rs2, &queue, &slo, &second_per_window());
        assert_eq!(out2.batches.len(), 3, "late arrival finds room");
        assert_eq!(out2.rejections.len(), 2);
    }

    #[test]
    fn unmeetable_deadlines_shed_instead_of_queueing() {
        let queue = QueueConfig {
            max_batch: 8,
            max_delay_secs: 0.0,
        };
        let slo = SloConfig {
            deadline_secs: 0.5, // a 1 s forward can never meet 0.5 s
            max_queue_depth: usize::MAX,
        };
        let rs = [req(0, 0.0, 10), req(1, 0.1, 11)];
        let out = admit_and_coalesce(&rs, &queue, &slo, &second_per_window());
        assert!(out.batches.is_empty(), "nothing admissible");
        assert_eq!(out.rejections.len(), 2);
        for s in &out.rejections {
            match s.reason {
                ShedReason::DeadlineUnmeetable {
                    modeled_completion_secs,
                    deadline_secs,
                } => assert!(modeled_completion_secs > deadline_secs),
                other => panic!("expected DeadlineUnmeetable, got {other:?}"),
            }
        }
    }

    #[test]
    fn shedding_leaves_no_trace_in_the_schedule() {
        let queue = QueueConfig {
            max_batch: 2,
            max_delay_secs: 0.2,
        };
        let slo = SloConfig {
            deadline_secs: 1.4,
            max_queue_depth: usize::MAX,
        };
        // Request 1's deadline is unmeetable behind request 0's second of
        // compute; the rest of the schedule must be exactly the schedule
        // of the stream without it.
        let rs = [req(0, 0.0, 10), req(1, 0.05, 11), req(2, 2.5, 12)];
        let out = admit_and_coalesce(&rs, &queue, &slo, &second_per_window());
        assert_eq!(out.rejections.len(), 1);
        assert_eq!(out.rejections[0].id, 1);
        let without: Vec<PendingRequest> = vec![rs[0], rs[2]];
        let reference = admit_and_coalesce(&without, &queue, &slo, &second_per_window());
        assert!(reference.rejections.is_empty());
        assert_eq!(out.batches.len(), reference.batches.len());
        for (a, b) in out.batches.iter().zip(&reference.batches) {
            assert_eq!(a.dispatch_secs, b.dispatch_secs);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.windows, b.windows);
        }
    }

    #[test]
    fn every_request_lands_in_exactly_one_place() {
        let queue = QueueConfig {
            max_batch: 3,
            max_delay_secs: 0.05,
        };
        let slo = SloConfig {
            deadline_secs: 2.5,
            max_queue_depth: 3,
        };
        let rs: Vec<PendingRequest> = (0..40)
            .map(|i| req(i, i as f64 * 0.07, 20 + i % 6))
            .collect();
        let out = admit_and_coalesce(&rs, &queue, &slo, &second_per_window());
        let mut seen = vec![0usize; rs.len()];
        for b in &out.batches {
            assert!(b.windows.len() <= queue.max_batch);
            for &id in &b.requests {
                seen[id] += 1;
            }
        }
        for s in &out.rejections {
            seen[s.id] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "partition: {seen:?}");
    }

    #[test]
    fn duplicate_window_joins_are_priced_without_a_new_slot() {
        let queue = QueueConfig {
            max_batch: 8,
            max_delay_secs: 0.1,
        };
        // Deadline fits a 1-window batch at its timer but not a 2-window
        // batch: a duplicate-window request is still admissible, a
        // distinct-window one is shed.
        let slo = SloConfig {
            deadline_secs: 1.2,
            max_queue_depth: usize::MAX,
        };
        let rs = [req(0, 0.0, 10), req(1, 0.02, 10), req(2, 0.04, 11)];
        let out = admit_and_coalesce(&rs, &queue, &slo, &second_per_window());
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].requests, vec![0, 1]);
        assert_eq!(out.batches[0].windows, vec![10]);
        assert_eq!(out.rejections.len(), 1);
        assert_eq!(out.rejections[0].id, 2);
    }
}
