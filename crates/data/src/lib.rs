//! # st-data
//!
//! Spatiotemporal data layer: the dataset registry with the paper's exact
//! Table-1 shapes, synthetic signal generators standing in for the PeMS /
//! METR-LA / Windmill / Chickenpox feeds, the **baseline** Algorithm-1
//! preprocessing pipeline (sliding-window materialization with its
//! `2×horizon×` memory blow-up), standardization, splits, and batch loaders
//! (including the original DCRNN loader's padded duplication).
//!
//! The paper's contribution — index-batching — lives in the `pgt-index`
//! crate and *replaces* [`preprocess`]; this crate deliberately implements
//! the wasteful standard pipeline so the comparison is honest.

pub mod datasets;
pub mod dynamic;
pub mod io;
pub mod loader;
pub mod preprocess;
pub mod replay;
pub mod scaler;
pub mod signal;
pub mod splits;
pub mod storage;
pub mod synthetic;

pub use datasets::{DatasetKind, DatasetSpec, Domain};
pub use loader::{Batcher, PaddedBatcher};
pub use preprocess::{materialized_bytes, materialized_xy, num_snapshots, PreprocessOutput};
pub use replay::{standard_replay, LoaderVariant, ReplayReport};
pub use scaler::StandardScaler;
pub use signal::StaticGraphTemporalSignal;
pub use splits::{SplitIndices, SplitRatios};
pub use storage::{
    ChunkCodec, ChunkedSpec, ChunkedStore, ChunkedWriter, RowStore, SignalStorage, StorageSpec,
};
