//! Synthetic highway traffic speeds (PeMS/METR-LA stand-in).
//!
//! Per-sensor speed = free-flow speed
//!   − diurnal congestion (morning + evening rush, phase-shifted along the
//!     corridor so congestion *propagates* spatially)
//!   − slow-moving stochastic congestion waves diffused over the graph
//!   + observation noise.
//!
//! The spatial diffusion step is what gives a graph model an edge over a
//! pure time-series model, which is the property the learning experiments
//! (Tables 3/5, Figs 5/8) depend on.

use crate::signal::StaticGraphTemporalSignal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use st_graph::generators::SensorNetwork;
use st_tensor::Tensor;

/// Generate `[entries, nodes, 1]` speeds over `network`.
pub fn generate(
    network: &SensorNetwork,
    entries: usize,
    period: usize,
    seed: u64,
) -> StaticGraphTemporalSignal {
    let n = network.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    // Per-sensor characteristics.
    let free_flow: Vec<f32> = (0..n).map(|_| rng.gen_range(58.0..70.0)).collect();
    let rush_severity: Vec<f32> = (0..n).map(|_| rng.gen_range(10.0..30.0)).collect();
    // Congestion propagates along the corridor: phase shift by x-coordinate.
    let phase: Vec<f32> = network.coords.iter().map(|&(x, _)| x * 0.02).collect();

    // Random-walk transition used to diffuse congestion shocks spatially.
    let p = st_graph::transition::random_walk(&network.adjacency);

    let mut congestion = vec![0.0f32; n];
    let mut out = Vec::with_capacity(entries * n);
    let period_f = period.max(1) as f32;
    for t in 0..entries {
        // Diffuse yesterday's congestion and inject fresh shocks.
        let cong_t = Tensor::from_vec(congestion.clone(), [n, 1]).expect("n values");
        let diffused = p.spmm(&cong_t).expect("square transition");
        let mut next = diffused.to_vec();
        for c in next.iter_mut() {
            *c *= 0.9; // decay
            if rng.gen_bool(0.01) {
                *c += rng.gen_range(5.0..20.0); // incident shock
            }
        }
        congestion = next;

        let day_pos = (t as f32 % period_f) / period_f; // 0..1 through a day
        for i in 0..n {
            let tod = day_pos + phase[i];
            // Two rush-hour dips (8am-ish, 5pm-ish as fractions of the day).
            let rush = gaussian_bump(tod, 0.33, 0.05) + gaussian_bump(tod, 0.71, 0.06);
            let speed =
                free_flow[i] - rush_severity[i] * rush - congestion[i] + rng.gen_range(-1.5..1.5);
            out.push(speed.max(3.0));
        }
    }
    StaticGraphTemporalSignal::new(
        Tensor::from_vec(out, [entries, n, 1]).expect("entries*n values"),
        network.adjacency.clone(),
    )
}

fn gaussian_bump(x: f32, center: f32, width: f32) -> f32 {
    // Wrap-around distance on the unit circle so late-night hours are calm.
    let d = (x - center).rem_euclid(1.0);
    let d = d.min(1.0 - d);
    (-d * d / (2.0 * width * width)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::generators::highway_corridor;

    #[test]
    fn speeds_plausible_and_periodic() {
        let net = highway_corridor(30, 1, 5);
        let sig = generate(&net, 2 * 288, 288, 5);
        let v = sig.data().to_vec();
        assert!(v.iter().all(|&s| (3.0..80.0).contains(&s)));
        // Rush hour (t ≈ 0.33 * period) is slower than midnight (t = 0).
        let midnight: f32 = (0..30).map(|i| sig.data().at(&[0, i, 0])).sum();
        let rush_t = (288.0 * 0.33) as usize;
        let rush: f32 = (0..30).map(|i| sig.data().at(&[rush_t, i, 0])).sum();
        assert!(rush < midnight, "rush {rush} vs midnight {midnight}");
    }

    #[test]
    fn congestion_is_spatially_correlated() {
        let net = highway_corridor(40, 1, 11);
        let sig = generate(&net, 600, 288, 11);
        // Average correlation between adjacent sensors must exceed the
        // correlation between the two corridor endpoints.
        let series =
            |i: usize| -> Vec<f32> { (0..600).map(|t| sig.data().at(&[t, i, 0])).collect() };
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let n = a.len() as f32;
            let (ma, mb) = (a.iter().sum::<f32>() / n, b.iter().sum::<f32>() / n);
            let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let (va, vb): (f32, f32) = (
                a.iter().map(|x| (x - ma).powi(2)).sum(),
                b.iter().map(|y| (y - mb).powi(2)).sum(),
            );
            cov / (va.sqrt() * vb.sqrt() + 1e-9)
        };
        let near = corr(&series(10), &series(11));
        let far = corr(&series(0), &series(39));
        assert!(
            near > far,
            "adjacent sensors should correlate more: near {near}, far {far}"
        );
    }
}
