//! Synthetic weekly epidemic case counts (Chickenpox-Hungary stand-in).
//!
//! A stochastic SIR-style process on the sensor graph: infection pressure
//! flows along edges, recoveries decay the infected pool, and a seasonal
//! forcing term produces the winter peaks characteristic of chickenpox.

use crate::signal::StaticGraphTemporalSignal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use st_graph::generators::SensorNetwork;
use st_tensor::Tensor;

/// Generate `[entries, nodes, 1]` weekly case counts over `network`.
pub fn generate(network: &SensorNetwork, entries: usize, seed: u64) -> StaticGraphTemporalSignal {
    let n = network.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51E0);
    let population: Vec<f32> = (0..n).map(|_| rng.gen_range(50.0..500.0)).collect();
    let mut susceptible: Vec<f32> = population.clone();
    let mut infected: Vec<f32> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.2) {
                rng.gen_range(1.0..5.0)
            } else {
                0.0
            }
        })
        .collect();

    let adj = &network.adjacency;
    let mut out = Vec::with_capacity(entries * n);
    for t in 0..entries {
        // Seasonal forcing: transmission peaks yearly (52-week period).
        let season = 1.0 + 0.6 * (2.0 * std::f32::consts::PI * t as f32 / 52.0).cos();
        let beta = 0.35 * season;
        let gamma = 0.55; // weekly recovery

        let mut new_cases = vec![0.0f32; n];
        for i in 0..n {
            // Infection pressure: local + neighbor spillover.
            let mut pressure = infected[i];
            for (j, &infected_j) in infected.iter().enumerate().take(n) {
                let w = adj.weight(i, j);
                if w > 0.0 && j != i {
                    pressure += 0.3 * w * infected_j;
                }
            }
            let frac_s = susceptible[i] / population[i];
            let mean_new = beta * pressure * frac_s;
            // Poisson-ish noise via a clamped normal.
            let noise: f32 = rng.gen_range(-0.5..0.5) * mean_new.sqrt().max(1.0);
            new_cases[i] = (mean_new + noise).max(0.0).min(susceptible[i]);
        }
        for i in 0..n {
            susceptible[i] -= new_cases[i];
            infected[i] = (infected[i] * (1.0 - gamma) + new_cases[i]).max(0.0);
            // Births / waning immunity slowly replenish susceptibles.
            susceptible[i] = (susceptible[i] + 0.01 * population[i]).min(population[i]);
            out.push(new_cases[i]);
        }
    }
    StaticGraphTemporalSignal::new(
        Tensor::from_vec(out, [entries, n, 1]).expect("entries*n values"),
        adj.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::generators::random_geometric;

    #[test]
    fn case_counts_nonnegative_and_nonconstant() {
        let net = random_geometric(15, 40.0, 9);
        let sig = generate(&net, 200, 9);
        let v = sig.data().to_vec();
        assert!(v.iter().all(|&c| c >= 0.0));
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|c| (c - mean).powi(2)).sum::<f32>() / v.len() as f32;
        assert!(var > 0.0, "signal must carry information");
    }

    #[test]
    fn epidemic_never_exceeds_population_burst() {
        let net = random_geometric(10, 30.0, 2);
        let sig = generate(&net, 104, 2);
        // Weekly new cases bounded by max population.
        assert!(sig.data().to_vec().iter().all(|&c| c <= 500.0));
    }
}
