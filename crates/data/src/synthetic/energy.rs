//! Synthetic hourly wind-farm energy output (Windmill-Large stand-in).
//!
//! A shared regional wind field (AR(1) process with a diurnal component)
//! drives all turbines; each turbine adds local terrain attenuation and
//! noise, and output passes through a cubic power-curve clamp, giving the
//! heavy-tailed, spatially correlated series typical of wind data.

use crate::signal::StaticGraphTemporalSignal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use st_graph::generators::SensorNetwork;
use st_tensor::Tensor;

/// Generate `[entries, nodes, 1]` hourly energy outputs over `network`.
pub fn generate(
    network: &SensorNetwork,
    entries: usize,
    period: usize,
    seed: u64,
) -> StaticGraphTemporalSignal {
    let n = network.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3141);
    // Local attenuation per turbine (terrain/wake effects), spatially smooth:
    // derived from coordinates so neighbors attenuate similarly.
    let atten: Vec<f32> = network
        .coords
        .iter()
        .map(|&(x, y)| 0.7 + 0.3 * ((x * 0.05).sin() * (y * 0.05).cos()).abs())
        .collect();

    let mut regional_wind = 8.0f32; // m/s
    let period_f = period.max(1) as f32;
    let mut out = Vec::with_capacity(entries * n);
    for t in 0..entries {
        // AR(1) regional wind with diurnal modulation.
        let diurnal = 1.0 + 0.25 * (2.0 * std::f32::consts::PI * (t as f32 / period_f)).sin();
        regional_wind = 0.95 * regional_wind + 0.05 * 8.0 + rng.gen_range(-0.6..0.6);
        regional_wind = regional_wind.clamp(0.0, 25.0);
        for &atten_i in atten.iter().take(n) {
            let local = (regional_wind * diurnal * atten_i + rng.gen_range(-0.8..0.8)).max(0.0);
            // Cubic power curve with cut-in (3 m/s) and rated (12 m/s) limits.
            let power = if local < 3.0 {
                0.0
            } else if local >= 12.0 {
                1.0
            } else {
                ((local - 3.0) / 9.0).powi(3)
            };
            out.push(power);
        }
    }
    StaticGraphTemporalSignal::new(
        Tensor::from_vec(out, [entries, n, 1]).expect("entries*n values"),
        network.adjacency.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::generators::random_geometric;

    #[test]
    fn power_in_unit_interval() {
        let net = random_geometric(20, 60.0, 4);
        let sig = generate(&net, 300, 24, 4);
        assert!(sig
            .data()
            .to_vec()
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn output_is_temporally_autocorrelated() {
        let net = random_geometric(10, 40.0, 8);
        let sig = generate(&net, 500, 24, 8);
        // Lag-1 autocorrelation of the farm-average output should be high
        // (AR(1) regional wind).
        let avg: Vec<f32> = (0..500)
            .map(|t| (0..10).map(|i| sig.data().at(&[t, i, 0])).sum::<f32>() / 10.0)
            .collect();
        let n = avg.len() - 1;
        let mean = avg.iter().sum::<f32>() / avg.len() as f32;
        let mut num = 0.0;
        let mut den = 0.0;
        for t in 0..n {
            num += (avg[t] - mean) * (avg[t + 1] - mean);
        }
        for v in &avg {
            den += (v - mean).powi(2);
        }
        let rho = num / den.max(1e-9);
        assert!(rho > 0.5, "lag-1 autocorrelation {rho} too low");
    }
}
