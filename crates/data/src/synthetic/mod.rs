//! Synthetic spatiotemporal signal generators.
//!
//! The PeMS feed is proprietary and the benchmark archives are not shippable
//! offline, so measured runs use generators that preserve what the learning
//! experiments actually need: **spatially correlated, temporally periodic,
//! learnable signal** on a sensor graph with the right shape. Each generator
//! is seeded and deterministic.

pub mod energy;
pub mod epidemic;
pub mod traffic;

use crate::datasets::{DatasetSpec, Domain};
use crate::signal::StaticGraphTemporalSignal;
use st_graph::generators as g;

/// Generate a synthetic signal with the shape of `spec` (typically a
/// [`DatasetSpec::scaled`] copy) using the domain-appropriate generator.
pub fn generate(spec: &DatasetSpec, seed: u64) -> StaticGraphTemporalSignal {
    let network = match spec.domain {
        Domain::Traffic => g::highway_corridor(spec.nodes, (spec.nodes / 40).max(1), seed),
        Domain::Epidemiological | Domain::Energy => {
            g::random_geometric(spec.nodes, (spec.nodes as f32).sqrt() * 10.0, seed)
        }
    };
    match spec.domain {
        Domain::Traffic => traffic::generate(&network, spec.entries, spec.period, seed),
        Domain::Epidemiological => epidemic::generate(&network, spec.entries, seed),
        Domain::Energy => energy::generate(&network, spec.entries, spec.period, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    #[test]
    fn generate_matches_spec_shape() {
        for kind in [
            DatasetKind::ChickenpoxHungary,
            DatasetKind::WindmillLarge,
            DatasetKind::MetrLa,
        ] {
            let spec = DatasetSpec::get(kind).scaled(0.02);
            let sig = generate(&spec, 7);
            assert_eq!(sig.entries(), spec.entries, "{}", spec.name);
            assert_eq!(sig.num_nodes(), spec.nodes, "{}", spec.name);
            assert_eq!(sig.num_features(), spec.raw_features, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::get(DatasetKind::PemsBay).scaled(0.02);
        let a = generate(&spec, 3);
        let b = generate(&spec, 3);
        assert_eq!(a.data().to_vec(), b.data().to_vec());
        let c = generate(&spec, 4);
        assert_ne!(a.data().to_vec(), c.data().to_vec());
    }
}
