//! The **baseline** spatiotemporal preprocessing pipeline (Algorithm 1).
//!
//! This is a faithful Rust port of the standard open-source workflow the
//! paper analyzes (§2.3/§3.3): slide a window over the signal, *materialize*
//! every `x` snapshot and its `y` label — duplicating `horizon − 1` entries
//! per snapshot and duplicating everything again for `y` — stack the lists,
//! then standardize on the training split. Its memory footprint follows the
//! paper's eq. (1); index-batching (the `pgt-index` crate) replaces it with
//! the eq. (2) layout.

use crate::scaler::StandardScaler;
use crate::signal::StaticGraphTemporalSignal;
use crate::splits::SplitRatios;
use st_tensor::{ops as t, Tensor};

/// Result of the materializing pipeline.
#[derive(Debug, Clone)]
pub struct PreprocessOutput {
    /// Input snapshots `[S, horizon, nodes, features]`, standardized.
    pub x: Tensor,
    /// Label snapshots `[S, horizon, nodes, features]`, standardized.
    pub y: Tensor,
    /// The scaler fitted on the training portion of `x`.
    pub scaler: StandardScaler,
    /// Split ranges over the `S` snapshots.
    pub splits: crate::splits::SplitIndices,
}

/// Number of `(x, y)` snapshot pairs produced by a window of `horizon` over
/// `entries` time steps: `entries − (2·horizon − 1)`.
pub fn num_snapshots(entries: usize, horizon: usize) -> usize {
    entries.saturating_sub(2 * horizon - 1)
}

/// Algorithm 1: materialize `(x, y)` arrays, then standardize using the
/// training-split statistics.
pub fn materialized_xy(
    signal: &StaticGraphTemporalSignal,
    horizon: usize,
    ratios: SplitRatios,
) -> PreprocessOutput {
    let entries = signal.entries();
    let s = num_snapshots(entries, horizon);
    assert!(s > 0, "signal too short for horizon {horizon}");

    // Lines 4–9: extract every x window and its y window. Each append
    // *copies* the slice — this is the data duplication the paper measures.
    let mut xs: Vec<Tensor> = Vec::with_capacity(s);
    let mut ys: Vec<Tensor> = Vec::with_capacity(s);
    for start in 0..s {
        let x = signal
            .data()
            .narrow(0, start, horizon)
            .expect("window in range")
            .contiguous(); // explicit copy, as in the reference code
        let y = signal
            .data()
            .narrow(0, start + horizon, horizon)
            .expect("label window in range")
            .contiguous();
        xs.push(x);
        ys.push(y);
    }

    // Lines 12–13: stack into [S, h, N, F] (another full copy each).
    let x_refs: Vec<&Tensor> = xs.iter().collect();
    let y_refs: Vec<&Tensor> = ys.iter().collect();
    let x = t::stack0(&x_refs).expect("equal window shapes");
    let y = t::stack0(&y_refs).expect("equal window shapes");

    // Lines 15–20: standardize with training-split statistics.
    let splits = ratios.split(s);
    let x_train = x
        .narrow(0, splits.train.start, splits.train.len().max(1))
        .expect("train range");
    let scaler = StandardScaler::fit(&x_train);
    let x = scaler.transform(&x);
    let y = scaler.transform(&y);

    PreprocessOutput {
        x,
        y,
        scaler,
        splits,
    }
}

/// Paper eq. (1): bytes of the materialized `(x, y)` arrays.
/// `2 × (entries − (2·horizon − 1)) × horizon × nodes × features × elem`.
pub fn materialized_bytes(
    entries: usize,
    horizon: usize,
    nodes: usize,
    features: usize,
    elem_bytes: usize,
) -> u64 {
    2 * (num_snapshots(entries, horizon) as u64)
        * horizon as u64
        * nodes as u64
        * features as u64
        * elem_bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::Adjacency;

    fn signal(entries: usize, nodes: usize) -> StaticGraphTemporalSignal {
        let adj = Adjacency::from_dense(nodes, vec![1.0; nodes * nodes]);
        let data = Tensor::arange(entries * nodes)
            .reshape([entries, nodes, 1])
            .unwrap();
        StaticGraphTemporalSignal::new(data, adj)
    }

    #[test]
    fn snapshot_count_matches_formula() {
        // Fig. 1 of the paper: 5 graphs, horizon 3 -> wait, the figure shows
        // 3 snapshots because it slides only x; with y-pairs at horizon 3 a
        // 12-entry series yields 12 - 5 = 7 pairs.
        assert_eq!(num_snapshots(12, 3), 7);
        assert_eq!(num_snapshots(522, 4), 515);
        assert_eq!(num_snapshots(105_120, 12), 105_097);
    }

    #[test]
    fn windows_align_x_and_y() {
        let sig = signal(10, 1);
        let out = materialized_xy(&sig, 2, SplitRatios::default());
        let s = num_snapshots(10, 2);
        assert_eq!(out.x.dims(), &[s, 2, 1, 1]);
        assert_eq!(out.y.dims(), &[s, 2, 1, 1]);
        // Before standardization x[i] = data[i..i+2], y[i] = data[i+2..i+4];
        // verify through the scaler inverse.
        let x0 = out.scaler.inverse(&out.x.select(0, 0).unwrap());
        let y0 = out.scaler.inverse(&out.y.select(0, 0).unwrap());
        assert_eq!(x0.to_vec(), vec![0.0, 1.0]);
        assert_eq!(y0.to_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn standardization_uses_train_stats_only() {
        let sig = signal(30, 1);
        let out = materialized_xy(&sig, 2, SplitRatios::default());
        // Training x values must be (approximately) zero-mean.
        let train = out
            .x
            .narrow(0, out.splits.train.start, out.splits.train.len())
            .unwrap();
        assert!(st_tensor::ops::mean_all(&train).abs() < 0.2);
        // The overall x mean is positive (later snapshots are larger).
        assert!(st_tensor::ops::mean_all(&out.x) > 0.0);
    }

    #[test]
    fn eq1_matches_actual_materialized_size() {
        let (e, n, h) = (40, 3, 4);
        let sig = signal(e, n);
        let out = materialized_xy(&sig, h, SplitRatios::default());
        let actual = ((out.x.numel() + out.y.numel()) * 8) as u64;
        assert_eq!(actual, materialized_bytes(e, h, n, 1, 8));
    }

    #[test]
    fn eq1_reproduces_table1_pems() {
        // PeMS: 419.46 GB after preprocessing (float64, horizon 12,
        // 11160 nodes, 2 features, 105120 entries).
        let bytes = materialized_bytes(105_120, 12, 11_160, 2, 8);
        let gib = bytes as f64 / (1u64 << 30) as f64;
        assert!((gib - 419.46).abs() < 0.5, "PeMS after-size: {gib} GiB");
    }

    #[test]
    fn eq1_reproduces_table1_all_rows() {
        // (entries, horizon, nodes, features, expected, tolerance-frac)
        let rows: [(usize, usize, usize, usize, f64, f64); 5] = [
            // Windmill-Large: 712.80 MB decimal.
            (17_472, 8, 319, 1, 712.80e6, 0.01),
            // METR-LA: 2.54 GB (GiB).
            (34_272, 12, 207, 2, 2.54 * (1u64 << 30) as f64, 0.01),
            // PeMS-BAY: 6.05 GiB.
            (52_105, 12, 325, 2, 6.05 * (1u64 << 30) as f64, 0.01),
            // PeMS-All-LA: 102.08 GiB.
            (105_120, 12, 2_716, 2, 102.08 * (1u64 << 30) as f64, 0.01),
            // Chickenpox: 657.92 KB decimal (±1%: the paper's own text
            // says "643 KB" elsewhere; our formula gives 659.2 KB).
            (522, 4, 20, 1, 657.92e3, 0.02),
        ];
        for (e, h, n, f, expect, tol) in rows {
            let got = materialized_bytes(e, h, n, f, 8) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < tol, "entries {e}: got {got}, expect {expect}");
        }
    }
}
