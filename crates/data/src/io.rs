//! Binary (de)serialization of signals — the "raw file on the parallel
//! filesystem" the paper's workflows read. A tiny header + little-endian
//! f32 payload via `bytes`, so distributed workers can model shared-FS
//! loading (every worker reads the same file, as §4.2 describes).

use crate::signal::StaticGraphTemporalSignal;
use crate::storage::RowStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use st_graph::Adjacency;
use st_tensor::Tensor;

const MAGIC: u32 = 0x5354_4447; // "STDG"

/// Serialize a signal (data + adjacency) to bytes.
pub fn to_bytes(signal: &StaticGraphTemporalSignal) -> Bytes {
    let e = signal.entries();
    let n = signal.num_nodes();
    let f = signal.num_features();
    let mut buf = BytesMut::with_capacity(16 + (e * n * f + n * n) * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(e as u32);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(f as u32);
    // Stream entry blocks through the storage trait so a chunked signal
    // serializes without ever materializing the full array.
    let block = 1024usize;
    let mut t0 = 0;
    while t0 < e {
        let t1 = (t0 + block).min(e);
        let (rows, _) = signal.storage.read_rows_quoted(t0..t1);
        for &v in rows.contiguous().as_slice().expect("contiguous rows") {
            buf.put_f32_le(v);
        }
        t0 = t1;
    }
    for &w in signal.adjacency.weights() {
        buf.put_f32_le(w);
    }
    buf.freeze()
}

/// Deserialize a signal previously produced by [`to_bytes`].
pub fn from_bytes(mut buf: Bytes) -> Result<StaticGraphTemporalSignal, String> {
    if buf.remaining() < 16 {
        return Err("buffer too short for header".into());
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(format!("bad magic {magic:#x}"));
    }
    let e = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    let f = buf.get_u32_le() as usize;
    let need = (e * n * f + n * n) * 4;
    if buf.remaining() < need {
        return Err(format!(
            "buffer too short: need {need} payload bytes, have {}",
            buf.remaining()
        ));
    }
    let mut data = Vec::with_capacity(e * n * f);
    for _ in 0..e * n * f {
        data.push(buf.get_f32_le());
    }
    let mut adj = Vec::with_capacity(n * n);
    for _ in 0..n * n {
        adj.push(buf.get_f32_le());
    }
    Ok(StaticGraphTemporalSignal::new(
        Tensor::from_vec(data, [e, n, f]).map_err(|e| e.to_string())?,
        Adjacency::from_dense(n, adj),
    ))
}

/// Write a signal to a file.
pub fn save(signal: &StaticGraphTemporalSignal, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(signal))
}

/// Read a signal from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<StaticGraphTemporalSignal> {
    let raw = std::fs::read(path)?;
    from_bytes(Bytes::from(raw))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StaticGraphTemporalSignal {
        let adj = Adjacency::from_dense(2, vec![1.0, 0.25, 0.25, 1.0]);
        let data = Tensor::arange(2 * 2 * 3).reshape([2, 2, 3]).unwrap();
        StaticGraphTemporalSignal::new(data, adj)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sig = sample();
        let back = from_bytes(to_bytes(&sig)).unwrap();
        assert_eq!(back.entries(), 2);
        assert_eq!(back.num_nodes(), 2);
        assert_eq!(back.num_features(), 3);
        assert_eq!(back.data().to_vec(), sig.data().to_vec());
        assert_eq!(back.adjacency.weights(), sig.adjacency.weights());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = to_bytes(&sample()).to_vec();
        raw[0] ^= 0xFF;
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncated_buffer_rejected() {
        let raw = to_bytes(&sample());
        let cut = raw.slice(0..raw.len() - 4);
        assert!(from_bytes(cut).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("st_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sig.stdg");
        save(&sample(), &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.data().to_vec(), sample().data().to_vec());
        std::fs::remove_file(path).ok();
    }
}
