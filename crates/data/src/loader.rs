//! Minibatch iteration over snapshot indices.
//!
//! [`Batcher`] is the standard loader: shuffled index order, last partial
//! batch kept. [`PaddedBatcher`] mimics the *original DCRNN* dataloader,
//! which (a) keeps an extra full copy of the dataset and (b) pads the final
//! batch by duplicating samples so every batch has identical size — the
//! behavior §3.2 identifies as the source of DCRNN's extra ~100 GB of
//! host memory versus PGT-DCRNN.

use st_tensor::random::permutation;

/// Yields index slices of size ≤ `batch_size` over `n` samples.
#[derive(Debug, Clone)]
pub struct Batcher {
    indices: Vec<usize>,
    batch_size: usize,
}

impl Batcher {
    /// Sequential (unshuffled) batcher over `indices`.
    pub fn sequential(indices: Vec<usize>, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        Batcher {
            indices,
            batch_size,
        }
    }

    /// Shuffled batcher: a seeded permutation of `indices` per epoch.
    ///
    /// The permutation is applied in place by walking its cycles (the perm
    /// vector doubles as the visited scratch), so no second copy of the
    /// index vector is ever allocated.
    pub fn shuffled(mut indices: Vec<usize>, batch_size: usize, seed: u64, epoch: u64) -> Self {
        let mut perm = permutation(indices.len(), seed, epoch);
        let n = perm.len();
        // Realize out[i] = in[perm[i]] cycle by cycle: each swap deposits the
        // element destined for slot `x` while carrying `in[x]` onward along
        // the cycle; `perm[x] = n` marks slots already finalized.
        for i in 0..n {
            if perm[i] >= n {
                continue;
            }
            let mut x = i;
            loop {
                let next = perm[x];
                perm[x] = n;
                if next == i {
                    break;
                }
                indices.swap(x, next);
                x = next;
            }
        }
        Batcher {
            indices,
            batch_size,
        }
    }

    /// The batches, in order.
    pub fn batches(&self) -> impl Iterator<Item = &[usize]> {
        self.indices.chunks(self.batch_size)
    }

    /// Number of batches (last may be partial).
    pub fn num_batches(&self) -> usize {
        self.indices.len().div_ceil(self.batch_size)
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// DCRNN-style padded loader: duplicates trailing samples so every batch is
/// exactly `batch_size` long. Reports how many bytes of duplication that
/// implies (the memory-accounting hook for Table 2 / Fig 2).
#[derive(Debug, Clone)]
pub struct PaddedBatcher {
    inner: Batcher,
    padding: usize,
}

impl PaddedBatcher {
    /// Pad `indices` to a multiple of `batch_size` by repeating the final
    /// sample (as `np.repeat(x[-1:], ...)` does in the reference loader).
    pub fn new(mut indices: Vec<usize>, batch_size: usize, seed: u64, epoch: u64) -> Self {
        assert!(batch_size > 0);
        let rem = indices.len() % batch_size;
        let padding = if rem == 0 { 0 } else { batch_size - rem };
        if let Some(&last) = indices.last() {
            for _ in 0..padding {
                indices.push(last);
            }
        }
        let inner = Batcher::shuffled(indices, batch_size, seed, epoch);
        PaddedBatcher { inner, padding }
    }

    /// The padded batches — all exactly `batch_size` long.
    pub fn batches(&self) -> impl Iterator<Item = &[usize]> {
        self.inner.batches()
    }

    /// Number of synthetic (duplicated) samples appended.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Bytes of extra host memory the original DCRNN loader holds: one full
    /// additional copy of the (padded) dataset, per §3.2's analysis.
    pub fn duplication_bytes(&self, sample_bytes: u64) -> u64 {
        (self.inner.len() as u64) * sample_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_batches_cover_in_order() {
        let b = Batcher::sequential((0..7).collect(), 3);
        let batches: Vec<Vec<usize>> = b.batches().map(|s| s.to_vec()).collect();
        assert_eq!(batches, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
        assert_eq!(b.num_batches(), 3);
    }

    #[test]
    fn shuffled_is_permutation_and_epoch_varies() {
        let b1 = Batcher::shuffled((0..100).collect(), 10, 42, 0);
        let b2 = Batcher::shuffled((0..100).collect(), 10, 42, 0);
        let b3 = Batcher::shuffled((0..100).collect(), 10, 42, 1);
        let flat = |b: &Batcher| -> Vec<usize> { b.batches().flatten().copied().collect() };
        assert_eq!(flat(&b1), flat(&b2));
        assert_ne!(flat(&b1), flat(&b3));
        let mut sorted = flat(&b1);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn in_place_shuffle_matches_mapped_copy() {
        // The cycle-walking in-place application must equal the obvious
        // out[i] = in[perm[i]] map — including over non-identity inputs
        // (distributed ranks shuffle their own stripe of global indices).
        for (n, seed, epoch) in [(1usize, 3u64, 0u64), (2, 3, 1), (17, 9, 4), (100, 42, 7)] {
            let input: Vec<usize> = (0..n).map(|i| 1000 + 3 * i).collect();
            let b = Batcher::shuffled(input.clone(), 8, seed, epoch);
            let perm = permutation(n, seed, epoch);
            let want: Vec<usize> = perm.iter().map(|&p| input[p]).collect();
            let got: Vec<usize> = b.batches().flatten().copied().collect();
            assert_eq!(got, want, "n={n} seed={seed} epoch={epoch}");
        }
    }

    #[test]
    fn padded_batches_all_full() {
        let p = PaddedBatcher::new((0..10).collect(), 4, 7, 0);
        assert_eq!(p.padding(), 2);
        assert!(p.batches().all(|b| b.len() == 4));
        let total: usize = p.batches().map(<[usize]>::len).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn padded_no_padding_when_divisible() {
        let p = PaddedBatcher::new((0..8).collect(), 4, 7, 0);
        assert_eq!(p.padding(), 0);
    }

    #[test]
    fn duplication_bytes_counts_padded_copy() {
        let p = PaddedBatcher::new((0..10).collect(), 4, 7, 0);
        // 12 padded samples × 100 bytes each.
        assert_eq!(p.duplication_bytes(100), 1200);
    }
}
