//! The dataset registry: the paper's Table-1 shapes, exactly.
//!
//! Each [`DatasetSpec`] carries the *full-scale* shape (used for analytic
//! byte accounting and paper-scale projections) plus a `scale` knob that
//! shrinks nodes/entries proportionally for measured runs on small machines.
//! Horizons are the standard settings from the papers the datasets come
//! from (DCRNN uses 12 × 5-minute steps for traffic; PGT's chickenpox
//! example uses 4 weekly steps; windmill uses 8 hourly steps) — these are
//! the values under which eq. (1) reproduces Table 1's post-preprocessing
//! sizes.

use serde::{Deserialize, Serialize};

/// Which benchmark dataset a spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Chickenpox-Hungary: weekly county-level case counts.
    ChickenpoxHungary,
    /// Windmill-Large: hourly energy output of wind turbines.
    WindmillLarge,
    /// METR-LA: LA highway loop-detector speeds.
    MetrLa,
    /// PeMS-BAY: Bay Area loop-detector speeds.
    PemsBay,
    /// PeMS-All-LA: all LA-area PeMS sensors.
    PemsAllLa,
    /// PeMS: the full California PeMS network (the paper's headline case).
    Pems,
}

/// Application domain (drives which synthetic generator is used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Disease-spread case counts.
    Epidemiological,
    /// Energy production.
    Energy,
    /// Road-traffic speeds.
    Traffic,
}

/// Full description of a dataset's shape and preprocessing settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which benchmark this mirrors.
    pub kind: DatasetKind,
    /// Display name matching the paper.
    pub name: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Description of node features (Table 1's "Features" column).
    pub feature_desc: &'static str,
    /// Graph nodes at full scale.
    pub nodes: usize,
    /// Time entries at full scale.
    pub entries: usize,
    /// Features in the raw file (before the time-of-day augmentation).
    pub raw_features: usize,
    /// Features after preprocessing stage 1 (traffic datasets gain a
    /// time-of-day column; others do not).
    pub aug_features: usize,
    /// Forecast horizon (window length) in time steps.
    pub horizon: usize,
    /// Entries per diurnal/weekly cycle (drives the time feature and the
    /// synthetic generators' periodicity).
    pub period: usize,
    /// Default training batch size from the paper's evaluation (§5).
    pub batch_size: usize,
}

impl DatasetSpec {
    /// Look up the full-scale spec for a benchmark.
    pub fn get(kind: DatasetKind) -> DatasetSpec {
        match kind {
            DatasetKind::ChickenpoxHungary => DatasetSpec {
                kind,
                name: "Chickenpox-Hungary",
                domain: Domain::Epidemiological,
                feature_desc: "case count",
                nodes: 20,
                entries: 522,
                raw_features: 1,
                aug_features: 1,
                horizon: 4,
                period: 52,
                batch_size: 4,
            },
            DatasetKind::WindmillLarge => DatasetSpec {
                kind,
                name: "Windmill-Large",
                domain: Domain::Energy,
                feature_desc: "hourly energy output",
                nodes: 319,
                entries: 17_472,
                raw_features: 1,
                aug_features: 1,
                horizon: 8,
                period: 24,
                batch_size: 64,
            },
            DatasetKind::MetrLa => DatasetSpec {
                kind,
                name: "METR-LA",
                domain: Domain::Traffic,
                feature_desc: "speed, day of week",
                nodes: 207,
                entries: 34_272,
                raw_features: 1,
                aug_features: 2,
                horizon: 12,
                period: 288, // 5-minute intervals: 288 per day
                batch_size: 64,
            },
            DatasetKind::PemsBay => DatasetSpec {
                kind,
                name: "PeMS-BAY",
                domain: Domain::Traffic,
                feature_desc: "speed, day of week",
                nodes: 325,
                entries: 52_105,
                raw_features: 1,
                aug_features: 2,
                horizon: 12,
                period: 288,
                batch_size: 64,
            },
            DatasetKind::PemsAllLa => DatasetSpec {
                kind,
                name: "PeMS-All-LA",
                domain: Domain::Traffic,
                feature_desc: "speed, day of week",
                nodes: 2_716,
                entries: 105_120,
                raw_features: 1,
                aug_features: 2,
                horizon: 12,
                period: 288,
                batch_size: 64,
            },
            DatasetKind::Pems => DatasetSpec {
                kind,
                name: "PeMS",
                domain: Domain::Traffic,
                feature_desc: "speed, day of week",
                nodes: 11_160,
                entries: 105_120,
                raw_features: 1,
                aug_features: 2,
                horizon: 12,
                period: 288,
                batch_size: 64,
            },
        }
    }

    /// All six benchmarks in Table 1's (ascending-size) order.
    pub fn all() -> Vec<DatasetSpec> {
        [
            DatasetKind::ChickenpoxHungary,
            DatasetKind::WindmillLarge,
            DatasetKind::MetrLa,
            DatasetKind::PemsBay,
            DatasetKind::PemsAllLa,
            DatasetKind::Pems,
        ]
        .into_iter()
        .map(DatasetSpec::get)
        .collect()
    }

    /// Raw-file size in bytes at `elem_bytes` per element (8 for the
    /// paper's float64 Table 1).
    pub fn raw_bytes(&self, elem_bytes: usize) -> u64 {
        (self.entries * self.nodes * self.raw_features * elem_bytes) as u64
    }

    /// Number of sliding-window snapshots this dataset yields:
    /// `entries − (2·horizon − 1)`.
    pub fn num_snapshots(&self) -> usize {
        self.entries.saturating_sub(2 * self.horizon - 1)
    }

    /// A proportionally scaled copy for measured runs: `scale` ∈ (0, 1]
    /// shrinks nodes and entries (keeping at least a few windows' worth).
    pub fn scaled(&self, scale: f64) -> DatasetSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut s = self.clone();
        s.nodes = ((self.nodes as f64 * scale).round() as usize).max(4);
        let min_entries = 6 * self.horizon + 2;
        s.entries = ((self.entries as f64 * scale).round() as usize).max(min_entries);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's "Size Before Preprocessing" column, float64. The paper
    /// mixes binary and decimal units across rows; we assert against raw
    /// bytes within 3% of the printed values interpreted in the closest
    /// unit convention.
    #[test]
    fn raw_sizes_match_table1() {
        let cases: [(DatasetKind, f64); 6] = [
            (DatasetKind::ChickenpoxHungary, 83.36e3 * 1.024), // ~83.36 KB
            (DatasetKind::WindmillLarge, 44.59e6 * 1.048),     // ~44.59 MB
            (DatasetKind::MetrLa, 54.39 * 1024.0 * 1024.0),
            (DatasetKind::PemsBay, 129.62 * 1024.0 * 1024.0),
            (DatasetKind::PemsAllLa, 2.12 * f64::powi(1024.0, 3)),
            (DatasetKind::Pems, 8.71 * f64::powi(1024.0, 3)),
        ];
        for (kind, expect) in cases {
            let spec = DatasetSpec::get(kind);
            let got = spec.raw_bytes(8) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "{}: got {got}, table {expect}", spec.name);
        }
    }

    #[test]
    fn snapshot_counts() {
        let pems = DatasetSpec::get(DatasetKind::Pems);
        assert_eq!(pems.num_snapshots(), 105_120 - 23);
        let cp = DatasetSpec::get(DatasetKind::ChickenpoxHungary);
        assert_eq!(cp.num_snapshots(), 522 - 7);
    }

    #[test]
    fn traffic_gains_time_feature_others_do_not() {
        assert_eq!(DatasetSpec::get(DatasetKind::Pems).aug_features, 2);
        assert_eq!(DatasetSpec::get(DatasetKind::WindmillLarge).aug_features, 1);
    }

    #[test]
    fn scaled_preserves_minimums() {
        let s = DatasetSpec::get(DatasetKind::ChickenpoxHungary).scaled(0.01);
        assert!(s.nodes >= 4);
        assert!(s.entries >= 6 * s.horizon + 2);
        let big = DatasetSpec::get(DatasetKind::Pems).scaled(0.01);
        assert_eq!(big.nodes, 112);
        assert_eq!(big.entries, 1051);
    }

    #[test]
    fn all_lists_six_in_order() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 6);
        assert!(all
            .windows(2)
            .all(|w| w[0].raw_bytes(8) <= w[1].raw_bytes(8)));
    }
}
