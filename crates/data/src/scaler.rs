//! Z-score standardization fitted on the training split (Algorithm 1,
//! lines 16–20): `x' = (x − μ) / σ` with μ, σ computed from `x_train` only,
//! so no information leaks from validation/test into the normalizer.
//!
//! Statistics are **per feature** (the trailing dimension): traffic signals
//! carry a `[0,1)` time-of-day channel alongside the speed channel, and one
//! scalar mean/std over the whole `[E, N, F]` view would let the tod column
//! contaminate the speed statistics. The public [`StandardScaler::mean`] /
//! [`StandardScaler::std`] fields are the **target channel** (feature 0)
//! statistics — the ones every original-unit metric conversion needs, since
//! forecast targets are feature 0 of the label window.

use serde::{Deserialize, Serialize};
use st_tensor::{ops as t, Tensor};

/// Mean/std standardizer with per-feature statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    /// Fitted mean of the target channel (feature 0).
    pub mean: f32,
    /// Fitted standard deviation of the target channel (lower-bounded away
    /// from zero).
    pub std: f32,
    /// Per-feature `(mean, std)` along the trailing dimension. A single
    /// entry acts as a scalar scaler over every feature (the pre-tod
    /// behavior, still exact for one-feature signals).
    feature_stats: Vec<(f32, f32)>,
}

impl StandardScaler {
    /// Fit on a tensor (typically the training portion of the signal).
    ///
    /// For tensors of rank ≥ 2 the trailing dimension is treated as the
    /// feature axis and each feature gets its own statistics; rank-0/1
    /// tensors are a single feature.
    pub fn fit(train: &Tensor) -> Self {
        let features = if train.rank() >= 2 {
            *train.dims().last().expect("rank >= 2")
        } else {
            1
        };
        if features <= 1 {
            let mean = t::mean_all(train);
            let std = t::std_all(train).max(1e-6);
            return StandardScaler {
                mean,
                std,
                feature_stats: vec![(mean, std)],
            };
        }
        // Per-feature statistics with the same f32 accumulation order as
        // `ops::mean_all` / `ops::std_all`, so fitting on an augmented
        // signal recovers the bit-exact single-feature statistics.
        let data = train.to_vec();
        let rows = (data.len() / features).max(1);
        let feature_stats: Vec<(f32, f32)> = (0..features)
            .map(|f| {
                let col = || data.iter().skip(f).step_by(features);
                let mean = col().sum::<f32>() / rows as f32;
                let var = col().map(|x| (x - mean).powi(2)).sum::<f32>() / rows as f32;
                (mean, var.sqrt().max(1e-6))
            })
            .collect();
        StandardScaler {
            mean: feature_stats[0].0,
            std: feature_stats[0].1,
            feature_stats,
        }
    }

    /// Identity scaler (useful for already-normalized signals).
    pub fn identity() -> Self {
        StandardScaler {
            mean: 0.0,
            std: 1.0,
            feature_stats: vec![(0.0, 1.0)],
        }
    }

    /// Build from explicit per-feature `(mean, std)` pairs (feature 0 is
    /// the target channel).
    pub fn from_feature_stats(feature_stats: Vec<(f32, f32)>) -> Self {
        assert!(!feature_stats.is_empty(), "need at least one feature");
        StandardScaler {
            mean: feature_stats[0].0,
            std: feature_stats[0].1,
            feature_stats,
        }
    }

    /// The per-feature `(mean, std)` pairs.
    pub fn feature_stats(&self) -> &[(f32, f32)] {
        &self.feature_stats
    }

    /// Number of features this scaler was fitted over.
    pub fn num_features(&self) -> usize {
        self.feature_stats.len()
    }

    /// True when one statistic applies to every feature.
    fn is_scalar(&self) -> bool {
        self.feature_stats.len() == 1
    }

    fn check_features(&self, x: &Tensor, what: &str) {
        let f = if x.rank() >= 2 {
            *x.dims().last().expect("rank >= 2")
        } else {
            1
        };
        assert_eq!(
            f,
            self.feature_stats.len(),
            "{what}: tensor has {f} trailing features but scaler was fitted on {}",
            self.feature_stats.len()
        );
    }

    /// Standardize.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        if self.is_scalar() {
            return t::mul_scalar(&t::add_scalar(x, -self.mean), 1.0 / self.std);
        }
        self.check_features(x, "transform");
        self.map_per_feature(x, |v, (m, s)| (v - m) / s)
    }

    /// Undo standardization (used to report MAE in original units).
    pub fn inverse(&self, x: &Tensor) -> Tensor {
        if self.is_scalar() {
            return t::add_scalar(&t::mul_scalar(x, self.std), self.mean);
        }
        self.check_features(x, "inverse");
        self.map_per_feature(x, |v, (m, s)| v * s + m)
    }

    /// Map a scalar **target-channel** value back to original units.
    pub fn inverse_scalar(&self, v: f32) -> f32 {
        v * self.std + self.mean
    }

    fn map_per_feature(&self, x: &Tensor, f: impl Fn(f32, (f32, f32)) -> f32) -> Tensor {
        let features = self.feature_stats.len();
        let mut data = x.to_vec();
        for row in data.chunks_exact_mut(features) {
            for (v, &stats) in row.iter_mut().zip(&self.feature_stats) {
                *v = f(*v, stats);
            }
        }
        Tensor::from_vec(data, x.dims()).expect("same numel")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_standardizes() {
        let x = Tensor::from_slice(&[2.0, 4.0, 6.0, 8.0]);
        let s = StandardScaler::fit(&x);
        assert!((s.mean - 5.0).abs() < 1e-6);
        let z = s.transform(&x);
        assert!(t::mean_all(&z).abs() < 1e-6);
        assert!((t::std_all(&z) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inverse_roundtrips() {
        let x = Tensor::from_slice(&[1.0, 5.0, 9.0]);
        let s = StandardScaler::fit(&x);
        let back = s.inverse(&s.transform(&x));
        assert!(back.allclose(&x, 1e-5));
    }

    #[test]
    fn constant_signal_does_not_divide_by_zero() {
        let x = Tensor::from_slice(&[3.0, 3.0, 3.0]);
        let s = StandardScaler::fit(&x);
        let z = s.transform(&x);
        assert!(z.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identity_is_noop() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let s = StandardScaler::identity();
        assert_eq!(s.transform(&x).to_vec(), x.to_vec());
    }

    #[test]
    fn tod_channel_does_not_contaminate_speed_stats() {
        // A two-feature [E, N, 2] signal: feature 0 is "speed", feature 1 a
        // [0,1) time-of-day phase. The fitted target-channel stats must
        // match a speed-only fit exactly.
        let speeds = [60.0f32, 62.0, 58.0, 64.0, 61.0, 55.0];
        let mut data = Vec::new();
        for (i, &v) in speeds.iter().enumerate() {
            data.push(v);
            data.push((i % 4) as f32 / 4.0); // tod channel
        }
        let x = Tensor::from_vec(data, [3, 2, 2]).unwrap();
        let speed_only = Tensor::from_slice(&speeds).reshape([3, 2, 1]).unwrap();
        let s = StandardScaler::fit(&x);
        let reference = StandardScaler::fit(&speed_only);
        assert_eq!(s.mean.to_bits(), reference.mean.to_bits());
        assert_eq!(s.std.to_bits(), reference.std.to_bits());
        assert_eq!(s.num_features(), 2);
        // And each channel is independently standardized to mean 0 / std 1.
        let z = s.transform(&x);
        let zv = z.to_vec();
        let (mut m0, mut m1) = (0.0f64, 0.0f64);
        for row in zv.chunks_exact(2) {
            m0 += row[0] as f64;
            m1 += row[1] as f64;
        }
        assert!((m0 / 6.0).abs() < 1e-6);
        assert!((m1 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn per_feature_inverse_roundtrips() {
        let x = Tensor::from_vec(
            vec![60.0, 0.0, 70.0, 0.25, 50.0, 0.5, 65.0, 0.75],
            [4, 1, 2],
        )
        .unwrap();
        let s = StandardScaler::fit(&x);
        let back = s.inverse(&s.transform(&x));
        assert!(back.allclose(&x, 1e-4));
    }

    #[test]
    #[should_panic(expected = "trailing features")]
    fn feature_count_mismatch_is_loud() {
        let x = Tensor::zeros([4, 2, 2]);
        let s = StandardScaler::fit(&x);
        let wrong = Tensor::zeros([4, 2, 3]);
        s.transform(&wrong);
    }
}
