//! Z-score standardization fitted on the training split (Algorithm 1,
//! lines 16–20): `x' = (x − μ) / σ` with μ, σ computed from `x_train` only,
//! so no information leaks from validation/test into the normalizer.

use serde::{Deserialize, Serialize};
use st_tensor::{ops as t, Tensor};

/// Mean/std standardizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    /// Fitted mean.
    pub mean: f32,
    /// Fitted standard deviation (lower-bounded away from zero).
    pub std: f32,
}

impl StandardScaler {
    /// Fit on a tensor (typically the training portion of the signal).
    pub fn fit(train: &Tensor) -> Self {
        let mean = t::mean_all(train);
        let std = t::std_all(train).max(1e-6);
        StandardScaler { mean, std }
    }

    /// Identity scaler (useful for already-normalized signals).
    pub fn identity() -> Self {
        StandardScaler {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Standardize.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        t::mul_scalar(&t::add_scalar(x, -self.mean), 1.0 / self.std)
    }

    /// Undo standardization (used to report MAE in original units).
    pub fn inverse(&self, x: &Tensor) -> Tensor {
        t::add_scalar(&t::mul_scalar(x, self.std), self.mean)
    }

    /// Map a scalar value back to original units.
    pub fn inverse_scalar(&self, v: f32) -> f32 {
        v * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_standardizes() {
        let x = Tensor::from_slice(&[2.0, 4.0, 6.0, 8.0]);
        let s = StandardScaler::fit(&x);
        assert!((s.mean - 5.0).abs() < 1e-6);
        let z = s.transform(&x);
        assert!(t::mean_all(&z).abs() < 1e-6);
        assert!((t::std_all(&z) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inverse_roundtrips() {
        let x = Tensor::from_slice(&[1.0, 5.0, 9.0]);
        let s = StandardScaler::fit(&x);
        let back = s.inverse(&s.transform(&x));
        assert!(back.allclose(&x, 1e-5));
    }

    #[test]
    fn constant_signal_does_not_divide_by_zero() {
        let x = Tensor::from_slice(&[3.0, 3.0, 3.0]);
        let s = StandardScaler::fit(&x);
        let z = s.transform(&x);
        assert!(z.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identity_is_noop() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let s = StandardScaler::identity();
        assert_eq!(s.transform(&x).to_vec(), x.to_vec());
    }
}
