//! Train/validation/test splits over snapshot indices.
//!
//! The paper uses the DCRNN default split everywhere: 70 % train,
//! 10 % validation, 20 % test, taken *chronologically* (shuffling across
//! the split boundary would leak future data into training).

use serde::{Deserialize, Serialize};

/// Fractions of the snapshot sequence assigned to each split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitRatios {
    /// Training fraction.
    pub train: f64,
    /// Validation fraction.
    pub val: f64,
    /// Test fraction.
    pub test: f64,
}

impl Default for SplitRatios {
    fn default() -> Self {
        // The DCRNN/paper default (§3.1).
        SplitRatios {
            train: 0.7,
            val: 0.1,
            test: 0.2,
        }
    }
}

/// Index ranges for the three splits over `n` snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitIndices {
    /// Training snapshot ids `[0, train_end)`.
    pub train: std::ops::Range<usize>,
    /// Validation snapshot ids.
    pub val: std::ops::Range<usize>,
    /// Test snapshot ids.
    pub test: std::ops::Range<usize>,
}

impl SplitRatios {
    /// Chronological split of `n` snapshots.
    pub fn split(&self, n: usize) -> SplitIndices {
        assert!(
            (self.train + self.val + self.test - 1.0).abs() < 1e-9,
            "split ratios must sum to 1"
        );
        let train_end = (n as f64 * self.train).round() as usize;
        let val_end = (n as f64 * (self.train + self.val)).round() as usize;
        SplitIndices {
            train: 0..train_end.min(n),
            val: train_end.min(n)..val_end.min(n),
            test: val_end.min(n)..n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_70_10_20() {
        let s = SplitRatios::default().split(100);
        assert_eq!(s.train, 0..70);
        assert_eq!(s.val, 70..80);
        assert_eq!(s.test, 80..100);
    }

    #[test]
    fn splits_are_disjoint_and_cover() {
        let s = SplitRatios::default().split(523);
        assert_eq!(s.train.end, s.val.start);
        assert_eq!(s.val.end, s.test.start);
        assert_eq!(s.test.end, 523);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 523);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_ratios_panic() {
        SplitRatios {
            train: 0.5,
            val: 0.1,
            test: 0.1,
        }
        .split(10);
    }
}
