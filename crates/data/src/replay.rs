//! Paper-scale *virtual replay* of the standard preprocessing pipeline.
//!
//! Reproducing Figs 2 and 6 requires running the full-scale PeMS workflow —
//! 419.46 GB of materialized arrays — which no test machine has. The replay
//! executes the exact allocation sequence of the reference implementation
//! against a [`MemPool`] in virtual mode: every buffer the Python code would
//! create is accounted (and OOMs when the 512 GB host capacity is exceeded)
//! without touching RAM.
//!
//! Allocation order mirrors `generate_train_val_test` from the DCRNN
//! reference scripts and PGT's port of it:
//!
//! 1. load the raw array; 2. build the time-of-day-augmented array
//!    (stage 1 of Fig 3); 3. append every `x` and `y` window to Python
//!    lists (stage 2); 4. `np.stack` each list — a second full copy while
//!    the lists are still referenced; 5. standardize `x` and `y` (each
//!    creates a temporary); 6. only then do the list references die.
//!    The DCRNN variant additionally keeps the padded loader's duplicate
//!    copy of all splits (stage 3 / §3.2).

use crate::datasets::DatasetSpec;
use crate::preprocess::num_snapshots;
use st_device::memory::{AllocError, MemPool};
use st_device::profiler::MemTimeline;

/// Which loader duplication to model on top of the shared pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoaderVariant {
    /// PGT-DCRNN: standard batcher, no extra dataset copy.
    Pgt,
    /// Original DCRNN: padded loader holding one more full copy of x and y.
    DcrnnPadded,
}

/// Outcome of a virtual replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Peak bytes observed (up to the OOM point if one occurred).
    pub peak_bytes: u64,
    /// Bytes resident once training steady-state is reached (0 if OOM).
    pub steady_bytes: u64,
    /// The OOM error, if the pipeline crashed.
    pub oom: Option<AllocError>,
}

/// Replay the standard (Algorithm 1) preprocessing at full `spec` scale.
///
/// `elem_bytes` is 8 for the paper's float64 pipeline. Timeline samples are
/// recorded at each stage boundary so Figs 2/6 can be re-plotted.
pub fn standard_replay(
    spec: &DatasetSpec,
    variant: LoaderVariant,
    pool: &MemPool,
    timeline: &mut MemTimeline,
    elem_bytes: usize,
) -> ReplayReport {
    let e = spec.entries as u64;
    let n = spec.nodes as u64;
    let f_raw = spec.raw_features as u64;
    let f = spec.aug_features as u64;
    let h = spec.horizon as u64;
    let s = num_snapshots(spec.entries, spec.horizon) as u64;
    let eb = elem_bytes as u64;

    let raw = e * n * f_raw * eb;
    let aug = e * n * f * eb;
    let xy_half = s * h * n * f * eb; // one of x or y, materialized

    let peak = |pool: &MemPool| pool.peak();
    macro_rules! try_alloc {
        ($bytes:expr, $progress:expr) => {
            match pool.alloc_untracked($bytes) {
                Ok(()) => {
                    timeline.sample($progress, pool);
                }
                Err(err) => {
                    timeline.mark_oom($progress);
                    return ReplayReport {
                        peak_bytes: peak(pool),
                        steady_bytes: 0,
                        oom: Some(err),
                    };
                }
            }
        };
    }

    // 1. Load raw file into memory.
    try_alloc!(raw, 0.02);
    // 2. Stage 1: time-of-day augmentation (new array, raw still alive).
    try_alloc!(aug, 0.05);
    pool.free(raw); // raw array dropped after augmentation
    timeline.sample(0.06, pool);

    // 3. Stage 2: the x/y window lists grow incrementally. Sample a few
    //    intermediate points so the timeline shows the ramp.
    for step in 1..=4u64 {
        let frac = step as f64 / 4.0;
        try_alloc!(xy_half / 4, 0.06 + 0.10 * frac); // x list quarter
        try_alloc!(xy_half / 4, 0.06 + 0.10 * frac + 0.02); // y list quarter
    }

    // 4. np.stack(x): full second copy of x while the list is referenced;
    //    then np.stack(y).
    try_alloc!(xy_half, 0.30);
    try_alloc!(xy_half, 0.34);

    // Stage 3 / loader: the original DCRNN workflow constructs its padded
    // loader (one more full copy of every split of x and y) while the
    // preprocessing locals — the window lists — are still referenced,
    // which is why its peak exceeds PGT's by a full x+y copy (§3.2).
    if variant == LoaderVariant::DcrnnPadded {
        try_alloc!(2 * xy_half, 0.36);
    }

    // 5. Standardization: `(x - mu) / sigma` materializes a temporary the
    //    size of x, then rebinds (old stacked x freed); same for y.
    try_alloc!(xy_half, 0.38);
    pool.free(xy_half);
    timeline.sample(0.40, pool);
    try_alloc!(xy_half, 0.42);
    pool.free(xy_half);
    timeline.sample(0.44, pool);

    // 6. Preprocessing scope ends: the window lists die; x and y stacks
    //    (and, for DCRNN, the padded loader copy) remain.
    pool.free(2 * xy_half); // x list + y list
    timeline.sample(0.46, pool);

    // Steady state through training (progress 0.5 → 1.0).
    let steady = pool.in_use();
    for i in 1..=5 {
        timeline.sample(0.5 + 0.1 * i as f64, pool);
    }
    ReplayReport {
        peak_bytes: pool.peak(),
        steady_bytes: steady,
        oom: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;
    use st_device::memory::PoolMode;
    use st_device::GIB;

    fn run(kind: DatasetKind, variant: LoaderVariant) -> (ReplayReport, MemTimeline) {
        let spec = DatasetSpec::get(kind);
        let pool = MemPool::new("host", 512 * GIB, PoolMode::Virtual);
        let mut tl = MemTimeline::new(spec.name);
        let report = standard_replay(&spec, variant, &pool, &mut tl, 8);
        (report, tl)
    }

    #[test]
    fn pems_all_la_pgt_peak_matches_table2() {
        // Paper Table 2: PGT-DCRNN peaks at 259.84 GB on PeMS-All-LA.
        let (report, tl) = run(DatasetKind::PemsAllLa, LoaderVariant::Pgt);
        assert!(report.oom.is_none(), "PeMS-All-LA must fit in 512 GB");
        let peak_gib = report.peak_bytes as f64 / GIB as f64;
        assert!(
            (peak_gib - 259.84).abs() / 259.84 < 0.03,
            "peak {peak_gib} GiB vs paper 259.84 GB"
        );
        assert!(tl.oom_at().is_none());
    }

    #[test]
    fn pems_all_la_dcrnn_peak_matches_table2() {
        // Paper Table 2: original DCRNN peaks at 371.25 GB.
        let (report, _) = run(DatasetKind::PemsAllLa, LoaderVariant::DcrnnPadded);
        assert!(report.oom.is_none());
        let peak_gib = report.peak_bytes as f64 / GIB as f64;
        assert!(
            (peak_gib - 371.25).abs() / 371.25 < 0.05,
            "peak {peak_gib} GiB vs paper 371.25 GB"
        );
    }

    #[test]
    fn pems_ooms_for_both_variants() {
        // Fig 2: both implementations crash on full PeMS before training.
        for variant in [LoaderVariant::Pgt, LoaderVariant::DcrnnPadded] {
            let (report, tl) = run(DatasetKind::Pems, variant);
            assert!(report.oom.is_some(), "{variant:?} must OOM on PeMS");
            assert!(tl.oom_at().is_some());
            let err = report.oom.unwrap();
            assert_eq!(err.capacity, 512 * GIB);
        }
    }

    #[test]
    fn small_datasets_fit_comfortably() {
        let (report, _) = run(DatasetKind::ChickenpoxHungary, LoaderVariant::Pgt);
        assert!(report.oom.is_none());
        assert!(report.peak_bytes < GIB, "chickenpox stays under 1 GiB");
    }

    #[test]
    fn steady_state_is_xy_only_for_pgt() {
        let (report, _) = run(DatasetKind::PemsBay, LoaderVariant::Pgt);
        let spec = DatasetSpec::get(DatasetKind::PemsBay);
        let expected = crate::preprocess::materialized_bytes(
            spec.entries,
            spec.horizon,
            spec.nodes,
            spec.aug_features,
            8,
        ) + spec.entries as u64 * spec.nodes as u64 * spec.aug_features as u64 * 8;
        assert_eq!(report.steady_bytes, expected);
    }
}
