//! Out-of-core chunked columnar signal storage.
//!
//! The paper exists to dodge the memory wall of materialized sliding-window
//! datasets, yet a plain [`Tensor`]-backed signal still pins the full
//! `[entries, nodes, features]` array in RAM on every rank. This module
//! makes the backing store a choice: [`SignalStorage`] is an enum of
//! backends behind one row-oriented access trait ([`RowStore`]) —
//!
//! - [`SignalStorage::InMemory`]: the existing dense tensor. Reads are
//!   zero-copy `narrow` views, bit-identical to the historical path.
//! - [`SignalStorage::Chunked`]: the entry axis split into fixed-size
//!   row-group chunks backed by an on-disk columnar file (header +
//!   per-chunk offset table + optional per-chunk quantization scales),
//!   loaded through a bounded LRU chunk cache so resident bytes are
//!   `O(chunks_cached)`, not `O(entries)`.
//!
//! The on-disk codec defaults to [`ChunkCodec::F32`] — **bitwise lossless**,
//! so a chunked run reproduces an in-memory run bit for bit (the engine
//! goldens pin this). `F16`/`I8` shrink the file 2×/4× at half-precision /
//! per-chunk-scaled 8-bit fidelity for footprint-bound deployments.
//!
//! Chunk reads return the *stored* bytes pulled from disk so callers can
//! price the IO with [`st_device::CostModel::pfs_read`] and let the engine's
//! `Prefetcher` hide it behind compute.

use st_tensor::half::{f16_bits_to_f32, f16_round_trip, f32_to_f16_bits};
use st_tensor::Tensor;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic number of the chunked columnar file ("STCC").
const MAGIC: u32 = 0x5354_4343;
/// Format version.
const VERSION: u32 = 1;

/// Default rows (entries) per chunk.
pub const DEFAULT_CHUNK_ENTRIES: usize = 256;
/// Default decoded-chunk cache ceiling (64 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 64 << 20;

/// Per-chunk on-disk encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkCodec {
    /// Raw little-endian f32 — bitwise lossless (the default).
    F32,
    /// IEEE binary16 (2 bytes/scalar, ~2^-11 relative error).
    F16,
    /// Per-chunk max-abs-scaled signed 8-bit (1 byte/scalar + one f32
    /// scale per chunk).
    I8,
}

impl ChunkCodec {
    /// Stored bytes per scalar.
    pub fn bytes_per_scalar(&self) -> usize {
        match self {
            ChunkCodec::F32 => 4,
            ChunkCodec::F16 => 2,
            ChunkCodec::I8 => 1,
        }
    }

    /// True when decode(encode(x)) == x bitwise for every finite x.
    pub fn is_lossless(&self) -> bool {
        matches!(self, ChunkCodec::F32)
    }

    fn tag(&self) -> u32 {
        match self {
            ChunkCodec::F32 => 0,
            ChunkCodec::F16 => 1,
            ChunkCodec::I8 => 2,
        }
    }

    /// The value a scalar decodes to after one store/load round trip.
    pub fn round_trip(&self, v: f32) -> f32 {
        match self {
            ChunkCodec::F32 => v,
            ChunkCodec::F16 => f16_round_trip(v),
            ChunkCodec::I8 => v, // depends on the chunk scale; per-chunk only
        }
    }
}

/// Chunked-backend configuration: chunk shape, cache ceiling, codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkedSpec {
    /// Rows (dim-0 entries) per chunk.
    pub chunk_entries: usize,
    /// Decoded-chunk LRU cache ceiling in bytes. A single chunk larger
    /// than the ceiling still loads (the cache holds exactly that chunk).
    pub cache_bytes: u64,
    /// On-disk payload codec.
    pub codec: ChunkCodec,
}

impl ChunkedSpec {
    /// Lossless chunked storage with the given chunk size and the default
    /// cache ceiling.
    pub fn new(chunk_entries: usize) -> Self {
        ChunkedSpec {
            chunk_entries,
            cache_bytes: DEFAULT_CACHE_BYTES,
            codec: ChunkCodec::F32,
        }
    }

    /// Replace the cache ceiling.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Replace the codec.
    pub fn with_codec(mut self, codec: ChunkCodec) -> Self {
        self.codec = codec;
        self
    }
}

impl Default for ChunkedSpec {
    fn default() -> Self {
        ChunkedSpec::new(DEFAULT_CHUNK_ENTRIES)
    }
}

/// Which backend a config-built dataset should use.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum StorageSpec {
    /// One dense in-memory tensor (the historical layout).
    #[default]
    InMemory,
    /// Out-of-core chunked columnar storage.
    Chunked(ChunkedSpec),
}

impl StorageSpec {
    /// True for the chunked backend.
    pub fn is_chunked(&self) -> bool {
        matches!(self, StorageSpec::Chunked(_))
    }
}

/// Row-oriented access every storage backend provides: dim-0 "rows" (time
/// entries for a signal, snapshots for a materialized array) with arbitrary
/// trailing dimensions.
pub trait RowStore {
    /// Number of dim-0 rows.
    fn rows(&self) -> usize;
    /// Full dims, `[rows, trailing...]`.
    fn dims(&self) -> &[usize];
    /// Scalars per row (product of trailing dims).
    fn row_width(&self) -> usize;
    /// Read a contiguous row range as `[len, trailing...]`, returning the
    /// tensor plus the **stored bytes pulled from disk** to serve it (0 on
    /// cache hits and for the in-memory backend, whose reads are views).
    fn read_rows_quoted(&self, range: Range<usize>) -> (Tensor, u64);
    /// Gather arbitrary rows as `[ids.len(), trailing...]`, quoting disk
    /// bytes as in [`RowStore::read_rows_quoted`].
    fn gather_rows_quoted(&self, ids: &[usize]) -> (Tensor, u64);
    /// Bytes currently resident in RAM for this store (full tensor for the
    /// in-memory backend; decoded cached chunks for the chunked one).
    fn resident_bytes(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Chunk codecs
// ---------------------------------------------------------------------------

fn encode_chunk(codec: ChunkCodec, values: &[f32]) -> (Vec<u8>, f32) {
    match codec {
        ChunkCodec::F32 => {
            let mut out = Vec::with_capacity(values.len() * 4);
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
            (out, 1.0)
        }
        ChunkCodec::F16 => {
            let mut out = Vec::with_capacity(values.len() * 2);
            for &v in values {
                out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
            }
            (out, 1.0)
        }
        ChunkCodec::I8 => {
            let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            let out = values
                .iter()
                .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8 as u8)
                .collect();
            (out, scale)
        }
    }
}

fn decode_chunk(codec: ChunkCodec, bytes: &[u8], scale: f32, out: &mut Vec<f32>) {
    match codec {
        ChunkCodec::F32 => {
            for b in bytes.chunks_exact(4) {
                out.push(f32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            }
        }
        ChunkCodec::F16 => {
            for b in bytes.chunks_exact(2) {
                out.push(f16_bits_to_f32(u16::from_le_bytes([b[0], b[1]])));
            }
        }
        ChunkCodec::I8 => {
            for &b in bytes {
                out.push((b as i8) as f32 * scale);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The on-disk store
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    offset: u64,
    bytes: u64,
    scale: f32,
}

struct ChunkCache {
    /// chunk id -> (decoded scalars, last-touch tick).
    entries: HashMap<usize, (Arc<Vec<f32>>, u64)>,
    resident: u64,
    tick: u64,
}

static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_chunk_path() -> std::path::PathBuf {
    let n = FILE_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("st-chunks-{}-{n}.stcc", std::process::id()))
}

/// Streaming writer for the chunked columnar file. Rows are pushed in
/// order; each full chunk is encoded and appended immediately, so peak
/// writer memory is one chunk.
pub struct ChunkedWriter {
    file: File,
    path: std::path::PathBuf,
    dims: Vec<usize>,
    spec: ChunkedSpec,
    table: Vec<ChunkMeta>,
    buf: Vec<f32>,
    rows_written: usize,
    payload_at: u64,
}

impl ChunkedWriter {
    /// Start a file for a `[dims[0], dims[1..]]` array under `spec`. The
    /// total row count must be known up front (it sizes the header).
    pub fn create(dims: &[usize], spec: ChunkedSpec) -> Self {
        assert!(!dims.is_empty(), "need at least the row dimension");
        assert!(spec.chunk_entries > 0, "chunk_entries must be positive");
        assert!(spec.cache_bytes > 0, "cache_bytes must be positive");
        let path = fresh_chunk_path();
        let mut file = File::create(&path).expect("create chunk file");
        let nchunks = dims[0].div_ceil(spec.chunk_entries);
        // Header: magic, version, codec, ndims, chunk_rows, dims…, nchunks,
        // then the chunk table (offset u64 + bytes u64 + scale f32 each),
        // then payload. The table is backfilled on finish().
        let header_bytes = 16 + 8 + dims.len() * 8 + 8 + nchunks * 20;
        let mut head = Vec::with_capacity(header_bytes);
        head.extend_from_slice(&MAGIC.to_le_bytes());
        head.extend_from_slice(&VERSION.to_le_bytes());
        head.extend_from_slice(&spec.codec.tag().to_le_bytes());
        head.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        head.extend_from_slice(&(spec.chunk_entries as u64).to_le_bytes());
        for &d in dims {
            head.extend_from_slice(&(d as u64).to_le_bytes());
        }
        head.extend_from_slice(&(nchunks as u64).to_le_bytes());
        head.resize(header_bytes, 0);
        file.write_all(&head).expect("write chunk header");
        ChunkedWriter {
            file,
            path,
            dims: dims.to_vec(),
            spec,
            table: Vec::with_capacity(nchunks),
            buf: Vec::new(),
            rows_written: 0,
            payload_at: header_bytes as u64,
        }
    }

    fn width(&self) -> usize {
        self.dims[1..].iter().product::<usize>().max(1)
    }

    /// Append whole rows (`rows.len()` must be a multiple of the row width).
    pub fn push_rows(&mut self, rows: &[f32]) {
        let width = self.width();
        assert_eq!(rows.len() % width, 0, "push_rows needs whole rows");
        self.rows_written += rows.len() / width;
        assert!(
            self.rows_written <= self.dims[0],
            "more rows pushed than declared ({} > {})",
            self.rows_written,
            self.dims[0]
        );
        self.buf.extend_from_slice(rows);
        let chunk_scalars = self.spec.chunk_entries * width;
        while self.buf.len() >= chunk_scalars {
            let rest = self.buf.split_off(chunk_scalars);
            let full = std::mem::replace(&mut self.buf, rest);
            self.flush_chunk(&full);
        }
    }

    fn flush_chunk(&mut self, values: &[f32]) {
        let (encoded, scale) = encode_chunk(self.spec.codec, values);
        self.table.push(ChunkMeta {
            offset: self.payload_at,
            bytes: encoded.len() as u64,
            scale,
        });
        self.file.write_all(&encoded).expect("write chunk");
        self.payload_at += encoded.len() as u64;
    }

    /// Flush the ragged tail, backfill the chunk table, and open the store.
    pub fn finish(mut self) -> ChunkedStore {
        assert_eq!(
            self.rows_written, self.dims[0],
            "writer closed early: {} of {} rows",
            self.rows_written, self.dims[0]
        );
        if !self.buf.is_empty() {
            let tail = std::mem::take(&mut self.buf);
            self.flush_chunk(&tail);
        }
        // Backfill the table.
        let table_at = (16 + 8 + self.dims.len() * 8 + 8) as u64;
        self.file
            .seek(SeekFrom::Start(table_at))
            .expect("seek to table");
        let mut raw = Vec::with_capacity(self.table.len() * 20);
        for m in &self.table {
            raw.extend_from_slice(&m.offset.to_le_bytes());
            raw.extend_from_slice(&m.bytes.to_le_bytes());
            raw.extend_from_slice(&m.scale.to_le_bytes());
        }
        self.file.write_all(&raw).expect("write chunk table");
        self.file.flush().expect("flush chunk file");
        let file = File::open(&self.path).expect("reopen chunk file");
        ChunkedStore {
            file: Mutex::new(file),
            path: self.path,
            dims: self.dims,
            spec: self.spec,
            table: self.table,
            file_bytes: self.payload_at,
            cache: Mutex::new(ChunkCache {
                entries: HashMap::new(),
                resident: 0,
                tick: 0,
            }),
            io_bytes: AtomicU64::new(0),
            io_chunks: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        }
    }
}

/// An on-disk chunked columnar array with a bounded LRU decoded-chunk
/// cache. Owns its backing file (deleted on drop). Thread-safe: planes on
/// different engine ranks may share one store through an `Arc`.
pub struct ChunkedStore {
    file: Mutex<File>,
    path: std::path::PathBuf,
    dims: Vec<usize>,
    spec: ChunkedSpec,
    table: Vec<ChunkMeta>,
    file_bytes: u64,
    cache: Mutex<ChunkCache>,
    io_bytes: AtomicU64,
    io_chunks: AtomicU64,
    cache_hits: AtomicU64,
    peak_resident: AtomicU64,
}

impl std::fmt::Debug for ChunkedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedStore")
            .field("dims", &self.dims)
            .field("spec", &self.spec)
            .field("chunks", &self.table.len())
            .field("file_bytes", &self.file_bytes)
            .finish()
    }
}

impl Drop for ChunkedStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl ChunkedStore {
    /// Encode a tensor into a fresh chunk file.
    pub fn from_tensor(t: &Tensor, spec: ChunkedSpec) -> Arc<ChunkedStore> {
        let mut w = ChunkedWriter::create(t.dims(), spec);
        let src = t.contiguous();
        w.push_rows(src.as_slice().expect("contiguous"));
        Arc::new(w.finish())
    }

    /// The chunk configuration.
    pub fn spec(&self) -> ChunkedSpec {
        self.spec
    }

    /// Rows per chunk.
    pub fn chunk_rows(&self) -> usize {
        self.spec.chunk_entries
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.table.len()
    }

    /// Total stored payload + header bytes on disk.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Stored bytes read from disk so far (cache misses only).
    pub fn io_bytes(&self) -> u64 {
        self.io_bytes.load(Ordering::Relaxed)
    }

    /// Chunks decoded from disk so far.
    pub fn io_chunks(&self) -> u64 {
        self.io_chunks.load(Ordering::Relaxed)
    }

    /// Chunk reads served from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// High-water mark of decoded bytes resident in the cache.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident.load(Ordering::Relaxed)
    }

    fn rows_in_chunk(&self, c: usize) -> usize {
        let start = c * self.spec.chunk_entries;
        self.spec.chunk_entries.min(self.dims[0] - start)
    }

    fn width(&self) -> usize {
        self.dims[1..].iter().product::<usize>().max(1)
    }

    /// Decoded chunk `c`, through the LRU cache. Returns the chunk plus the
    /// stored bytes pulled from disk (0 on a hit).
    fn chunk(&self, c: usize) -> (Arc<Vec<f32>>, u64) {
        let mut cache = self.cache.lock().expect("chunk cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((data, touched)) = cache.entries.get_mut(&c) {
            *touched = tick;
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (data.clone(), 0);
        }
        // Miss: read + decode from disk.
        let meta = self.table[c];
        let mut raw = vec![0u8; meta.bytes as usize];
        {
            let mut file = self.file.lock().expect("chunk file poisoned");
            file.seek(SeekFrom::Start(meta.offset)).expect("seek chunk");
            file.read_exact(&mut raw).expect("read chunk");
        }
        let mut decoded = Vec::with_capacity(self.rows_in_chunk(c) * self.width());
        decode_chunk(self.spec.codec, &raw, meta.scale, &mut decoded);
        let decoded = Arc::new(decoded);
        let decoded_bytes = (decoded.len() * 4) as u64;
        self.io_bytes.fetch_add(meta.bytes, Ordering::Relaxed);
        self.io_chunks.fetch_add(1, Ordering::Relaxed);
        // Evict LRU entries until the new chunk fits (a chunk bigger than
        // the whole ceiling still loads — the cache then holds just it).
        while cache.resident + decoded_bytes > self.spec.cache_bytes && !cache.entries.is_empty() {
            let (&lru, _) = cache
                .entries
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .expect("non-empty");
            let (gone, _) = cache.entries.remove(&lru).expect("present");
            cache.resident -= (gone.len() * 4) as u64;
        }
        cache.resident += decoded_bytes;
        cache.entries.insert(c, (decoded.clone(), tick));
        self.peak_resident
            .fetch_max(cache.resident, Ordering::Relaxed);
        (decoded, meta.bytes)
    }

    /// Iterate the store chunk-aligned: `f(first_row, rows_tensor)` per
    /// chunk, in order. Used by per-chunk rewriters (`with_time_feature`,
    /// scaler transforms) so nothing ever materializes the full array.
    pub fn for_each_chunk(&self, mut f: impl FnMut(usize, &Tensor)) {
        for c in 0..self.table.len() {
            let start = c * self.spec.chunk_entries;
            let rows = self.rows_in_chunk(c);
            let (t, _) = self.read_rows_quoted(start..start + rows);
            f(start, &t);
        }
    }
}

impl RowStore for ChunkedStore {
    fn rows(&self) -> usize {
        self.dims[0]
    }

    fn dims(&self) -> &[usize] {
        &self.dims
    }

    fn row_width(&self) -> usize {
        self.width()
    }

    fn read_rows_quoted(&self, range: Range<usize>) -> (Tensor, u64) {
        assert!(range.end <= self.dims[0], "row range out of bounds");
        let width = self.width();
        let mut out = Vec::with_capacity(range.len() * width);
        let mut io = 0u64;
        if !range.is_empty() {
            let cr = self.spec.chunk_entries;
            let first = range.start / cr;
            let last = (range.end - 1) / cr;
            for c in first..=last {
                let c_start = c * cr;
                let (chunk, bytes) = self.chunk(c);
                io += bytes;
                let lo = range.start.max(c_start) - c_start;
                let hi = range.end.min(c_start + self.rows_in_chunk(c)) - c_start;
                out.extend_from_slice(&chunk[lo * width..hi * width]);
            }
        }
        let mut dims = self.dims.clone();
        dims[0] = range.len();
        (Tensor::from_vec(out, dims).expect("range numel"), io)
    }

    fn gather_rows_quoted(&self, ids: &[usize]) -> (Tensor, u64) {
        let width = self.width();
        let mut out = Vec::with_capacity(ids.len() * width);
        let mut io = 0u64;
        for &r in ids {
            assert!(r < self.dims[0], "row {r} out of bounds");
            let c = r / self.spec.chunk_entries;
            let (chunk, bytes) = self.chunk(c);
            io += bytes;
            let lo = (r - c * self.spec.chunk_entries) * width;
            out.extend_from_slice(&chunk[lo..lo + width]);
        }
        let mut dims = self.dims.clone();
        dims[0] = ids.len();
        (Tensor::from_vec(out, dims).expect("gather numel"), io)
    }

    fn resident_bytes(&self) -> u64 {
        self.cache.lock().expect("chunk cache poisoned").resident
    }
}

// ---------------------------------------------------------------------------
// The backend enum
// ---------------------------------------------------------------------------

/// A signal's backing store: dense in-memory tensor or out-of-core chunks.
/// Clones are O(1) (shared tensor storage / shared `Arc`).
#[derive(Debug, Clone)]
pub enum SignalStorage {
    /// One dense tensor; reads are zero-copy views.
    InMemory(Tensor),
    /// On-disk chunks behind a bounded LRU cache.
    Chunked(Arc<ChunkedStore>),
}

impl SignalStorage {
    /// Wrap a tensor under the requested backend. `InMemory` shares the
    /// tensor's storage; `Chunked` encodes it into a fresh chunk file.
    pub fn from_tensor_spec(t: Tensor, spec: StorageSpec) -> SignalStorage {
        match spec {
            StorageSpec::InMemory => SignalStorage::InMemory(t.contiguous()),
            StorageSpec::Chunked(cs) => SignalStorage::Chunked(ChunkedStore::from_tensor(&t, cs)),
        }
    }

    /// True for the chunked backend.
    pub fn is_chunked(&self) -> bool {
        matches!(self, SignalStorage::Chunked(_))
    }

    /// The spec that would rebuild this backend.
    pub fn spec(&self) -> StorageSpec {
        match self {
            SignalStorage::InMemory(_) => StorageSpec::InMemory,
            SignalStorage::Chunked(s) => StorageSpec::Chunked(s.spec()),
        }
    }

    /// The dense tensor of the in-memory backend. Panics for `Chunked` —
    /// callers that can stream must use [`RowStore::read_rows_quoted`];
    /// this accessor exists for the many in-memory-only code paths
    /// (Algorithm-1 preprocessing, tests, serialization of small signals).
    pub fn dense(&self) -> &Tensor {
        match self {
            SignalStorage::InMemory(t) => t,
            SignalStorage::Chunked(_) => {
                panic!("dense() on chunked storage — use read_rows_quoted/to_tensor")
            }
        }
    }

    /// Materialize the full array as one tensor (O(1) clone for the
    /// in-memory backend; a full streamed read for chunks).
    pub fn to_tensor(&self) -> Tensor {
        match self {
            SignalStorage::InMemory(t) => t.clone(),
            SignalStorage::Chunked(s) => s.read_rows_quoted(0..s.rows()).0,
        }
    }

    /// The chunked store, when this is the chunked backend.
    pub fn chunked(&self) -> Option<&Arc<ChunkedStore>> {
        match self {
            SignalStorage::InMemory(_) => None,
            SignalStorage::Chunked(s) => Some(s),
        }
    }

    /// Rewrite this store under a new backend spec (used to convert an
    /// in-memory dataset to chunked form, or re-chunk with new settings).
    /// Chunked sources stream chunk-by-chunk; nothing materializes fully.
    pub fn rechunk(&self, spec: StorageSpec) -> SignalStorage {
        match (self, spec) {
            (SignalStorage::InMemory(t), s) => SignalStorage::from_tensor_spec(t.clone(), s),
            (SignalStorage::Chunked(src), StorageSpec::Chunked(cs)) => {
                let mut w = ChunkedWriter::create(src.dims(), cs);
                src.for_each_chunk(|_, rows| {
                    w.push_rows(rows.as_slice().expect("chunk rows contiguous"));
                });
                SignalStorage::Chunked(Arc::new(w.finish()))
            }
            (SignalStorage::Chunked(_), StorageSpec::InMemory) => {
                SignalStorage::InMemory(self.to_tensor())
            }
        }
    }

    /// Apply an elementwise per-row map, staying on the same backend.
    /// Chunked stores stream per chunk (peak memory = one chunk); the
    /// in-memory path applies `f` to the whole tensor in one call, so any
    /// elementwise `f` (e.g. a scaler transform) produces bit-identical
    /// values on both backends.
    pub fn map_rows(&self, f: impl Fn(&Tensor) -> Tensor) -> SignalStorage {
        match self {
            SignalStorage::InMemory(t) => {
                let out = f(t);
                assert_eq!(out.dims(), t.dims(), "map_rows must preserve shape");
                SignalStorage::InMemory(out.contiguous())
            }
            SignalStorage::Chunked(src) => {
                let mut w = ChunkedWriter::create(src.dims(), src.spec());
                src.for_each_chunk(|_, rows| {
                    let out = f(rows);
                    assert_eq!(out.dims(), rows.dims(), "map_rows must preserve shape");
                    w.push_rows(out.contiguous().as_slice().expect("contiguous"));
                });
                SignalStorage::Chunked(Arc::new(w.finish()))
            }
        }
    }

    /// Stored bytes read from disk so far (0 for the in-memory backend).
    pub fn io_bytes(&self) -> u64 {
        match self {
            SignalStorage::InMemory(_) => 0,
            SignalStorage::Chunked(s) => s.io_bytes(),
        }
    }

    /// High-water mark of cache-resident decoded bytes (the full tensor for
    /// the in-memory backend).
    pub fn peak_resident_bytes(&self) -> u64 {
        match self {
            SignalStorage::InMemory(t) => (t.numel() * 4) as u64,
            SignalStorage::Chunked(s) => s.peak_resident_bytes(),
        }
    }
}

impl RowStore for SignalStorage {
    fn rows(&self) -> usize {
        match self {
            SignalStorage::InMemory(t) => t.dim(0),
            SignalStorage::Chunked(s) => s.rows(),
        }
    }

    fn dims(&self) -> &[usize] {
        match self {
            SignalStorage::InMemory(t) => t.dims(),
            SignalStorage::Chunked(s) => s.dims(),
        }
    }

    fn row_width(&self) -> usize {
        match self {
            SignalStorage::InMemory(t) => t.dims()[1..].iter().product::<usize>().max(1),
            SignalStorage::Chunked(s) => s.row_width(),
        }
    }

    fn read_rows_quoted(&self, range: Range<usize>) -> (Tensor, u64) {
        match self {
            SignalStorage::InMemory(t) => {
                (t.narrow(0, range.start, range.len()).expect("row range"), 0)
            }
            SignalStorage::Chunked(s) => s.read_rows_quoted(range),
        }
    }

    fn gather_rows_quoted(&self, ids: &[usize]) -> (Tensor, u64) {
        match self {
            SignalStorage::InMemory(t) => (t.index_select0(ids).expect("row ids"), 0),
            SignalStorage::Chunked(s) => s.gather_rows_quoted(ids),
        }
    }

    fn resident_bytes(&self) -> u64 {
        match self {
            SignalStorage::InMemory(t) => (t.numel() * 4) as u64,
            SignalStorage::Chunked(s) => s.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(rows: usize, width: usize) -> Tensor {
        Tensor::arange(rows * width).reshape([rows, width]).unwrap()
    }

    #[test]
    fn lossless_chunked_reads_are_bit_identical() {
        let t = arange(37, 5); // ragged final chunk with chunk_entries = 8
        let spec = ChunkedSpec::new(8);
        let cs = SignalStorage::from_tensor_spec(t.clone(), StorageSpec::Chunked(spec));
        for range in [0..37usize, 0..8, 5..11, 32..37, 36..37, 4..4] {
            let (got, _) = cs.read_rows_quoted(range.clone());
            let want = t.narrow(0, range.start, range.len()).unwrap();
            assert_eq!(got.to_vec(), want.to_vec(), "{range:?}");
        }
        let ids = [36usize, 0, 17, 8, 7];
        let (got, _) = cs.gather_rows_quoted(&ids);
        assert_eq!(got.to_vec(), t.index_select0(&ids).unwrap().to_vec());
    }

    #[test]
    fn cache_ceiling_bounds_resident_bytes() {
        let t = arange(64, 16); // 16 chunks of 4 rows × 16 cols = 256 B each
        let spec = ChunkedSpec::new(4).with_cache_bytes(600); // fits 2 chunks
        let store = ChunkedStore::from_tensor(&t, spec);
        for r in 0..64 {
            let _ = store.gather_rows_quoted(&[r]);
        }
        assert!(store.peak_resident_bytes() <= 600);
        assert!(store.resident_bytes() <= 600);
        // A full second sweep re-reads from disk (the cache can't hold all).
        let io_before = store.io_bytes();
        for r in 0..64 {
            let _ = store.gather_rows_quoted(&[r]);
        }
        assert!(store.io_bytes() > io_before, "evictions force re-reads");
    }

    #[test]
    fn sequential_reads_hit_the_cache() {
        let t = arange(32, 4);
        let store = ChunkedStore::from_tensor(&t, ChunkedSpec::new(8));
        for r in 0..32 {
            let _ = store.gather_rows_quoted(&[r]);
        }
        assert_eq!(store.io_chunks(), 4, "each chunk read once");
        assert_eq!(store.cache_hits(), 28);
        // All 4 chunks fit under the default ceiling.
        assert_eq!(store.resident_bytes(), 32 * 4 * 4);
    }

    #[test]
    fn io_bytes_are_quoted_per_read() {
        let t = arange(16, 4);
        let store = ChunkedStore::from_tensor(&t, ChunkedSpec::new(8));
        let (_, io1) = store.read_rows_quoted(0..8);
        assert_eq!(io1, 8 * 4 * 4, "one lossless chunk = stored bytes");
        let (_, io2) = store.read_rows_quoted(0..8);
        assert_eq!(io2, 0, "cache hit quotes no disk bytes");
        let (_, io3) = store.read_rows_quoted(4..12);
        assert_eq!(io3, 8 * 4 * 4, "straddle pulls only the missing chunk");
    }

    #[test]
    fn f16_codec_halves_the_file_within_half_precision() {
        let vals: Vec<f32> = (0..200).map(|i| (i as f32 * 0.37).sin() * 80.0).collect();
        let t = Tensor::from_vec(vals.clone(), [50, 4]).unwrap();
        let lossless = ChunkedStore::from_tensor(&t, ChunkedSpec::new(16));
        let half = ChunkedStore::from_tensor(&t, ChunkedSpec::new(16).with_codec(ChunkCodec::F16));
        let payload = |s: &ChunkedStore| -> u64 { s.table.iter().map(|m| m.bytes).sum() };
        assert_eq!(payload(&half) * 2, payload(&lossless));
        let (got, _) = half.read_rows_quoted(0..50);
        for (g, v) in got.to_vec().iter().zip(&vals) {
            assert!((g - v).abs() <= v.abs() / 2048.0 + 1e-6, "{v} -> {g}");
        }
    }

    #[test]
    fn i8_codec_quarters_the_file_within_scale_error() {
        let vals: Vec<f32> = (0..200).map(|i| (i as f32 * 0.11).cos() * 3.0).collect();
        let t = Tensor::from_vec(vals.clone(), [50, 4]).unwrap();
        let q = ChunkedStore::from_tensor(&t, ChunkedSpec::new(16).with_codec(ChunkCodec::I8));
        let payload: u64 = q.table.iter().map(|m| m.bytes).sum();
        assert_eq!(payload, 200);
        let (got, _) = q.read_rows_quoted(0..50);
        // Error bound: half a quantization step at per-chunk max-abs scale.
        for (g, v) in got.to_vec().iter().zip(&vals) {
            assert!((g - v).abs() <= 3.0 / 127.0, "{v} -> {g}");
        }
    }

    #[test]
    fn map_rows_matches_dense_map_bitwise() {
        let t = arange(29, 3);
        let f = |x: &Tensor| st_tensor::ops::mul_scalar(&st_tensor::ops::add_scalar(x, -2.5), 0.3);
        let dense = f(&t);
        let chunked = SignalStorage::from_tensor_spec(t, StorageSpec::Chunked(ChunkedSpec::new(7)));
        let mapped = chunked.map_rows(f);
        let (got, _) = mapped.read_rows_quoted(0..29);
        let a = got.to_vec();
        let b = dense.to_vec();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn rechunk_round_trips() {
        let t = arange(23, 2);
        let s =
            SignalStorage::from_tensor_spec(t.clone(), StorageSpec::Chunked(ChunkedSpec::new(5)));
        let back = s.rechunk(StorageSpec::Chunked(ChunkedSpec::new(9)));
        assert_eq!(back.to_tensor().to_vec(), t.to_vec());
        let dense = back.rechunk(StorageSpec::InMemory);
        assert!(!dense.is_chunked());
        assert_eq!(dense.dense().to_vec(), t.to_vec());
    }

    #[test]
    fn chunk_file_is_deleted_on_drop() {
        let t = arange(8, 2);
        let store = ChunkedStore::from_tensor(&t, ChunkedSpec::new(4));
        let path = store.path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }

    #[test]
    fn in_memory_reads_stay_zero_copy() {
        let t = arange(10, 3);
        let s = SignalStorage::InMemory(t.clone());
        let (view, io) = s.read_rows_quoted(2..7);
        assert_eq!(io, 0);
        assert!(view.shares_storage(&t), "in-memory range reads are views");
    }
}
