//! The spatiotemporal signal container.
//!
//! Follows PGT's *static graph with temporal signal* representation (§2.2):
//! a fixed weighted graph plus a `[entries, nodes, features]` array of node
//! features over time. This is the object both preprocessing pipelines
//! (standard SWA and index-batching) consume.
//!
//! Since PR 8 the feature array sits behind [`SignalStorage`]: the default
//! `InMemory` backend is the historical dense tensor (all reads zero-copy
//! views, bit-identical behavior), while the `Chunked` backend streams the
//! entry axis from an on-disk columnar file through a bounded LRU cache so
//! resident bytes stay `O(chunks_cached)` instead of `O(entries)`.

use crate::storage::{RowStore, SignalStorage, StorageSpec};
use st_graph::Adjacency;
use st_tensor::Tensor;

/// A static graph whose node features evolve over time.
#[derive(Debug, Clone)]
pub struct StaticGraphTemporalSignal {
    /// Node features behind a storage backend, logical shape
    /// `[entries, nodes, features]`.
    pub storage: SignalStorage,
    /// The (static) weighted adjacency.
    pub adjacency: Adjacency,
}

impl StaticGraphTemporalSignal {
    /// Construct from a dense tensor (in-memory backend), validating shapes.
    pub fn new(data: Tensor, adjacency: Adjacency) -> Self {
        Self::with_storage(SignalStorage::InMemory(data.contiguous()), adjacency)
    }

    /// Construct over an explicit storage backend, validating shapes.
    pub fn with_storage(storage: SignalStorage, adjacency: Adjacency) -> Self {
        assert_eq!(
            storage.dims().len(),
            3,
            "signal must be [entries, nodes, features]"
        );
        assert_eq!(
            storage.dims()[1],
            adjacency.num_nodes(),
            "node count must match adjacency"
        );
        StaticGraphTemporalSignal { storage, adjacency }
    }

    /// The dense feature tensor of the in-memory backend. Panics for a
    /// chunked signal — streaming consumers go through
    /// [`StaticGraphTemporalSignal::storage`] instead.
    pub fn data(&self) -> &Tensor {
        self.storage.dense()
    }

    /// True when the signal streams from on-disk chunks.
    pub fn is_chunked(&self) -> bool {
        self.storage.is_chunked()
    }

    /// Re-house the signal under another storage backend (e.g. convert an
    /// in-memory signal into bounded-cache chunks before training).
    pub fn rechunk(&self, spec: StorageSpec) -> StaticGraphTemporalSignal {
        StaticGraphTemporalSignal {
            storage: self.storage.rechunk(spec),
            adjacency: self.adjacency.clone(),
        }
    }

    /// Number of time entries.
    pub fn entries(&self) -> usize {
        self.storage.dims()[0]
    }

    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.storage.dims()[1]
    }

    /// Number of node features.
    pub fn num_features(&self) -> usize {
        self.storage.dims()[2]
    }

    /// The graph state at time `t` as a `[nodes, features]` tensor — a
    /// zero-copy view for the in-memory backend, a cached chunk read for
    /// the chunked one.
    pub fn graph_at(&self, t: usize) -> Tensor {
        match &self.storage {
            SignalStorage::InMemory(data) => data.select(0, t).expect("t in range"),
            SignalStorage::Chunked(_) => {
                let (rows, _) = self.storage.read_rows_quoted(t..t + 1);
                rows.reshape([self.num_nodes(), self.num_features()])
                    .expect("one entry")
            }
        }
    }

    /// Raw data size in bytes at the given element width (float64 in the
    /// paper's Table 1; float32 in our measured runs). Each factor widens
    /// to `u64` *before* multiplying, so city-scale signals don't overflow
    /// `usize` arithmetic on 32-bit targets.
    pub fn size_bytes(&self, elem_bytes: usize) -> u64 {
        self.entries() as u64
            * self.num_nodes() as u64
            * self.num_features() as u64
            * elem_bytes as u64
    }

    /// Append a time-of-day feature column (stage 1 of the paper's Fig. 3:
    /// "added data from including time-of-day information as a transposed
    /// matrix"). `period` is the number of entries in one day/week cycle.
    ///
    /// The in-memory path is byte-for-byte the historical implementation;
    /// a chunked signal is rewritten chunk-by-chunk on the same backend, so
    /// peak memory stays at one chunk instead of the whole signal.
    pub fn with_time_feature(&self, period: usize) -> StaticGraphTemporalSignal {
        let n = self.num_nodes();
        let f = self.num_features();
        let augment = |first_entry: usize, rows: &Tensor, out: &mut Vec<f32>| {
            let src = rows.as_slice().expect("contiguous rows");
            for (dt, entry) in src.chunks_exact(n * f).enumerate() {
                let t = first_entry + dt;
                let tod = (t % period) as f32 / period as f32;
                for node_row in entry.chunks_exact(f) {
                    out.extend_from_slice(node_row);
                    out.push(tod);
                }
            }
        };
        let storage = match &self.storage {
            SignalStorage::InMemory(data) => {
                let e = self.entries();
                let mut out = Vec::with_capacity(e * n * (f + 1));
                augment(0, &data.contiguous(), &mut out);
                SignalStorage::InMemory(Tensor::from_vec(out, [e, n, f + 1]).expect("numel"))
            }
            SignalStorage::Chunked(store) => {
                let dims = [self.entries(), n, f + 1];
                let mut w = crate::storage::ChunkedWriter::create(&dims, store.spec());
                store.for_each_chunk(|first, rows| {
                    let mut out = Vec::with_capacity(rows.dim(0) * n * (f + 1));
                    augment(first, rows, &mut out);
                    w.push_rows(&out);
                });
                SignalStorage::Chunked(std::sync::Arc::new(w.finish()))
            }
        };
        StaticGraphTemporalSignal {
            storage,
            adjacency: self.adjacency.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ChunkedSpec;

    fn tiny_signal() -> StaticGraphTemporalSignal {
        let adj = Adjacency::from_dense(2, vec![1.0, 0.5, 0.5, 1.0]);
        let data = Tensor::arange(2 * 2).reshape([2, 2, 1]).unwrap();
        StaticGraphTemporalSignal::new(data, adj)
    }

    #[test]
    fn dimensions() {
        let s = tiny_signal();
        assert_eq!(s.entries(), 2);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_features(), 1);
        assert_eq!(s.size_bytes(8), 32);
    }

    #[test]
    fn size_bytes_widens_before_multiplying() {
        // 70k entries × 9k nodes × 8 features × 8 bytes ≈ 40 GB — overflows
        // a 32-bit usize product but must report exactly in u64.
        let e = 70_000u64;
        let n = 9_000u64;
        let f = 8u64;
        // Build a tiny signal and check the arithmetic shape of size_bytes
        // directly (we cannot allocate 40 GB in a test).
        let s = tiny_signal();
        assert_eq!(s.size_bytes(8), 2 * 2 * 8);
        // The formula must be pure u64 math end to end.
        assert_eq!(e * n * f * 8, 40_320_000_000u64);
        assert!(e * n * f * 8 > u32::MAX as u64);
    }

    #[test]
    fn graph_at_is_a_view() {
        let s = tiny_signal();
        let g = s.graph_at(1);
        assert_eq!(g.dims(), &[2, 1]);
        assert_eq!(g.to_vec(), vec![2.0, 3.0]);
        assert!(g.shares_storage(s.data()), "must be zero-copy");
    }

    #[test]
    fn chunked_graph_at_matches_dense() {
        let adj = Adjacency::from_dense(3, vec![1.0; 9]);
        let data = Tensor::arange(7 * 3 * 2).reshape([7, 3, 2]).unwrap();
        let dense = StaticGraphTemporalSignal::new(data, adj);
        let chunked = dense.rechunk(StorageSpec::Chunked(ChunkedSpec::new(2)));
        assert!(chunked.is_chunked());
        for t in 0..7 {
            assert_eq!(chunked.graph_at(t).to_vec(), dense.graph_at(t).to_vec());
        }
    }

    #[test]
    fn time_feature_appends_normalized_phase() {
        let s = tiny_signal();
        let aug = s.with_time_feature(2);
        assert_eq!(aug.num_features(), 2);
        // t=0 -> phase 0.0; t=1 -> phase 0.5.
        assert_eq!(aug.data().at(&[0, 0, 1]), 0.0);
        assert_eq!(aug.data().at(&[1, 0, 1]), 0.5);
        // Original feature preserved.
        assert_eq!(aug.data().at(&[1, 1, 0]), 3.0);
    }

    #[test]
    fn time_feature_in_memory_is_unchanged_bitwise() {
        // Pin the in-memory path against the historical whole-tensor
        // implementation: identical output bits, entry by entry.
        let adj = Adjacency::from_dense(4, vec![0.5; 16]);
        let data = Tensor::arange(11 * 4 * 3).reshape([11, 4, 3]).unwrap();
        let s = StaticGraphTemporalSignal::new(data.clone(), adj);
        let aug = s.with_time_feature(5);

        // Historical reference implementation (pre-PR-8, verbatim).
        let (e, n, f) = (11usize, 4usize, 3usize);
        let src = data.to_vec();
        let mut want = Vec::with_capacity(e * n * (f + 1));
        for t in 0..e {
            let tod = (t % 5) as f32 / 5.0;
            for node in 0..n {
                let base = (t * n + node) * f;
                want.extend_from_slice(&src[base..base + f]);
                want.push(tod);
            }
        }
        let got = aug.data().to_vec();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn time_feature_chunked_matches_in_memory_bitwise() {
        let adj = Adjacency::from_dense(3, vec![0.25; 9]);
        let data = Tensor::arange(13 * 3 * 2).reshape([13, 3, 2]).unwrap();
        let dense = StaticGraphTemporalSignal::new(data, adj);
        let chunked = dense.rechunk(StorageSpec::Chunked(ChunkedSpec::new(4)));
        let a = dense.with_time_feature(6);
        let b = chunked.with_time_feature(6);
        assert!(b.is_chunked(), "stays on the chunked backend");
        let av = a.data().to_vec();
        let bv = b.storage.to_tensor().to_vec();
        assert_eq!(av.len(), bv.len());
        for (x, y) in av.iter().zip(&bv) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn mismatched_adjacency_panics() {
        let adj = Adjacency::from_dense(3, vec![0.0; 9]);
        let data = Tensor::zeros([2, 2, 1]);
        StaticGraphTemporalSignal::new(data, adj);
    }
}
