//! The spatiotemporal signal container.
//!
//! Follows PGT's *static graph with temporal signal* representation (§2.2):
//! a fixed weighted graph plus a `[entries, nodes, features]` array of node
//! features over time. This is the object both preprocessing pipelines
//! (standard SWA and index-batching) consume.

use st_graph::Adjacency;
use st_tensor::Tensor;

/// A static graph whose node features evolve over time.
#[derive(Debug, Clone)]
pub struct StaticGraphTemporalSignal {
    /// Node features, shape `[entries, nodes, features]`.
    pub data: Tensor,
    /// The (static) weighted adjacency.
    pub adjacency: Adjacency,
}

impl StaticGraphTemporalSignal {
    /// Construct, validating shapes.
    pub fn new(data: Tensor, adjacency: Adjacency) -> Self {
        assert_eq!(data.rank(), 3, "signal must be [entries, nodes, features]");
        assert_eq!(
            data.dim(1),
            adjacency.num_nodes(),
            "node count must match adjacency"
        );
        StaticGraphTemporalSignal { data, adjacency }
    }

    /// Number of time entries.
    pub fn entries(&self) -> usize {
        self.data.dim(0)
    }

    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.data.dim(1)
    }

    /// Number of node features.
    pub fn num_features(&self) -> usize {
        self.data.dim(2)
    }

    /// The graph state at time `t` as a `[nodes, features]` view.
    pub fn graph_at(&self, t: usize) -> Tensor {
        self.data.select(0, t).expect("t in range")
    }

    /// Raw data size in bytes at the given element width (float64 in the
    /// paper's Table 1; float32 in our measured runs).
    pub fn size_bytes(&self, elem_bytes: usize) -> u64 {
        (self.entries() * self.num_nodes() * self.num_features() * elem_bytes) as u64
    }

    /// Append a time-of-day feature column (stage 1 of the paper's Fig. 3:
    /// "added data from including time-of-day information as a transposed
    /// matrix"). `period` is the number of entries in one day/week cycle.
    pub fn with_time_feature(&self, period: usize) -> StaticGraphTemporalSignal {
        let e = self.entries();
        let n = self.num_nodes();
        let f = self.num_features();
        let src = self.data.to_vec();
        let mut out = Vec::with_capacity(e * n * (f + 1));
        for t in 0..e {
            let tod = (t % period) as f32 / period as f32;
            for node in 0..n {
                let base = (t * n + node) * f;
                out.extend_from_slice(&src[base..base + f]);
                out.push(tod);
            }
        }
        StaticGraphTemporalSignal {
            data: Tensor::from_vec(out, [e, n, f + 1]).expect("matching numel"),
            adjacency: self.adjacency.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_signal() -> StaticGraphTemporalSignal {
        let adj = Adjacency::from_dense(2, vec![1.0, 0.5, 0.5, 1.0]);
        let data = Tensor::arange(2 * 2).reshape([2, 2, 1]).unwrap();
        StaticGraphTemporalSignal::new(data, adj)
    }

    #[test]
    fn dimensions() {
        let s = tiny_signal();
        assert_eq!(s.entries(), 2);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_features(), 1);
        assert_eq!(s.size_bytes(8), 32);
    }

    #[test]
    fn graph_at_is_a_view() {
        let s = tiny_signal();
        let g = s.graph_at(1);
        assert_eq!(g.dims(), &[2, 1]);
        assert_eq!(g.to_vec(), vec![2.0, 3.0]);
        assert!(g.shares_storage(&s.data), "must be zero-copy");
    }

    #[test]
    fn time_feature_appends_normalized_phase() {
        let s = tiny_signal();
        let aug = s.with_time_feature(2);
        assert_eq!(aug.num_features(), 2);
        // t=0 -> phase 0.0; t=1 -> phase 0.5.
        assert_eq!(aug.data.at(&[0, 0, 1]), 0.0);
        assert_eq!(aug.data.at(&[1, 0, 1]), 0.5);
        // Original feature preserved.
        assert_eq!(aug.data.at(&[1, 1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn mismatched_adjacency_panics() {
        let adj = Adjacency::from_dense(3, vec![0.0; 9]);
        let data = Tensor::zeros([2, 2, 1]);
        StaticGraphTemporalSignal::new(data, adj);
    }
}
