//! Dynamic graph with temporal signal — the paper's §7 future-work
//! extension ("we plan to extend PGT-I to support additional spatiotemporal
//! data structures such as dynamic graphs with temporal signal").
//!
//! The structure follows PGT's `DynamicGraphTemporalSignal`: node features
//! evolve *and* the edge weights evolve, one adjacency per time step.
//! Index-batching generalizes directly: snapshots remain index-addressed
//! windows into the single feature array, and the per-step adjacencies are
//! themselves index-addressed (no duplication across overlapping windows).

use crate::signal::StaticGraphTemporalSignal;
use st_graph::Adjacency;
use st_tensor::Tensor;

/// A graph whose features *and* topology evolve over time.
#[derive(Debug, Clone)]
pub struct DynamicGraphTemporalSignal {
    /// Node features `[entries, nodes, features]`.
    pub data: Tensor,
    /// One weighted adjacency per time step (length = entries).
    pub adjacencies: Vec<Adjacency>,
}

impl DynamicGraphTemporalSignal {
    /// Construct, validating shapes.
    pub fn new(data: Tensor, adjacencies: Vec<Adjacency>) -> Self {
        assert_eq!(data.rank(), 3, "signal must be [entries, nodes, features]");
        assert_eq!(
            data.dim(0),
            adjacencies.len(),
            "need one adjacency per entry"
        );
        for (t, adj) in adjacencies.iter().enumerate() {
            assert_eq!(
                adj.num_nodes(),
                data.dim(1),
                "adjacency at t={t} has wrong node count"
            );
        }
        DynamicGraphTemporalSignal { data, adjacencies }
    }

    /// Number of time entries.
    pub fn entries(&self) -> usize {
        self.data.dim(0)
    }

    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.data.dim(1)
    }

    /// Number of node features.
    pub fn num_features(&self) -> usize {
        self.data.dim(2)
    }

    /// The adjacency at time `t` (index-addressed, never copied).
    pub fn adjacency_at(&self, t: usize) -> &Adjacency {
        &self.adjacencies[t]
    }

    /// An index-batching window: feature views `(x, y)` plus the *borrowed*
    /// adjacency sequence for the x window — the dynamic-graph analogue of
    /// `IndexDataset::snapshot`.
    pub fn window(&self, start: usize, horizon: usize) -> (Tensor, Tensor, &[Adjacency]) {
        let x = self
            .data
            .narrow(0, start, horizon)
            .expect("window in range");
        let y = self
            .data
            .narrow(0, start + horizon, horizon)
            .expect("label window in range");
        (x, y, &self.adjacencies[start..start + horizon])
    }

    /// Number of valid windows for `horizon`.
    pub fn num_windows(&self, horizon: usize) -> usize {
        crate::preprocess::num_snapshots(self.entries(), horizon)
    }

    /// Freeze the topology at `t` into a static-graph signal (for models
    /// that require a fixed support set).
    pub fn frozen_at(&self, t: usize) -> StaticGraphTemporalSignal {
        StaticGraphTemporalSignal::new(self.data.clone(), self.adjacencies[t].clone())
    }

    /// Bytes of an index-batching layout for this structure: one feature
    /// copy + per-step sparse adjacencies + window indices. Contrast with a
    /// materializing layout, which would duplicate both features *and*
    /// adjacency references `horizon`-fold.
    pub fn index_layout_bytes(&self, horizon: usize, elem_bytes: usize) -> u64 {
        let features = (self.data.numel() * elem_bytes) as u64;
        let adj: u64 = self
            .adjacencies
            .iter()
            .map(|a| (a.num_edges() * (elem_bytes + 2 * 8)) as u64)
            .sum();
        features + adj + self.num_windows(horizon) as u64 * 8
    }
}

/// Generate a synthetic dynamic-topology traffic network: a base corridor
/// whose edge weights are modulated per step (incidents closing lanes).
pub fn synthetic_dynamic_traffic(
    nodes: usize,
    entries: usize,
    seed: u64,
) -> DynamicGraphTemporalSignal {
    use rand::Rng;
    use rand::SeedableRng;
    let net = st_graph::generators::highway_corridor(nodes, 1, seed);
    let base = synthetic_base_signal(&net, entries, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1A);
    let n = nodes;
    let mut adjacencies = Vec::with_capacity(entries);
    let mut weights = net.adjacency.weights().to_vec();
    for _ in 0..entries {
        // Occasionally degrade a random edge (incident) and slowly recover.
        for w in weights.iter_mut() {
            *w = (*w * 1.02).min(1.0);
        }
        if rng.gen_bool(0.05) {
            let e = rng.gen_range(0..n * n);
            weights[e] *= 0.2;
        }
        adjacencies.push(Adjacency::from_dense(n, weights.clone()));
    }
    DynamicGraphTemporalSignal::new(base, adjacencies)
}

/// Materialize a dense dynamic signal from a base adjacency plus a
/// streamed-mutation delta chain (see `st_graph::generators::mutation_stream`).
///
/// Entry 0 is `base`; entry `t` applies `deltas[t-1]` on top of entry
/// `t-1`, writing each `(u, v, w)` to both directions. Empty deltas
/// *clone* the previous entry, so frozen stretches share one weight
/// buffer and `partition_timeline`'s `same_topology` check is O(1) there.
/// Dense signals have a fixed node count, so deltas must not add nodes.
pub fn dynamic_signal_from_deltas(
    base: &Adjacency,
    deltas: &[st_graph::partition::incremental::GraphDelta],
    data: Tensor,
) -> DynamicGraphTemporalSignal {
    assert_eq!(
        data.dim(0),
        deltas.len() + 1,
        "need entries = deltas + 1 (entry 0 is the base topology)"
    );
    let n = base.num_nodes();
    let mut adjacencies = Vec::with_capacity(deltas.len() + 1);
    adjacencies.push(base.clone());
    for delta in deltas {
        assert_eq!(
            delta.added_nodes, 0,
            "dense dynamic signals have a fixed node count"
        );
        let prev = adjacencies.last().expect("entry 0 pushed above");
        if delta.is_empty() {
            adjacencies.push(prev.clone());
            continue;
        }
        let mut weights = prev.weights().to_vec();
        for &(u, v, w) in &delta.edges {
            weights[u * n + v] = w;
            weights[v * n + u] = w;
        }
        adjacencies.push(Adjacency::from_dense(n, weights));
    }
    DynamicGraphTemporalSignal::new(data, adjacencies)
}

fn synthetic_base_signal(
    net: &st_graph::generators::SensorNetwork,
    entries: usize,
    seed: u64,
) -> Tensor {
    let sig = crate::synthetic::traffic::generate(net, entries, 288, seed);
    sig.storage.to_tensor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_share_adjacency_storage() {
        let d = synthetic_dynamic_traffic(6, 30, 3);
        let (x, y, adjs) = d.window(4, 3);
        assert_eq!(x.dims(), &[3, 6, 1]);
        assert_eq!(y.dims(), &[3, 6, 1]);
        assert_eq!(adjs.len(), 3);
        assert!(x.shares_storage(&d.data), "features stay zero-copy");
        // Adjacency slice borrows the per-step list (pointer identity).
        assert!(std::ptr::eq(&d.adjacencies[4], &adjs[0]));
    }

    #[test]
    fn topology_actually_evolves() {
        let d = synthetic_dynamic_traffic(8, 100, 9);
        let first = d.adjacency_at(0).weights().to_vec();
        let later = d.adjacency_at(99).weights().to_vec();
        assert_ne!(first, later, "edge weights must change over time");
    }

    #[test]
    fn window_count_matches_static_formula() {
        let d = synthetic_dynamic_traffic(4, 25, 1);
        assert_eq!(d.num_windows(3), 25 - 5);
    }

    #[test]
    fn frozen_signal_is_trainable_shape() {
        let d = synthetic_dynamic_traffic(5, 40, 2);
        let frozen = d.frozen_at(0);
        assert_eq!(frozen.entries(), 40);
        assert_eq!(frozen.num_nodes(), 5);
    }

    #[test]
    fn index_layout_grows_linearly_not_with_horizon() {
        let d = synthetic_dynamic_traffic(5, 60, 4);
        let h4 = d.index_layout_bytes(4, 8);
        let h12 = d.index_layout_bytes(12, 8);
        // Bigger horizon means *fewer* windows, so the layout shrinks
        // slightly — the defining contrast with eq. (1) growth.
        assert!(h12 <= h4);
    }

    #[test]
    fn delta_signal_applies_chain_and_shares_frozen_entries() {
        use st_graph::partition::incremental::GraphDelta;
        let net = st_graph::generators::highway_corridor(4, 1, 1);
        let deltas = vec![
            GraphDelta {
                added_nodes: 0,
                edges: vec![(0, 3, 0.9)],
            },
            GraphDelta {
                added_nodes: 0,
                edges: vec![],
            },
        ];
        let data = Tensor::zeros([3, 4, 1]);
        let d = dynamic_signal_from_deltas(&net.adjacency, &deltas, data);
        assert_eq!(d.entries(), 3);
        assert_eq!(d.adjacency_at(1).weight(0, 3), 0.9);
        assert_eq!(d.adjacency_at(1).weight(3, 0), 0.9, "both directions");
        // The empty delta clones entry 1 — shared storage, O(1) compare.
        assert!(d.adjacency_at(2).same_topology(d.adjacency_at(1)));
        assert!(!d.adjacency_at(0).same_topology(d.adjacency_at(1)));
    }

    #[test]
    #[should_panic(expected = "one adjacency per entry")]
    fn mismatched_lengths_panic() {
        let net = st_graph::generators::highway_corridor(3, 1, 1);
        let data = Tensor::zeros([5, 3, 1]);
        DynamicGraphTemporalSignal::new(data, vec![net.adjacency]);
    }
}
