//! # st-report
//!
//! Small reporting toolkit for the reproduction harness: aligned text /
//! markdown tables (the `repro_*` binaries print the same rows the paper's
//! tables report), line-series rendering for figures, and experiment records
//! collecting paper-vs-measured values for `EXPERIMENTS.md`.

pub mod record;
pub mod series;
pub mod table;

pub use record::{ExperimentRecord, RecordSet};
pub use series::Series;
pub use table::Table;
