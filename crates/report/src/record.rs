//! Paper-vs-measured experiment records feeding `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// One compared quantity from one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. "Table 2" or "Fig 7".
    pub experiment: String,
    /// What is being compared, e.g. "PGT-DCRNN peak host memory (GB)".
    pub quantity: String,
    /// The paper's reported value, as printed.
    pub paper: String,
    /// Our measured/projected value.
    pub ours: String,
    /// Whether the qualitative claim (ordering / OOM verdict / trend)
    /// reproduced.
    pub shape_holds: bool,
    /// Free-form note (unit caveats, substitutions, ...).
    pub note: String,
}

/// A collection of records with markdown emission.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecordSet {
    records: Vec<ExperimentRecord>,
}

impl RecordSet {
    /// Empty set.
    pub fn new() -> Self {
        RecordSet::default()
    }

    /// Add a record.
    pub fn push(
        &mut self,
        experiment: &str,
        quantity: &str,
        paper: impl std::fmt::Display,
        ours: impl std::fmt::Display,
        shape_holds: bool,
        note: &str,
    ) {
        self.records.push(ExperimentRecord {
            experiment: experiment.into(),
            quantity: quantity.into(),
            paper: paper.to_string(),
            ours: ours.to_string(),
            shape_holds,
            note: note.into(),
        });
    }

    /// All records.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// Count of records whose qualitative shape reproduced.
    pub fn holds(&self) -> usize {
        self.records.iter().filter(|r| r.shape_holds).count()
    }

    /// Render the markdown block for `EXPERIMENTS.md`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Experiment | Quantity | Paper | Ours | Shape holds | Note |\n|---|---|---|---|---|---|\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.experiment,
                r.quantity,
                r.paper,
                r.ours,
                if r.shape_holds { "yes" } else { "NO" },
                r.note
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_render() {
        let mut rs = RecordSet::new();
        rs.push(
            "Table 2",
            "peak mem",
            "259.84 GB",
            "259.46 GiB",
            true,
            "virtual replay",
        );
        rs.push("Fig 2", "PeMS OOM", "crash", "crash", true, "");
        assert_eq!(rs.records().len(), 2);
        assert_eq!(rs.holds(), 2);
        let md = rs.to_markdown();
        assert!(md.contains("| Table 2 |"));
        assert!(md.contains("| yes |"));
    }

    #[test]
    fn failing_shape_is_visible() {
        let mut rs = RecordSet::new();
        rs.push("Fig 9", "speedup", "2.28x", "1.1x", false, "tbd");
        assert!(rs.to_markdown().contains("| NO |"));
        assert_eq!(rs.holds(), 0);
    }
}
