//! Line-series rendering for the paper's figures: each `repro_fig*` binary
//! prints its figure as labeled numeric series plus a coarse ASCII plot so
//! the curve shape is visible in a terminal.

/// A named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Minimum and maximum y values.
    pub fn y_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, y) in &self.points {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        (lo, hi)
    }

    /// Last y value (e.g. final-epoch MAE).
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }
}

/// Render series as columns of numbers (x, then one column per series).
pub fn render_columns(title: &str, xlabel: &str, series: &[Series]) -> String {
    let mut out = format!("== {title} ==\n");
    let mut header = format!("{xlabel:>10}");
    for s in series {
        header.push_str(&format!("  {:>16}", s.label));
    }
    out.push_str(&header);
    out.push('\n');
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..n {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|&(x, _)| x))
            .unwrap_or(0.0);
        let mut line = format!("{x:>10.2}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => line.push_str(&format!("  {y:>16.4}")),
                None => line.push_str(&format!("  {:>16}", "-")),
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// A coarse ASCII plot (log-free): `height` rows by one column per point of
/// the first series.
pub fn ascii_plot(series: &[Series], height: usize) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        let (a, b) = s.y_range();
        lo = lo.min(a);
        hi = hi.max(b);
    }
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return String::new();
    }
    let width = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    let mut grid = vec![vec![b' '; width]; height];
    let marks = [b'*', b'o', b'+', b'x', b'#', b'@'];
    for (si, s) in series.iter().enumerate() {
        for (xi, &(_, y)) in s.points.iter().enumerate() {
            let frac = (y - lo) / (hi - lo);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][xi] = marks[si % marks.len()];
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y = hi - (hi - lo) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:>10.2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{}={}", marks[i % marks.len()] as char, s.label))
        .collect();
    out.push_str(&format!("{:>10}  {}\n", "", legend.join("  ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn y_range_and_last() {
        let s = Series::new("a", vec![(0.0, 3.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(s.y_range(), (1.0, 3.0));
        assert_eq!(s.last_y(), Some(2.0));
    }

    #[test]
    fn columns_include_all_series() {
        let a = Series::new("alpha", vec![(1.0, 10.0)]);
        let b = Series::new("beta", vec![(1.0, 20.0)]);
        let out = render_columns("Fig", "x", &[a, b]);
        assert!(out.contains("alpha") && out.contains("beta"));
        assert!(out.contains("10.0000") && out.contains("20.0000"));
    }

    #[test]
    fn ascii_plot_has_height_rows() {
        let s = Series::new("a", vec![(0.0, 0.0), (1.0, 5.0), (2.0, 10.0)]);
        let plot = ascii_plot(&[s], 5);
        assert_eq!(plot.trim_end().lines().count(), 6); // 5 rows + legend
        assert!(plot.contains('*'));
    }

    #[test]
    fn ascii_plot_handles_flat_series() {
        let s = Series::new("a", vec![(0.0, 1.0), (1.0, 1.0)]);
        assert_eq!(ascii_plot(&[s], 4), "");
    }
}
