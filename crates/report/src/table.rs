//! Aligned text / markdown tables for the reproduction harness.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let v: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&v)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a byte count with a binary-unit suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    const GIB: f64 = (1u64 << 30) as f64;
    const MIB: f64 = (1u64 << 20) as f64;
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= GIB {
        format!("{:.2} GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

/// Format seconds as `Xm Ys` / `Ys`.
pub fn fmt_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22".into()]);
        let s = t.to_text();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha  1"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn markdown_and_csv() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert!(t.to_markdown().contains("| 1 | 2 |"));
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("T", &["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(450_971_566_080), "420.00 GiB");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(5.0), "5.00 s");
        assert_eq!(fmt_secs(90.0), "1.5 min");
    }
}
