//! Diffusion transition matrices and normalized adjacencies.
//!
//! DCRNN models traffic as a diffusion process with transition matrix
//! `P = D_o⁻¹ A` (forward random walk) and its reverse `P' = D_i⁻¹ Aᵀ`;
//! a K-step diffusion convolution uses the powers `P⁰..P^{K-1}` of both.
//! A3T-GCN instead uses the symmetric normalization `D̃^{-1/2} Ã D̃^{-1/2}`
//! with self-loops. Both constructions live here.

use crate::adjacency::Adjacency;
use crate::csr::Csr;

/// Forward random-walk transition matrix `D_o⁻¹ A` as CSR.
pub fn random_walk(adj: &Adjacency) -> Csr {
    let n = adj.num_nodes();
    let deg = adj.out_degrees();
    let inv: Vec<f32> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();
    Csr::from_dense(n, n, adj.weights()).scale_rows(&inv)
}

/// Reverse random-walk transition matrix `D_i⁻¹ Aᵀ` as CSR.
pub fn reverse_random_walk(adj: &Adjacency) -> Csr {
    random_walk(&adj.transpose())
}

/// The set of diffusion supports used by a K-step dual-direction diffusion
/// convolution: `[I, P, P², …, P^{K-1}, P', P'², …, P'^{K-1}]`.
///
/// `max_step` (K) ≥ 1; with K=1 only the identity is returned, K=2 adds one
/// forward and one reverse step, and so on. Matrix powers are computed as
/// repeated CSR×dense products folded back to CSR (road graphs stay sparse
/// for the small K used in practice — DCRNN uses K=2 or 3).
pub fn diffusion_supports(adj: &Adjacency, max_step: usize) -> Vec<Csr> {
    assert!(max_step >= 1, "diffusion needs at least the identity step");
    let n = adj.num_nodes();
    let mut supports = vec![Csr::identity(n)];
    if max_step == 1 {
        return supports;
    }
    for base in [random_walk(adj), reverse_random_walk(adj)] {
        let mut power = base.clone();
        supports.push(base.clone());
        for _ in 2..max_step {
            // power = power @ base (dense intermediate, refolded to CSR).
            let dense = power.spmm(&base.to_dense()).expect("square matrices");
            power = Csr::from_dense(n, n, &dense.to_vec());
            supports.push(power.clone());
        }
    }
    supports
}

/// Symmetrically-normalized adjacency with self-loops,
/// `D̃^{-1/2} (A + I) D̃^{-1/2}`, used by GCN-style layers (A3T-GCN/TGCN).
pub fn sym_norm_adjacency(adj: &Adjacency) -> Csr {
    let n = adj.num_nodes();
    let mut w = adj.symmetrized().weights().to_vec();
    for i in 0..n {
        w[i * n + i] += 1.0;
    }
    let mut deg = vec![0.0f32; n];
    for i in 0..n {
        deg[i] = w[i * n..(i + 1) * n].iter().sum();
    }
    let inv_sqrt: Vec<f32> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    for i in 0..n {
        for j in 0..n {
            w[i * n + j] *= inv_sqrt[i] * inv_sqrt[j];
        }
    }
    Csr::from_dense(n, n, &w)
}

/// Scaled graph Laplacian `2L/λ_max − I` with `L = I − D^{-1/2} A D^{-1/2}`,
/// using the common `λ_max ≈ 2` approximation (Chebyshev-style layers).
pub fn scaled_laplacian(adj: &Adjacency) -> Csr {
    let n = adj.num_nodes();
    let sym = sym_norm_adjacency(adj);
    // L_scaled ≈ (I - Asym) - I = -Asym  (with lambda_max = 2):
    // 2/2 * (I - Asym) - I = -Asym.
    let dense = sym.to_dense().to_vec();
    let neg: Vec<f32> = dense.iter().map(|v| -v).collect();
    Csr::from_dense(n, n, &neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> Adjacency {
        // 0 -> 1 -> 2 with unit weights (directed).
        Adjacency::from_dense(3, vec![0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0])
    }

    #[test]
    fn random_walk_rows_sum_to_one_or_zero() {
        let p = random_walk(&line_graph());
        let d = p.to_dense().to_vec();
        let row_sums: Vec<f32> = (0..3).map(|r| d[r * 3..(r + 1) * 3].iter().sum()).collect();
        assert_eq!(row_sums, vec![1.0, 1.0, 0.0], "sink row is all zero");
    }

    #[test]
    fn reverse_walk_follows_transposed_edges() {
        let p = reverse_random_walk(&line_graph());
        let d = p.to_dense().to_vec();
        // Reverse edges: 1 -> 0, 2 -> 1.
        assert_eq!(d[3], 1.0);
        assert_eq!(d[2 * 3 + 1], 1.0);
    }

    #[test]
    fn supports_count_matches_dual_direction() {
        let s = diffusion_supports(&line_graph(), 3);
        // I + 2 forward powers + 2 reverse powers.
        assert_eq!(s.len(), 5);
        // First support must be the identity.
        assert_eq!(
            s[0].to_dense().to_vec(),
            Csr::identity(3).to_dense().to_vec()
        );
    }

    #[test]
    fn supports_k1_is_identity_only() {
        let s = diffusion_supports(&line_graph(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn second_power_is_two_hop() {
        let s = diffusion_supports(&line_graph(), 3);
        // s[2] = P^2: node 0 reaches node 2 in two hops.
        let p2 = s[2].to_dense().to_vec();
        assert_eq!(p2[2], 1.0);
    }

    #[test]
    fn sym_norm_rows_bounded() {
        let coords: Vec<(f32, f32)> = (0..5).map(|i| (i as f32, 0.0)).collect();
        let adj = Adjacency::from_coordinates(&coords, Some(2.0), 0.01);
        let a = sym_norm_adjacency(&adj);
        let d = a.to_dense().to_vec();
        assert!(d.iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
        // Symmetric.
        for i in 0..5 {
            for j in 0..5 {
                assert!((d[i * 5 + j] - d[j * 5 + i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn scaled_laplacian_is_negated_sym_norm() {
        let adj = line_graph();
        let l = scaled_laplacian(&adj).to_dense().to_vec();
        let a = sym_norm_adjacency(&adj).to_dense().to_vec();
        for (lv, av) in l.iter().zip(&a) {
            assert!((lv + av).abs() < 1e-6);
        }
    }
}
