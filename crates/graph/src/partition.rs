//! Graph partitioning (paper §7 future work).
//!
//! The paper's conclusion proposes "the integration of index-batching with
//! graph partitioning, potentially yielding further speedups at a potential
//! cost to accuracy" — the approach of Mallick et al. \[37\], who train one
//! DCRNN per spatial partition. This module provides the graph side of that
//! integration: partitioners, cut-quality metrics, and halo-augmented
//! induced subgraphs. The training-side integration lives in
//! `pgt-index::partitioned`.
//!
//! Three partitioners cover the design space:
//! - [`Partitioning::contiguous`] — index blocks; the trivial baseline.
//! - [`Partitioning::coordinate_bisection`] — recursive coordinate
//!   bisection over sensor positions (spatially compact, well balanced);
//!   sensor networks embed in the plane, so geometry is a strong proxy for
//!   the Gaussian-kernel edge structure.
//! - [`Partitioning::greedy_bfs`] — seeded region growing over the actual
//!   weighted edges (METIS-flavored, topology-aware).

use crate::adjacency::Adjacency;
use std::collections::VecDeque;

/// An assignment of every graph node to one of `k` parts.
#[derive(Debug, Clone)]
pub struct Partitioning {
    assignment: Vec<usize>,
    k: usize,
}

impl Partitioning {
    /// Wrap an explicit assignment (must reference parts `< k` only).
    pub fn from_assignment(assignment: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "need at least one part");
        assert!(
            assignment.iter().all(|&p| p < k),
            "assignment references a part >= k"
        );
        Partitioning { assignment, k }
    }

    /// Contiguous index blocks: nodes `[i·n/k, (i+1)·n/k)` form part `i`.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k > 0 && k <= n, "need 0 < k <= n");
        let per = n.div_ceil(k);
        let assignment = (0..n).map(|i| (i / per).min(k - 1)).collect();
        Partitioning { assignment, k }
    }

    /// Recursive coordinate bisection: repeatedly split along the widest
    /// spatial axis at a rank proportional to the part counts. Produces
    /// spatially compact, near-perfectly balanced parts.
    pub fn coordinate_bisection(coords: &[(f32, f32)], k: usize) -> Self {
        assert!(k > 0 && k <= coords.len(), "need 0 < k <= n");
        let mut assignment = vec![0usize; coords.len()];
        let mut ids: Vec<usize> = (0..coords.len()).collect();
        rcb(coords, &mut ids, k, 0, &mut assignment);
        Partitioning { assignment, k }
    }

    /// Seeded BFS region growing over the weighted edges: `k` seeds are
    /// spread greedily (farthest-first over hop distance), then regions
    /// claim unassigned neighbors round-robin, capped at `⌈n/k⌉` nodes.
    /// Stranded nodes (disconnected from every capped region) fall back to
    /// the smallest part.
    pub fn greedy_bfs(adj: &Adjacency, k: usize) -> Self {
        let n = adj.num_nodes();
        assert!(k > 0 && k <= n, "need 0 < k <= n");
        let neighbors = undirected_neighbors(adj);
        let seeds = farthest_first_seeds(&neighbors, k);
        let cap = n.div_ceil(k);
        let mut assignment = vec![usize::MAX; n];
        let mut sizes = vec![0usize; k];
        let mut frontiers: Vec<VecDeque<usize>> =
            seeds.iter().map(|&s| VecDeque::from([s])).collect();
        for (p, &s) in seeds.iter().enumerate() {
            assignment[s] = p;
            sizes[p] = 1;
        }
        let mut progress = true;
        while progress {
            progress = false;
            for p in 0..k {
                if sizes[p] >= cap {
                    continue;
                }
                while let Some(u) = frontiers[p].pop_front() {
                    let mut claimed = false;
                    for &v in &neighbors[u] {
                        if assignment[v] == usize::MAX {
                            assignment[v] = p;
                            sizes[p] += 1;
                            frontiers[p].push_back(v);
                            claimed = true;
                            progress = true;
                            if sizes[p] >= cap {
                                break;
                            }
                        }
                    }
                    if claimed {
                        // Revisit u later: it may still have unassigned
                        // neighbors once other regions hit their caps.
                        frontiers[p].push_back(u);
                        break;
                    }
                }
            }
        }
        // Stranded nodes: put each in the currently smallest part.
        for a in assignment.iter_mut() {
            if *a == usize::MAX {
                let p = (0..k).min_by_key(|&p| sizes[p]).unwrap();
                *a = p;
                sizes[p] += 1;
            }
        }
        Partitioning { assignment, k }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The part of node `i`.
    pub fn part_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// The full assignment slice.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Node ids owned by part `p`, ascending.
    pub fn part_nodes(&self, p: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == p).then_some(i))
            .collect()
    }

    /// Sizes of every part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &a in &self.assignment {
            sizes[a] += 1;
        }
        sizes
    }

    /// Load imbalance: `max part size / (n / k)` (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        max / (self.num_nodes() as f64 / self.k as f64)
    }

    /// Total weight of edges whose endpoints live in different parts.
    pub fn edge_cut_weight(&self, adj: &Adjacency) -> f64 {
        let n = adj.num_nodes();
        let mut cut = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let w = adj.weight(i, j);
                if w > 0.0 && self.assignment[i] != self.assignment[j] {
                    cut += w as f64;
                }
            }
        }
        cut
    }

    /// Fraction of (weighted) edges cut by the partitioning.
    pub fn cut_fraction(&self, adj: &Adjacency) -> f64 {
        let n = adj.num_nodes();
        let mut total = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let w = adj.weight(i, j);
                if w > 0.0 && i != j {
                    total += w as f64;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            self.edge_cut_weight(adj) / total
        }
    }

    /// The halo-augmented induced subgraph of part `p`: owned nodes first,
    /// then halo nodes within `halo_depth` hops (the neighbors partition-
    /// boundary diffusion convolutions need — depth should be ≥ the model's
    /// diffusion steps K).
    pub fn subgraph(&self, adj: &Adjacency, p: usize, halo_depth: usize) -> Subgraph {
        let owned = self.part_nodes(p);
        let halo = halo_nodes(adj, &owned, halo_depth);
        let mut nodes = owned.clone();
        nodes.extend_from_slice(&halo);
        let local_adj = induced_subgraph(adj, &nodes);
        Subgraph {
            part: p,
            owned_count: owned.len(),
            global_ids: nodes,
            adjacency: local_adj,
        }
    }

    /// All `k` halo-augmented subgraphs.
    pub fn subgraphs(&self, adj: &Adjacency, halo_depth: usize) -> Vec<Subgraph> {
        (0..self.k)
            .map(|p| self.subgraph(adj, p, halo_depth))
            .collect()
    }

    /// Replication factor: `Σ_p |owned_p ∪ halo_p| / n` — how much node
    /// (and therefore feature) duplication the partitioned layout pays.
    pub fn replication_factor(&self, adj: &Adjacency, halo_depth: usize) -> f64 {
        let total: usize = self
            .subgraphs(adj, halo_depth)
            .iter()
            .map(|s| s.global_ids.len())
            .sum();
        total as f64 / self.num_nodes() as f64
    }
}

/// One part's halo-augmented induced subgraph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Which part this is.
    pub part: usize,
    /// The first `owned_count` entries of `global_ids` are owned; the rest
    /// are halo (read-only context for boundary convolutions).
    pub owned_count: usize,
    /// Local id → global node id.
    pub global_ids: Vec<usize>,
    /// Induced weighted adjacency over `global_ids` (local indexing).
    pub adjacency: Adjacency,
}

impl Subgraph {
    /// Number of local nodes (owned + halo).
    pub fn num_nodes(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of halo nodes.
    pub fn halo_count(&self) -> usize {
        self.global_ids.len() - self.owned_count
    }

    /// Owned global ids.
    pub fn owned_global_ids(&self) -> &[usize] {
        &self.global_ids[..self.owned_count]
    }
}

/// Undirected neighbor lists over non-zero weights (either direction).
fn undirected_neighbors(adj: &Adjacency) -> Vec<Vec<usize>> {
    let n = adj.num_nodes();
    let mut out = vec![Vec::new(); n];
    for (i, neighbors) in out.iter_mut().enumerate() {
        for j in 0..n {
            if i != j && (adj.weight(i, j) > 0.0 || adj.weight(j, i) > 0.0) {
                neighbors.push(j);
            }
        }
    }
    out
}

/// Greedy farthest-first seed spreading over hop distance.
fn farthest_first_seeds(neighbors: &[Vec<usize>], k: usize) -> Vec<usize> {
    let n = neighbors.len();
    let mut seeds = vec![0usize];
    let mut dist = bfs_distances(neighbors, 0);
    while seeds.len() < k {
        // Unreachable nodes (usize::MAX) are the farthest of all — picking
        // them first gives every component a seed.
        let next = (0..n)
            .filter(|i| !seeds.contains(i))
            .max_by_key(|&i| dist[i])
            .expect("k <= n leaves a candidate");
        seeds.push(next);
        let d2 = bfs_distances(neighbors, next);
        for i in 0..n {
            dist[i] = dist[i].min(d2[i]);
        }
    }
    seeds
}

fn bfs_distances(neighbors: &[Vec<usize>], src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; neighbors.len()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for &v in &neighbors[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Nodes within `depth` hops of `owned` that are not themselves owned,
/// ascending. Depth 0 returns an empty halo.
pub fn halo_nodes(adj: &Adjacency, owned: &[usize], depth: usize) -> Vec<usize> {
    let n = adj.num_nodes();
    let neighbors = undirected_neighbors(adj);
    let mut level = vec![usize::MAX; n];
    let mut q: VecDeque<usize> = VecDeque::new();
    for &o in owned {
        level[o] = 0;
        q.push_back(o);
    }
    let mut halo = Vec::new();
    while let Some(u) = q.pop_front() {
        if level[u] >= depth {
            continue;
        }
        for &v in &neighbors[u] {
            if level[v] == usize::MAX {
                level[v] = level[u] + 1;
                halo.push(v);
                q.push_back(v);
            }
        }
    }
    halo.sort_unstable();
    halo
}

/// The induced weighted adjacency over `nodes` (local indexing follows the
/// order of `nodes`).
pub fn induced_subgraph(adj: &Adjacency, nodes: &[usize]) -> Adjacency {
    let m = nodes.len();
    let mut weights = vec![0.0f32; m * m];
    for (li, &gi) in nodes.iter().enumerate() {
        for (lj, &gj) in nodes.iter().enumerate() {
            weights[li * m + lj] = adj.weight(gi, gj);
        }
    }
    Adjacency::from_dense(m, weights)
}

/// Recursive coordinate bisection helper: assign `ids` to `k` parts
/// starting at part id `base`, splitting along the widest axis.
fn rcb(coords: &[(f32, f32)], ids: &mut [usize], k: usize, base: usize, assignment: &mut [usize]) {
    if k == 1 {
        for &i in ids.iter() {
            assignment[i] = base;
        }
        return;
    }
    // Widest axis of this subset.
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::INFINITY,
        f32::NEG_INFINITY,
    );
    for &i in ids.iter() {
        let (x, y) = coords[i];
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let by_x = (max_x - min_x) >= (max_y - min_y);
    ids.sort_unstable_by(|&a, &b| {
        let ka = if by_x { coords[a].0 } else { coords[a].1 };
        let kb = if by_x { coords[b].0 } else { coords[b].1 };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let k_left = k / 2;
    let k_right = k - k_left;
    // Split proportionally so odd part counts stay balanced.
    let cut = ids.len() * k_left / k;
    let (left, right) = ids.split_at_mut(cut);
    rcb(coords, left, k_left, base, assignment);
    rcb(coords, right, k_right, base + k_left, assignment);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{highway_corridor, random_geometric};

    fn net() -> crate::generators::SensorNetwork {
        random_geometric(40, 10.0, 7)
    }

    #[test]
    fn contiguous_covers_and_balances() {
        let p = Partitioning::contiguous(10, 3);
        assert_eq!(p.part_sizes(), vec![4, 4, 2]);
        let all: Vec<usize> = (0..3).flat_map(|k| p.part_nodes(k)).collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rcb_is_balanced_and_spatially_compact() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 4);
        assert!(p.imbalance() <= 1.11, "imbalance {}", p.imbalance());
        // Spatial compactness: RCB must cut fewer weighted edges than an
        // arbitrary contiguous-index split of the same node set.
        let naive = Partitioning::contiguous(n.num_nodes(), 4);
        assert!(
            p.edge_cut_weight(&n.adjacency) <= naive.edge_cut_weight(&n.adjacency),
            "rcb {} vs naive {}",
            p.edge_cut_weight(&n.adjacency),
            naive.edge_cut_weight(&n.adjacency)
        );
    }

    #[test]
    fn rcb_handles_non_power_of_two() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 3);
        assert_eq!(p.num_parts(), 3);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
        assert!(p.imbalance() <= 1.2, "imbalance {}", p.imbalance());
    }

    #[test]
    fn greedy_bfs_covers_all_nodes() {
        let n = net();
        let p = Partitioning::greedy_bfs(&n.adjacency, 4);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 40);
        assert!(
            p.part_sizes().iter().all(|&s| s > 0),
            "{:?}",
            p.part_sizes()
        );
        assert!(p.imbalance() <= 1.6, "imbalance {}", p.imbalance());
    }

    #[test]
    fn corridor_bfs_cut_is_small() {
        // A 1-D corridor partitioned into k consecutive regions should cut
        // only the few edges spanning region boundaries.
        let n = highway_corridor(30, 1, 3);
        let p = Partitioning::greedy_bfs(&n.adjacency, 3);
        assert!(
            p.cut_fraction(&n.adjacency) < 0.35,
            "cut fraction {}",
            p.cut_fraction(&n.adjacency)
        );
    }

    #[test]
    fn halo_depth_zero_is_empty_and_grows_with_depth() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 4);
        let owned = p.part_nodes(0);
        assert!(halo_nodes(&n.adjacency, &owned, 0).is_empty());
        let h1 = halo_nodes(&n.adjacency, &owned, 1);
        let h2 = halo_nodes(&n.adjacency, &owned, 2);
        assert!(h1.len() <= h2.len());
        // Halo never contains owned nodes.
        assert!(h1.iter().all(|h| !owned.contains(h)));
    }

    #[test]
    fn subgraph_orders_owned_first_and_keeps_weights() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 2);
        let sub = p.subgraph(&n.adjacency, 1, 1);
        assert_eq!(&sub.global_ids[..sub.owned_count], &p.part_nodes(1)[..]);
        // Induced weights match the global adjacency.
        for (li, &gi) in sub.global_ids.iter().enumerate() {
            for (lj, &gj) in sub.global_ids.iter().enumerate() {
                assert_eq!(sub.adjacency.weight(li, lj), n.adjacency.weight(gi, gj));
            }
        }
    }

    #[test]
    fn replication_factor_at_least_one() {
        let n = net();
        let p = Partitioning::coordinate_bisection(&n.coords, 4);
        let r0 = p.replication_factor(&n.adjacency, 0);
        let r2 = p.replication_factor(&n.adjacency, 2);
        assert!((r0 - 1.0).abs() < 1e-9, "no halo ⇒ no replication");
        assert!(r2 > 1.0, "halo implies replication: {r2}");
    }

    #[test]
    fn explicit_assignment_validates() {
        let p = Partitioning::from_assignment(vec![0, 1, 1, 0], 2);
        assert_eq!(p.part_nodes(0), vec![0, 3]);
        assert_eq!(p.part_nodes(1), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "part >= k")]
    fn out_of_range_assignment_panics() {
        Partitioning::from_assignment(vec![0, 2], 2);
    }
}
